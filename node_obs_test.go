package pptd_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pptd"
	"pptd/internal/obs"
)

// newObsNode boots a full node — batch campaign, accounted stream
// engine with a pinned shard count, durable persistence — and drives a
// fixed request sequence, so the set of metric series the node exposes
// is deterministic. It returns the test server; the node and server are
// cleaned up with the test.
func newObsNode(t *testing.T) *httptest.Server {
	t.Helper()
	n, err := pptd.NewNode(
		pptd.WithName("obs"),
		pptd.WithBatchCampaign(3),
		pptd.WithStreamEngine(4),
		pptd.WithShards(2),
		pptd.WithWindowHistory(4),
		pptd.WithDataQuality(1),
		pptd.WithPrivacyTarget(1, 1e-5),
		pptd.WithPersistence(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	ts := httptest.NewServer(n.Handler())
	t.Cleanup(ts.Close)

	c, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Campaign(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "alice",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}, {Object: 1, Value: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTruths(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamStats(ctx); err != nil {
		t.Fatal(err)
	}
	// Three error envelopes, three distinct codes: a pending batch result
	// (not_ready), an unmounted path (not_found), and a POST against the
	// GET-only exposition (method_not_allowed).
	if _, err := c.Result(ctx); !errors.Is(err, pptd.ErrNotReady) {
		t.Fatalf("pending result error = %v, want ErrNotReady", err)
	}
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/does-not-exist"},
		{http.MethodPost, "/metrics"},
	} {
		resp, err := http.NewRequest(req.method, ts.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(resp)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, r.Body)
		_ = r.Body.Close()
	}
	// Prime the scrape route's own request counters, so the golden scrape
	// sees a stable series set that includes GET /metrics itself.
	scrapeMetrics(t, ts)
	return ts
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != pptd.MetricsTextContentType {
		t.Fatalf("content type = %q, want %q", got, pptd.MetricsTextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// normalizeMetrics replaces every sample value with a placeholder,
// leaving names, labels, ordering, and HELP/TYPE lines — the structure
// the golden file pins. Values are timing- and load-dependent; the
// value-level contracts are asserted by the round-trip and agreement
// tests instead.
func normalizeMetrics(text string) string {
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		if idx := strings.LastIndexByte(ln, ' '); idx >= 0 {
			lines[i] = ln[:idx] + " <value>"
		}
	}
	return strings.Join(lines, "\n")
}

// TestNodeMetricsGolden pins the structure of the node's /metrics
// exposition — the family set, HELP and TYPE lines, label names and
// values, sample ordering, escaping — against testdata/metrics.golden.
// Regenerate after intentional changes with:
//
//	go test -run TestNodeMetricsGolden . -update
func TestNodeMetricsGolden(t *testing.T) {
	ts := newObsNode(t)
	got := normalizeMetrics(scrapeMetrics(t, ts))

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestNodeMetricsGolden . -update)", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("metrics exposition drifted at line %d:\n  golden: %s\n  now:    %s\n"+
					"If this change is intentional, regenerate with: go test -run TestNodeMetricsGolden . -update",
					i+1, w, g)
			}
		}
	}
}

// TestNodeMetricsRoundTrip feeds a live node's scrape through the
// package's own exposition parser, which validates names, escapes, and
// histogram invariants (monotone buckets, +Inf == _count), and checks a
// few deterministic values against the traffic newObsNode drove.
func TestNodeMetricsRoundTrip(t *testing.T) {
	ts := newObsNode(t)
	text := scrapeMetrics(t, ts)
	p, err := obs.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse /metrics: %v\n%s", err, text)
	}
	mustValue := func(want float64, name string, labelPairs ...string) {
		t.Helper()
		v, err := p.Value(name, labelPairs...)
		if err != nil {
			t.Fatalf("%v\n%s", err, text)
		}
		if v != want {
			t.Errorf("%s%v = %v, want %v", name, labelPairs, v, want)
		}
	}
	mustValue(2, "pptd_stream_claims_ingested_total")
	mustValue(1, "pptd_stream_windows_closed_total")
	mustValue(1, "pptd_stream_tracked_users")
	mustValue(1, "pptd_errors_total", "code", "not_ready")
	mustValue(1, "pptd_errors_total", "code", "not_found")
	mustValue(1, "pptd_errors_total", "code", "method_not_allowed")
	mustValue(1, "pptd_http_requests_total",
		"route", "/v1/stream/claims", "method", "POST", "code", "200")
	mustValue(1, "pptd_http_requests_total",
		"route", "unmatched", "method", "GET", "code", "404")
	// The durable charge was journaled before the receipt: exactly one
	// append and one sync for alice's accepted submission.
	if v, err := p.Value("pptd_store_journal_appends_total"); err != nil || v < 1 {
		t.Errorf("journal appends = %v, %v; want >= 1", v, err)
	}
}

// TestNodeStatsMetricsAgree is the one-source-of-truth check: the JSON
// stats view (GET /v1/stream/stats) and the Prometheus exposition must
// report the same store counters, and a ?reset=1 must window only the
// JSON view — the /metrics series stay monotone, and the gauges
// (journal bytes, live segments) keep describing the present on both.
func TestNodeStatsMetricsAgree(t *testing.T) {
	ts := newObsNode(t)
	c, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	metricValue := func(name string) float64 {
		t.Helper()
		p, err := obs.ParseText(strings.NewReader(scrapeMetrics(t, ts)))
		if err != nil {
			t.Fatal(err)
		}
		v, err := p.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	statsReset := func(reset bool) *pptd.StreamStoreStats {
		t.Helper()
		path := "/v1/stream/stats"
		if reset {
			path += "?reset=1"
		}
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var info pptd.StreamStatsInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if info.Store == nil {
			t.Fatal("durable node reported no store stats")
		}
		return info.Store
	}

	// More durable submissions into the open window, so the pre-reset
	// window holds several appends and the windowing below is visible.
	for _, user := range []string{"carol", "dave"} {
		if _, err := c.StreamSubmit(ctx, pptd.CampaignSubmission{
			ClientID: user,
			Claims:   []pptd.CampaignClaim{{Object: 3, Value: 4}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	before := statsReset(false)
	if got := metricValue("pptd_store_journal_appends_total"); got != float64(before.JournalAppends) {
		t.Fatalf("journal appends: /metrics = %v, stats JSON = %d", got, before.JournalAppends)
	}
	if got := metricValue("pptd_store_journal_bytes"); got != float64(before.JournalBytes) {
		t.Fatalf("journal bytes: /metrics = %v, stats JSON = %d", got, before.JournalBytes)
	}
	if got := metricValue("pptd_store_flush_duration_seconds_count"); got != float64(before.FlushLatencySeconds.Count) {
		t.Fatalf("flush count: /metrics = %v, stats JSON = %d", got, before.FlushLatencySeconds.Count)
	}

	// The reset read itself returns the full window...
	window := statsReset(true)
	if window.JournalAppends != before.JournalAppends {
		t.Fatalf("reset read JournalAppends = %d, want %d", window.JournalAppends, before.JournalAppends)
	}
	// ...and one more durable submission later, the JSON view counts only
	// the new window while the exposition stays cumulative and the gauges
	// agree on the present.
	if _, err := c.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "bob",
		Claims:   []pptd.CampaignClaim{{Object: 2, Value: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	after := statsReset(false)
	if after.JournalAppends >= before.JournalAppends {
		t.Fatalf("windowed JournalAppends = %d, want < %d (reset did not window the JSON view)",
			after.JournalAppends, before.JournalAppends)
	}
	if got, want := metricValue("pptd_store_journal_appends_total"), float64(before.JournalAppends+after.JournalAppends); got != want {
		t.Fatalf("monotone journal appends: /metrics = %v, want %v", got, want)
	}
	if after.JournalBytes <= before.JournalBytes {
		t.Fatalf("gauge JournalBytes = %d after reset, want > %d (gauges survive resets)",
			after.JournalBytes, before.JournalBytes)
	}
	if got := metricValue("pptd_store_journal_bytes"); got != float64(after.JournalBytes) {
		t.Fatalf("journal bytes after reset: /metrics = %v, stats JSON = %d", got, after.JournalBytes)
	}
	if after.Segments <= 0 {
		t.Fatalf("gauge Segments = %d after reset, want > 0", after.Segments)
	}
}

var hexRequestID = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestNodeRequestIDEcho drives the correlation contract over the wire:
// a valid client ID is echoed on success and on error envelopes (which
// also carry X-Error-Code), an absent or invalid ID is replaced with a
// generated one, and the Go client surfaces the echo on failures.
func TestNodeRequestIDEcho(t *testing.T) {
	ts := newObsNode(t)

	do := func(method, path, reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp
	}

	if resp := do(http.MethodGet, "/v1/campaign", "trace-42"); resp.Header.Get("X-Request-ID") != "trace-42" {
		t.Errorf("success echo = %q, want trace-42", resp.Header.Get("X-Request-ID"))
	}
	resp := do(http.MethodGet, "/v1/result", "trace-err")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pending result status = %d, want 404", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-err" {
		t.Errorf("error-envelope echo = %q, want trace-err", got)
	}
	if got := resp.Header.Get("X-Error-Code"); got != "not_ready" {
		t.Errorf("X-Error-Code = %q, want not_ready", got)
	}
	if resp := do(http.MethodGet, "/v1/campaign", ""); !hexRequestID.MatchString(resp.Header.Get("X-Request-ID")) {
		t.Errorf("generated ID = %q, want 16 hex chars", resp.Header.Get("X-Request-ID"))
	}
	if resp := do(http.MethodGet, "/v1/campaign", "has space"); !hexRequestID.MatchString(resp.Header.Get("X-Request-ID")) {
		t.Errorf("invalid ID replacement = %q, want 16 hex chars", resp.Header.Get("X-Request-ID"))
	}

	c, err := pptd.NewClient(ts.URL, pptd.WithRequestID("cli-run-7"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Result(context.Background())
	var httpErr *pptd.CampaignHTTPError
	if !errors.As(err, &httpErr) {
		t.Fatalf("pending result error = %v, want *CampaignHTTPError", err)
	}
	if httpErr.RequestID != "cli-run-7" {
		t.Errorf("HTTPError.RequestID = %q, want cli-run-7", httpErr.RequestID)
	}
	if _, err := pptd.NewClient(ts.URL, pptd.WithRequestID("bad id")); err == nil {
		t.Error("NewClient accepted a request ID with a space")
	}
}

// TestNodeDebugHandlers: pprof is opt-in — mounted under /debug/pprof/
// with WithDebugHandlers, a not_found envelope without it.
func TestNodeDebugHandlers(t *testing.T) {
	n, err := pptd.NewNode(
		pptd.WithStreamEngine(2),
		pptd.WithDebugHandlers(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with WithDebugHandlers status = %d", resp.StatusCode)
	}

	plain := newObsNode(t)
	resp, err = http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without WithDebugHandlers status = %d", resp.StatusCode)
	}
	var eb pptd.APIErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Code != "not_found" {
		t.Fatalf("undebugged pprof miss = (%+v, %v), want not_found envelope", eb, err)
	}
}
