// Floorplan: the paper's Section 5.2 application — estimating hallway
// segment lengths from smartphone walkers — run privately end to end.
// Shows the Fig. 7 phenomenon: estimated weights track true weights, and
// a user who drew a large noise variance drops in the perturbed ranking.
package main

import (
	"fmt"
	"log"
	"sort"

	"pptd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := pptd.NewRNG(7)

	// Simulate the deployment: 247 walkers, 129 hallway segments.
	inst, err := pptd.GenerateFloorplan(pptd.DefaultFloorplanConfig(), rng)
	if err != nil {
		return err
	}
	fmt.Printf("deployment: %d users x %d segments, %d distance reports\n",
		inst.Dataset.NumUsers(), inst.Dataset.NumObjects(), inst.Dataset.NumObservations())

	// Perturb with lambda2 = 2 (expected |noise| = 0.5 m per report).
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		return err
	}
	method, err := pptd.NewCRH()
	if err != nil {
		return err
	}
	pipe, err := pptd.NewPipeline(mech, method)
	if err != nil {
		return err
	}
	outcome, err := pipe.Run(inst.Dataset, rng)
	if err != nil {
		return err
	}
	fmt.Printf("injected noise: %.3f m | aggregate shift (MAE): %.3f m\n",
		outcome.Noise.MeanAbsNoise, outcome.UtilityMAE)

	// Fig. 7: compare estimated weights against "true" weights computed
	// from the ground-truth segment lengths (simulation-only knowledge).
	trueW, err := pptd.WeightsAgainst(inst.Dataset, inst.SegmentLengths, pptd.NormalizedSquaredDistance)
	if err != nil {
		return err
	}
	estW := append([]float64(nil), outcome.Original.Weights...)
	privW := append([]float64(nil), outcome.Private.Weights...)
	pptd.NormalizeWeights(trueW)
	pptd.NormalizeWeights(estW)
	pptd.NormalizeWeights(privW)

	// Show the 7 users with the largest sampled noise variances: their
	// estimated weight should drop after perturbation.
	type userRow struct {
		id       int
		noiseVar float64
	}
	rows := make([]userRow, len(outcome.Noise.UserVariances))
	for s, v := range outcome.Noise.UserVariances {
		rows[s] = userRow{id: s, noiseVar: v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].noiseVar > rows[j].noiseVar })

	fmt.Println("\nuser  noiseVar  trueWeight  estWeight(orig)  estWeight(perturbed)")
	for _, r := range rows[:7] {
		fmt.Printf("%4d  %8.3f  %10.3f  %15.3f  %20.3f\n",
			r.id, r.noiseVar, trueW[r.id], estW[r.id], privW[r.id])
	}
	fmt.Println("\nheavily-noised users keep their privacy and lose their influence;")
	fmt.Println("the aggregate stays within centimeters of the noise-free one.")
	return nil
}
