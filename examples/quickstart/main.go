// Quickstart: perturb a synthetic crowd's readings for a target
// (epsilon, delta)-LDP guarantee, aggregate with CRH, and see that the
// private aggregate barely moves — the paper's headline result in ~60
// lines.
package main

import (
	"fmt"
	"log"

	"pptd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := pptd.NewRNG(42)

	// 1. Simulate the paper's synthetic crowd: 150 users, 30 objects,
	//    user error variances ~ Exp(lambda1 = 1).
	inst, err := pptd.GenerateSynthetic(pptd.DefaultSyntheticConfig(), rng)
	if err != nil {
		return err
	}

	// 2. Pick a privacy target and let the accountant derive the
	//    mechanism (the lambda2 users will sample noise variances from).
	acct, err := pptd.NewAccountant(1, pptd.WithSensitivityTail(0.5, 0.2))
	if err != nil {
		return err
	}
	const (
		eps   = 0.5
		delta = 0.3
	)
	mech, err := acct.MechanismForEpsilon(eps, delta)
	if err != nil {
		return err
	}
	fmt.Printf("privacy target (eps=%.2f, delta=%.2f) -> lambda2=%.3f, expected |noise| per reading=%.3f\n",
		eps, delta, mech.Lambda2(), mech.ExpectedAbsNoise())

	// 3. Run Algorithm 2: every user perturbs independently, the server
	//    aggregates with CRH on the perturbed data.
	method, err := pptd.NewCRH()
	if err != nil {
		return err
	}
	pipe, err := pptd.NewPipeline(mech, method)
	if err != nil {
		return err
	}
	outcome, err := pipe.Run(inst.Dataset, rng)
	if err != nil {
		return err
	}

	// 4. The utility claim: aggregate-vs-aggregate MAE is far below the
	//    injected per-reading noise, because weighted aggregation damps
	//    the heavily perturbed users.
	fmt.Printf("injected noise (mean |xi|):           %.4f\n", outcome.Noise.MeanAbsNoise)
	fmt.Printf("utility loss (MAE of aggregates):     %.4f\n", outcome.UtilityMAE)
	fmt.Printf("truth discovery converged in %d iterations (original) / %d (perturbed)\n",
		outcome.Original.Iterations, outcome.Private.Iterations)
	return nil
}
