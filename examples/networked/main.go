// Networked: the full crowd sensing system over a real HTTP boundary, in
// one process — a campaign server on a loopback port and a fleet of
// concurrent user goroutines that perturb locally and submit only noisy
// claims, exactly as Algorithm 2 prescribes.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"pptd"
)

const (
	defaultFleetSize  = 60
	defaultNumObjects = 20
	lambda1           = 1.5 // simulated sensor quality
	lambda2           = 2.0 // server-released perturbation rate
)

func main() {
	if err := run(defaultFleetSize, defaultNumObjects); err != nil {
		log.Fatal(err)
	}
}

func run(fleetSize, numObjects int) error {
	// Campaign server with auto-aggregation at fleetSize submissions.
	method, err := pptd.NewCRH()
	if err != nil {
		return err
	}
	srv, err := pptd.NewCampaignServer(pptd.CampaignServerConfig{
		Name:          "networked-demo",
		NumObjects:    numObjects,
		Lambda2:       lambda2,
		ExpectedUsers: fleetSize,
		Method:        method,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if serveErr := httpSrv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			log.Print("server: ", serveErr)
		}
	}()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Println("campaign server listening on", baseURL)

	// Simulated ground truth, shared by the fleet generator only.
	rng := pptd.NewRNG(99)
	groundTruth := make([]float64, numObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}

	client, err := pptd.NewCampaignClient(baseURL)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, fleetSize)
	for i := 0; i < fleetSize; i++ {
		userRng := rng.Split()
		sigma := math.Sqrt(userRng.Exp() / lambda1)
		readings := make([]pptd.CampaignClaim, numObjects)
		for n, tv := range groundTruth {
			readings[n] = pptd.CampaignClaim{Object: n, Value: tv + sigma*userRng.Norm()}
		}
		user, err := pptd.NewCampaignUser(fmt.Sprintf("device-%02d", i), readings, userRng)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, u *pptd.CampaignUser) {
			defer wg.Done()
			_, errs[i] = u.Participate(ctx, client)
		}(i, user)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	fmt.Printf("%d devices submitted perturbed readings concurrently\n", fleetSize)

	result, err := client.Result(ctx)
	if err != nil {
		return err
	}
	var mae float64
	for n, tv := range groundTruth {
		mae += math.Abs(result.Truths[n] - tv)
	}
	mae /= float64(numObjects)
	fmt.Printf("server aggregated with %s (%d iterations, converged=%v)\n",
		result.Method, result.Iterations, result.Converged)
	fmt.Printf("MAE of the private aggregate vs ground truth: %.4f\n", mae)
	fmt.Println("the server never saw an original reading or any user's noise variance.")
	return nil
}
