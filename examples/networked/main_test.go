package main

import "testing"

// TestRun keeps the example compiling and executing end to end; the
// example's output is its documentation, so the test only asserts
// success. Under -short a scaled-down fleet exercises the same code
// path in a fraction of the time.
func TestRun(t *testing.T) {
	fleet, objects := defaultFleetSize, defaultNumObjects
	if testing.Short() {
		fleet, objects = 12, 6
	}
	if err := run(fleet, objects); err != nil {
		t.Fatal(err)
	}
}
