// Labeling: the categorical extension end to end — a crowd labels road
// conditions (categorical claims), every answer passes through k-ary
// randomized response on-device (pure epsilon-LDP), and the server runs
// weighted voting to recover the true labels despite both worker error
// and privacy noise.
package main

import (
	"fmt"
	"log"

	"pptd"
)

const (
	numWorkers = 25
	numRoads   = 200
	epsilon    = 1.2
)

// Road conditions the crowd labels.
var categories = []string{"clear", "congested", "blocked"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := pptd.NewRNG(31)

	// Ground truth and a crowd with a wide skill spread: workers answer
	// correctly with probability 0.35..0.95.
	truths := make([]int, numRoads)
	for n := range truths {
		truths[n] = rng.Intn(len(categories))
	}
	b := pptd.NewCategoricalBuilder(numWorkers, numRoads, len(categories))
	for w := 0; w < numWorkers; w++ {
		skill := 0.35 + 0.6*rng.Float64()
		for n, tv := range truths {
			answer := tv
			if rng.Float64() >= skill {
				answer = rng.Intn(len(categories) - 1)
				if answer >= tv {
					answer++
				}
			}
			b.Add(w, n, answer)
		}
	}
	ds, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("crowd: %d workers x %d roads, %d labels\n", numWorkers, numRoads, ds.NumClaims())

	// Randomized response on every label, on-device.
	rr, err := pptd.NewRandomizedResponse(epsilon, len(categories))
	if err != nil {
		return err
	}
	fmt.Printf("randomized response at eps=%.1f: keep probability %.3f (pure LDP, ratio e^eps)\n",
		epsilon, rr.KeepProbability())
	noisy, err := rr.PerturbDataset(ds, rng.Split())
	if err != nil {
		return err
	}

	// Weighted voting vs plain majority on the randomized labels.
	weighted, err := pptd.NewWeightedVoting()
	if err != nil {
		return err
	}
	majority, err := pptd.NewWeightedVoting(pptd.WithUnweightedVoting())
	if err != nil {
		return err
	}
	for _, method := range []interface {
		Name() string
		Run(*pptd.CategoricalDataset) (*pptd.CategoricalResult, error)
	}{weighted, majority} {
		res, err := method.Run(noisy)
		if err != nil {
			return err
		}
		acc, err := pptd.CategoricalAccuracy(res.Truths, truths)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s accuracy on randomized labels: %.3f\n", method.Name(), acc)
	}
	fmt.Println("\nevery label the server saw was individually randomized; the crowd's")
	fmt.Println("redundancy plus weighting recovers the truth.")
	return nil
}
