package main

import "testing"

// TestRun keeps the example compiling and executing end to end; the
// example's output is its documentation, so the test only asserts
// success.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
