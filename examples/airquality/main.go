// Airquality: a sparse mobile-sensing scenario from the paper's
// introduction — citizens with cheap PM2.5 sensors covering a city grid.
// Demonstrates missing data (each user covers a few cells), the
// Theorem 4.9 feasibility analysis for choosing a noise level, and the
// weighted-vs-unweighted comparison under perturbation.
package main

import (
	"fmt"
	"log"
	"math"

	"pptd"
)

const (
	numUsers = 200
	numCells = 60
	coverage = 0.5 // fraction of cells each sensor visits
	lambda1  = 2.0 // sensor quality spread: variances ~ Exp(2)
	trials   = 5   // perturbation repetitions for the method comparison
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := pptd.NewRNG(2026)

	// 1. Simulate a city's PM2.5 field (true values 20-80 ug/m3) and a
	//    sparse sensor crowd.
	truthVals := make([]float64, numCells)
	for n := range truthVals {
		truthVals[n] = 20 + 60*rng.Float64()
	}
	b := pptd.NewDatasetBuilder(numUsers, numCells)
	for s := 0; s < numUsers; s++ {
		sigma := math.Sqrt(rng.Exp() / lambda1)
		sawAny := false
		for n, tv := range truthVals {
			if rng.Float64() < coverage || (s == numUsers-1 && !sawAny && n == numCells-1) {
				b.Add(s, n, tv+sigma*rng.Norm())
				sawAny = true
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Printf("crowd: %d sensors x %d grid cells, %d readings (%.0f%% coverage)\n",
		numUsers, numCells, ds.NumObservations(),
		100*float64(ds.NumObservations())/float64(numUsers*numCells))

	// 2. Theorem 4.9: is (alpha, beta)-utility compatible with the
	//    desired (eps, delta)-privacy at this crowd size?
	gamma, err := pptd.SensitivityGamma(0.5, 0.2)
	if err != nil {
		return err
	}
	const (
		alpha = 0.5 // acceptable aggregate shift in ug/m3
		beta  = 0.1
		eps   = 0.05 // strict: readings expose home/work locations
		delta = 0.3
	)
	tr, err := pptd.AnalyzeTradeoff(lambda1, alpha, beta, numUsers, eps, delta, gamma)
	if err != nil {
		return err
	}
	fmt.Printf("tradeoff: privacy needs c >= %.3f, utility allows c <= %.1f, feasible=%v\n",
		tr.CMin, tr.CMax, tr.Feasible)
	if !tr.Feasible {
		return fmt.Errorf("no noise level satisfies both targets; relax alpha/beta or eps/delta")
	}

	// 3. Use the privacy lower bound (least noise that meets epsilon).
	lambda2, err := pptd.Lambda2ForNoiseLevel(tr.CMin, lambda1)
	if err != nil {
		return err
	}
	mech, err := pptd.NewMechanism(lambda2)
	if err != nil {
		return err
	}
	fmt.Printf("mechanism: lambda2=%.3f, expected |noise|=%.3f ug/m3 per reading\n",
		lambda2, mech.ExpectedAbsNoise())

	// 4. Aggregate privately with CRH and with plain averaging; compare
	//    against the true field, averaged over several perturbation draws.
	crh, err := pptd.NewCRH()
	if err != nil {
		return err
	}
	for _, method := range []pptd.Method{crh, pptd.MeanBaseline()} {
		pipe, err := pptd.NewPipeline(mech, method)
		if err != nil {
			return err
		}
		var shift, mae float64
		for trial := 0; trial < trials; trial++ {
			outcome, err := pipe.Run(ds, rng.Split())
			if err != nil {
				return err
			}
			shift += outcome.UtilityMAE
			for n, tv := range truthVals {
				mae += math.Abs(outcome.Private.Truths[n] - tv)
			}
		}
		shift /= trials
		mae /= trials * numCells
		fmt.Printf("%-6s: aggregate shift %.3f | MAE vs true field %.3f ug/m3 (avg of %d runs)\n",
			method.Name(), shift, mae, trials)
	}
	fmt.Println("\nweighted truth discovery absorbs the privacy noise that plain averaging passes through.")
	return nil
}
