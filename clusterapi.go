package pptd

import (
	"pptd/internal/cluster"
	"pptd/internal/crowd"
)

// ClusterCoordinator fronts a sharded multi-node deployment: it serves
// the standard streaming wire API while routing each user's claims to
// the worker owning them on a consistent hash ring, and drives
// cluster-wide window closes with the merge-estimate protocol — so the
// published truths match a single-node engine over the same claims
// within 1e-9, per estimator. Build one directly with
// NewClusterCoordinator, or host it in a Node with
// WithClusterCoordinator.
type ClusterCoordinator = cluster.Coordinator

// ClusterCoordinatorConfig parameterizes NewClusterCoordinator.
type ClusterCoordinatorConfig = cluster.Config

// ClusterWorker is one shard node of a cluster: a streaming server for
// the users the ring assigns to it, the coordinator-facing close/commit
// RPCs, and an optional background segment shipper. Its window closes
// are driven by the coordinator. A Node becomes a worker with
// WithClusterWorker; NewClusterWorker builds one directly.
type ClusterWorker = cluster.Worker

// ClusterWorkerConfig parameterizes NewClusterWorker.
type ClusterWorkerConfig = cluster.WorkerConfig

// ClusterRing is the consistent hash ring assigning user IDs to
// workers: a pure function of the worker set, so coordinators agree
// across restarts and each user's privacy ledger stays on one worker.
type ClusterRing = cluster.Ring

// SegmentShipper replicates a durable node's state directory — sealed
// journal segments, the active segment's durable prefix, snapshots,
// results, spill file — to a SegmentSink in the background. A Node
// starts one with WithSegmentShipping.
type SegmentShipper = cluster.Shipper

// SegmentSink is the shipping destination: a local archive directory
// (NewSegmentDirSink) or a remote follower over HTTP
// (NewSegmentHTTPSink).
type SegmentSink = cluster.Sink

// ClusterFollower receives shipped segments over HTTP into a local
// directory that a fresh node can recover from (warm standby /
// point-in-time restore / read replica).
type ClusterFollower = cluster.Follower

// ErrClusterConfig reports an invalid cluster configuration.
var ErrClusterConfig = cluster.ErrBadConfig

// ErrWorkerUnavailable reports a cluster request that could not reach
// the worker owning the user (envelope code "worker_unavailable",
// HTTP 503). The message names the worker; retry after it recovers.
var ErrWorkerUnavailable = crowd.ErrWorkerUnavailable

// NewClusterCoordinator builds and boot-syncs a cluster coordinator:
// every worker is contacted, the shared engine configuration is
// cross-checked, and the cluster's window position is adopted. It fails
// with ErrWorkerUnavailable when a worker cannot be reached.
func NewClusterCoordinator(cfg ClusterCoordinatorConfig) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(cfg)
}

// NewClusterWorker builds a cluster worker node.
func NewClusterWorker(cfg ClusterWorkerConfig) (*ClusterWorker, error) {
	return cluster.NewWorker(cfg)
}

// ClusterFollowerOptions tunes a follower's ingress limits: the
// per-file body cap (413 beyond it) and an optional shared bearer
// token both follower routes then require (401 without it).
type ClusterFollowerOptions = cluster.FollowerOptions

// NewClusterFollower serves the follower catch-up endpoints over dir
// with default limits: a 512 MiB per-file cap, no authentication.
func NewClusterFollower(dir string) (*ClusterFollower, error) {
	return cluster.NewFollower(dir)
}

// NewClusterFollowerWith serves the follower catch-up endpoints over
// dir with explicit ingress limits.
func NewClusterFollowerWith(dir string, opts ClusterFollowerOptions) (*ClusterFollower, error) {
	return cluster.NewFollowerWith(dir, opts)
}

// NewSegmentDirSink ships into a local archive directory.
func NewSegmentDirSink(dir string) (*cluster.DirSink, error) {
	return cluster.NewDirSink(dir)
}

// NewSegmentHTTPSink ships to a ClusterFollower at baseURL. Chain
// WithAuthToken on the result when the follower requires one.
func NewSegmentHTTPSink(baseURL string) (*cluster.HTTPSink, error) {
	return cluster.NewHTTPSink(baseURL, nil)
}
