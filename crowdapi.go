package pptd

import "pptd/internal/crowd"

// CampaignServer is the untrusted aggregation server of the crowd sensing
// system: it publishes micro-tasks plus lambda2, collects perturbed
// submissions over HTTP/JSON, and aggregates with truth discovery.
type CampaignServer = crowd.Server

// CampaignServerConfig parameterizes NewCampaignServer.
type CampaignServerConfig = crowd.ServerConfig

// NewCampaignServer returns a campaign server.
func NewCampaignServer(cfg CampaignServerConfig) (*CampaignServer, error) {
	return crowd.NewServer(cfg)
}

// CampaignClient talks to a campaign server.
type CampaignClient = crowd.Client

// CampaignClientOption configures NewCampaignClient.
type CampaignClientOption = crowd.ClientOption

// NewCampaignClient returns a client for the server at baseURL.
func NewCampaignClient(baseURL string, opts ...CampaignClientOption) (*CampaignClient, error) {
	return crowd.NewClient(baseURL, opts...)
}

// CampaignInfo describes a sensing campaign.
type CampaignInfo = crowd.CampaignInfo

// CampaignClaim is one (object, value) report inside a submission.
type CampaignClaim = crowd.Claim

// CampaignSubmission is one user's batch of perturbed claims.
type CampaignSubmission = crowd.Submission

// CampaignResult is the aggregated output of a campaign.
type CampaignResult = crowd.ResultInfo

// CampaignHTTPError reports a non-2xx response from a campaign server;
// match it with errors.As to inspect the status code.
type CampaignHTTPError = crowd.HTTPError

// CampaignUser models a participant device holding original readings
// that never leave the device unperturbed.
type CampaignUser = crowd.User

// NewCampaignUser returns a user with the given original readings and
// device-local randomness.
func NewCampaignUser(id string, readings []CampaignClaim, rng *RNG) (*CampaignUser, error) {
	return crowd.NewUser(id, readings, rng)
}
