package pptd

import (
	"net/http"

	"pptd/internal/crowd"
)

// Client talks to a pptd node (or a standalone campaign server) over
// HTTP: the batch campaign, the streaming campaign, history reads, and
// stats all through one client. Non-2xx responses are decoded from the
// versioned error envelope into typed errors — errors.Is against
// ErrNotReady, ErrDuplicateWindow, ErrBudgetExhausted, ... and errors.As
// against *CampaignHTTPError both work on the same returned error.
type Client = crowd.Client

// ClientOption configures NewClient.
type ClientOption = crowd.ClientOption

// NewClient returns a client for the node (or standalone server) at
// baseURL, e.g. "http://localhost:8080".
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	return crowd.NewClient(baseURL, opts...)
}

// WithHTTPClient substitutes the client's underlying *http.Client
// (default: 10-second timeout).
func WithHTTPClient(hc *http.Client) ClientOption {
	return crowd.WithHTTPClient(hc)
}

// WithRequestID pins the X-Request-ID header sent on every request the
// client issues, correlating one logical operation (a CLI invocation, a
// driver run) across the node's request logs. By default each request
// carries a fresh random ID; either way the server echoes the ID on the
// response, and failures surface it via CampaignHTTPError.RequestID.
func WithRequestID(id string) ClientOption {
	return crowd.WithRequestID(id)
}

// Claim submission wire formats for WithClaimWire.
const (
	// WireJSON submits stream claims as the default JSON body.
	WireJSON = crowd.WireJSON
	// WireBinary submits stream claims as length-prefixed CRC32-checked
	// binary frames under Content-Type ContentTypeClaims — the zero-copy
	// ingest hot path (see docs/WIRE.md).
	WireBinary = crowd.WireBinary
)

// ContentTypeClaims is the Content-Type that negotiates the binary
// claim frame on POST /v1/stream/claims; any other value means JSON.
const ContentTypeClaims = crowd.ContentTypeClaims

// DefaultMaxRequestBytes is the per-route POST body cap applied when no
// WithMaxRequestBytes option (or CLI flag) overrides it.
const DefaultMaxRequestBytes = crowd.DefaultMaxRequestBytes

// WithClaimWire selects the wire format for stream claim submissions:
// WireJSON (default) or WireBinary. Receipts, window results, and
// error taxonomy are identical across formats; only the request
// encoding changes.
func WithClaimWire(wire string) ClientOption {
	return crowd.WithClaimWire(wire)
}

// EnvelopeDecodeError reports a non-2xx response whose body did not
// decode as the versioned error envelope — a proxy error page, a
// pre-envelope server, or a truncated response. It carries the HTTP
// status and the first bytes of the body for diagnosis.
type EnvelopeDecodeError = crowd.EnvelopeDecodeError

// Typed API errors, decoded from the wire envelope's code by Client.
// Match with errors.Is.
var (
	// ErrNotReady reports a result or truths fetch before anything was
	// published (envelope code "not_ready", HTTP 404).
	ErrNotReady = crowd.ErrNotReady
	// ErrUnknownWindow reports a ?window=N history read for a window that
	// never closed or was evicted from the bounded result ring (envelope
	// code "unknown_window", HTTP 404).
	ErrUnknownWindow = crowd.ErrUnknownWindow
	// ErrDuplicateClient reports a second batch submission from one
	// client ID (envelope code "duplicate_client", HTTP 409).
	ErrDuplicateClient = crowd.ErrDuplicateClient
	// ErrCampaignClosed reports a batch submission after aggregation
	// (envelope code "campaign_closed", HTTP 410).
	ErrCampaignClosed = crowd.ErrCampaignClosed
	// ErrBadSubmission reports a malformed submission (envelope code
	// "bad_request", HTTP 400).
	ErrBadSubmission = crowd.ErrBadSubmission
	// ErrPayloadTooLarge reports a POST body that exceeded the node's
	// request-body cap (envelope code "payload_too_large", HTTP 413).
	// Tune the cap with WithMaxRequestBytes.
	ErrPayloadTooLarge = crowd.ErrPayloadTooLarge
)

// CampaignServer is the untrusted aggregation server of the crowd sensing
// system: it publishes micro-tasks plus lambda2, collects perturbed
// submissions over HTTP/JSON, and aggregates with truth discovery.
type CampaignServer = crowd.Server

// CampaignServerConfig parameterizes NewCampaignServer.
type CampaignServerConfig = crowd.ServerConfig

// NewCampaignServer returns a campaign server.
//
// Deprecated: build a node instead — NewNode(WithBatchCampaign(n),
// WithLambda2(l2), ...) hosts the same server behind the unified front
// door with validated options.
func NewCampaignServer(cfg CampaignServerConfig) (*CampaignServer, error) {
	return crowd.NewServer(cfg)
}

// CampaignClient talks to a campaign server.
//
// Deprecated: use Client, the same type under the unified name.
type CampaignClient = crowd.Client

// CampaignClientOption configures NewCampaignClient.
//
// Deprecated: use ClientOption, the same type under the unified name.
type CampaignClientOption = crowd.ClientOption

// NewCampaignClient returns a client for the server at baseURL.
//
// Deprecated: use NewClient, which is the same call under the unified
// name.
func NewCampaignClient(baseURL string, opts ...CampaignClientOption) (*CampaignClient, error) {
	return crowd.NewClient(baseURL, opts...)
}

// CampaignInfo describes a sensing campaign.
type CampaignInfo = crowd.CampaignInfo

// CampaignClaim is one (object, value) report inside a submission.
type CampaignClaim = crowd.Claim

// CampaignSubmission is one user's batch of perturbed claims.
type CampaignSubmission = crowd.Submission

// CampaignResult is the aggregated output of a campaign.
type CampaignResult = crowd.ResultInfo

// CampaignHTTPError reports a non-2xx response from a campaign server:
// the HTTP status plus the decoded error envelope (stable Code, Message,
// RetryAfterWindows hint). Match it with errors.As to inspect the code;
// the same error also matches the typed sentinel for its code with
// errors.Is.
type CampaignHTTPError = crowd.HTTPError

// APIErrorBody is the versioned JSON error envelope every non-2xx
// response carries: {v, code, message, retry_after_windows?}. Clients
// normally never touch it — Client decodes it into typed errors — but
// non-Go consumers and tests can rely on its shape.
type APIErrorBody = crowd.ErrorBody

// CampaignUser models a participant device holding original readings
// that never leave the device unperturbed.
type CampaignUser = crowd.User

// NewCampaignUser returns a user with the given original readings and
// device-local randomness.
func NewCampaignUser(id string, readings []CampaignClaim, rng *RNG) (*CampaignUser, error) {
	return crowd.NewUser(id, readings, rng)
}
