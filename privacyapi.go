package pptd

import "pptd/internal/theory"

// TradeoffAnalysis captures the Theorem 4.9 feasibility interval of noise
// levels meeting both the utility and the privacy targets.
type TradeoffAnalysis = theory.Tradeoff

// AnalyzeTradeoff evaluates Theorem 4.9: it returns the privacy lower
// bound and utility upper bound on the noise level c for the given
// targets, and whether a feasible c exists. gamma comes from
// SensitivityGamma.
func AnalyzeTradeoff(lambda1, alpha, beta float64, numUsers int, eps, delta, gamma float64) (TradeoffAnalysis, error) {
	return theory.Analyze(lambda1, alpha, beta, numUsers, eps, delta, gamma)
}

// SensitivityGamma returns gamma = b*sqrt(2 ln(1/(1-eta))), the Lemma 4.7
// constant tying user sensitivity to the data-quality rate lambda1
// (Delta_s <= gamma/lambda1).
func SensitivityGamma(b, eta float64) (float64, error) { return theory.Gamma(b, eta) }

// NoiseLevelForEpsilon returns the Theorem 4.8 lower bound on the noise
// level c = lambda1/lambda2 required for (eps, delta)-local differential
// privacy.
func NoiseLevelForEpsilon(eps, delta, lambda1, gamma float64) (float64, error) {
	return theory.NoiseLevelForEpsilon(eps, delta, lambda1, gamma)
}

// EpsilonForNoiseLevel inverts NoiseLevelForEpsilon.
func EpsilonForNoiseLevel(c, delta, lambda1, gamma float64) (float64, error) {
	return theory.EpsilonForNoiseLevel(c, delta, lambda1, gamma)
}

// UtilityNoiseUpperBound returns the Theorem 4.3 cap on the noise level c
// under which (alpha, beta)-utility is guaranteed for S users.
func UtilityNoiseUpperBound(lambda1, alpha, beta float64, numUsers int) (float64, error) {
	return theory.UtilityNoiseUpperBound(lambda1, alpha, beta, numUsers)
}

// ExpectedAbsNoise returns the closed-form expected |noise| per reading
// injected by a mechanism with rate lambda2: 1/sqrt(2*lambda2).
func ExpectedAbsNoise(lambda2 float64) float64 { return theory.ExpectedAbsNoise(lambda2) }

// Lambda2ForNoiseLevel converts a noise level c into the mechanism rate
// lambda2 = lambda1/c.
func Lambda2ForNoiseLevel(c, lambda1 float64) (float64, error) {
	return theory.Lambda2ForNoiseLevel(c, lambda1)
}

// MinEpsilonForUtility solves the paper's Eq. (19): the strongest privacy
// (smallest epsilon) compatible with an (alpha, beta)-utility target for
// S users at the given delta.
func MinEpsilonForUtility(lambda1, alpha, beta float64, numUsers int, delta, gamma float64) (float64, error) {
	return theory.MinEpsilon(lambda1, alpha, beta, numUsers, delta, gamma)
}
