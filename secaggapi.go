package pptd

import (
	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/secagg"
)

// SecureAggregator runs pairwise-masking secure-sum rounds — the
// crypto-based alternative the paper argues is too expensive for crowd
// sensing scale. It is provided as a measurable baseline.
type SecureAggregator = secagg.Aggregator

// SecureCost records the communication footprint of a protocol run.
type SecureCost = secagg.Cost

// NewSecureAggregator sets up pairwise masking for numUsers users.
func NewSecureAggregator(numUsers int, rng *RNG) (*SecureAggregator, error) {
	return secagg.NewAggregator(numUsers, rng)
}

// SecureCRH runs CRH truth discovery over secure-sum rounds, returning
// the result and the exact protocol cost.
func SecureCRH(ds *Dataset, maxIterations int, tolerance float64, rng *randx.RNG) (*Result, SecureCost, error) {
	return secagg.SecureCRH(ds, maxIterations, tolerance, rng)
}

// PerturbationCost returns the communication footprint of the paper's
// mechanism for the same task: one upload of numObjects readings per
// user, no setup.
func PerturbationCost(numUsers, numObjects int) SecureCost {
	return secagg.PerturbationCost(numUsers, numObjects)
}

// PersonalizedMechanism extends the paper's mechanism to per-user
// privacy preferences: each user draws their noise variance from their
// own Exp(lambda2_s).
type PersonalizedMechanism = core.PersonalizedMechanism

// NewPersonalizedMechanism returns a mechanism where user s samples
// noise variances from Exp(rates[s]).
func NewPersonalizedMechanism(rates []float64) (*PersonalizedMechanism, error) {
	return core.NewPersonalizedMechanism(rates)
}
