// Benchmarks regenerating every figure of the paper's evaluation section
// (one benchmark per figure, exercising the same harness the pptdbench
// CLI runs) plus micro-benchmarks for the mechanism's moving parts and
// ablation benches for the design choices called out in DESIGN.md.
//
// Figure benches run the Quick variant of each experiment so `go test
// -bench=.` completes in minutes; the full sweeps are available through
// cmd/pptdbench.
package pptd_test

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pptd"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := pptd.RunExperiment(name, pptd.ExperimentOptions{
			Seed:  uint64(i + 1),
			Quick: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Figures) == 0 {
			b.Fatal("no figures produced")
		}
	}
}

// BenchmarkFig2TradeoffCRH regenerates Fig. 2: the utility-privacy
// trade-off on synthetic data with CRH (MAE and injected noise vs
// epsilon, one curve per delta).
func BenchmarkFig2TradeoffCRH(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3Lambda1 regenerates Fig. 3: the effect of the error
// distribution parameter lambda1 on utility and required noise.
func BenchmarkFig3Lambda1(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Users regenerates Fig. 4: the effect of the number of
// users S under a fixed mechanism.
func BenchmarkFig4Users(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5TradeoffGTM regenerates Fig. 5: the trade-off with GTM in
// place of CRH.
func BenchmarkFig5TradeoffGTM(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Floorplan regenerates Fig. 6: the trade-off on the
// simulated indoor-floorplan crowd sensing system.
func BenchmarkFig6Floorplan(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Weights regenerates Fig. 7: true vs estimated user weights
// on original and perturbed floorplan data.
func BenchmarkFig7Weights(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Efficiency regenerates Fig. 8: truth-discovery running
// time as a function of the injected noise level.
func BenchmarkFig8Efficiency(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkAblationMethods compares CRH/GTM/CATD against the unweighted
// mean/median baselines under the mechanism's noise (beyond the paper).
func BenchmarkAblationMethods(b *testing.B) { benchExperiment(b, "ablation-methods") }

// BenchmarkAblationAttack measures robustness to spammer, biased and
// colluding adversaries layered on the perturbation (beyond the paper).
func BenchmarkAblationAttack(b *testing.B) { benchExperiment(b, "ablation-attack") }

// BenchmarkTheoremA1 validates the c = 1 special case (Theorem A.1):
// the tail probability of the aggregate shift vanishes with S and is
// dominated by the analytic bound.
func BenchmarkTheoremA1(b *testing.B) { benchExperiment(b, "thmA1") }

// BenchmarkCategoricalExtension measures the categorical extension:
// weighted voting vs majority under k-ary randomized response.
func BenchmarkCategoricalExtension(b *testing.B) { benchExperiment(b, "ext-categorical") }

// BenchmarkAblationCost quantifies the paper's efficiency argument:
// one-shot perturbed uploads vs secure-aggregation rounds.
func BenchmarkAblationCost(b *testing.B) { benchExperiment(b, "ablation-cost") }

// --- Micro-benchmarks -----------------------------------------------

// benchDataset builds the paper-sized synthetic dataset once.
func benchDataset(b *testing.B) *pptd.Dataset {
	b.Helper()
	inst, err := pptd.GenerateSynthetic(pptd.DefaultSyntheticConfig(), pptd.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	return inst.Dataset
}

// BenchmarkPerturbDataset measures the mechanism's throughput on the
// paper-sized dataset (150 users x 30 objects): the client-side cost the
// paper argues is negligible.
func BenchmarkPerturbDataset(b *testing.B) {
	ds := benchDataset(b)
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		b.Fatal(err)
	}
	rng := pptd.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mech.PerturbDataset(ds, rng.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMethod measures one truth-discovery method on the paper-sized
// dataset.
func benchMethod(b *testing.B, method pptd.Method, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := method.Run(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRH measures CRH on the paper-sized dataset.
func BenchmarkCRH(b *testing.B) {
	m, err := pptd.NewCRH()
	benchMethod(b, m, err)
}

// BenchmarkGTM measures GTM on the paper-sized dataset.
func BenchmarkGTM(b *testing.B) {
	m, err := pptd.NewGTM()
	benchMethod(b, m, err)
}

// BenchmarkCATD measures CATD on the paper-sized dataset.
func BenchmarkCATD(b *testing.B) {
	m, err := pptd.NewCATD()
	benchMethod(b, m, err)
}

// BenchmarkMeanBaseline measures the unweighted mean baseline.
func BenchmarkMeanBaseline(b *testing.B) {
	benchMethod(b, pptd.MeanBaseline(), nil)
}

// BenchmarkCRHScalesWithObjects checks the linear-in-objects scaling the
// paper cites for truth discovery, at 150 users.
func BenchmarkCRHScalesWithObjects(b *testing.B) {
	for _, objects := range []int{30, 120, 480} {
		b.Run(sizeLabel(objects), func(b *testing.B) {
			cfg := pptd.DefaultSyntheticConfig()
			cfg.NumObjects = objects
			inst, err := pptd.GenerateSynthetic(cfg, pptd.NewRNG(3))
			if err != nil {
				b.Fatal(err)
			}
			method, err := pptd.NewCRH()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := method.Run(inst.Dataset); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccountant measures the epsilon <-> lambda2 conversions (pure
// closed forms; should be nanoseconds).
func BenchmarkAccountant(b *testing.B) {
	acct, err := pptd.NewAccountant(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech, err := acct.MechanismForEpsilon(0.5, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := acct.Epsilon(mech, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNGNorm measures the Gaussian sampler at the heart of the
// mechanism.
func BenchmarkRNGNorm(b *testing.B) {
	rng := pptd.NewRNG(4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += rng.Norm()
	}
	_ = sink
}

func sizeLabel(n int) string {
	return "objects-" + strconv.Itoa(n)
}

// --- Streaming benchmarks --------------------------------------------

// streamShardCounts are the shard layouts the ingest benchmark sweeps:
// serial, small, and one shard per available core.
func streamShardCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkStreamIngest measures claim ingestion throughput of the
// streaming engine at 1, 4 and GOMAXPROCS shards: concurrent submitters
// hand batches of 30 claims to the sharded workers.
func BenchmarkStreamIngest(b *testing.B) {
	const claimsPerBatch = 30
	for _, shards := range streamShardCounts() {
		b.Run("shards-"+strconv.Itoa(shards), func(b *testing.B) {
			eng, err := pptd.NewStreamEngine(pptd.StreamConfig{
				NumObjects: claimsPerBatch,
				NumShards:  shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := eng.Close(); err != nil {
					b.Error(err)
				}
			}()
			var nextUser atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				seq := nextUser.Add(1)
				id := "bench-user-" + strconv.FormatInt(seq, 10)
				rng := pptd.NewRNG(uint64(seq))
				claims := make([]pptd.StreamClaim, claimsPerBatch)
				for pb.Next() {
					for n := range claims {
						claims[n] = pptd.StreamClaim{Object: n, Value: rng.Norm()}
					}
					if _, _, err := eng.Ingest(id, claims); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*claimsPerBatch/elapsed, "claims/s")
			}
		})
	}
}

// BenchmarkStreamCloseWindow measures per-window re-estimation latency
// on paper-sized statistics (150 users x 30 objects), cold-started each
// window so every iteration does the full estimation.
func BenchmarkStreamCloseWindow(b *testing.B) {
	for _, shards := range streamShardCounts() {
		b.Run("shards-"+strconv.Itoa(shards), func(b *testing.B) {
			eng, err := pptd.NewStreamEngine(pptd.StreamConfig{
				NumObjects:       30,
				NumShards:        shards,
				DisableCarryover: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := eng.Close(); err != nil {
					b.Error(err)
				}
			}()
			rng := pptd.NewRNG(8)
			claims := make([]pptd.StreamClaim, 30)
			for s := 0; s < 150; s++ {
				for n := range claims {
					claims[n] = pptd.StreamClaim{Object: n, Value: 5*float64(n%7) + rng.Norm()}
				}
				if _, _, err := eng.Ingest("user-"+strconv.Itoa(s), claims); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CloseWindow(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurnIngest measures ingest under unbounded ID churn with a
// bounded resident set: every submission arrives from a brand-new user,
// windows close periodically, and the residency cap forces idle users
// out to the spill store at each close. The benchmark asserts the
// memory-bound contract — after every window close the engine's
// resident-users gauge is at or under the cap, no matter how many
// distinct IDs have streamed past. Set BENCH_CHURN_OUT=<path> to emit a
// BENCH_churn.json artifact alongside pptdstream's
// BENCH_stream_ingest.json.
func BenchmarkChurnIngest(b *testing.B) {
	const (
		claimsPerBatch = 10
		residentCap    = 64
		windowEvery    = 256
	)
	store, err := pptd.OpenStreamStoreWith(b.TempDir(), pptd.StreamStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := store.Close(); err != nil {
			b.Error(err)
		}
	}()
	eng, err := pptd.NewStreamEngine(pptd.StreamConfig{
		NumObjects: claimsPerBatch,
		NumShards:  4,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
		// One decay pass erases a departed user's sufficient statistics,
		// so every user is evictable at the close after its last claim —
		// the steady state of a true churn workload.
		Decay:            1e-12,
		Ledger:           store,
		UserStore:        store,
		MaxResidentUsers: residentCap,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			b.Error(err)
		}
	}()

	rng := pptd.NewRNG(1)
	claims := make([]pptd.StreamClaim, claimsPerBatch)
	var windows, maxResident int
	open := 0
	closeNow := func() {
		if _, err := eng.CloseWindow(); err != nil {
			b.Fatal(err)
		}
		windows++
		open = 0
		if got := eng.ResidentUsers(); got > residentCap {
			b.Fatalf("resident users after close = %d, cap = %d: churn is unbounding memory", got, residentCap)
		} else if got > maxResident {
			maxResident = got
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := range claims {
			claims[n] = pptd.StreamClaim{Object: n, Value: rng.Norm()}
		}
		id := "churn-" + strconv.Itoa(i)
		if _, _, err := eng.Ingest(id, claims); err != nil {
			b.Fatal(err)
		}
		open++
		if open == windowEvery {
			closeNow()
		}
	}
	if open > 0 {
		closeNow()
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*claimsPerBatch/elapsed, "claims/s")
	}
	b.ReportMetric(float64(maxResident), "max-resident")
	if path := os.Getenv("BENCH_CHURN_OUT"); path != "" {
		rep := map[string]any{
			"name":      "churn_ingest",
			"timestamp": time.Now().UTC().Format(time.RFC3339),
			"config": map[string]any{
				"claimsPerBatch":   claimsPerBatch,
				"maxResidentUsers": residentCap,
				"windowEvery":      windowEvery,
				"shards":           4,
			},
			"distinctUsers":      b.N,
			"windows":            windows,
			"maxResidentUsers":   maxResident,
			"residentUsersFinal": eng.ResidentUsers(),
			"elapsedSeconds":     elapsed,
			"claimsPerSecond":    float64(b.N) * claimsPerBatch / elapsed,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConvergence sweeps the convergence threshold on
// original vs perturbed data (the paper's Section 5.3 runtime knob).
func BenchmarkAblationConvergence(b *testing.B) { benchExperiment(b, "ablation-convergence") }

// BenchmarkDurableIngest measures the durable ingest path — every
// submission's privacy charge and claims fsync'd to the ledger journal
// before the ack — at several concurrency levels, comparing one fsync
// per append (MaxBatch 1, the pre-group-commit behavior) against group
// commit (concurrent appends coalesce into shared write+fsync batches).
// Group commit is the whole point of the durable-path redesign: at
// concurrency >= 8 it should multiply throughput, because the fsync
// amortizes over every submission in flight instead of serializing
// them. The syncs/op metric shows the amortization directly.
func BenchmarkDurableIngest(b *testing.B) {
	const claimsPerBatch = 10
	modes := []struct {
		name string
		opts pptd.StreamStoreOptions
	}{
		{"per-append-fsync", pptd.StreamStoreOptions{MaxBatch: 1}},
		{"group-commit", pptd.StreamStoreOptions{}},
	}
	for _, mode := range modes {
		for _, conc := range []int{1, 4, 8, 16} {
			b.Run(mode.name+"/conc-"+strconv.Itoa(conc), func(b *testing.B) {
				store, err := pptd.OpenStreamStoreWith(b.TempDir(), mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := store.Close(); err != nil {
						b.Error(err)
					}
				}()
				eng, err := pptd.NewStreamEngine(pptd.StreamConfig{
					NumObjects: claimsPerBatch,
					NumShards:  4,
					Lambda1:    1.5,
					Lambda2:    2,
					Delta:      0.3,
					Ledger:     store,
					ClaimWAL:   true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := eng.Close(); err != nil {
						b.Error(err)
					}
				}()
				// Accounting admits one submission per user per window, so
				// every iteration submits as a fresh user: the measured op
				// is charge + durable journal append + shard hand-off.
				var next atomic.Int64
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < conc; w++ {
					wg.Add(1)
					go func(worker int) {
						defer wg.Done()
						rng := pptd.NewRNG(uint64(worker + 1))
						claims := make([]pptd.StreamClaim, claimsPerBatch)
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							for n := range claims {
								claims[n] = pptd.StreamClaim{Object: n, Value: rng.Norm()}
							}
							id := "bench-" + strconv.FormatInt(i, 10)
							if _, _, err := eng.Ingest(id, claims); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed, "submissions/s")
					b.ReportMetric(float64(b.N)*claimsPerBatch/elapsed, "claims/s")
				}
				if b.N > 0 {
					b.ReportMetric(float64(store.JournalSyncs())/float64(b.N), "syncs/op")
				}
			})
		}
	}
}
