package pptd

import (
	"pptd/internal/floorplan"
	"pptd/internal/synthetic"
)

// SyntheticConfig parameterizes the Section 5.1 synthetic-crowd generator.
type SyntheticConfig = synthetic.Config

// SyntheticInstance is one generated synthetic crowd-sensing task.
type SyntheticInstance = synthetic.Instance

// DefaultSyntheticConfig returns the paper's synthetic setup: 150 users,
// 30 objects, lambda1 = 1, dense observations.
func DefaultSyntheticConfig() SyntheticConfig { return synthetic.Default() }

// GenerateSynthetic draws a synthetic instance.
func GenerateSynthetic(cfg SyntheticConfig, rng *RNG) (*SyntheticInstance, error) {
	return synthetic.Generate(cfg, rng)
}

// FloorplanConfig parameterizes the Section 5.2 indoor-floorplan
// simulator (the paper's real crowd sensing application).
type FloorplanConfig = floorplan.Config

// FloorplanInstance is one simulated floorplan deployment.
type FloorplanInstance = floorplan.Instance

// DefaultFloorplanConfig returns a deployment shaped like the paper's:
// 247 users, 129 hallway segments.
func DefaultFloorplanConfig() FloorplanConfig { return floorplan.Default() }

// GenerateFloorplan draws a floorplan deployment.
func GenerateFloorplan(cfg FloorplanConfig, rng *RNG) (*FloorplanInstance, error) {
	return floorplan.Generate(cfg, rng)
}
