package pptd_test

import (
	"fmt"

	"pptd"
)

// ExampleAccountant shows the privacy accounting round trip: pick a
// privacy target, derive the mechanism, and read the guarantee back.
func ExampleAccountant() {
	acct, err := pptd.NewAccountant(1, pptd.WithSensitivityTail(0.5, 0.2))
	if err != nil {
		fmt.Println(err)
		return
	}
	mech, err := acct.MechanismForEpsilon(0.5, 0.3)
	if err != nil {
		fmt.Println(err)
		return
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("epsilon round trip: %.2f\n", eps)
	fmt.Printf("expected |noise| per reading: %.3f\n", mech.ExpectedAbsNoise())
	// Output:
	// epsilon round trip: 0.50
	// expected |noise| per reading: 0.395
}

// ExampleNewCRH runs plain truth discovery on a tiny dataset: the two
// agreeing users out-vote the outlier.
func ExampleNewCRH() {
	ds, err := pptd.DatasetFromDense([][]float64{
		{10.0, 20.0},
		{10.2, 19.8},
		{15.0, 30.0}, // outlier
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	crh, err := pptd.NewCRH()
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := crh.Run(ds)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("truth for object 0 is near 10: %v\n", res.Truths[0] < 11)
	fmt.Printf("outlier has the lowest weight: %v\n",
		res.Weights[2] < res.Weights[0] && res.Weights[2] < res.Weights[1])
	// Output:
	// truth for object 0 is near 10: true
	// outlier has the lowest weight: true
}

// ExampleAnalyzeTradeoff evaluates Theorem 4.9: does any noise level
// satisfy both the utility and the privacy targets?
func ExampleAnalyzeTradeoff() {
	gamma, err := pptd.SensitivityGamma(0.5, 0.2)
	if err != nil {
		fmt.Println(err)
		return
	}
	tr, err := pptd.AnalyzeTradeoff(1 /* lambda1 */, 0.5 /* alpha */, 0.1, /* beta */
		200 /* users */, 0.5 /* eps */, 0.3 /* delta */, gamma)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("feasible: %v\n", tr.Feasible)
	fmt.Printf("privacy floor below utility cap: %v\n", tr.CMin < tr.CMax)
	// Output:
	// feasible: true
	// privacy floor below utility cap: true
}

// ExampleNewRandomizedResponse shows the categorical extension's keep
// probability at a given epsilon.
func ExampleNewRandomizedResponse() {
	rr, err := pptd.NewRandomizedResponse(1.0986122886681098 /* ln 3 */, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("keep probability: %.2f\n", rr.KeepProbability())
	// Output:
	// keep probability: 0.60
}
