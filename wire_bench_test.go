package pptd_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"pptd"
)

// BenchmarkStreamSubmitWire measures end-to-end claim submission over a
// real HTTP boundary at concurrency 16 for each wire format. The
// acceptance bar for the binary frame is >=1.5x the JSON wire's
// submissions/s on this benchmark:
//
//	go test -run - -bench BenchmarkStreamSubmitWire -benchtime 2s .
//
// The engine runs without privacy accounting so devices can resubmit
// within one window (accounting would reject the repeats by design, and
// the wire cost under test is identical either way).
func BenchmarkStreamSubmitWire(b *testing.B) {
	for _, wire := range []string{pptd.WireJSON, pptd.WireBinary} {
		b.Run(wire, func(b *testing.B) {
			n, err := pptd.NewNode(
				pptd.WithName("wire-bench"),
				pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 32, NumShards: 4}),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = n.Close() }()
			ts := httptest.NewServer(n.Handler())
			defer ts.Close()

			ctx := context.Background()
			var subs [16]pptd.CampaignSubmission
			for i := range subs {
				subs[i].ClientID = fmt.Sprintf("device-%02d", i)
				for o := 0; o < 32; o++ {
					subs[i].Claims = append(subs[i].Claims, pptd.CampaignClaim{
						Object: o, Value: float64(o) + 0.25*float64(i),
					})
				}
			}
			var seq atomic.Int32
			// RunParallel spawns parallelism*GOMAXPROCS goroutines; aim for
			// 16 concurrent submitters total.
			par := 16 / runtime.GOMAXPROCS(0)
			if par < 1 {
				par = 1
			}
			b.SetParallelism(par)

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// One client (and one keep-alive connection pool) per
				// submitter goroutine, like a fleet of devices.
				client, err := pptd.NewClient(ts.URL, pptd.WithClaimWire(wire))
				if err != nil {
					b.Fatal(err)
				}
				sub := subs[int(seq.Add(1))%len(subs)]
				for pb.Next() {
					if _, err := client.StreamSubmit(ctx, sub); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
