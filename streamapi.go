package pptd

import (
	"pptd/internal/crowd"
	"pptd/internal/stream"
)

// StreamEngine is the sharded streaming truth-discovery engine: claims
// ingest concurrently into hash-partitioned worker shards, fold into
// exponentially-decayed sufficient statistics per (object, user), and
// each window close re-estimates truths and weights incrementally with
// carryover of user weights and cumulative (epsilon, delta) accounting.
type StreamEngine = stream.Engine

// StreamConfig parameterizes NewStreamEngine.
type StreamConfig = stream.Config

// StreamClaim is one perturbed (object, value) report in a stream.
type StreamClaim = stream.Claim

// StreamWindowResult is the estimate published when a window closes.
type StreamWindowResult = stream.WindowResult

// StreamPrivacyReport summarizes cumulative per-user privacy spending at
// a window boundary.
type StreamPrivacyReport = stream.PrivacyReport

// NewStreamEngine starts a streaming engine; Close it to stop the shard
// workers.
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) { return stream.New(cfg) }

// Streaming sentinel errors, matchable with errors.Is.
var (
	// ErrStreamBudgetExhausted reports a submission from a user whose
	// cumulative privacy budget would be exceeded.
	ErrStreamBudgetExhausted = stream.ErrBudgetExhausted
	// ErrStreamDuplicateWindow reports a second submission from the same
	// user into one open window while privacy accounting is enabled: the
	// per-window epsilon pays for exactly one perturbed release.
	ErrStreamDuplicateWindow = stream.ErrDuplicateWindow
	// ErrStreamEmptyWindow reports a window close before any claim
	// arrived.
	ErrStreamEmptyWindow = stream.ErrEmptyWindow
	// ErrStreamSameWindow reports a CampaignUser.ParticipateStream call
	// before the server's window advanced past the user's last
	// submission; the helper refuses before perturbing so no second
	// noisy release of the window leaves the device.
	ErrStreamSameWindow = crowd.ErrSameWindow
)

// StreamCampaignServer serves a streaming sensing campaign over HTTP:
// batched perturbed claims in, live per-window truth snapshots out, with
// per-user cumulative privacy budgets tracked and enforced.
type StreamCampaignServer = crowd.StreamServer

// StreamCampaignServerConfig parameterizes NewStreamCampaignServer.
type StreamCampaignServerConfig = crowd.StreamServerConfig

// NewStreamCampaignServer returns a streaming campaign server; Close it
// to stop the engine's shard workers.
func NewStreamCampaignServer(cfg StreamCampaignServerConfig) (*StreamCampaignServer, error) {
	return crowd.NewStreamServer(cfg)
}

// StreamCampaignInfo describes a streaming campaign.
type StreamCampaignInfo = crowd.StreamCampaignInfo

// StreamReceipt acknowledges one ingested claim batch.
type StreamReceipt = crowd.StreamReceipt

// StreamWindowInfo is one closed window's estimate on the wire.
type StreamWindowInfo = crowd.StreamWindowInfo
