package pptd

import (
	"pptd/internal/crowd"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// StreamEngine is the sharded streaming truth-discovery engine: claims
// ingest concurrently into hash-partitioned worker shards, fold into
// exponentially-decayed sufficient statistics per (object, user), and
// each window close re-estimates truths and weights incrementally with
// the configured estimator (CRH, GTM, or CATD — see
// StreamConfig.Estimator), warm-started from the previous window and
// with cumulative (epsilon, delta) accounting.
type StreamEngine = stream.Engine

// Streaming estimator names, accepted in StreamConfig.Estimator and
// recorded in snapshots and wire metadata. Each is the incremental
// counterpart of the batch Method of the same name, matching it within
// 1e-9 on a closed undecayed window.
const (
	// StreamEstimatorCRH runs incremental CRH (the default).
	StreamEstimatorCRH = stream.EstimatorCRH
	// StreamEstimatorGTM runs incremental GTM, carrying learned per-user
	// variances across windows (persisted in snapshots).
	StreamEstimatorGTM = stream.EstimatorGTM
	// StreamEstimatorCATD runs incremental CATD.
	StreamEstimatorCATD = stream.EstimatorCATD
)

// StreamConfig parameterizes NewStreamEngine.
type StreamConfig = stream.Config

// StreamClaim is one perturbed (object, value) report in a stream.
type StreamClaim = stream.Claim

// StreamWindowResult is the estimate published when a window closes.
type StreamWindowResult = stream.WindowResult

// StreamPrivacyReport summarizes cumulative per-user privacy spending at
// a window boundary.
type StreamPrivacyReport = stream.PrivacyReport

// NewStreamEngine starts a streaming engine; Close it to stop the shard
// workers. (Embedding applications that drive windows themselves use the
// engine directly; HTTP deployments build a Node instead.)
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) { return stream.New(cfg) }

// DefaultStreamHistoryWindows is the published-result ring capacity a
// stream engine (and a node's persisted result history) defaults to:
// the last 8 closed windows stay answerable by GET
// /v1/stream/truths?window=N.
const DefaultStreamHistoryWindows = stream.DefaultHistoryWindows

// Streaming sentinel errors, matchable with errors.Is. Client decodes
// wire envelopes into the same sentinels.
var (
	// ErrBudgetExhausted reports a submission from a user whose
	// cumulative privacy budget would be exceeded (envelope code
	// "budget_exhausted", HTTP 429).
	ErrBudgetExhausted = stream.ErrBudgetExhausted
	// ErrDuplicateWindow reports a second submission from the same user
	// into one open window while privacy accounting is enabled: the
	// per-window epsilon pays for exactly one perturbed release (envelope
	// code "duplicate_window", HTTP 409, retry_after_windows = 1).
	ErrDuplicateWindow = stream.ErrDuplicateWindow
	// ErrEmptyWindow reports a window close before any claim arrived
	// (envelope code "empty_window", HTTP 409).
	ErrEmptyWindow = stream.ErrEmptyWindow
	// ErrSameWindow reports a CampaignUser.ParticipateStream call before
	// the server's window advanced past the user's last submission; the
	// helper refuses before perturbing so no second noisy release of the
	// window leaves the device.
	ErrSameWindow = crowd.ErrSameWindow
	// ErrLedger reports a submission rejected because its privacy ledger
	// record could not be made durable; the in-memory charge was rolled
	// back.
	ErrLedger = stream.ErrLedger
	// ErrBadState reports an engine state that cannot be restored.
	ErrBadState = stream.ErrBadState
	// ErrStreamEstimatorMismatch reports a restore of engine state
	// written by a different estimator than the engine is configured
	// for: per-estimator internal state (like GTM's learned variances)
	// is not interchangeable, so recovery refuses instead of silently
	// reinterpreting the snapshot. Restore with the matching estimator
	// (or discard the state directory) to proceed.
	ErrStreamEstimatorMismatch = stream.ErrEstimatorMismatch
	// ErrCorruptSnapshot reports a persisted snapshot that fails its
	// integrity check (on-disk damage, not a crash artifact).
	ErrCorruptSnapshot = streamstore.ErrCorruptSnapshot
	// ErrCorruptResult reports a persisted window result that fails its
	// integrity check; deleting result.json clears it at the cost of
	// serving no estimate until the next window close.
	ErrCorruptResult = streamstore.ErrCorruptResult
)

// Deprecated aliases of the sentinels above, kept so pre-Node code
// compiles unchanged. Each matches errors.Is identically to its
// replacement (they are the same value).
var (
	// Deprecated: use ErrBudgetExhausted.
	ErrStreamBudgetExhausted = stream.ErrBudgetExhausted
	// Deprecated: use ErrDuplicateWindow.
	ErrStreamDuplicateWindow = stream.ErrDuplicateWindow
	// Deprecated: use ErrEmptyWindow.
	ErrStreamEmptyWindow = stream.ErrEmptyWindow
	// Deprecated: use ErrSameWindow.
	ErrStreamSameWindow = crowd.ErrSameWindow
	// Deprecated: use ErrNotReady.
	ErrStreamNotReady = crowd.ErrNotReady
	// Deprecated: use ErrLedger.
	ErrStreamLedger = stream.ErrLedger
	// Deprecated: use ErrBadState.
	ErrStreamBadState = stream.ErrBadState
	// Deprecated: use ErrCorruptSnapshot.
	ErrStreamCorruptSnapshot = streamstore.ErrCorruptSnapshot
	// Deprecated: use ErrCorruptResult.
	ErrStreamCorruptResult = streamstore.ErrCorruptResult
)

// StreamEngineState is a point-in-time export of a streaming engine —
// window counter, per-user carry weights and budgets, and the decayed
// sufficient statistics — produced by StreamEngine.ExportState and
// loaded back with StreamEngine.Restore.
type StreamEngineState = stream.EngineState

// StreamChargeRecord is one privacy-ledger entry: a (user, window,
// epsilon) charge journaled before the submission is acknowledged.
type StreamChargeRecord = stream.ChargeRecord

// StreamLedger is the durable privacy-ledger interface the engine
// appends to before acknowledging a charged submission.
type StreamLedger = stream.Ledger

// StreamStore is the durable state directory for a streaming engine: an
// fsync'd append-only journal of rolling segment files (privacy
// charges, and claims when the claim WAL is on) with group-committed
// concurrent appends, plus atomically-replaced, checksummed engine
// snapshots and the last published window result. Snapshots compact the
// journal by deleting fully-covered sealed segments — O(segments), no
// rewrite. It implements StreamLedger and plugs into
// StreamCampaignServerConfig.Persistence; StreamStore.Recover rebuilds
// a fresh engine from everything persisted. Pre-segmentation state
// directories (a single ledger.journal) migrate automatically on open.
type StreamStore = streamstore.Store

// StreamStoreOptions tunes a stream store's durability/throughput
// trade-offs: group-commit batching (FlushInterval, MaxBatch), journal
// segment size (SegmentBytes), snapshot cadence (SnapshotEvery,
// SnapshotBytes), and retained snapshot generations (RetainSnapshots).
// The zero value is the default: group commit with no added latency,
// 4 MiB segments, a snapshot at every window close, no retained
// generations.
type StreamStoreOptions = streamstore.Options

// StreamJournalPos identifies a point in a stream store's segmented
// journal (segment sequence number, byte offset within it). Snapshots
// record the position their export covers; compaction deletes the
// sealed segments before it and recovery skips the covered prefix of
// the boundary segment.
type StreamJournalPos = streamstore.JournalPos

// StreamStoreStats is a point-in-time snapshot of a store's
// observability counters: journal appends/syncs/bytes, snapshot and
// result counts, and the group-commit batch-size and flush-latency
// histograms (GET /v1/stream/stats serves it on a durable node).
type StreamStoreStats = streamstore.StoreStats

// StreamHistogram is the fixed-bucket counting histogram inside
// StreamStoreStats.
type StreamHistogram = streamstore.Histogram

// OpenStreamStore creates or reopens a streaming state directory with
// default options, repairing any torn journal tail left by a crash.
// Close it after the server using it has been closed.
//
// Deprecated: build a node instead — NewNode(WithStreamEngine(n),
// WithPersistence(dir)) opens and owns the store for you; keep
// OpenStreamStore for embedding a store without a node.
func OpenStreamStore(dir string) (*StreamStore, error) { return streamstore.Open(dir) }

// OpenStreamStoreWith is OpenStreamStore with explicit
// StreamStoreOptions.
//
// Deprecated: build a node instead — NewNode(WithStreamEngine(n),
// WithPersistence(dir, WithGroupCommit(...), WithSnapshotEvery(...)))
// carries the same knobs as validated options.
func OpenStreamStoreWith(dir string, opts StreamStoreOptions) (*StreamStore, error) {
	return streamstore.OpenWith(dir, opts)
}

// StreamCampaignServer serves a streaming sensing campaign over HTTP:
// batched perturbed claims in, live per-window truth snapshots out, with
// per-user cumulative privacy budgets tracked and enforced.
type StreamCampaignServer = crowd.StreamServer

// StreamCampaignServerConfig parameterizes NewStreamCampaignServer.
type StreamCampaignServerConfig = crowd.StreamServerConfig

// NewStreamCampaignServer returns a streaming campaign server; Close it
// to stop the engine's shard workers.
//
// Deprecated: build a node instead — NewNode(WithStreamEngine(n), ...)
// hosts the same server behind the unified front door with validated
// options, and Node.Stream() exposes it for embedding.
func NewStreamCampaignServer(cfg StreamCampaignServerConfig) (*StreamCampaignServer, error) {
	return crowd.NewStreamServer(cfg)
}

// StreamStatsInfo is the GET /v1/stream/stats response: engine totals,
// result-history bounds, and the store's StreamStoreStats on a durable
// node.
type StreamStatsInfo = crowd.StreamStatsInfo

// StreamCampaignInfo describes a streaming campaign.
type StreamCampaignInfo = crowd.StreamCampaignInfo

// StreamReceipt acknowledges one ingested claim batch.
type StreamReceipt = crowd.StreamReceipt

// StreamWindowInfo is one closed window's estimate on the wire.
type StreamWindowInfo = crowd.StreamWindowInfo
