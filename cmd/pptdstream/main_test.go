package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pptd"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-users", "0"}, &buf); err == nil {
		t.Error("zero users accepted")
	}
	if err := run([]string{"-windows", "0"}, &buf); err == nil {
		t.Error("zero windows accepted")
	}
	if err := run([]string{"-objects", "-1"}, &buf); err == nil {
		t.Error("negative objects accepted")
	}
}

// TestRunStreamsEndToEnd drives a small streaming campaign through the
// in-process server and checks the per-window report came out.
func TestRunStreamsEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-users", "12", "-objects", "6", "-windows", "3",
		"-shards", "2", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"streaming campaign",
		"privacy: epsilon=",
		"stream done: 3 windows,",
		"cumulative privacy: max per-user epsilon",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunEnforcesBudget streams more windows than the budget affords and
// expects refusals instead of failures.
func TestRunEnforcesBudget(t *testing.T) {
	// Compute the per-window epsilon at the CLI's default parameters and
	// grant a budget that affords exactly one window, so later windows
	// must see refused submissions.
	acct, err := pptd.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{
		"-users", "8", "-objects", "4", "-windows", "3",
		"-budget", fmt.Sprintf("%f", 1.5*eps), "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, " 0 submissions refused by budget") {
		t.Errorf("expected refusals under a one-window budget:\n%s", out)
	}
}

// TestRunBudgetBelowOneWindow starves the whole fleet from the first
// window: the driver must report the refusals, not fail on the empty
// window close.
func TestRunBudgetBelowOneWindow(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-users", "5", "-objects", "3", "-windows", "2",
		"-budget", "0.0001", "-seed", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no window ever closed") {
		t.Errorf("missing all-refused summary:\n%s", buf.String())
	}
}

// TestRunStateDirPersistsBudgets runs the driver twice against the same
// state directory: the fleet's cumulative epsilon must carry over, so a
// budget that afforded the first run's windows refuses the rerun's
// submissions entirely.
func TestRunStateDirPersistsBudgets(t *testing.T) {
	acct, err := pptd.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{
		"-users", "8", "-objects", "4", "-windows", "2",
		"-budget", fmt.Sprintf("%f", 2.5*eps), // affords exactly two windows
		"-seed", "9", "-state-dir", dir,
	}

	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "stream done: 2 windows") ||
		!strings.Contains(first.String(), " 0 submissions refused by budget") {
		t.Fatalf("first run:\n%s", first.String())
	}

	// Same fleet, same directory: every device is already at the cap, so
	// all 8*2 submissions must be refused — the restart did not hand the
	// budget back. Window numbering continues from the recovered state.
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "16 submissions refused by budget") {
		t.Fatalf("second run did not refuse the exhausted fleet:\n%s", out)
	}
	if !strings.Contains(out, "stream done: 4 windows") {
		t.Fatalf("second run did not resume the window counter:\n%s", out)
	}
}

// TestRunDurabilityFlags drives the in-process server with the
// group-commit and snapshot-cadence knobs set: the run must complete
// and the rerun must resume from the recovered state (the claim WAL
// plus every-other-window snapshots cover all windows between them).
func TestRunDurabilityFlags(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-users", "6", "-objects", "4", "-windows", "3", "-seed", "5",
		"-state-dir", dir,
		"-snapshot-every", "2", "-retain-snapshots", "1",
		"-commit-interval", "1ms", "-commit-batch", "8",
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "stream done: 3 windows") {
		t.Fatalf("first run:\n%s", first.String())
	}
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "stream done: 6 windows") {
		t.Fatalf("second run did not resume the recovered window counter:\n%s", second.String())
	}
}

// TestRunRejectsStateDirWithExternalAddr checks the flag guard.
func TestRunRejectsStateDirWithExternalAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "http://example.invalid", "-state-dir", t.TempDir()}, &buf); err == nil {
		t.Error("external -addr with -state-dir accepted")
	}
}
