package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pptd"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-users", "0"}, &buf); err == nil {
		t.Error("zero users accepted")
	}
	if err := run([]string{"-windows", "0"}, &buf); err == nil {
		t.Error("zero windows accepted")
	}
	if err := run([]string{"-objects", "-1"}, &buf); err == nil {
		t.Error("negative objects accepted")
	}
}

// TestRunStreamsEndToEnd drives a small streaming campaign through the
// in-process server and checks the per-window report came out.
func TestRunStreamsEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-users", "12", "-objects", "6", "-windows", "3",
		"-shards", "2", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"streaming campaign",
		"privacy: epsilon=",
		"stream done: 3 windows,",
		"cumulative privacy: max per-user epsilon",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunEnforcesBudget streams more windows than the budget affords and
// expects refusals instead of failures.
func TestRunEnforcesBudget(t *testing.T) {
	// Compute the per-window epsilon at the CLI's default parameters and
	// grant a budget that affords exactly one window, so later windows
	// must see refused submissions.
	acct, err := pptd.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{
		"-users", "8", "-objects", "4", "-windows", "3",
		"-budget", fmt.Sprintf("%f", 1.5*eps), "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, " 0 submissions refused by budget") {
		t.Errorf("expected refusals under a one-window budget:\n%s", out)
	}
}

// TestRunWritesBenchAndMetricsArtifacts exercises the observability
// flags: -bench-out must produce a parseable BENCH_*.json with coherent
// counts and latency quantiles, and -metrics-out must dump the server's
// Prometheus exposition with the key ingest series.
func TestRunWritesBenchAndMetricsArtifacts(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_stream_ingest.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	err := run([]string{
		"-users", "8", "-objects", "4", "-windows", "2",
		"-shards", "2", "-seed", "7", "-request-id", "ci-run",
		"-bench-out", benchPath, "-metrics-out", metricsPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench artifact does not parse: %v\n%s", err, raw)
	}
	if rep.Name != "stream_ingest" {
		t.Errorf("Name = %q, want stream_ingest", rep.Name)
	}
	if rep.Submissions != 16 { // 8 users x 2 windows
		t.Errorf("Submissions = %d, want 16", rep.Submissions)
	}
	if rep.Claims != 64 { // 4 objects per submission
		t.Errorf("Claims = %d, want 64", rep.Claims)
	}
	if rep.ClaimsPerSecond <= 0 || rep.IngestSeconds <= 0 {
		t.Errorf("throughput not recorded: claims/s = %v over %vs",
			rep.ClaimsPerSecond, rep.IngestSeconds)
	}
	if rep.SubmitLatency.Count != rep.Submissions {
		t.Errorf("SubmitLatency.Count = %d, want %d", rep.SubmitLatency.Count, rep.Submissions)
	}
	if rep.WindowCloseLatency.Count != 2 {
		t.Errorf("WindowCloseLatency.Count = %d, want 2", rep.WindowCloseLatency.Count)
	}
	for _, l := range []BenchLatency{rep.SubmitLatency, rep.WindowCloseLatency} {
		if !(l.P50Seconds <= l.P99Seconds && l.P99Seconds <= l.P999Seconds) {
			t.Errorf("quantiles out of order: p50=%v p99=%v p999=%v",
				l.P50Seconds, l.P99Seconds, l.P999Seconds)
		}
		if l.MaxSeconds <= 0 {
			t.Errorf("MaxSeconds = %v, want > 0", l.MaxSeconds)
		}
	}
	if rep.Config.Users != 8 || rep.Config.Windows != 2 || rep.Config.Shards != 2 {
		t.Errorf("Config = %+v, want users=8 windows=2 shards=2", rep.Config)
	}

	scrape, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"pptd_stream_claims_ingested_total 64",
		"pptd_stream_windows_closed_total 2",
		"pptd_http_requests_total",
		"pptd_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(string(scrape), series) {
			t.Errorf("metrics dump missing %q", series)
		}
	}
}

// TestRunBudgetBelowOneWindow starves the whole fleet from the first
// window: the driver must report the refusals, not fail on the empty
// window close.
func TestRunBudgetBelowOneWindow(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-users", "5", "-objects", "3", "-windows", "2",
		"-budget", "0.0001", "-seed", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no window ever closed") {
		t.Errorf("missing all-refused summary:\n%s", buf.String())
	}
}

// TestRunStateDirPersistsBudgets runs the driver twice against the same
// state directory: the fleet's cumulative epsilon must carry over, so a
// budget that afforded the first run's windows refuses the rerun's
// submissions entirely.
func TestRunStateDirPersistsBudgets(t *testing.T) {
	acct, err := pptd.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{
		"-users", "8", "-objects", "4", "-windows", "2",
		"-budget", fmt.Sprintf("%f", 2.5*eps), // affords exactly two windows
		"-seed", "9", "-state-dir", dir,
	}

	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "stream done: 2 windows") ||
		!strings.Contains(first.String(), " 0 submissions refused by budget") {
		t.Fatalf("first run:\n%s", first.String())
	}

	// Same fleet, same directory: every device is already at the cap, so
	// all 8*2 submissions must be refused — the restart did not hand the
	// budget back. Window numbering continues from the recovered state.
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "16 submissions refused by budget") {
		t.Fatalf("second run did not refuse the exhausted fleet:\n%s", out)
	}
	if !strings.Contains(out, "stream done: 4 windows") {
		t.Fatalf("second run did not resume the window counter:\n%s", out)
	}
}

// TestRunDurabilityFlags drives the in-process server with the
// group-commit and snapshot-cadence knobs set: the run must complete
// and the rerun must resume from the recovered state (the claim WAL
// plus every-other-window snapshots cover all windows between them).
func TestRunDurabilityFlags(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-users", "6", "-objects", "4", "-windows", "3", "-seed", "5",
		"-state-dir", dir,
		"-snapshot-every", "2", "-retain-snapshots", "1",
		"-commit-interval", "1ms", "-commit-batch", "8",
	}
	var first bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "stream done: 3 windows") {
		t.Fatalf("first run:\n%s", first.String())
	}
	var second bytes.Buffer
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "stream done: 6 windows") {
		t.Fatalf("second run did not resume the recovered window counter:\n%s", second.String())
	}
}

// TestRunRejectsStateDirWithExternalAddr checks the flag guard.
func TestRunRejectsStateDirWithExternalAddr(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "http://example.invalid", "-state-dir", t.TempDir()}, &buf); err == nil {
		t.Error("external -addr with -state-dir accepted")
	}
}
