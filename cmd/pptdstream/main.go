// Command pptdstream is a load generator and driver for the streaming
// truth-discovery engine: it runs a streaming campaign server (or
// targets an external one), simulates a fleet of devices that take fresh
// readings of a drifting ground truth every window, perturb them locally
// (Algorithm 2's client side), and submit concurrently, then closes
// windows and reports per-window accuracy, ingest throughput, estimation
// latency, and each window's cumulative privacy spending.
//
// Usage:
//
//	pptdstream -objects 20 -users 50 -windows 5 -shards 4 \
//	    -lambda1 1.5 -lambda2 2 -delta 0.3 -budget 0 -decay 1 -drift 0.2 \
//	    -state-dir /var/lib/pptd -window-interval 0 \
//	    -claim-wal -snapshot-every 1 -segment-bytes 0 -commit-interval 0
//
// With -budget > 0 users are cut off once their cumulative epsilon would
// exceed the cap; the driver reports how many submissions were refused.
// With -state-dir the in-process server journals every privacy charge
// (fsync'd before the submission is acknowledged; concurrent submissions
// share group-commit batches — tune with -commit-interval/-commit-batch)
// and, via -claim-wal (on by default), the submission's claims in the
// same record, persists each window's published result, and snapshots
// the engine per -snapshot-every/-snapshot-bytes, so re-running against
// the same directory resumes cumulative budgets, statistics, and the
// last estimate instead of resetting them. -window-interval additionally
// closes windows on a ticker, the way a deployment without an external
// window driver would run. -max-resident-users / -resident-bytes cap the
// engine's resident per-user state (requires -state-dir: idle users are
// spilled to the store at window close and re-admitted on their next
// claim), and -churn rotates in a fresh fleet of device IDs every window
// — together they demonstrate bounded memory under unbounded ID churn.
// -wire binary submits claims as the compact CRC32-checked binary frame
// (docs/WIRE.md) instead of JSON, and -arrival-rate R switches the
// driver from closed-loop (every device at once) to an open-loop
// Poisson arrival process offering R submissions/s regardless of how
// fast the server keeps up. See README.md next to this file for the
// full flag reference and a kill-and-recover transcript.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pptd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pptdstream:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pptdstream", flag.ContinueOnError)
	var (
		objects     = fs.Int("objects", 20, "number of micro-tasks (objects)")
		users       = fs.Int("users", 50, "number of simulated devices")
		windows     = fs.Int("windows", 5, "number of windows to stream")
		shards      = fs.Int("shards", 0, "engine shards (0 = auto)")
		method      = fs.String("method", "crh", "streaming truth-discovery estimator: crh, gtm, or catd")
		lambda1     = fs.Float64("lambda1", 1.5, "simulated sensor quality (error-variance rate)")
		lambda2     = fs.Float64("lambda2", 2, "perturbation rate released to users")
		delta       = fs.Float64("delta", 0.3, "LDP delta each window is accounted at")
		budget      = fs.Float64("budget", 0, "cumulative epsilon cap per user (0 = track only)")
		decay       = fs.Float64("decay", 1, "per-window retention factor in (0,1]")
		drift       = fs.Float64("drift", 0.2, "per-window random-walk step of the ground truth")
		seed        = fs.Uint64("seed", 1, "deterministic seed for the simulated fleet")
		addr        = fs.String("addr", "", "external streaming server base URL (empty = run one in-process)")
		stateDir    = fs.String("state-dir", "", "durable state directory for the in-process server: privacy-ledger journal + engine snapshots (empty = in-memory only)")
		interval    = fs.Duration("window-interval", 0, "auto window-close ticker for the in-process server (0 = driver-closed windows only)")
		perUser     = fs.Bool("per-user-report", false, "opt the full per-user epsilon map into privacy reports (default: aggregates only)")
		claimWAL    = fs.Bool("claim-wal", true, "journal each submission's claims with its charge (with -state-dir), so statistics survive a crash as well as budgets do")
		segBytes    = fs.Int64("segment-bytes", 0, "size cap per journal segment file; compaction deletes covered segments whole (0 = default 4 MiB)")
		snapEvery   = fs.Int("snapshot-every", 1, "write an engine snapshot every Nth window close (with -state-dir)")
		snapBytes   = fs.Int64("snapshot-bytes", 0, "force a snapshot once the journal exceeds this many bytes (0 = no size trigger)")
		snapRetain  = fs.Int("retain-snapshots", 0, "previous snapshot generations to keep as manual-recovery artifacts")
		commitWait  = fs.Duration("commit-interval", 0, "how long a group-commit leader lingers for more appends before fsyncing (0 = no added latency)")
		commitBatch = fs.Int("commit-batch", 0, "max journal records per group-commit fsync (0 = default 256, 1 = fsync per append)")
		maxResident = fs.Int("max-resident-users", 0, "cap on users kept resident in memory; idle users (no live sufficient statistics — needs -decay < 1 to ever happen) spill to -state-dir at window close and re-admit on their next claim (0 = unbounded)")
		resBytes    = fs.Int64("resident-bytes", 0, "approximate byte budget for resident per-user state, an alternative cap to -max-resident-users (0 = unbounded)")
		churn       = fs.Bool("churn", false, "rotate in a fresh fleet of device IDs every window, so the distinct-user population grows without bound — the workload residency caps exist for")
		wire        = fs.String("wire", pptd.WireJSON, "claim submission wire format: json (default) or binary (length-prefixed CRC32-checked frames under Content-Type application/x-pptd-claims; see docs/WIRE.md)")
		arrival     = fs.Float64("arrival-rate", 0, "open-loop mode: offered load in submissions/s, Poisson (exponential) inter-arrival spacing across the fleet; 0 = closed-loop (every device submits at once per window)")
		maxBody     = fs.Int64("max-request-bytes", 0, "in-process server's POST body cap in bytes; oversized bodies get the 413 payload_too_large envelope (0 = the 16 MiB default)")
		requestID   = fs.String("request-id", "", "pin this X-Request-ID on every request (empty = a fresh random ID per request); the server echoes it, correlating this run in the node's logs")
		benchOut    = fs.String("bench-out", "", "write a BENCH_*.json performance artifact (throughput, submit/close latency p50/p99/p999) to this path")
		metricsOut  = fs.String("metrics-out", "", "after the run, scrape the server's GET /metrics and write the exposition to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *windows <= 0 || *users <= 0 {
		return errors.New("need positive -windows and -users")
	}
	if *addr != "" && (*stateDir != "" || *interval != 0) {
		return errors.New("-state-dir and -window-interval configure the in-process server; they cannot apply to an external -addr")
	}
	if *snapEvery < 0 || *snapBytes < 0 || *snapRetain < 0 || *segBytes < 0 {
		return fmt.Errorf("negative persistence flags (-snapshot-every %d, -snapshot-bytes %d, -retain-snapshots %d, -segment-bytes %d)",
			*snapEvery, *snapBytes, *snapRetain, *segBytes)
	}
	if (*maxResident > 0 || *resBytes > 0) && *stateDir == "" {
		return errors.New("-max-resident-users and -resident-bytes need -state-dir: evicted users spill their budget and estimator state to the store")
	}
	if *wire != pptd.WireJSON && *wire != pptd.WireBinary {
		return fmt.Errorf("-wire = %q: want %q or %q", *wire, pptd.WireJSON, pptd.WireBinary)
	}
	if *arrival < 0 {
		return fmt.Errorf("-arrival-rate = %v: want 0 (closed-loop) or a positive submissions/s rate", *arrival)
	}
	if *maxBody < 0 {
		return fmt.Errorf("-max-request-bytes = %d: want 0 (default) or a positive cap", *maxBody)
	}
	if *maxBody > 0 && *addr != "" {
		return errors.New("-max-request-bytes configures the in-process server; it cannot apply to an external -addr")
	}

	estimator, err := methodByName(*method)
	if err != nil {
		return err
	}

	baseURL := *addr
	if baseURL == "" {
		// One front door: the in-process server is a pptd node built from
		// functional options. The explicit (lambda1, lambda2, delta) flags
		// map onto the WithStreamConfig escape hatch; everything else is a
		// dedicated option.
		nodeOpts := []pptd.Option{
			pptd.WithName("pptdstream"),
			pptd.WithMethod(estimator),
			pptd.WithStreamConfig(pptd.StreamConfig{
				NumObjects:    *objects,
				NumShards:     *shards,
				Decay:         *decay,
				Lambda1:       *lambda1,
				Lambda2:       *lambda2,
				Delta:         *delta,
				EpsilonBudget: *budget,
				PerUserReport: *perUser,
				// The node wires its store in as the UserStore, so the
				// caps work without further plumbing here.
				MaxResidentUsers: *maxResident,
				ResidentBytes:    *resBytes,
			}),
		}
		if *interval > 0 {
			nodeOpts = append(nodeOpts, pptd.WithWindowInterval(*interval))
		}
		if *maxBody > 0 {
			nodeOpts = append(nodeOpts, pptd.WithMaxRequestBytes(*maxBody))
		}
		if *stateDir != "" {
			popts := []pptd.PersistenceOption{
				pptd.WithGroupCommit(*commitWait, *commitBatch),
			}
			if *snapEvery > 0 {
				popts = append(popts, pptd.WithSnapshotEvery(*snapEvery))
			}
			if *snapBytes > 0 {
				popts = append(popts, pptd.WithSnapshotBytes(*snapBytes))
			}
			if *segBytes > 0 {
				popts = append(popts, pptd.WithSegmentBytes(*segBytes))
			}
			if *snapRetain > 0 {
				popts = append(popts, pptd.WithRetainSnapshots(*snapRetain))
			}
			if !*claimWAL {
				popts = append(popts, pptd.WithoutClaimWAL())
			}
			nodeOpts = append(nodeOpts, pptd.WithPersistence(*stateDir, popts...))
		}
		node, err := pptd.NewNode(nodeOpts...)
		if err != nil {
			return err
		}
		defer func() { _ = node.Close() }()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(ctx)
		}()
		baseURL = "http://" + ln.Addr().String()
	}

	var clientOpts []pptd.ClientOption
	if *requestID != "" {
		clientOpts = append(clientOpts, pptd.WithRequestID(*requestID))
	}
	clientOpts = append(clientOpts, pptd.WithClaimWire(*wire))
	client, err := pptd.NewClient(baseURL, clientOpts...)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	info, err := client.StreamCampaign(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "streaming campaign %q at %s: %d objects, %d shards, estimator=%s, lambda2=%v\n",
		info.Name, baseURL, info.NumObjects, info.Shards, estimatorLabel(info.Estimator), info.Lambda2)
	if info.EpsilonPerWindow > 0 {
		fmt.Fprintf(out, "privacy: epsilon=%.4f per window at delta=%v, budget=%v\n",
			info.EpsilonPerWindow, info.Delta, budgetLabel(info.EpsilonBudget))
	}

	// Simulated fleet: per-device quality sigma_s^2 ~ Exp(lambda1), fresh
	// readings of a drifting ground truth every window.
	rng := pptd.NewRNG(*seed)
	groundTruth := make([]float64, info.NumObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}
	type device struct {
		user  *pptd.CampaignUser
		rng   *pptd.RNG
		sigma float64
	}
	fleet := make([]*device, *users)
	for i := range fleet {
		userRng := rng.Split()
		d := &device{rng: userRng, sigma: math.Sqrt(userRng.Exp() / *lambda1)}
		readings := takeReadings(groundTruth, d.sigma, userRng)
		u, err := pptd.NewCampaignUser(fmt.Sprintf("device-%03d", i), readings, userRng)
		if err != nil {
			return err
		}
		d.user = u
		fleet[i] = d
	}

	fmt.Fprintf(out, "%-7s %9s %8s %10s %9s %5s %8s %9s %9s\n",
		"window", "claims", "refused", "claims/s", "est-ms", "iters", "mae", "max-eps", "exhaust")
	perf := newPerfTracker()
	var totalRefused int64
	// writeArtifacts runs on every successful exit path — a starved fleet
	// is still a run worth recording.
	writeArtifacts := func() error {
		if *benchOut != "" {
			cfg := BenchConfig{
				Users: *users, Objects: info.NumObjects, Windows: *windows,
				Shards: info.Shards, Durable: *stateDir != "",
				EpsilonBudget:    info.EpsilonBudget,
				MaxResidentUsers: *maxResident, Churn: *churn,
				Wire: *wire, ArrivalRate: *arrival,
			}
			if err := perf.writeBenchReport(*benchOut, cfg, totalRefused); err != nil {
				return err
			}
			fmt.Fprintf(out, "bench artifact written to %s\n", *benchOut)
		}
		if *metricsOut != "" {
			if err := scrapeToFile(baseURL, *metricsOut); err != nil {
				return err
			}
			fmt.Fprintf(out, "metrics exposition written to %s\n", *metricsOut)
		}
		return nil
	}
	for w := 1; w <= *windows; w++ {
		// The world moves, the devices re-measure.
		for n := range groundTruth {
			groundTruth[n] += *drift * rng.Norm()
		}
		for i, d := range fleet {
			readings := takeReadings(groundTruth, d.sigma, d.rng)
			if *churn && w > 1 {
				// Churn mode: this window's fleet is a brand-new set of
				// device IDs. Every window adds -users distinct users, so
				// only a residency cap keeps the server's memory bounded.
				u, err := pptd.NewCampaignUser(fmt.Sprintf("device-w%02d-%03d", w, i), readings, d.rng)
				if err != nil {
					return err
				}
				d.user = u
			} else if err := d.user.SetReadings(readings); err != nil {
				return err
			}
		}

		var (
			wg      sync.WaitGroup
			refused atomic.Int64
			fatal   atomic.Value
		)
		start := time.Now()
		for _, d := range fleet {
			if *arrival > 0 {
				// Open-loop mode: arrivals are spaced by an exponential
				// inter-arrival draw (a Poisson process at -arrival-rate),
				// independent of how fast earlier submissions complete —
				// the driver offers load, it does not wait for capacity.
				time.Sleep(time.Duration(rng.Exp() / *arrival * float64(time.Second)))
			}
			wg.Add(1)
			go func(d *device) {
				defer wg.Done()
				submitStart := time.Now()
				if _, err := d.user.ParticipateStream(ctx, client); err != nil {
					// The client decodes the envelope's budget_exhausted
					// code into the typed sentinel.
					if errors.Is(err, pptd.ErrBudgetExhausted) {
						refused.Add(1)
						return
					}
					fatal.Store(err)
					return
				}
				perf.observeSubmit(time.Since(submitStart))
			}(d)
		}
		wg.Wait()
		ingestDur := time.Since(start)
		if err, ok := fatal.Load().(error); ok {
			return err
		}
		totalRefused += refused.Load()

		estStart := time.Now()
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			// A fully-refused fleet can leave the window empty; that is
			// the budget doing its job, not a driver failure.
			if refused.Load() > 0 && errors.Is(err, pptd.ErrEmptyWindow) {
				fmt.Fprintf(out, "%-7s %9d %8d %10s %9s %5s %8s %9s %9s\n",
					"-", 0, refused.Load(), "-", "-", "-", "-", "-", "-")
				continue
			}
			return err
		}
		estDur := time.Since(estStart)
		perf.observeWindow(res.WindowClaims, ingestDur, estDur)

		var mae float64
		var covered int
		for n, tv := range groundTruth {
			if n < len(res.Covered) && res.Covered[n] {
				mae += math.Abs(res.Truths[n] - tv)
				covered++
			}
		}
		if covered > 0 {
			mae /= float64(covered)
		}
		maxEps, exhausted := "-", "-"
		if res.Privacy != nil {
			maxEps = fmt.Sprintf("%.4f", res.Privacy.MaxCumulative)
			exhausted = fmt.Sprintf("%d", res.Privacy.ExhaustedUsers)
		}
		fmt.Fprintf(out, "%-7d %9d %8d %10.0f %9.2f %5d %8.4f %9s %9s\n",
			res.Window, res.WindowClaims, refused.Load(),
			float64(res.WindowClaims)/ingestDur.Seconds(),
			float64(estDur.Microseconds())/1000, res.Iterations, mae, maxEps, exhausted)
	}

	final, err := client.StreamTruths(ctx)
	if err != nil {
		// The server answers 404 (ErrNotReady) while no window has ever
		// closed; with a starved fleet that is the budget working.
		if totalRefused > 0 && errors.Is(err, pptd.ErrNotReady) {
			fmt.Fprintf(out, "stream done: no window ever closed — all %d submissions refused by budget\n", totalRefused)
			return writeArtifacts()
		}
		return err
	}
	fmt.Fprintf(out, "stream done: %d windows, %d claims total, %d submissions refused by budget\n",
		final.Window, final.TotalClaims, totalRefused)
	if final.Privacy != nil {
		fmt.Fprintf(out, "cumulative privacy: max per-user epsilon %.4f (delta %.4g) over %d windows across %d tracked users\n",
			final.Privacy.MaxCumulative, final.Privacy.CumulativeDelta,
			final.Privacy.MaxWindows, final.Privacy.TrackedUsers)
	}
	// Group-commit observability: on a durable server the stats endpoint
	// reports how well concurrent submissions amortized their fsyncs and
	// what each flush cost — the tuning data for -commit-interval and
	// -commit-batch.
	if stats, err := client.StreamStats(ctx); err == nil && stats.Durable && stats.Store != nil {
		st := stats.Store
		ratio := float64(st.JournalAppends)
		if st.JournalSyncs > 0 {
			ratio /= float64(st.JournalSyncs)
		}
		fmt.Fprintf(out, "durable ingest: %d journal appends over %d fsyncs (%.1f appends/sync), %d bytes live in %d segments (%d sealed, %d compacted away), %d snapshots, %d results\n",
			st.JournalAppends, st.JournalSyncs, ratio, st.JournalBytes, st.Segments,
			st.SegmentsSealed, st.SegmentsDeleted, st.Snapshots, st.ResultsSaved)
		fmt.Fprintf(out, "group-commit batch sizes: %s\n", st.BatchSizes)
		fmt.Fprintf(out, "flush latency: mean %.2fms, p99<=%.2fms, max %.2fms\n",
			st.FlushLatencySeconds.Mean()*1e3, st.FlushLatencySeconds.Quantile(0.99)*1e3,
			st.FlushLatencySeconds.Max*1e3)
		if stats.MaxResidentUsers > 0 || st.UserSpills > 0 {
			cap := "unbounded"
			if stats.MaxResidentUsers > 0 {
				cap = fmt.Sprintf("%d", stats.MaxResidentUsers)
			}
			fmt.Fprintf(out, "residency: %d users resident (cap %s), %d evictions spilled, %d re-admissions, %d users in spill file\n",
				stats.ResidentUsers, cap, st.UserSpills, st.UserLoads, st.SpilledUsers)
		}
		fmt.Fprintf(out, "history: windows %d..%d answerable via GET %s?window=N\n",
			stats.HistoryOldest, stats.Window, "/v1/stream/truths")
	}
	fmt.Fprintln(out, "the server only ever saw perturbed claims; no original reading left a device.")
	return writeArtifacts()
}

// driverLatencyBounds buckets the driver-observed round-trip latencies
// (submit and window close): 100µs to 10s.
var driverLatencyBounds = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// perfTracker accumulates the driver-side performance view of a run —
// per-submission and per-window-close round-trip latencies plus ingest
// throughput — the numbers -bench-out records as one BENCH_*.json
// trajectory point.
type perfTracker struct {
	mu            sync.Mutex
	submit        pptd.MetricsHistogram
	windowClose   pptd.MetricsHistogram
	claims        int64
	ingestSeconds float64
}

func newPerfTracker() *perfTracker {
	return &perfTracker{
		submit:      pptd.NewMetricsHistogram(driverLatencyBounds),
		windowClose: pptd.NewMetricsHistogram(driverLatencyBounds),
	}
}

func (p *perfTracker) observeSubmit(d time.Duration) {
	p.mu.Lock()
	p.submit.Observe(d.Seconds())
	p.mu.Unlock()
}

func (p *perfTracker) observeWindow(claims int64, ingest, estimate time.Duration) {
	p.mu.Lock()
	p.claims += claims
	p.ingestSeconds += ingest.Seconds()
	p.windowClose.Observe(estimate.Seconds())
	p.mu.Unlock()
}

// BenchLatency summarizes one latency histogram inside the artifact.
// Quantiles are upper-bounded within their histogram bucket.
type BenchLatency struct {
	Count       int64   `json:"count"`
	MeanSeconds float64 `json:"meanSeconds"`
	P50Seconds  float64 `json:"p50Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	P999Seconds float64 `json:"p999Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
}

// BenchConfig records the run shape alongside its numbers, so trajectory
// points are only compared like for like.
type BenchConfig struct {
	Users            int     `json:"users"`
	Objects          int     `json:"objects"`
	Windows          int     `json:"windows"`
	Shards           int     `json:"shards"`
	Durable          bool    `json:"durable"`
	EpsilonBudget    float64 `json:"epsilonBudget"`
	MaxResidentUsers int     `json:"maxResidentUsers,omitempty"`
	Churn            bool    `json:"churn,omitempty"`
	Wire             string  `json:"wire,omitempty"`
	ArrivalRate      float64 `json:"arrivalRate,omitempty"`
}

// BenchReport is the BENCH_*.json artifact -bench-out writes: one
// recorded point of the performance trajectory.
type BenchReport struct {
	Name                 string       `json:"name"`
	Timestamp            string       `json:"timestamp"`
	Wire                 string       `json:"wire"`
	Config               BenchConfig  `json:"config"`
	Submissions          int64        `json:"submissions"`
	RefusedSubmissions   int64        `json:"refusedSubmissions"`
	Claims               int64        `json:"claims"`
	IngestSeconds        float64      `json:"ingestSeconds"`
	ClaimsPerSecond      float64      `json:"claimsPerSecond"`
	SubmissionsPerSecond float64      `json:"submissionsPerSecond"`
	SubmitLatency        BenchLatency `json:"submitLatency"`
	WindowCloseLatency   BenchLatency `json:"windowCloseLatency"`
}

func summarizeLatency(h *pptd.MetricsHistogram) BenchLatency {
	return BenchLatency{
		Count:       h.Count,
		MeanSeconds: h.Mean(),
		P50Seconds:  h.Quantile(0.5),
		P99Seconds:  h.Quantile(0.99),
		P999Seconds: h.Quantile(0.999),
		MaxSeconds:  h.Max,
	}
}

func (p *perfTracker) writeBenchReport(path string, cfg BenchConfig, refused int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := BenchReport{
		Name:               "stream_ingest",
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		Wire:               wireLabel(cfg.Wire),
		Config:             cfg,
		Submissions:        p.submit.Count,
		RefusedSubmissions: refused,
		Claims:             p.claims,
		IngestSeconds:      p.ingestSeconds,
		SubmitLatency:      summarizeLatency(&p.submit),
		WindowCloseLatency: summarizeLatency(&p.windowClose),
	}
	if p.ingestSeconds > 0 {
		rep.ClaimsPerSecond = float64(p.claims) / p.ingestSeconds
		rep.SubmissionsPerSecond = float64(p.submit.Count) / p.ingestSeconds
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// scrapeToFile dumps the server's Prometheus exposition to a file — the
// raw material for CI series assertions and offline inspection.
func scrapeToFile(baseURL, path string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

// takeReadings simulates one round of sensing: the ground truth observed
// through the device's Gaussian error.
func takeReadings(groundTruth []float64, sigma float64, rng *pptd.RNG) []pptd.CampaignClaim {
	readings := make([]pptd.CampaignClaim, len(groundTruth))
	for n, tv := range groundTruth {
		readings[n] = pptd.CampaignClaim{Object: n, Value: tv + sigma*rng.Norm()}
	}
	return readings
}

// methodByName maps the -method flag onto a streaming estimator. Only
// the incremental methods are valid here: the mean/median baselines are
// batch-only (see cmd/pptdserver).
func methodByName(name string) (pptd.Method, error) {
	switch name {
	case "crh":
		return pptd.NewCRH()
	case "gtm":
		return pptd.NewGTM()
	case "catd":
		return pptd.NewCATD()
	}
	return nil, fmt.Errorf("unknown -method %q (streaming estimators: crh, gtm, catd)", name)
}

// estimatorLabel names the campaign's estimator; a pre-estimator server
// omits the field, which means CRH.
func estimatorLabel(name string) string {
	if name == "" {
		return "crh"
	}
	return name
}

// wireLabel normalizes the -wire flag for the artifact: an empty value
// (an old caller constructing BenchConfig directly) means JSON.
func wireLabel(w string) string {
	if w == "" {
		return pptd.WireJSON
	}
	return w
}

func budgetLabel(b float64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.4f", b)
}
