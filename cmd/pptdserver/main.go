// Command pptdserver runs a crowd sensing node: it publishes a campaign
// (number of micro-tasks plus the perturbation rate lambda2), collects
// perturbed submissions from pptduser clients, aggregates with truth
// discovery once the expected number of users reported, and serves the
// result. With -stream it additionally hosts the streaming campaign on
// the same address — one front door for both APIs, built with
// pptd.NewNode.
//
// Usage:
//
//	pptdserver -addr :8080 -objects 30 -lambda2 2 -users 50 -method crh
//	pptdserver -addr :8080 -objects 30 -lambda2 2 -stream -window-interval 30s
//	pptdserver -addr :8080 -objects 30 -lambda2 2 -stream \
//	    -state-dir /var/lib/pptd -max-resident-users 10000 -decay 0.9
//
// With -state-dir the node is durable: batch submissions are WAL'd
// before their receipt and the aggregated result is persisted before it
// is published, so a restarted server keeps its duplicate guard and
// result; with -stream the engine additionally journals privacy charges
// and snapshots its statistics. -max-resident-users bounds the streaming
// engine's memory under ID churn by spilling idle users to the store
// (idle means no live sufficient statistics, so pair it with -decay < 1).
//
// Every node serves its Prometheus metrics at GET /metrics. -log text
// (or json) adds one structured request log line per request on stderr,
// and -debug mounts net/http/pprof under /debug/pprof/. See
// docs/OBSERVABILITY.md for the metric catalog and logging fields.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"time"

	"pptd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pptdserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pptdserver", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		name     = fs.String("name", "campaign", "campaign name")
		objects  = fs.Int("objects", 30, "number of micro-tasks (objects)")
		lambda2  = fs.Float64("lambda2", 2, "noise-variance rate released to users")
		users    = fs.Int("users", 0, "auto-aggregate after this many users (0 = manual)")
		method   = fs.String("method", "crh", "truth discovery method: crh, gtm, catd, mean, median (with -stream the same method runs the streaming estimator, so mean/median are batch-only)")
		stream   = fs.Bool("stream", false, "also host the streaming campaign (same objects) on the same mux")
		interval = fs.Duration("window-interval", 0, "with -stream: close stream windows on this ticker (0 = manual POST /v1/stream/window)")
		decay    = fs.Float64("decay", 1, "with -stream: per-window retention factor in (0,1]; eviction under -max-resident-users needs decay < 1, since users with live sufficient statistics are pinned resident")
		stateDir = fs.String("state-dir", "", "durable state directory: the batch campaign WALs submissions and persists its result; with -stream the engine journals privacy charges and snapshots (empty = in-memory only)")
		maxRes   = fs.Int("max-resident-users", 0, "with -stream and -state-dir: cap on users kept resident in memory; idle users spill to the store at window close and re-admit on their next claim (0 = unbounded)")
		maxBody  = fs.Int64("max-request-bytes", 0, "cap on any POST request body in bytes; oversized bodies get the 413 payload_too_large envelope (0 = the 16 MiB default)")
		logReqs  = fs.String("log", "", "per-request structured logging: 'text' or 'json' slog lines on stderr (empty = off; metrics at /metrics either way)")
		debug    = fs.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (exposes operational internals; keep off public listeners)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval != 0 && !*stream {
		return errors.New("-window-interval needs -stream")
	}
	if *decay != 1 && !*stream {
		return errors.New("-decay needs -stream")
	}
	if *users < 0 {
		return fmt.Errorf("-users = %d: want 0 (manual aggregation) or a positive trigger", *users)
	}

	td, err := methodByName(*method)
	if err != nil {
		return err
	}
	opts := []pptd.Option{
		pptd.WithName(*name),
		pptd.WithBatchCampaign(*objects),
		pptd.WithLambda2(*lambda2),
		pptd.WithMethod(td),
	}
	if *users > 0 {
		opts = append(opts, pptd.WithExpectedUsers(*users))
	}
	if *maxBody < 0 {
		return fmt.Errorf("-max-request-bytes = %d: want 0 (default) or a positive cap", *maxBody)
	}
	if *maxBody > 0 {
		opts = append(opts, pptd.WithMaxRequestBytes(*maxBody))
	}
	switch *logReqs {
	case "":
	case "text":
		opts = append(opts, pptd.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	case "json":
		opts = append(opts, pptd.WithLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil))))
	default:
		return fmt.Errorf("-log = %q: want 'text', 'json', or empty", *logReqs)
	}
	if *debug {
		opts = append(opts, pptd.WithDebugHandlers())
	}
	if *maxRes > 0 && (!*stream || *stateDir == "") {
		return errors.New("-max-resident-users needs -stream and -state-dir: evicted users spill their budget and estimator state to the store")
	}
	if *stream {
		opts = append(opts, pptd.WithStreamEngine(*objects))
		if *interval > 0 {
			opts = append(opts, pptd.WithWindowInterval(*interval))
		}
		if *decay != 1 {
			opts = append(opts, pptd.WithDecay(*decay))
		}
		if *maxRes > 0 {
			opts = append(opts, pptd.WithMaxResidentUsers(*maxRes))
		}
	}
	if *stateDir != "" {
		opts = append(opts, pptd.WithPersistence(*stateDir))
	}
	node, err := pptd.NewNode(opts...)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		apis := "batch API"
		if *stream {
			apis = "batch + streaming APIs"
		}
		log.Printf("campaign %q: %d objects, lambda2=%v, method=%s, %s listening on %s",
			*name, *objects, *lambda2, td.Name(), apis, *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return nil
	}
}

func methodByName(name string) (pptd.Method, error) {
	switch name {
	case "crh":
		return pptd.NewCRH()
	case "gtm":
		return pptd.NewGTM()
	case "catd":
		return pptd.NewCATD()
	case "mean":
		return pptd.MeanBaseline(), nil
	case "median":
		return pptd.MedianBaseline(), nil
	default:
		return nil, errors.New("unknown method " + name)
	}
}
