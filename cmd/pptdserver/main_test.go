package main

import "testing"

func TestMethodByName(t *testing.T) {
	for _, name := range []string{"crh", "gtm", "catd", "mean", "median"} {
		m, err := methodByName(name)
		if err != nil || m == nil {
			t.Errorf("methodByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := methodByName("unknown"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-method", "nope"}); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run([]string{"-objects", "0"}); err == nil {
		t.Error("zero objects accepted")
	}
}
