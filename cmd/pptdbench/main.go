// Command pptdbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	pptdbench -list
//	pptdbench -exp fig2
//	pptdbench -exp all -trials 5 -seed 42 -csv out/
//
// Each experiment prints the same series the corresponding paper figure
// plots, as aligned text tables; -csv additionally writes one CSV per
// figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pptd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pptdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pptdbench", flag.ContinueOnError)
	var (
		expName = fs.String("exp", "all", "experiment to run (see -list), or 'all'")
		seed    = fs.Uint64("seed", 42, "random seed")
		trials  = fs.Int("trials", 0, "trials per point (0 = per-experiment default)")
		quick   = fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
		csvDir  = fs.String("csv", "", "directory to write per-figure CSVs (optional)")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range pptd.Experiments() {
			fmt.Printf("%-18s %s\n", e.Name, e.Description)
		}
		return nil
	}

	var names []string
	if *expName == "all" {
		for _, e := range pptd.Experiments() {
			names = append(names, e.Name)
		}
	} else {
		names = []string{*expName}
	}

	opts := pptd.ExperimentOptions{Seed: *seed, Trials: *trials, Quick: *quick}
	for _, name := range names {
		report, err := pptd.RunExperiment(name, opts)
		if err != nil {
			return fmt.Errorf("run %s: %w", name, err)
		}
		if err := emit(report, *csvDir); err != nil {
			return err
		}
	}
	return nil
}

func emit(report *pptd.ExperimentReport, csvDir string) error {
	fmt.Printf("=== %s: %s ===\n\n", report.Name, report.Description)
	for _, fig := range report.Figures {
		table := fig.Table()
		fmt.Println(table.Render())
		if csvDir != "" {
			if err := writeCSV(csvDir, fig.ID, table); err != nil {
				return err
			}
		}
	}
	for _, table := range report.Tables {
		fmt.Println(table.Render())
	}
	for _, note := range report.Notes {
		fmt.Println("note:", note)
	}
	fmt.Println()
	return nil
}

func writeCSV(dir, id string, table *pptd.ExperimentTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer func() {
		_ = f.Close()
	}()
	if err := table.WriteCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
