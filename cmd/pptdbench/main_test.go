package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig4", "-quick", "-seed", "3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig4a", "fig4b"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("missing CSV for %s: %v", id, err)
		}
		if !strings.HasPrefix(string(data), "S,") {
			t.Fatalf("%s.csv header = %q", id, strings.SplitN(string(data), "\n", 2)[0])
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
