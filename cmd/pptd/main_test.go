package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pptd/internal/dataio"
	"pptd/internal/randx"
	"pptd/internal/synthetic"
)

func writeTempDataset(t *testing.T) string {
	t.Helper()
	cfg := synthetic.Default()
	cfg.NumUsers = 20
	cfg.NumObjects = 8
	inst, err := synthetic.Generate(cfg, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := dataio.Write(f, inst.Dataset, inst.GroundTruth); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlainTruthDiscovery(t *testing.T) {
	path := writeTempDataset(t)
	var stdout, stderr strings.Builder
	if err := run([]string{"-in", path, "-method", "crh"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "object,truth\n") {
		t.Fatalf("stdout = %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "MAE vs ground truth") {
		t.Fatalf("stderr missing MAE line: %q", stderr.String())
	}
}

func TestRunWithPerturbationAndWeights(t *testing.T) {
	path := writeTempDataset(t)
	var stdout, stderr strings.Builder
	err := run([]string{"-in", path, "-method", "gtm", "-lambda2", "2", "-weights"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "perturbed with lambda2=2") {
		t.Fatalf("stderr = %q", stderr.String())
	}
	if !strings.Contains(stdout.String(), "user,weight") {
		t.Fatalf("stdout missing weights: %q", stdout.String())
	}
}

func TestRunEveryMethod(t *testing.T) {
	path := writeTempDataset(t)
	for _, method := range []string{"crh", "gtm", "catd", "mean", "median"} {
		var stdout, stderr strings.Builder
		if err := run([]string{"-in", path, "-method", method}, &stdout, &stderr); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempDataset(t)
	var sink strings.Builder
	if err := run([]string{"-in", path, "-method", "nope"}, &sink, &sink); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run([]string{"-in", filepath.Join(t.TempDir(), "missing.csv")}, &sink, &sink); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-badflag"}, &sink, &sink); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range []string{"crh", "gtm", "catd", "mean", "median"} {
		m, err := methodByName(name)
		if err != nil || m == nil {
			t.Errorf("methodByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := methodByName("x"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunSecureMode(t *testing.T) {
	path := writeTempDataset(t)
	var stdout, stderr strings.Builder
	if err := run([]string{"-in", path, "-secure"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "secure-crh") {
		t.Fatalf("stderr = %q", stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "object,truth\n") {
		t.Fatalf("stdout = %q", stdout.String())
	}
	var sink strings.Builder
	if err := run([]string{"-in", path, "-secure", "-method", "gtm"}, &sink, &sink); err == nil {
		t.Error("secure mode with non-crh method accepted")
	}
}
