// Command pptd runs (privacy-preserving) truth discovery on a CSV
// dataset in the pptdgen format.
//
// Usage:
//
//	pptdgen -kind synthetic -out data.csv
//	pptd -in data.csv -method crh                 # plain truth discovery
//	pptd -in data.csv -method crh -lambda2 2      # perturb first (Algorithm 2)
//	pptd -in data.csv -method gtm -weights        # also print user weights
//
// Output is one line per object: "object,truth". If the input carries a
// ground-truth preamble, the MAE against it is printed to stderr.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"pptd"
	"pptd/internal/dataio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pptd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pptd", flag.ContinueOnError)
	var (
		in      = fs.String("in", "-", "input CSV path ('-' = stdin)")
		method  = fs.String("method", "crh", "truth discovery method: crh, gtm, catd, mean, median")
		lambda2 = fs.Float64("lambda2", 0, "if > 0, perturb each user's data with the mechanism first")
		seed    = fs.Uint64("seed", 1, "random seed for perturbation")
		weights = fs.Bool("weights", false, "also print user weights to stdout")
		secure  = fs.Bool("secure", false, "aggregate via secure-sum rounds (crypto baseline) and print its cost")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		r = f
	}
	ds, groundTruth, err := dataio.Read(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loaded %d users x %d objects (%d observations)\n",
		ds.NumUsers(), ds.NumObjects(), ds.NumObservations())

	if *lambda2 > 0 {
		mech, err := pptd.NewMechanism(*lambda2)
		if err != nil {
			return err
		}
		perturbed, report, err := mech.PerturbDataset(ds, pptd.NewRNG(*seed))
		if err != nil {
			return err
		}
		ds = perturbed
		fmt.Fprintf(stderr, "perturbed with lambda2=%v (mean |noise| = %.4f)\n", *lambda2, report.MeanAbsNoise)
	}

	var res *pptd.Result
	if *secure {
		if *method != "crh" {
			return errors.New("-secure supports only -method crh")
		}
		var cost pptd.SecureCost
		res, cost, err = pptd.SecureCRH(ds, 100, 1e-6, pptd.NewRNG(*seed+1))
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "secure-crh: %d rounds, converged=%v, %d B total, %d B/user/round + %d B/user setup\n",
			res.Iterations, res.Converged, cost.TotalBytes, cost.BytesPerUserPerRound, cost.SetupBytesPerUser)
	} else {
		td, err := methodByName(*method)
		if err != nil {
			return err
		}
		res, err = td.Run(ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s: %d iterations, converged=%v\n", td.Name(), res.Iterations, res.Converged)
	}

	bw := bufio.NewWriter(stdout)
	fmt.Fprintln(bw, "object,truth")
	for n, v := range res.Truths {
		fmt.Fprintf(bw, "%d,%s\n", n, strconv.FormatFloat(v, 'g', -1, 64))
	}
	if *weights {
		fmt.Fprintln(bw, "user,weight")
		for s, w := range res.Weights {
			fmt.Fprintf(bw, "%d,%s\n", s, strconv.FormatFloat(w, 'g', -1, 64))
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	if groundTruth != nil {
		var mae float64
		for n, tv := range groundTruth {
			d := res.Truths[n] - tv
			if d < 0 {
				d = -d
			}
			mae += d
		}
		mae /= float64(len(groundTruth))
		fmt.Fprintf(stderr, "MAE vs ground truth: %.6f\n", mae)
	}
	return nil
}

func methodByName(name string) (pptd.Method, error) {
	switch name {
	case "crh":
		return pptd.NewCRH()
	case "gtm":
		return pptd.NewGTM()
	case "catd":
		return pptd.NewCATD()
	case "mean":
		return pptd.MeanBaseline(), nil
	case "median":
		return pptd.MedianBaseline(), nil
	default:
		return nil, errors.New("unknown method " + name)
	}
}
