// Command pptdgen generates evaluation datasets as CSV: the Section 5.1
// synthetic crowd or the Section 5.2 indoor-floorplan deployment.
//
// Usage:
//
//	pptdgen -kind synthetic -users 150 -objects 30 -lambda1 1 -seed 1 -out data.csv
//	pptdgen -kind floorplan -out floorplan.csv
//
// The CSV has one row per observation: user,object,value, preceded by
// comment lines (#) recording the ground truth per object.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pptd"
	"pptd/internal/dataio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pptdgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pptdgen", flag.ContinueOnError)
	var (
		kind    = fs.String("kind", "synthetic", "dataset kind: synthetic or floorplan")
		users   = fs.Int("users", 0, "number of users (0 = paper default)")
		objects = fs.Int("objects", 0, "number of objects (0 = paper default)")
		lambda1 = fs.Float64("lambda1", 1, "error-variance rate (synthetic only)")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("out", "-", "output path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ds          *pptd.Dataset
		groundTruth []float64
		err         error
	)
	rng := pptd.NewRNG(*seed)
	switch *kind {
	case "synthetic":
		cfg := pptd.DefaultSyntheticConfig()
		if *users > 0 {
			cfg.NumUsers = *users
		}
		if *objects > 0 {
			cfg.NumObjects = *objects
		}
		cfg.Lambda1 = *lambda1
		inst, genErr := pptd.GenerateSynthetic(cfg, rng)
		if genErr != nil {
			return genErr
		}
		ds, groundTruth = inst.Dataset, inst.GroundTruth
	case "floorplan":
		cfg := pptd.DefaultFloorplanConfig()
		if *users > 0 {
			cfg.NumUsers = *users
		}
		if *objects > 0 {
			cfg.NumSegments = *objects
		}
		inst, genErr := pptd.GenerateFloorplan(cfg, rng)
		if genErr != nil {
			return genErr
		}
		ds, groundTruth = inst.Dataset, inst.SegmentLengths
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, createErr := os.Create(*out)
		if createErr != nil {
			return createErr
		}
		defer func() {
			err = f.Close()
		}()
		w = f
	}
	if writeErr := dataio.Write(w, ds, groundTruth); writeErr != nil {
		return writeErr
	}
	return err
}
