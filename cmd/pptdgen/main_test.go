package main

import (
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/dataio"
)

func TestRunSyntheticToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synthetic.csv")
	if err := run([]string{"-kind", "synthetic", "-users", "15", "-objects", "6", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ds, gt, err := dataio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 15 || ds.NumObjects() != 6 {
		t.Fatalf("dims = (%d, %d)", ds.NumUsers(), ds.NumObjects())
	}
	if len(gt) != 6 {
		t.Fatalf("ground truth = %v", gt)
	}
}

func TestRunFloorplanToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "floorplan.csv")
	if err := run([]string{"-kind", "floorplan", "-users", "25", "-objects", "10", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	ds, gt, err := dataio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 25 || len(gt) != 10 {
		t.Fatalf("dims = (%d, %d truths)", ds.NumUsers(), len(gt))
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	for _, out := range []string{a, b} {
		if err := run([]string{"-kind", "synthetic", "-users", "5", "-objects", "3", "-seed", "9", "-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatal("same seed produced different files")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-kind", "nope", "-out", filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-kind", "synthetic", "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv")}); err == nil {
		t.Error("uncreatable output path accepted")
	}
}
