// Command pptduser simulates a fleet of crowd sensing participants: each
// user generates original readings locally (ground truth plus personal
// sensor error), perturbs them with a privately sampled noise variance
// per Algorithm 2, and submits only the perturbed claims to a pptdserver.
//
// Usage:
//
//	pptduser -server http://localhost:8080 -users 50 -lambda1 1 -seed 7
//
// After all users reported (and the server aggregated), the fleet fetches
// the result and prints the aggregate's distance from the ground truth it
// generated — something only the simulation can know.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"pptd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pptduser:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pptduser", flag.ContinueOnError)
	var (
		server  = fs.String("server", "http://localhost:8080", "campaign server URL")
		users   = fs.Int("users", 50, "number of simulated users")
		lambda1 = fs.Float64("lambda1", 1, "error-variance rate of the simulated crowd")
		seed    = fs.Uint64("seed", 7, "random seed")
		timeout = fs.Duration("timeout", 60*time.Second, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users <= 0 {
		return fmt.Errorf("users = %d", *users)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	client, err := pptd.NewCampaignClient(*server)
	if err != nil {
		return err
	}
	info, err := client.Campaign(ctx)
	if err != nil {
		return fmt.Errorf("fetch campaign: %w", err)
	}
	log.Printf("joined campaign %q: %d objects, lambda2=%v", info.Name, info.NumObjects, info.Lambda2)

	// Simulate ground truth and per-user readings.
	rng := pptd.NewRNG(*seed)
	groundTruth := make([]float64, info.NumObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}
	fleet := make([]*pptd.CampaignUser, *users)
	for i := range fleet {
		userRng := rng.Split()
		sigma := math.Sqrt(userRng.Exp() / *lambda1)
		readings := make([]pptd.CampaignClaim, info.NumObjects)
		for n, tv := range groundTruth {
			readings[n] = pptd.CampaignClaim{Object: n, Value: tv + sigma*userRng.Norm()}
		}
		u, err := pptd.NewCampaignUser(fmt.Sprintf("sim-user-%03d", i), readings, userRng)
		if err != nil {
			return err
		}
		fleet[i] = u
	}

	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	for i, u := range fleet {
		wg.Add(1)
		go func(i int, u *pptd.CampaignUser) {
			defer wg.Done()
			_, errs[i] = u.Participate(ctx, client)
		}(i, u)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("user %d: %w", i, err)
		}
	}
	log.Printf("%d users submitted perturbed readings", len(fleet))

	// Poll for the aggregate (the server may still be waiting for more
	// users if ExpectedUsers was configured above our fleet size).
	var result pptd.CampaignResult
	for {
		result, err = client.Result(ctx)
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for result: %w", ctx.Err())
		case <-time.After(500 * time.Millisecond):
		}
	}

	var mae float64
	for n, tv := range groundTruth {
		mae += math.Abs(result.Truths[n] - tv)
	}
	mae /= float64(len(groundTruth))
	log.Printf("aggregated with %s in %d iterations (converged=%v)",
		result.Method, result.Iterations, result.Converged)
	log.Printf("MAE of private aggregate vs simulated ground truth: %.4f", mae)
	return nil
}
