package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"pptd/internal/crowd"
	"pptd/internal/truth"
)

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-users", "0"}); err == nil {
		t.Error("zero users accepted")
	}
}

func TestRunAgainstLocalServer(t *testing.T) {
	method, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := crowd.NewServer(crowd.ServerConfig{
		Name:          "test",
		NumObjects:    5,
		Lambda2:       2,
		ExpectedUsers: 8,
		Method:        method,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := run([]string{"-server", ts.URL, "-users", "8", "-seed", "4", "-timeout", "30s"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Result(); err != nil {
		t.Fatalf("server did not aggregate: %v", err)
	}
}

func TestRunUnreachableServer(t *testing.T) {
	err := run([]string{"-server", "http://127.0.0.1:1", "-users", "2", "-timeout", "2s"})
	if err == nil {
		t.Fatal("unreachable server accepted")
	}
	// The failure should come from the campaign fetch, not a panic.
	if !strings.Contains(err.Error(), "fetch campaign") {
		t.Logf("error (acceptable): %v", err)
	}
}
