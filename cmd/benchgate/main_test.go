package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePoint(t *testing.T, name string, claimsPerSec, p99 float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	body := fmt.Sprintf(`{
  "name": "stream_ingest",
  "claimsPerSecond": %v,
  "submitLatency": {"count": 10, "p99Seconds": %v},
  "extraneousField": true
}`, claimsPerSec, p99)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGate(t *testing.T) {
	baseline := writePoint(t, "baseline.json", 26052.36, 0.025)
	cases := []struct {
		name     string
		claims   float64
		p99      float64
		extra    []string
		wantErr  string
		wantLine string
	}{
		{
			name: "within envelope", claims: 22000, p99: 0.040,
			wantLine: "PASS: within the regression envelope",
		},
		{
			name: "faster is fine", claims: 90000, p99: 0.001,
			wantLine: "PASS",
		},
		{
			name: "throughput regression", claims: 20000, p99: 0.025,
			wantErr: "1 regression(s)", wantLine: "throughput regression",
		},
		{
			name: "latency regression", claims: 26052.36, p99: 0.051,
			wantErr: "1 regression(s)", wantLine: "latency regression",
		},
		{
			name: "both regress", claims: 100, p99: 1,
			wantErr: "2 regression(s)", wantLine: "FAIL",
		},
		{
			name: "tightened thresholds", claims: 25000, p99: 0.025,
			extra:   []string{"-max-throughput-drop", "0.01"},
			wantErr: "1 regression(s)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			current := writePoint(t, "current.json", tc.claims, tc.p99)
			args := append([]string{"-baseline", baseline, "-current", current}, tc.extra...)
			var buf strings.Builder
			err := run(args, &buf)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run: %v\n%s", err, buf.String())
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run = %v, want %q\n%s", err, tc.wantErr, buf.String())
			}
			if tc.wantLine != "" && !strings.Contains(buf.String(), tc.wantLine) {
				t.Fatalf("output missing %q:\n%s", tc.wantLine, buf.String())
			}
		})
	}
}

func TestGateRejectsBadInputs(t *testing.T) {
	good := writePoint(t, "good.json", 1000, 0.01)
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing flags", nil, "need both -baseline and -current"},
		{"absent file", []string{"-baseline", good, "-current", filepath.Join(t.TempDir(), "nope.json")}, "no such file"},
		{"not an artifact", []string{"-baseline", empty, "-current", good}, "not a bench artifact"},
		{"drop out of range", []string{"-baseline", good, "-current", good, "-max-throughput-drop", "1.5"}, "out of [0,1)"},
		{"inflation below 1", []string{"-baseline", good, "-current", good, "-max-p99-inflation", "0.5"}, "below 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestGateAgainstCommittedBaseline keeps the committed seed point
// parseable by the gate itself — if the artifact schema drifts, this
// fails before CI does.
func TestGateAgainstCommittedBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "docs", "bench", "BENCH_stream_ingest.json")
	var buf strings.Builder
	if err := run([]string{"-baseline", baseline, "-current", baseline}, &buf); err != nil {
		t.Fatalf("gate vs itself: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("baseline does not pass against itself:\n%s", buf.String())
	}
}
