// Command benchgate compares a freshly-measured BENCH_*.json artifact
// (cmd/pptdstream or cmd/pptdcluster -bench-out) against a committed
// baseline and fails — non-zero exit — when ingest performance
// regressed past the allowed envelope:
//
//   - claims/s dropped by more than -max-throughput-drop (default 20%),
//   - or submit p99 latency inflated by more than
//     -max-p99-inflation x baseline (default 2x).
//
// Usage (the CI gate):
//
//	pptdstream -bench-out /tmp/BENCH_current.json ...
//	benchgate -baseline docs/bench/BENCH_stream_ingest.json \
//	    -current /tmp/BENCH_current.json
//
// The gate is deliberately loose: CI boxes are noisy, so it catches
// order-of-magnitude mistakes (an accidental fsync per claim, a lock
// across the ingest hot path), not single-digit-percent drift. Tighten
// the thresholds per invocation when comparing on quiet hardware.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// benchPoint is the slice of the BENCH_*.json schema the gate reads;
// unknown fields are ignored so pptdstream and pptdcluster artifacts
// both pass through.
type benchPoint struct {
	Name            string  `json:"name"`
	ClaimsPerSecond float64 `json:"claimsPerSecond"`
	SubmitLatency   struct {
		P99Seconds float64 `json:"p99Seconds"`
	} `json:"submitLatency"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "committed baseline BENCH_*.json")
		currentPath  = fs.String("current", "", "freshly measured BENCH_*.json")
		maxDrop      = fs.Float64("max-throughput-drop", 0.20, "largest tolerated fractional drop in claimsPerSecond")
		maxInflation = fs.Float64("max-p99-inflation", 2.0, "largest tolerated submit p99 multiple of baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *currentPath == "" {
		return errors.New("need both -baseline and -current")
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		return fmt.Errorf("-max-throughput-drop %v out of [0,1)", *maxDrop)
	}
	if *maxInflation < 1 {
		return fmt.Errorf("-max-p99-inflation %v below 1", *maxInflation)
	}

	baseline, err := readPoint(*baselinePath)
	if err != nil {
		return err
	}
	current, err := readPoint(*currentPath)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "benchgate %s: claims/s %.0f -> %.0f, submit p99 %.4fs -> %.4fs\n",
		current.Name, baseline.ClaimsPerSecond, current.ClaimsPerSecond,
		baseline.SubmitLatency.P99Seconds, current.SubmitLatency.P99Seconds)

	var failures []string
	floor := baseline.ClaimsPerSecond * (1 - *maxDrop)
	if current.ClaimsPerSecond < floor {
		failures = append(failures, fmt.Sprintf(
			"throughput regression: %.0f claims/s is below the %.0f floor (baseline %.0f, max drop %.0f%%)",
			current.ClaimsPerSecond, floor, baseline.ClaimsPerSecond, *maxDrop*100))
	}
	ceiling := baseline.SubmitLatency.P99Seconds * *maxInflation
	if current.SubmitLatency.P99Seconds > ceiling {
		failures = append(failures, fmt.Sprintf(
			"latency regression: submit p99 %.4fs exceeds the %.4fs ceiling (baseline %.4fs, max inflation %.1fx)",
			current.SubmitLatency.P99Seconds, ceiling, baseline.SubmitLatency.P99Seconds, *maxInflation))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "FAIL:", f)
		}
		return fmt.Errorf("%d regression(s) past the gate", len(failures))
	}
	fmt.Fprintln(out, "PASS: within the regression envelope")
	return nil
}

func readPoint(path string) (benchPoint, error) {
	var p benchPoint
	raw, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(raw, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	if p.ClaimsPerSecond <= 0 || p.SubmitLatency.P99Seconds <= 0 {
		return p, fmt.Errorf("%s: not a bench artifact (claimsPerSecond=%v, submitLatency.p99Seconds=%v)",
			path, p.ClaimsPerSecond, p.SubmitLatency.P99Seconds)
	}
	return p, nil
}
