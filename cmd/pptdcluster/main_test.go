package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pptd"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero workers", []string{"-workers", "0"}, "positive -workers"},
		{"zero windows", []string{"-windows", "0"}, "positive -windows"},
		{"unknown method", []string{"-method", "em"}, `unknown -method "em"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunClusterEndToEnd boots a 3-worker durable cluster, streams a
// small fleet through the coordinator, and checks the report, the
// bench artifact, and the metrics scrape.
func TestRunClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_cluster.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf strings.Builder
	err := run([]string{
		"-workers", "3", "-users", "12", "-objects", "6", "-windows", "3",
		"-state-dir", filepath.Join(dir, "state"),
		"-bench-out", benchPath, "-metrics-out", metricsPath,
		"-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"6 objects across 3 workers",
		"cluster done: 3 windows, 216 claims total, 0 submissions refused",
		"shard 0:",
		"shard 1:",
		"shard 2:",
		"(shipping to replica)",
		"exactly one worker",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench artifact: %v", err)
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench artifact parse: %v", err)
	}
	if rep.Name != "cluster_ingest" {
		t.Fatalf("bench name = %q, want cluster_ingest", rep.Name)
	}
	if rep.Claims != 216 || rep.Submissions != 36 {
		t.Fatalf("bench counted %d claims / %d submissions, want 216/36", rep.Claims, rep.Submissions)
	}
	if rep.Config.Workers != 3 || !rep.Config.Durable {
		t.Fatalf("bench config = %+v, want 3 durable workers", rep.Config)
	}
	if rep.ClaimsPerSecond <= 0 || rep.SubmitLatency.P99Seconds <= 0 {
		t.Fatalf("bench rates not populated: %+v", rep)
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	for _, series := range []string{"pptd_cluster_routed_claims_total", "pptd_cluster_window_closes_total"} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("metrics exposition missing %s:\n%s", series, metrics)
		}
	}
}

// TestRunBudgetRefusals: a budget that covers exactly one window makes
// every later submission refuse cluster-wide — each worker's ledger
// holds the line for its own users — and the report says so.
func TestRunBudgetRefusals(t *testing.T) {
	// Per-window epsilon at the CLI's default parameters; a 1.5x budget
	// affords exactly one window.
	acct, err := pptd.NewAccountant(1.5)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := pptd.NewMechanism(2)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := acct.Epsilon(mech, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err = run([]string{
		"-workers", "2", "-users", "6", "-objects", "4", "-windows", "3",
		"-budget", fmt.Sprintf("%f", 1.5*eps), "-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "12 submissions refused by budget") {
		t.Fatalf("expected 12 refusals (6 users x 2 later windows):\n%s", out)
	}
	// Later windows still close (carried stats decay forward), just with
	// no fresh claims: the cluster total stays at window 1's.
	if !strings.Contains(out, "cluster done: 3 windows, 24 claims total") {
		t.Fatalf("expected 3 windows with only window 1's claims:\n%s", out)
	}
}
