// Command pptdcluster boots a sharded streaming cluster in-process — N
// durable worker nodes plus an ingest coordinator, all on loopback —
// and drives a simulated device fleet against the coordinator's front
// door. Users are partitioned across workers by consistent hashing on
// their device ID, window closes run the coordinator's merge-estimate
// protocol (so the published truths match a single node's), and with
// -state-dir each worker journals durably and ships its sealed segments
// to a replica directory a fresh node can recover from.
//
// Usage:
//
//	pptdcluster -workers 3 -objects 12 -users 30 -windows 4 \
//	    -lambda1 1.5 -lambda2 2 -delta 0.3 -budget 0 \
//	    -state-dir /tmp/pptdcluster -bench-out BENCH_cluster.json
//
// The per-window report shows cluster-wide ingest throughput, close
// (merge + estimate + commit) latency, and estimate accuracy against
// the simulated ground truth; the final summary breaks claims down per
// shard. -bench-out records the run as a BENCH_cluster.json artifact in
// the same schema as cmd/pptdstream's, so the bench gate can compare
// single-node and cluster trajectories alike.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pptd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pptdcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pptdcluster", flag.ContinueOnError)
	var (
		workersN   = fs.Int("workers", 3, "number of shard worker nodes")
		objects    = fs.Int("objects", 12, "number of micro-tasks (objects)")
		users      = fs.Int("users", 30, "number of simulated devices")
		windows    = fs.Int("windows", 4, "number of windows to stream")
		method     = fs.String("method", "crh", "streaming truth-discovery estimator: crh, gtm, or catd")
		lambda1    = fs.Float64("lambda1", 1.5, "simulated sensor quality (error-variance rate)")
		lambda2    = fs.Float64("lambda2", 2, "perturbation rate released to users")
		delta      = fs.Float64("delta", 0.3, "LDP delta each window is accounted at")
		budget     = fs.Float64("budget", 0, "cumulative epsilon cap per user (0 = track only)")
		decay      = fs.Float64("decay", 1, "per-window retention factor in (0,1]")
		drift      = fs.Float64("drift", 0.2, "per-window random-walk step of the ground truth")
		seed       = fs.Uint64("seed", 1, "deterministic seed for the simulated fleet")
		stateDir   = fs.String("state-dir", "", "base directory for durable workers: worker-N state plus the replica-N archives each worker ships to (empty = in-memory workers, no shipping)")
		interval   = fs.Duration("window-interval", 0, "coordinator auto window-close ticker (0 = driver-closed windows only)")
		benchOut   = fs.String("bench-out", "", "write a BENCH_cluster.json performance artifact to this path")
		metricsOut = fs.String("metrics-out", "", "after the run, scrape the coordinator's GET /metrics and write the exposition to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *windows <= 0 || *users <= 0 {
		return errors.New("need positive -windows and -users")
	}
	if *workersN <= 0 {
		return errors.New("need a positive -workers count")
	}

	estimator, err := methodByName(*method)
	if err != nil {
		return err
	}
	engCfg := pptd.StreamConfig{
		NumObjects:    *objects,
		Decay:         *decay,
		Lambda1:       *lambda1,
		Lambda2:       *lambda2,
		Delta:         *delta,
		EpsilonBudget: *budget,
	}

	// Boot the shard workers, each its own node on loopback.
	workerNodes := make([]*pptd.Node, 0, *workersN)
	workerURLs := make([]string, 0, *workersN)
	defer func() {
		for _, w := range workerNodes {
			_ = w.Close()
		}
	}()
	for i := 0; i < *workersN; i++ {
		opts := []pptd.Option{
			pptd.WithName(fmt.Sprintf("shard-%d", i)),
			pptd.WithMethod(estimator),
			pptd.WithStreamConfig(engCfg),
			pptd.WithClusterWorker(),
		}
		if *stateDir != "" {
			opts = append(opts,
				pptd.WithPersistence(filepath.Join(*stateDir, fmt.Sprintf("worker-%d", i))),
				pptd.WithSegmentShipping(filepath.Join(*stateDir, fmt.Sprintf("replica-%d", i))),
				pptd.WithShippingInterval(500*time.Millisecond),
			)
		}
		node, err := pptd.NewNode(opts...)
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		workerNodes = append(workerNodes, node)
		url, err := serveNode(node)
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		workerURLs = append(workerURLs, url)
	}

	coordOpts := []pptd.Option{
		pptd.WithName("pptdcluster"),
		pptd.WithMethod(estimator),
		pptd.WithStreamConfig(engCfg),
		pptd.WithClusterCoordinator(workerURLs...),
	}
	if *interval > 0 {
		coordOpts = append(coordOpts, pptd.WithWindowInterval(*interval))
	}
	coordNode, err := pptd.NewNode(coordOpts...)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	defer func() { _ = coordNode.Close() }()
	baseURL, err := serveNode(coordNode)
	if err != nil {
		return err
	}

	client, err := pptd.NewClient(baseURL)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	info, err := client.StreamCampaign(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster campaign %q at %s: %d objects across %d workers, estimator=%s, lambda2=%v\n",
		info.Name, baseURL, info.NumObjects, info.Shards, estimatorLabel(info.Estimator), info.Lambda2)
	if info.EpsilonPerWindow > 0 {
		fmt.Fprintf(out, "privacy: epsilon=%.4f per window at delta=%v, budget=%v\n",
			info.EpsilonPerWindow, info.Delta, budgetLabel(info.EpsilonBudget))
	}

	// Simulated fleet, identical to cmd/pptdstream's: per-device quality
	// sigma_s^2 ~ Exp(lambda1), fresh readings of a drifting ground truth
	// every window, perturbed on-device before submission.
	rng := pptd.NewRNG(*seed)
	groundTruth := make([]float64, info.NumObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}
	type device struct {
		user  *pptd.CampaignUser
		rng   *pptd.RNG
		sigma float64
	}
	fleet := make([]*device, *users)
	for i := range fleet {
		userRng := rng.Split()
		d := &device{rng: userRng, sigma: math.Sqrt(userRng.Exp() / *lambda1)}
		u, err := pptd.NewCampaignUser(fmt.Sprintf("device-%03d", i), takeReadings(groundTruth, d.sigma, userRng), userRng)
		if err != nil {
			return err
		}
		d.user = u
		fleet[i] = d
	}

	fmt.Fprintf(out, "%-7s %9s %8s %10s %9s %8s %9s\n",
		"window", "claims", "refused", "claims/s", "close-ms", "mae", "max-eps")
	perf := newPerfTracker()
	var totalRefused int64
	for w := 1; w <= *windows; w++ {
		for n := range groundTruth {
			groundTruth[n] += *drift * rng.Norm()
		}
		for _, d := range fleet {
			if err := d.user.SetReadings(takeReadings(groundTruth, d.sigma, d.rng)); err != nil {
				return err
			}
		}

		var (
			wg      sync.WaitGroup
			refused atomic.Int64
			fatal   atomic.Value
		)
		start := time.Now()
		for _, d := range fleet {
			wg.Add(1)
			go func(d *device) {
				defer wg.Done()
				submitStart := time.Now()
				if _, err := d.user.ParticipateStream(ctx, client); err != nil {
					if errors.Is(err, pptd.ErrBudgetExhausted) {
						refused.Add(1)
						return
					}
					fatal.Store(err)
					return
				}
				perf.observeSubmit(time.Since(submitStart))
			}(d)
		}
		wg.Wait()
		ingestDur := time.Since(start)
		if err, ok := fatal.Load().(error); ok {
			return err
		}
		totalRefused += refused.Load()

		closeStart := time.Now()
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			if refused.Load() > 0 && errors.Is(err, pptd.ErrEmptyWindow) {
				fmt.Fprintf(out, "%-7s %9d %8d %10s %9s %8s %9s\n",
					"-", 0, refused.Load(), "-", "-", "-", "-")
				continue
			}
			return err
		}
		closeDur := time.Since(closeStart)
		perf.observeWindow(res.WindowClaims, ingestDur, closeDur)

		var mae float64
		var covered int
		for n, tv := range groundTruth {
			if n < len(res.Covered) && res.Covered[n] {
				mae += math.Abs(res.Truths[n] - tv)
				covered++
			}
		}
		if covered > 0 {
			mae /= float64(covered)
		}
		maxEps := "-"
		if res.Privacy != nil {
			maxEps = fmt.Sprintf("%.4f", res.Privacy.MaxCumulative)
		}
		fmt.Fprintf(out, "%-7d %9d %8d %10.0f %9.2f %8.4f %9s\n",
			res.Window, res.WindowClaims, refused.Load(),
			float64(res.WindowClaims)/ingestDur.Seconds(),
			float64(closeDur.Microseconds())/1000, mae, maxEps)
	}

	final, err := client.StreamTruths(ctx)
	if err != nil {
		if totalRefused > 0 && errors.Is(err, pptd.ErrNotReady) {
			fmt.Fprintf(out, "cluster done: no window ever closed — all %d submissions refused by budget\n", totalRefused)
			return writeArtifacts(perf, *benchOut, *metricsOut, baseURL, benchConfig(*users, info, *windows, *workersN, *stateDir != ""), totalRefused, out)
		}
		return err
	}
	fmt.Fprintf(out, "cluster done: %d windows, %d claims total, %d submissions refused by budget\n",
		final.Window, final.TotalClaims, totalRefused)
	// The shard breakdown: every claim landed on exactly one worker, and
	// the sum is the cluster total the coordinator served.
	var shardSum int64
	for i, w := range workerNodes {
		eng := w.Stream().Engine()
		claims := eng.TotalClaims()
		shardSum += claims
		fmt.Fprintf(out, "shard %d: %d claims, %d closed windows%s\n",
			i, claims, eng.Window(), shippingLabel(w))
	}
	if shardSum != final.TotalClaims {
		return fmt.Errorf("shard claims sum to %d, coordinator served %d", shardSum, final.TotalClaims)
	}
	fmt.Fprintln(out, "every user's claims and privacy ledger lived on exactly one worker; the coordinator merged only sufficient statistics.")
	return writeArtifacts(perf, *benchOut, *metricsOut, baseURL, benchConfig(*users, info, *windows, *workersN, *stateDir != ""), totalRefused, out)
}

// serveNode mounts a node's handler on a fresh loopback listener; the
// server dies with the process (the run is one-shot).
func serveNode(node *pptd.Node) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

func shippingLabel(w *pptd.Node) string {
	if w.Shipper() == nil {
		return ""
	}
	return " (shipping to replica)"
}

func benchConfig(users int, info pptd.StreamCampaignInfo, windows, workers int, durable bool) BenchConfig {
	return BenchConfig{
		Users: users, Objects: info.NumObjects, Windows: windows,
		Workers: workers, Durable: durable, EpsilonBudget: info.EpsilonBudget,
	}
}

func writeArtifacts(perf *perfTracker, benchOut, metricsOut, baseURL string, cfg BenchConfig, refused int64, out io.Writer) error {
	if benchOut != "" {
		if err := perf.writeBenchReport(benchOut, cfg, refused); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench artifact written to %s\n", benchOut)
	}
	if metricsOut != "" {
		if err := scrapeToFile(baseURL, metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics exposition written to %s\n", metricsOut)
	}
	return nil
}

// driverLatencyBounds buckets the driver-observed round-trip latencies:
// 100µs to 10s, matching cmd/pptdstream so artifacts compare.
var driverLatencyBounds = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

type perfTracker struct {
	mu            sync.Mutex
	submit        pptd.MetricsHistogram
	windowClose   pptd.MetricsHistogram
	claims        int64
	ingestSeconds float64
}

func newPerfTracker() *perfTracker {
	return &perfTracker{
		submit:      pptd.NewMetricsHistogram(driverLatencyBounds),
		windowClose: pptd.NewMetricsHistogram(driverLatencyBounds),
	}
}

func (p *perfTracker) observeSubmit(d time.Duration) {
	p.mu.Lock()
	p.submit.Observe(d.Seconds())
	p.mu.Unlock()
}

func (p *perfTracker) observeWindow(claims int64, ingest, close time.Duration) {
	p.mu.Lock()
	p.claims += claims
	p.ingestSeconds += ingest.Seconds()
	p.windowClose.Observe(close.Seconds())
	p.mu.Unlock()
}

// BenchLatency mirrors cmd/pptdstream's artifact schema, so the bench
// gate reads both.
type BenchLatency struct {
	Count       int64   `json:"count"`
	MeanSeconds float64 `json:"meanSeconds"`
	P50Seconds  float64 `json:"p50Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	P999Seconds float64 `json:"p999Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
}

// BenchConfig records the run shape alongside its numbers.
type BenchConfig struct {
	Users         int     `json:"users"`
	Objects       int     `json:"objects"`
	Windows       int     `json:"windows"`
	Workers       int     `json:"workers"`
	Durable       bool    `json:"durable"`
	EpsilonBudget float64 `json:"epsilonBudget"`
}

// BenchReport is the BENCH_cluster.json artifact -bench-out writes.
type BenchReport struct {
	Name                 string       `json:"name"`
	Timestamp            string       `json:"timestamp"`
	Config               BenchConfig  `json:"config"`
	Submissions          int64        `json:"submissions"`
	RefusedSubmissions   int64        `json:"refusedSubmissions"`
	Claims               int64        `json:"claims"`
	IngestSeconds        float64      `json:"ingestSeconds"`
	ClaimsPerSecond      float64      `json:"claimsPerSecond"`
	SubmissionsPerSecond float64      `json:"submissionsPerSecond"`
	SubmitLatency        BenchLatency `json:"submitLatency"`
	WindowCloseLatency   BenchLatency `json:"windowCloseLatency"`
}

func summarizeLatency(h *pptd.MetricsHistogram) BenchLatency {
	return BenchLatency{
		Count:       h.Count,
		MeanSeconds: h.Mean(),
		P50Seconds:  h.Quantile(0.5),
		P99Seconds:  h.Quantile(0.99),
		P999Seconds: h.Quantile(0.999),
		MaxSeconds:  h.Max,
	}
}

func (p *perfTracker) writeBenchReport(path string, cfg BenchConfig, refused int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := BenchReport{
		Name:               "cluster_ingest",
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		Config:             cfg,
		Submissions:        p.submit.Count,
		RefusedSubmissions: refused,
		Claims:             p.claims,
		IngestSeconds:      p.ingestSeconds,
		SubmitLatency:      summarizeLatency(&p.submit),
		WindowCloseLatency: summarizeLatency(&p.windowClose),
	}
	if p.ingestSeconds > 0 {
		rep.ClaimsPerSecond = float64(p.claims) / p.ingestSeconds
		rep.SubmissionsPerSecond = float64(p.submit.Count) / p.ingestSeconds
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func scrapeToFile(baseURL, path string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return os.WriteFile(path, body, 0o644)
}

// takeReadings simulates one round of sensing: the ground truth observed
// through the device's Gaussian error.
func takeReadings(groundTruth []float64, sigma float64, rng *pptd.RNG) []pptd.CampaignClaim {
	readings := make([]pptd.CampaignClaim, len(groundTruth))
	for n, tv := range groundTruth {
		readings[n] = pptd.CampaignClaim{Object: n, Value: tv + sigma*rng.Norm()}
	}
	return readings
}

func methodByName(name string) (pptd.Method, error) {
	switch name {
	case "crh":
		return pptd.NewCRH()
	case "gtm":
		return pptd.NewGTM()
	case "catd":
		return pptd.NewCATD()
	}
	return nil, fmt.Errorf("unknown -method %q (streaming estimators: crh, gtm, catd)", name)
}

func estimatorLabel(name string) string {
	if name == "" {
		return "crh"
	}
	return name
}

func budgetLabel(b float64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.4f", b)
}
