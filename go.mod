module pptd

go 1.21
