package pptd

import "pptd/internal/obs"

// MetricsRegistry is the node's dependency-free metrics registry:
// counters, gauges, and fixed-bucket histograms, rendered as the
// Prometheus text exposition at GET /metrics. Every Node owns one (see
// Node.Metrics); embedding applications can register their own
// instruments on it, or create standalone registries with
// NewMetricsRegistry for drivers and tests.
type MetricsRegistry = obs.Registry

// MetricsHistogram is the fixed-bucket counting histogram the registry's
// Histogram instruments snapshot to — the same type StreamHistogram
// aliases, so the JSON stats views and the /metrics exposition share one
// implementation.
type MetricsHistogram = obs.Histogram

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsHistogram returns a histogram counting observations into the
// given cumulative upper-bound buckets (ascending; an implicit +Inf
// bucket catches the rest).
func NewMetricsHistogram(bounds []float64) MetricsHistogram {
	return obs.NewHistogram(bounds)
}

// MetricsTextContentType is the Content-Type of the GET /metrics
// response (Prometheus text exposition format 0.0.4).
const MetricsTextContentType = obs.TextContentType
