package pptd_test

import (
	"fmt"
	"os"

	"pptd"
)

// ExampleNewStreamEngine runs the streaming engine in-memory: perturbed
// claims ingest into the open window, and closing the window publishes
// an incremental truth estimate with per-user weights.
func ExampleNewStreamEngine() {
	eng, err := pptd.NewStreamEngine(pptd.StreamConfig{
		NumObjects: 2,
		NumShards:  2, // fixed so the example is deterministic everywhere
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = eng.Close() }()

	// Three devices report on both objects; the third is an outlier.
	submissions := []struct {
		id     string
		claims []pptd.StreamClaim
	}{
		{"device-1", []pptd.StreamClaim{{Object: 0, Value: 10.0}, {Object: 1, Value: 20.0}}},
		{"device-2", []pptd.StreamClaim{{Object: 0, Value: 10.2}, {Object: 1, Value: 19.8}}},
		{"device-3", []pptd.StreamClaim{{Object: 0, Value: 15.0}, {Object: 1, Value: 30.0}}},
	}
	for _, sub := range submissions {
		if _, _, err := eng.Ingest(sub.id, sub.claims); err != nil {
			fmt.Println(err)
			return
		}
	}
	res, err := eng.CloseWindow()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("window %d converged: %v\n", res.Window, res.Converged)
	fmt.Printf("truth for object 0 is near 10: %v\n", res.Truths[0] < 11)
	fmt.Printf("outlier has the lowest weight: %v\n",
		res.Weights["device-3"] < res.Weights["device-1"] &&
			res.Weights["device-3"] < res.Weights["device-2"])
	// Output:
	// window 1 converged: true
	// truth for object 0 is near 10: true
	// outlier has the lowest weight: true
}

// ExampleOpenStreamStore is the durable streaming round trip: a store
// journals every privacy charge — and, with the claim WAL, the claims
// themselves — before the engine acknowledges a submission, so after a
// crash with no snapshot ever written, Recover rebuilds budgets AND
// statistics from the journal alone and the next window close matches
// what the uninterrupted engine would have published.
func ExampleOpenStreamStore() {
	dir, err := os.MkdirTemp("", "pptd-stream-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = os.RemoveAll(dir) }()

	durable := pptd.StreamConfig{
		NumObjects: 1,
		NumShards:  1,
		Lambda1:    1, // enables privacy accounting
		Lambda2:    2,
		Delta:      0.3,
		ClaimWAL:   true, // claims ride the charge record
	}

	// First process: accept two submissions, then crash mid-window —
	// no window close, no snapshot, nothing but the fsync'd journal.
	store, err := pptd.OpenStreamStore(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := durable
	cfg.Ledger = store // every charge is durable before the ack
	eng, err := pptd.NewStreamEngine(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, _, err := eng.Ingest("alice", []pptd.StreamClaim{{Object: 0, Value: 1}}); err != nil {
		fmt.Println(err)
		return
	}
	if _, _, err := eng.Ingest("bob", []pptd.StreamClaim{{Object: 0, Value: 3}}); err != nil {
		fmt.Println(err)
		return
	}
	_ = eng.Close() // the "crash"
	_ = store.Close()

	// Second process: recover everything from the state directory.
	store2, err := pptd.OpenStreamStore(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = store2.Close() }()
	cfg = durable
	cfg.Ledger = store2
	eng2, err := pptd.NewStreamEngine(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = eng2.Close() }()
	recovered, err := store2.Recover(eng2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("recovered state:", recovered)

	// Alice's charge survived: the open window is still paid for, so a
	// second release into it is refused.
	_, _, err = eng2.Ingest("alice", []pptd.StreamClaim{{Object: 0, Value: 9}})
	fmt.Println("alice resubmitting same window:", err != nil)

	// The replayed claims produce the estimate the crash interrupted.
	res, err := eng2.CloseWindow()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("window %d truth: %.1f\n", res.Window, res.Truths[0])
	fmt.Printf("each user charged for %d window(s)\n", res.Privacy.MaxWindows)
	// Output:
	// recovered state: true
	// alice resubmitting same window: true
	// window 1 truth: 2.0
	// each user charged for 1 window(s)
}
