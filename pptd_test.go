package pptd_test

import (
	"math"
	"testing"

	"pptd"
)

func TestFacadeEndToEnd(t *testing.T) {
	rng := pptd.NewRNG(1)
	inst, err := pptd.GenerateSynthetic(pptd.DefaultSyntheticConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := pptd.NewAccountant(1, pptd.WithSensitivityTail(0.5, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	mech, err := acct.MechanismForEpsilon(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	method, err := pptd.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pptd.NewPipeline(mech, method)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := pipe.Run(inst.Dataset, rng)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.UtilityMAE >= outcome.Noise.MeanAbsNoise {
		t.Fatalf("utility MAE %v not below injected noise %v",
			outcome.UtilityMAE, outcome.Noise.MeanAbsNoise)
	}
}

func TestFacadeDatasetBuilder(t *testing.T) {
	b := pptd.NewDatasetBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	b.Add(1, 0, 3)
	b.Add(1, 1, 4)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 || ds.NumObjects() != 2 {
		t.Fatalf("dims (%d, %d)", ds.NumUsers(), ds.NumObjects())
	}

	dense, err := pptd.DatasetFromDense([][]float64{{1, math.NaN()}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if dense.NumObservations() != 3 {
		t.Fatalf("observations = %d", dense.NumObservations())
	}
}

func TestFacadeMethods(t *testing.T) {
	ds, err := pptd.DatasetFromDense([][]float64{
		{1, 5},
		{1.2, 5.2},
		{0.8, 4.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	crh, err := pptd.NewCRH(pptd.WithCRHDistance(pptd.AbsoluteDistance), pptd.WithCRHMaxIterations(50))
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := pptd.NewGTM(pptd.WithGTMVariancePrior(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	catd, err := pptd.NewCATD(pptd.WithCATDConfidence(0.9))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []pptd.Method{crh, gtm, catd, pptd.MeanBaseline(), pptd.MedianBaseline()} {
		res, err := m.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.Truths) != 2 {
			t.Fatalf("%s: %d truths", m.Name(), len(res.Truths))
		}
		if res.Truths[0] < 0.8 || res.Truths[0] > 1.2 {
			t.Fatalf("%s: truth %v", m.Name(), res.Truths[0])
		}
	}
}

func TestFacadeTheory(t *testing.T) {
	gamma, err := pptd.SensitivityGamma(3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pptd.NoiseLevelForEpsilon(1, 0.3, 1, gamma)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := pptd.EpsilonForNoiseLevel(c, 0.3, 1, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-1) > 1e-9 {
		t.Fatalf("round trip epsilon = %v", eps)
	}
	cap1, err := pptd.UtilityNoiseUpperBound(1, 1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cap1 <= 0 {
		t.Fatalf("utility cap = %v", cap1)
	}
	tr, err := pptd.AnalyzeTradeoff(1, 1, 0.1, 500, 1, 0.3, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Feasible {
		t.Fatalf("expected feasible tradeoff, got %+v", tr)
	}
	lambda2, err := pptd.Lambda2ForNoiseLevel(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lambda2 != 0.5 {
		t.Fatalf("lambda2 = %v", lambda2)
	}
	if noise := pptd.ExpectedAbsNoise(0.5); math.Abs(noise-1) > 1e-12 {
		t.Fatalf("expected abs noise = %v", noise)
	}
}

func TestFacadeWeightsHelpers(t *testing.T) {
	ds, err := pptd.DatasetFromDense([][]float64{
		{1, 5},
		{3, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := pptd.WeightsAgainst(ds, []float64{1, 5}, pptd.SquaredDistance)
	if err != nil {
		t.Fatal(err)
	}
	if ws[0] <= ws[1] {
		t.Fatalf("exact user not favored: %v", ws)
	}
	if !pptd.NormalizeWeights(ws) {
		t.Fatal("normalize failed")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(pptd.Experiments()) < 9 {
		t.Fatalf("registry has %d experiments", len(pptd.Experiments()))
	}
	if _, err := pptd.RunExperiment("does-not-exist", pptd.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeFloorplan(t *testing.T) {
	cfg := pptd.DefaultFloorplanConfig()
	cfg.NumUsers = 30
	cfg.NumSegments = 10
	inst, err := pptd.GenerateFloorplan(cfg, pptd.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Dataset.NumUsers() != 30 || len(inst.SegmentLengths) != 10 {
		t.Fatalf("floorplan shape (%d, %d)", inst.Dataset.NumUsers(), len(inst.SegmentLengths))
	}
}

func TestFacadeCategorical(t *testing.T) {
	rng := pptd.NewRNG(9)
	b := pptd.NewCategoricalBuilder(3, 2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	b.Add(1, 0, 1)
	b.Add(1, 1, 2)
	b.Add(2, 0, 0)
	b.Add(2, 1, 1)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := pptd.NewRandomizedResponse(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := rr.PerturbDataset(ds, rng)
	if err != nil {
		t.Fatal(err)
	}
	voting, err := pptd.NewWeightedVoting()
	if err != nil {
		t.Fatal(err)
	}
	res, err := voting.Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truths) != 2 {
		t.Fatalf("truths = %v", res.Truths)
	}
	acc, err := pptd.CategoricalAccuracy(res.Truths, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	majority, err := pptd.NewWeightedVoting(pptd.WithUnweightedVoting())
	if err != nil {
		t.Fatal(err)
	}
	if majority.Name() != "majority" {
		t.Fatalf("name = %q", majority.Name())
	}
}

func TestFacadeSecureAggregation(t *testing.T) {
	rng := pptd.NewRNG(21)
	agg, err := pptd.NewSecureAggregator(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := agg.Sum([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sums[0]-9) > 1e-6 || math.Abs(sums[1]-12) > 1e-6 {
		t.Fatalf("secure sums = %v", sums)
	}

	inst, err := pptd.GenerateSynthetic(pptd.SyntheticConfig{
		NumUsers: 20, NumObjects: 10, Lambda1: 2,
		TruthLow: 0, TruthHigh: 10, ObserveProb: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, cost, err := pptd.SecureCRH(inst.Dataset, 50, 1e-6, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truths) != 10 || cost.TotalBytes <= 0 {
		t.Fatalf("secure CRH res=%v cost=%+v", res.Truths, cost)
	}
	pc := pptd.PerturbationCost(20, 10)
	if pc.TotalBytes >= cost.TotalBytes {
		t.Fatalf("perturbation %d bytes not below secure-agg %d", pc.TotalBytes, cost.TotalBytes)
	}
}

func TestFacadePersonalizedMechanism(t *testing.T) {
	rng := pptd.NewRNG(22)
	inst, err := pptd.GenerateSynthetic(pptd.SyntheticConfig{
		NumUsers: 10, NumObjects: 5, Lambda1: 2,
		TruthLow: 0, TruthHigh: 10, ObserveProb: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, 10)
	for i := range rates {
		rates[i] = float64(i + 1)
	}
	m, err := pptd.NewPersonalizedMechanism(rates)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, report, err := m.PerturbDataset(inst.Dataset, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.NumObservations() != inst.Dataset.NumObservations() {
		t.Fatal("sparsity changed")
	}
	if len(report.UserVariances) != 10 {
		t.Fatalf("variances = %v", report.UserVariances)
	}
}
