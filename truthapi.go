package pptd

import "pptd/internal/truth"

// Dataset is a sparse user-by-object matrix of continuous claims.
type Dataset = truth.Dataset

// Observation is a single (user, object, value) claim.
type Observation = truth.Observation

// DatasetBuilder accumulates observations into a Dataset.
type DatasetBuilder = truth.Builder

// NewDatasetBuilder returns a builder for a numUsers x numObjects dataset.
func NewDatasetBuilder(numUsers, numObjects int) *DatasetBuilder {
	return truth.NewBuilder(numUsers, numObjects)
}

// DatasetFromDense builds a Dataset from a dense matrix; NaN marks
// missing observations.
func DatasetFromDense(matrix [][]float64) (*Dataset, error) {
	return truth.FromDense(matrix)
}

// Method is a truth-discovery algorithm mapping a Dataset to aggregated
// truths and user weights.
type Method = truth.Method

// Result is the output of one truth-discovery run.
type Result = truth.Result

// Distance selects the claim-to-truth distance used in weight updates.
type Distance = truth.Distance

// Distances supported by CRH-style weight estimation.
const (
	// SquaredDistance is (x - t)^2.
	SquaredDistance = truth.SquaredDistance
	// AbsoluteDistance is |x - t|.
	AbsoluteDistance = truth.AbsoluteDistance
	// NormalizedSquaredDistance is (x - t)^2 / std_n (scale-free).
	NormalizedSquaredDistance = truth.NormalizedSquaredDistance
)

// CRHOption configures NewCRH.
type CRHOption = truth.CRHOption

// NewCRH returns the CRH truth-discovery method (Li et al., SIGMOD'14) —
// the method the paper instantiates in Eq. (1)-(3).
func NewCRH(opts ...CRHOption) (Method, error) { return truth.NewCRH(opts...) }

// WithCRHDistance selects the CRH distance function.
func WithCRHDistance(d Distance) CRHOption { return truth.WithCRHDistance(d) }

// WithCRHTolerance sets the CRH convergence tolerance.
func WithCRHTolerance(tol float64) CRHOption { return truth.WithCRHTolerance(tol) }

// WithCRHMaxIterations caps CRH iterations.
func WithCRHMaxIterations(n int) CRHOption { return truth.WithCRHMaxIterations(n) }

// GTMOption configures NewGTM.
type GTMOption = truth.GTMOption

// NewGTM returns the Gaussian Truth Model method (Zhao & Han, QDB'12),
// the second method the paper evaluates (Fig. 5).
func NewGTM(opts ...GTMOption) (Method, error) { return truth.NewGTM(opts...) }

// WithGTMTolerance sets the GTM convergence tolerance.
func WithGTMTolerance(tol float64) GTMOption { return truth.WithGTMTolerance(tol) }

// WithGTMMaxIterations caps GTM iterations.
func WithGTMMaxIterations(n int) GTMOption { return truth.WithGTMMaxIterations(n) }

// WithGTMVariancePrior sets the inverse-Gamma(alpha, beta) prior on user
// variances.
func WithGTMVariancePrior(alpha, beta float64) GTMOption {
	return truth.WithGTMVariancePrior(alpha, beta)
}

// CATDOption configures NewCATD.
type CATDOption = truth.CATDOption

// NewCATD returns the confidence-aware truth-discovery extension.
func NewCATD(opts ...CATDOption) (Method, error) { return truth.NewCATD(opts...) }

// WithCATDConfidence sets the chi-squared confidence level.
func WithCATDConfidence(conf float64) CATDOption { return truth.WithCATDConfidence(conf) }

// MeanBaseline returns the uniform-weight averaging baseline.
func MeanBaseline() Method { return truth.Mean{} }

// MedianBaseline returns the per-object median baseline.
func MedianBaseline() Method { return truth.Median{} }

// WeightsAgainst evaluates the CRH weight formula against a fixed
// reference truth vector (e.g. ground truth, for the paper's Fig. 7
// "true weights").
func WeightsAgainst(ds *Dataset, reference []float64, distance Distance) ([]float64, error) {
	return truth.WeightsAgainst(ds, reference, distance)
}

// NormalizeWeights rescales weights to mean 1 in place, preserving
// ratios. It reports whether normalization was possible.
func NormalizeWeights(ws []float64) bool { return truth.NormalizeWeights(ws) }
