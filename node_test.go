package pptd_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pptd"
)

// TestNodeOptionValidation drives the option matrix: conflicting and
// half-configured sets must fail with a typed error wrapping
// ErrNodeConfig that names the offending option — never a silent
// default, never a panic.
func TestNodeOptionValidation(t *testing.T) {
	crh, err := pptd.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := pptd.NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []pptd.Option
		want string // substring of the error
	}{
		{"no servers", nil, "at least one of"},
		{"expected users without batch",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithExpectedUsers(3)},
			"WithExpectedUsers requires WithBatchCampaign"},
		{"method without any campaign",
			[]pptd.Option{pptd.WithMethod(crh)},
			"configure at least one of WithBatchCampaign and WithStreamEngine"},
		{"batch-only method with stream",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithMethod(pptd.MeanBaseline())},
			"batch-only"},
		{"method conflicts with config estimator",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, Estimator: "gtm"}), pptd.WithMethod(crh)},
			"WithMethod conflicts with WithStreamConfig.Estimator"},
		{"stream distance under gtm",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithMethod(gtm), pptd.WithStreamDistance(pptd.SquaredDistance)},
			"WithStreamDistance parameterizes the CRH estimator"},
		{"stream distance without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithStreamDistance(pptd.SquaredDistance)},
			"WithStreamDistance requires a stream engine"},
		{"stream tolerance without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithStreamTolerance(1e-7)},
			"WithStreamTolerance requires a stream engine"},
		{"stream max iterations without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithStreamMaxIterations(50)},
			"WithStreamMaxIterations requires a stream engine"},
		{"queue depth without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithQueueDepth(16)},
			"WithQueueDepth requires a stream engine"},
		{"carryover off without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithoutWeightCarryover()},
			"WithoutWeightCarryover requires a stream engine"},
		{"bad stream distance",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithStreamDistance(0)},
			"WithStreamDistance: unknown distance"},
		{"bad stream tolerance",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithStreamTolerance(-1)},
			"WithStreamTolerance: tol = -1"},
		{"bad stream max iterations",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithStreamMaxIterations(0)},
			"WithStreamMaxIterations: n = 0"},
		{"bad queue depth",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithQueueDepth(-2)},
			"WithQueueDepth: n = -2"},
		{"tolerance conflicts with config",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, Tolerance: 1e-6}), pptd.WithStreamTolerance(1e-7)},
			"WithStreamTolerance conflicts with WithStreamConfig.Tolerance"},
		{"max iterations conflicts with config",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, MaxIterations: 20}), pptd.WithStreamMaxIterations(50)},
			"WithStreamMaxIterations conflicts with WithStreamConfig.MaxIterations"},
		{"queue depth conflicts with config",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, QueueDepth: 8}), pptd.WithQueueDepth(16)},
			"WithQueueDepth conflicts with WithStreamConfig.QueueDepth"},
		{"distance conflicts with config",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, Distance: pptd.AbsoluteDistance}), pptd.WithStreamDistance(pptd.SquaredDistance)},
			"WithStreamDistance conflicts with WithStreamConfig.Distance"},
		{"carryover conflicts with config",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, DisableCarryover: true}), pptd.WithoutWeightCarryover()},
			"WithoutWeightCarryover conflicts with WithStreamConfig.DisableCarryover"},
		{"shards without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithShards(4)},
			"WithShards requires a stream engine"},
		{"decay without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithDecay(0.5)},
			"WithDecay requires a stream engine"},
		{"window interval without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithWindowInterval(time.Second)},
			"WithWindowInterval requires a stream engine"},
		{"window history without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithWindowHistory(4)},
			"WithWindowHistory requires a stream engine"},
		{"persistence without any campaign",
			[]pptd.Option{pptd.WithLambda2(2), pptd.WithPersistence(t.TempDir())},
			"configure at least one of"},
		{"resident cap without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithMaxResidentUsers(8)},
			"WithMaxResidentUsers requires a stream engine"},
		{"resident bytes without stream",
			[]pptd.Option{pptd.WithBatchCampaign(5), pptd.WithLambda2(2), pptd.WithResidentBytes(1 << 20)},
			"WithResidentBytes requires a stream engine"},
		{"resident cap without persistence",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithLambda2(2), pptd.WithMaxResidentUsers(8)},
			"require WithPersistence"},
		{"lambda2 conflicts with target",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithLambda2(2),
				pptd.WithDataQuality(1), pptd.WithPrivacyTarget(0.5, 0.3)},
			"WithLambda2 conflicts with WithPrivacyTarget"},
		{"target without data quality",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithPrivacyTarget(0.5, 0.3)},
			"WithPrivacyTarget requires WithDataQuality"},
		{"data quality without target",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithDataQuality(1)},
			"WithDataQuality requires WithPrivacyTarget"},
		{"budget without accounting",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithEpsilonBudget(10)},
			"WithEpsilonBudget requires privacy accounting"},
		{"per-user report without accounting",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithPerUserReport()},
			"WithPerUserReport requires privacy accounting"},
		{"batch without a perturbation rate",
			[]pptd.Option{pptd.WithBatchCampaign(5)},
			"requires a perturbation rate"},
		{"stream engine conflicts with stream config",
			[]pptd.Option{pptd.WithStreamEngine(5), pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5})},
			"WithStreamConfig conflicts with WithStreamEngine"},
		{"target conflicts with stream config accounting",
			[]pptd.Option{
				pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 0.3}),
				pptd.WithDataQuality(1), pptd.WithPrivacyTarget(0.5, 0.3)},
			"WithPrivacyTarget conflicts with WithStreamConfig"},
		{"lambda2 conflicts with stream config lambda2",
			[]pptd.Option{
				pptd.WithStreamConfig(pptd.StreamConfig{NumObjects: 5, Lambda2: 2}),
				pptd.WithLambda2(3)},
			"WithLambda2 conflicts with WithStreamConfig.Lambda2"},
		{"budget conflicts with stream config budget",
			[]pptd.Option{
				pptd.WithStreamConfig(pptd.StreamConfig{
					NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 0.3, EpsilonBudget: 3}),
				pptd.WithEpsilonBudget(5)},
			"WithEpsilonBudget conflicts with WithStreamConfig.EpsilonBudget"},
		{"per-user report conflicts with stream config",
			[]pptd.Option{
				pptd.WithStreamConfig(pptd.StreamConfig{
					NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 0.3, PerUserReport: true}),
				pptd.WithPerUserReport()},
			"WithPerUserReport conflicts with WithStreamConfig.PerUserReport"},
		{"explicit claim WAL without persistence",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{
				NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 0.3, ClaimWAL: true})},
			"ClaimWAL requires WithPersistence"},
		{"explicit claim WAL without accounting",
			[]pptd.Option{pptd.WithStreamConfig(pptd.StreamConfig{
				NumObjects: 5, Lambda2: 2, ClaimWAL: true})},
			"ClaimWAL requires accounting"},
		{"explicit claim WAL against WithoutClaimWAL",
			[]pptd.Option{
				pptd.WithStreamConfig(pptd.StreamConfig{
					NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 0.3, ClaimWAL: true}),
				pptd.WithPersistence(t.TempDir(), pptd.WithoutClaimWAL())},
			"WithoutClaimWAL conflicts with WithStreamConfig.ClaimWAL"},
		{"double batch", []pptd.Option{pptd.WithBatchCampaign(5), pptd.WithBatchCampaign(5)},
			"configured twice"},
		{"double stream", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithStreamEngine(5)},
			"configured twice"},
		{"bad batch objects", []pptd.Option{pptd.WithBatchCampaign(0)}, "numObjects = 0"},
		{"bad stream objects", []pptd.Option{pptd.WithStreamEngine(-1)}, "numObjects = -1"},
		{"bad decay", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithDecay(1.5)}, "WithDecay"},
		{"bad shards", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithShards(0)}, "WithShards"},
		{"bad history", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithWindowHistory(0)}, "WithWindowHistory"},
		{"bad lambda2", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithLambda2(math.NaN())}, "WithLambda2"},
		{"bad target eps", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithPrivacyTarget(-1, 0.3)}, "eps = -1"},
		{"bad target delta", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithPrivacyTarget(0.5, 1)}, "delta = 1"},
		{"empty persistence dir", []pptd.Option{pptd.WithStreamEngine(5), pptd.WithPersistence("")}, "empty state directory"},
		{"bad group commit",
			[]pptd.Option{pptd.WithStreamEngine(5),
				pptd.WithPersistence(t.TempDir(), pptd.WithGroupCommit(-time.Second, 0))},
			"WithGroupCommit"},
		{"bad snapshot cadence",
			[]pptd.Option{pptd.WithStreamEngine(5),
				pptd.WithPersistence(t.TempDir(), pptd.WithSnapshotEvery(0))},
			"WithSnapshotEvery"},
		{"bad segment bytes",
			[]pptd.Option{pptd.WithStreamEngine(5),
				pptd.WithPersistence(t.TempDir(), pptd.WithSegmentBytes(0))},
			"WithSegmentBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := pptd.NewNode(tc.opts...)
			if err == nil {
				_ = n.Close()
				t.Fatalf("NewNode succeeded, want error containing %q", tc.want)
			}
			if !errors.Is(err, pptd.ErrNodeConfig) {
				t.Errorf("error %v does not wrap ErrNodeConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestNodeBuildsEveryOldConfiguration checks that the options path can
// express what the config structs could: batch with method + trigger,
// stream with shards/decay/accounting/budget, and the full escape hatch.
func TestNodeBuildsEveryOldConfiguration(t *testing.T) {
	gtm, err := pptd.NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []pptd.Option
	}{
		{"batch only", []pptd.Option{
			pptd.WithName("b"), pptd.WithBatchCampaign(7), pptd.WithLambda2(2),
			pptd.WithMethod(gtm), pptd.WithExpectedUsers(3)}},
		{"stream only", []pptd.Option{
			pptd.WithStreamEngine(7), pptd.WithShards(2), pptd.WithDecay(0.8),
			pptd.WithLambda2(2), pptd.WithWindowHistory(4)}},
		{"stream with target accounting", []pptd.Option{
			pptd.WithStreamEngine(7), pptd.WithDataQuality(1.5),
			pptd.WithPrivacyTarget(0.5, 0.3), pptd.WithEpsilonBudget(2),
			pptd.WithPerUserReport()}},
		{"escape hatch with explicit rates", []pptd.Option{
			pptd.WithStreamConfig(pptd.StreamConfig{
				NumObjects: 7, Lambda1: 1.5, Lambda2: 2, Delta: 0.3,
				DisableCarryover: true, QueueDepth: 16})}},
		{"batch and stream together", []pptd.Option{
			pptd.WithBatchCampaign(7), pptd.WithStreamEngine(7), pptd.WithLambda2(2)}},
		{"batch-only with derived lambda2", []pptd.Option{
			pptd.WithBatchCampaign(7), pptd.WithDataQuality(1),
			pptd.WithPrivacyTarget(0.5, 0.3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := pptd.NewNode(tc.opts...)
			if err != nil {
				t.Fatalf("NewNode: %v", err)
			}
			if err := n.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestNodeDerivesLambda2FromPrivacyTarget checks the WithPrivacyTarget
// path publishes the lambda2 the accountant derives and charges windows
// at (close to) the target epsilon.
func TestNodeDerivesLambda2FromPrivacyTarget(t *testing.T) {
	const lambda1, eps, delta = 1.5, 0.5, 0.3
	acct, err := pptd.NewAccountant(lambda1)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := acct.MechanismForEpsilon(eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pptd.NewNode(
		pptd.WithStreamEngine(5),
		pptd.WithDataQuality(lambda1),
		pptd.WithPrivacyTarget(eps, delta),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()

	info := n.Stream().Campaign()
	if got, want := info.Lambda2, mech.Lambda2(); math.Abs(got-want) > 1e-12 {
		t.Errorf("published lambda2 = %v, accountant derives %v", got, want)
	}
	if math.Abs(info.EpsilonPerWindow-eps) > 1e-9 {
		t.Errorf("epsilon per window = %v, want target %v", info.EpsilonPerWindow, eps)
	}
	if info.Delta != delta {
		t.Errorf("delta = %v, want %v", info.Delta, delta)
	}
}

// TestNodeFrontDoor runs the batch and streaming flows end to end
// against one node handler: one mux, one client, one error contract.
func TestNodeFrontDoor(t *testing.T) {
	n, err := pptd.NewNode(
		pptd.WithName("front-door"),
		pptd.WithBatchCampaign(2),
		pptd.WithStreamEngine(2),
		pptd.WithLambda2(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Batch flow.
	if _, err := client.Submit(ctx, pptd.CampaignSubmission{
		ClientID: "u1",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}, {Object: 1, Value: 2}},
	}); err != nil {
		t.Fatalf("batch submit: %v", err)
	}
	if _, err := client.Result(ctx); !errors.Is(err, pptd.ErrNotReady) {
		t.Fatalf("pre-aggregate result err = %v, want ErrNotReady", err)
	}
	if _, err := client.Aggregate(ctx); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	res, err := client.Result(ctx)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Truths) != 2 {
		t.Fatalf("truths = %v", res.Truths)
	}

	// Streaming flow on the same address.
	if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "u1",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 5}},
	}); err != nil {
		t.Fatalf("stream submit: %v", err)
	}
	win, err := client.StreamCloseWindow(ctx)
	if err != nil {
		t.Fatalf("close window: %v", err)
	}
	if win.Window != 1 {
		t.Fatalf("window = %d, want 1", win.Window)
	}
	truths, err := client.StreamTruths(ctx)
	if err != nil {
		t.Fatalf("stream truths: %v", err)
	}
	if truths.Window != 1 {
		t.Fatalf("latest window = %d", truths.Window)
	}

	// Unknown paths speak the envelope too.
	resp, err := http.Get(ts.URL + "/v1/no-such-thing")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var eb pptd.APIErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode not-found body: %v", err)
	}
	if resp.StatusCode != http.StatusNotFound || eb.Code != "not_found" || eb.V != 1 {
		t.Fatalf("unknown path: status %d envelope %+v", resp.StatusCode, eb)
	}
}

// TestNodeWindowHistory drives ?window=N against a bounded ring: recent
// windows answer, evicted and future windows fail with ErrUnknownWindow.
func TestNodeWindowHistory(t *testing.T) {
	n, err := pptd.NewNode(
		pptd.WithStreamEngine(1),
		pptd.WithWindowHistory(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for w := 1; w <= 5; w++ {
		if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
			ClientID: "u",
			Claims:   []pptd.CampaignClaim{{Object: 0, Value: float64(10 * w)}},
		}); err != nil {
			t.Fatalf("window %d submit: %v", w, err)
		}
		if _, err := client.StreamCloseWindow(ctx); err != nil {
			t.Fatalf("window %d close: %v", w, err)
		}
	}

	for w := 3; w <= 5; w++ {
		info, err := client.StreamTruthsAt(ctx, w)
		if err != nil {
			t.Fatalf("truths at %d: %v", w, err)
		}
		if info.Window != w {
			t.Errorf("truths at %d returned window %d", w, info.Window)
		}
	}
	for _, w := range []int{1, 2, 99} {
		_, err := client.StreamTruthsAt(ctx, w)
		if !errors.Is(err, pptd.ErrUnknownWindow) {
			t.Errorf("truths at %d err = %v, want ErrUnknownWindow", w, err)
		}
	}
	// window=0 means latest.
	info, err := client.StreamTruthsAt(ctx, 0)
	if err != nil || info.Window != 5 {
		t.Fatalf("latest via window=0: %v %+v", err, info)
	}
}

// TestNodeHistorySurvivesRecovery is the acceptance drill: a durable
// node serves ?window=N for the last K windows, and still does after a
// kill-and-recover into the same state directory — including the error
// envelope staying intact on the recovered node.
func TestNodeHistorySurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *pptd.Node {
		t.Helper()
		n, err := pptd.NewNode(
			pptd.WithStreamEngine(1),
			pptd.WithWindowHistory(4),
			pptd.WithPersistence(dir),
		)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n := open()
	ts := httptest.NewServer(n.Handler())
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	truthOf := map[int]float64{}
	for w := 1; w <= 6; w++ {
		if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
			ClientID: "u",
			Claims:   []pptd.CampaignClaim{{Object: 0, Value: float64(w)}},
		}); err != nil {
			t.Fatalf("window %d submit: %v", w, err)
		}
		info, err := client.StreamCloseWindow(ctx)
		if err != nil {
			t.Fatalf("window %d close: %v", w, err)
		}
		truthOf[w] = info.Truths[0]
	}
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatalf("close node: %v", err)
	}

	// Reopen into the same directory: the retained history must answer
	// the same windows with the same truths, before any new traffic.
	n2 := open()
	defer func() { _ = n2.Close() }()
	ts2 := httptest.NewServer(n2.Handler())
	defer ts2.Close()
	client2, err := pptd.NewClient(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	for w := 3; w <= 6; w++ {
		info, err := client2.StreamTruthsAt(ctx, w)
		if err != nil {
			t.Fatalf("recovered truths at %d: %v", w, err)
		}
		if info.Window != w || math.Abs(info.Truths[0]-truthOf[w]) > 1e-12 {
			t.Errorf("recovered window %d = %+v, want truth %v", w, info, truthOf[w])
		}
	}
	// Evicted window: still the typed error, still the envelope.
	_, err = client2.StreamTruthsAt(ctx, 1)
	if !errors.Is(err, pptd.ErrUnknownWindow) {
		t.Fatalf("recovered truths at 1 err = %v, want ErrUnknownWindow", err)
	}
	var httpErr *pptd.CampaignHTTPError
	if !errors.As(err, &httpErr) || httpErr.Code != "unknown_window" || httpErr.StatusCode != http.StatusNotFound {
		t.Fatalf("recovered envelope = %+v", httpErr)
	}
	// The stream resumes where it left off.
	info, err := client2.StreamTruths(ctx)
	if err != nil || info.Window != 6 {
		t.Fatalf("recovered latest: %v %+v", err, info)
	}
}

// TestNodeSegmentedJournal drives a durable node with a tiny
// WithSegmentBytes cap through several windows: segments must roll and
// be deleted by compaction (visible in the wire stats), and a restarted
// node on the same directory must recover budgets and truths from the
// segmented layout.
func TestNodeSegmentedJournal(t *testing.T) {
	dir := t.TempDir()
	open := func() *pptd.Node {
		t.Helper()
		n, err := pptd.NewNode(
			pptd.WithStreamConfig(pptd.StreamConfig{
				NumObjects: 2, NumShards: 1, Lambda1: 1.5, Lambda2: 2, Delta: 0.3,
			}),
			pptd.WithPersistence(dir,
				pptd.WithSegmentBytes(256),
				pptd.WithSnapshotEvery(2),
			),
		)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n := open()
	ts := httptest.NewServer(n.Handler())
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var lastTruths []float64
	for w := 0; w < 4; w++ {
		for u := 0; u < 3; u++ {
			if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
				ClientID: fmt.Sprintf("u%d", u),
				Claims:   []pptd.CampaignClaim{{Object: 0, Value: float64(w + u)}, {Object: 1, Value: 2}},
			}); err != nil {
				t.Fatalf("window %d submit %d: %v", w, u, err)
			}
		}
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			t.Fatalf("close %d: %v", w, err)
		}
		lastTruths = res.Truths
	}
	stats, err := client.StreamStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Store
	if st == nil {
		t.Fatal("no store stats on durable node")
	}
	if st.SegmentsSealed < 2 {
		t.Errorf("segments sealed = %d, want >= 2 (claim-WAL records at a 256-byte cap must roll)", st.SegmentsSealed)
	}
	if st.SegmentsDeleted < 1 {
		t.Errorf("segments deleted = %d; covered segments not reclaimed", st.SegmentsDeleted)
	}
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: recovery from segments alone.
	n2 := open()
	defer func() { _ = n2.Close() }()
	ts2 := httptest.NewServer(n2.Handler())
	defer ts2.Close()
	client2, err := pptd.NewClient(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client2.StreamTruths(ctx)
	if err != nil {
		t.Fatalf("truths after restart: %v", err)
	}
	if got.Window != 4 {
		t.Fatalf("recovered window = %d, want 4", got.Window)
	}
	for i, v := range lastTruths {
		if math.Abs(got.Truths[i]-v) > 1e-9 {
			t.Errorf("recovered truth[%d] = %v, want %v", i, got.Truths[i], v)
		}
	}
	// Budgets survived too: a user re-submitting into the re-opened
	// window is charged on top of the recovered spending, not afresh.
	if _, err := client2.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "u0",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}},
	}); err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if _, err := client2.StreamSubmit(ctx, pptd.CampaignSubmission{
		ClientID: "u0",
		Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}},
	}); !errors.Is(err, pptd.ErrDuplicateWindow) {
		t.Fatalf("duplicate submit after restart = %v, want ErrDuplicateWindow", err)
	}
}

// TestNodeStreamStats checks GET /v1/stream/stats: a durable node
// reports journal counters and group-commit histograms, a memory-only
// node reports Durable false with no store block.
func TestNodeStreamStats(t *testing.T) {
	dir := t.TempDir()
	n, err := pptd.NewNode(
		pptd.WithStreamConfig(pptd.StreamConfig{
			NumObjects: 2, Lambda1: 1.5, Lambda2: 2, Delta: 0.3,
		}),
		pptd.WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
			ClientID: fmt.Sprintf("u%d", i),
			Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}},
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}

	stats, err := client.StreamStats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !stats.Durable || stats.Store == nil {
		t.Fatalf("stats = %+v, want durable with store block", stats)
	}
	st := stats.Store
	if st.JournalAppends != 3 {
		t.Errorf("journal appends = %d, want 3", st.JournalAppends)
	}
	if st.JournalSyncs < 1 || st.JournalSyncs > 3 {
		t.Errorf("journal syncs = %d", st.JournalSyncs)
	}
	if st.BatchSizes.Count != st.JournalSyncs {
		t.Errorf("batch-size observations = %d, syncs = %d", st.BatchSizes.Count, st.JournalSyncs)
	}
	if int64(st.BatchSizes.Sum) != st.JournalAppends {
		t.Errorf("batch-size sum = %v, appends = %d", st.BatchSizes.Sum, st.JournalAppends)
	}
	if st.FlushLatencySeconds.Count != st.JournalSyncs || st.FlushLatencySeconds.Max <= 0 {
		t.Errorf("flush latency histogram = %+v", st.FlushLatencySeconds)
	}
	if st.ResultsSaved != 1 || st.Snapshots != 1 {
		t.Errorf("results = %d snapshots = %d, want 1/1", st.ResultsSaved, st.Snapshots)
	}
	if stats.Window != 1 || stats.HistoryOldest != 1 {
		t.Errorf("stats window bounds = %+v", stats)
	}

	// Memory-only node: stats still served, no store block.
	n2, err := pptd.NewNode(pptd.WithStreamEngine(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n2.Close() }()
	ts2 := httptest.NewServer(n2.Handler())
	defer ts2.Close()
	client2, err := pptd.NewClient(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := client2.StreamStats(ctx)
	if err != nil {
		t.Fatalf("memory-only stats: %v", err)
	}
	if stats2.Durable || stats2.Store != nil {
		t.Fatalf("memory-only stats = %+v", stats2)
	}
}

// TestNodeStreamEstimator checks WithMethod reaches the streaming side:
// the engine runs the selected estimator, the wire metadata (campaign,
// stats, window results) names it, and a durable node refuses to recover
// a state directory written under a different estimator with the typed
// ErrStreamEstimatorMismatch instead of silently reinterpreting it.
func TestNodeStreamEstimator(t *testing.T) {
	gtm, err := pptd.NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	n, err := pptd.NewNode(
		pptd.WithStreamEngine(2),
		pptd.WithMethod(gtm),
		pptd.WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	client, err := pptd.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	campaign, err := client.StreamCampaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if campaign.Estimator != "gtm" {
		t.Errorf("campaign estimator = %q, want %q", campaign.Estimator, "gtm")
	}
	for _, id := range []string{"a", "b"} {
		if _, err := client.StreamSubmit(ctx, pptd.CampaignSubmission{
			ClientID: id,
			Claims:   []pptd.CampaignClaim{{Object: 0, Value: 1}, {Object: 1, Value: 2}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := client.StreamCloseWindow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Estimator != "gtm" {
		t.Errorf("window estimator = %q, want %q", info.Estimator, "gtm")
	}
	stats, err := client.StreamStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Estimator != "gtm" {
		t.Errorf("stats estimator = %q, want %q", stats.Estimator, "gtm")
	}
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// Same directory, default estimator (CRH): recovery must refuse the
	// GTM-written snapshot with the typed sentinel.
	_, err = pptd.NewNode(pptd.WithStreamEngine(2), pptd.WithPersistence(dir))
	if !errors.Is(err, pptd.ErrStreamEstimatorMismatch) {
		t.Fatalf("recover under crh = %v, want ErrStreamEstimatorMismatch", err)
	}
	// The matching estimator recovers fine.
	n2, err := pptd.NewNode(
		pptd.WithStreamEngine(2),
		pptd.WithMethod(gtm),
		pptd.WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
}
