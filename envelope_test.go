package pptd_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pptd"
)

// checkEnvelope asserts one response is the versioned error envelope:
// exact status, exact code, version 1, non-empty message, and the
// expected retry hint. It also asserts the raw JSON carries the stable
// key names (the golden shape non-Go clients parse).
func checkEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string, wantRetry int) {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, wantStatus, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatalf("body is not JSON: %v (%s)", err, raw)
	}
	for _, k := range []string{"v", "code", "message"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("envelope missing key %q: %s", k, raw)
		}
	}
	var eb pptd.APIErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.V != 1 {
		t.Errorf("envelope version = %d, want 1", eb.V)
	}
	if eb.Code != wantCode {
		t.Errorf("code = %q, want %q (message %q)", eb.Code, wantCode, eb.Message)
	}
	if eb.Message == "" {
		t.Error("empty message")
	}
	if eb.RetryAfterWindows != wantRetry {
		t.Errorf("retry_after_windows = %d, want %d", eb.RetryAfterWindows, wantRetry)
	}
}

func doReq(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestErrorEnvelopeGolden drives every endpoint of a full node (batch +
// accounted durable stream) into each reachable error state and asserts
// the envelope's exact {status, code, retry_after_windows} — the wire
// contract docs/API.md documents.
func TestErrorEnvelopeGolden(t *testing.T) {
	dir := t.TempDir()
	streamCfg := pptd.StreamConfig{
		NumObjects: 2, Lambda1: 1.5, Lambda2: 2, Delta: 0.3,
		// Tight budget: the second window is unaffordable.
		EpsilonBudget: 100,
	}
	n, err := pptd.NewNode(
		pptd.WithBatchCampaign(2),
		pptd.WithStreamConfig(streamCfg),
		pptd.WithPersistence(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()

	sub := `{"clientId":"u1","claims":[{"object":0,"value":1},{"object":1,"value":2}]}`

	// --- method mismatches: every endpoint speaks method_not_allowed.
	for _, ep := range []struct{ method, path string }{
		{http.MethodPost, "/v1/campaign"},
		{http.MethodGet, "/v1/submissions"},
		{http.MethodPost, "/v1/result"},
		{http.MethodGet, "/v1/aggregate"},
		{http.MethodPost, "/v1/stream/campaign"},
		{http.MethodGet, "/v1/stream/claims"},
		{http.MethodPost, "/v1/stream/truths"},
		{http.MethodGet, "/v1/stream/window"},
		{http.MethodPost, "/v1/stream/stats"},
	} {
		checkEnvelope(t, doReq(t, ep.method, ts.URL+ep.path, ""),
			http.StatusMethodNotAllowed, "method_not_allowed", 0)
	}

	// --- not-yet states.
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/result", ""),
		http.StatusNotFound, "not_ready", 0)
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/aggregate", ""),
		http.StatusConflict, "empty_campaign", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/stream/truths", ""),
		http.StatusNotFound, "not_ready", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/stream/truths?window=1", ""),
		http.StatusNotFound, "not_ready", 0)
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/stream/window", ""),
		http.StatusConflict, "empty_window", 0)

	// --- malformed requests.
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/submissions", "{nope"),
		http.StatusBadRequest, "bad_request", 0)
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/stream/claims", "{nope"),
		http.StatusBadRequest, "bad_request", 0)
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/stream/claims",
		`{"clientId":"u1","claims":[{"object":99,"value":1}]}`),
		http.StatusBadRequest, "bad_request", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/stream/truths?window=abc", ""),
		http.StatusBadRequest, "bad_request", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/stream/truths?window=-2", ""),
		http.StatusBadRequest, "bad_request", 0)

	// --- batch conflicts.
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/submissions", sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed batch submission: %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/submissions", sub),
		http.StatusConflict, "duplicate_client", 0)
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/aggregate", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/submissions",
		`{"clientId":"u2","claims":[{"object":0,"value":3}]}`),
		http.StatusGone, "campaign_closed", 0)

	// --- stream conflicts: duplicate submission carries the retry hint.
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/stream/claims", sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed stream submission: %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/stream/claims", sub),
		http.StatusConflict, "duplicate_window", 1)

	// --- budget exhaustion: close the first window (spending ~67 of the
	// 100 budget), then the same user cannot afford window two.
	if resp := doReq(t, http.MethodPost, ts.URL+"/v1/stream/window", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("close window: %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	checkEnvelope(t, doReq(t, http.MethodPost, ts.URL+"/v1/stream/claims", sub),
		http.StatusTooManyRequests, "budget_exhausted", 0)

	// --- history miss once an estimate exists.
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/stream/truths?window=42", ""),
		http.StatusNotFound, "unknown_window", 0)

	// --- unknown path on the front door.
	checkEnvelope(t, doReq(t, http.MethodGet, ts.URL+"/v1/does-not-exist", ""),
		http.StatusNotFound, "not_found", 0)

	// --- the same contract after a kill-and-recover: close the node,
	// reopen the state directory, and re-assert representative codes on
	// the recovered instance (the exhausted user stays exhausted, history
	// misses stay typed, duplicate windows keep their retry hint).
	ts.Close()
	if err := n.Close(); err != nil {
		t.Fatalf("close node: %v", err)
	}
	n2, err := pptd.NewNode(
		pptd.WithStreamConfig(streamCfg),
		pptd.WithPersistence(dir),
	)
	if err != nil {
		t.Fatalf("recover node: %v", err)
	}
	defer func() { _ = n2.Close() }()
	ts2 := httptest.NewServer(n2.Handler())
	defer ts2.Close()

	checkEnvelope(t, doReq(t, http.MethodPost, ts2.URL+"/v1/stream/claims", sub),
		http.StatusTooManyRequests, "budget_exhausted", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts2.URL+"/v1/stream/truths?window=42", ""),
		http.StatusNotFound, "unknown_window", 0)
	checkEnvelope(t, doReq(t, http.MethodGet, ts2.URL+"/v1/stream/truths?window=abc", ""),
		http.StatusBadRequest, "bad_request", 0)
	fresh := `{"clientId":"u-fresh","claims":[{"object":0,"value":1}]}`
	if resp := doReq(t, http.MethodPost, ts2.URL+"/v1/stream/claims", fresh); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh user on recovered node: %d", resp.StatusCode)
	} else {
		_ = resp.Body.Close()
	}
	checkEnvelope(t, doReq(t, http.MethodPost, ts2.URL+"/v1/stream/claims", fresh),
		http.StatusConflict, "duplicate_window", 1)
	// The batch API was not configured on the recovered node: its paths
	// fall through to the front door's envelope 404.
	checkEnvelope(t, doReq(t, http.MethodGet, ts2.URL+"/v1/campaign", ""),
		http.StatusNotFound, "not_found", 0)
}
