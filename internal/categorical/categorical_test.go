package categorical

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
)

// genCategorical builds a crowd where user s answers correctly with
// probability correctProb[s], otherwise uniformly wrong.
func genCategorical(t *testing.T, rng *randx.RNG, numObjects, numCategories int, correctProb []float64) (*Dataset, []int) {
	t.Helper()
	truths := make([]int, numObjects)
	for n := range truths {
		truths[n] = rng.Intn(numCategories)
	}
	b := NewBuilder(len(correctProb), numObjects, numCategories)
	for s, p := range correctProb {
		for n, tv := range truths {
			cat := tv
			if rng.Float64() >= p {
				cat = rng.Intn(numCategories - 1)
				if cat >= tv {
					cat++
				}
			}
			b.Add(s, n, cat)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds, truths
}

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Builder
		wantErr error
	}{
		{
			name: "bad user",
			build: func() *Builder {
				b := NewBuilder(1, 1, 2)
				b.Add(5, 0, 0)
				return b
			},
			wantErr: ErrBadIndex,
		},
		{
			name: "bad category",
			build: func() *Builder {
				b := NewBuilder(1, 1, 2)
				b.Add(0, 0, 7)
				return b
			},
			wantErr: ErrBadIndex,
		},
		{
			name: "duplicate",
			build: func() *Builder {
				b := NewBuilder(1, 1, 2)
				b.Add(0, 0, 0)
				b.Add(0, 0, 1)
				return b
			},
			wantErr: ErrDuplicate,
		},
		{
			name: "uncovered object",
			build: func() *Builder {
				b := NewBuilder(1, 2, 2)
				b.Add(0, 0, 0)
				return b
			},
			wantErr: ErrNoClaims,
		},
		{
			name:    "one category",
			build:   func() *Builder { return NewBuilder(1, 1, 1) },
			wantErr: ErrBadParam,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build().Build(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Build error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDatasetAccessors(t *testing.T) {
	b := NewBuilder(2, 2, 3)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	b.Add(1, 0, 1)
	b.Add(1, 1, 0)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 || ds.NumObjects() != 2 || ds.NumCategories() != 3 || ds.NumClaims() != 4 {
		t.Fatalf("dims: %d %d %d %d", ds.NumUsers(), ds.NumObjects(), ds.NumCategories(), ds.NumClaims())
	}
	claims := ds.Claims()
	if len(claims) != 4 || claims[0] != (Claim{User: 0, Object: 0, Category: 1}) {
		t.Fatalf("claims = %+v", claims)
	}
}

func TestVotingRecoversCleanTruths(t *testing.T) {
	rng := randx.New(1)
	probs := make([]float64, 30)
	for i := range probs {
		probs[i] = 0.9
	}
	ds, truths := genCategorical(t, rng, 50, 4, probs)
	v, err := NewVoting()
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(res.Truths, truths)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("accuracy = %v", acc)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
}

func TestWeightedVotingBeatsMajority(t *testing.T) {
	// A reliable minority against a noisy majority: weighting must find
	// the truth more often than plain majority.
	rng := randx.New(2)
	probs := make([]float64, 30)
	for i := range probs {
		if i < 8 {
			probs[i] = 0.95 // experts
		} else {
			probs[i] = 0.34 // barely better than random over 3 categories
		}
	}
	var weightedAcc, majorityAcc float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		ds, truths := genCategorical(t, rng, 60, 3, probs)
		weighted, err := NewVoting()
		if err != nil {
			t.Fatal(err)
		}
		majority, err := NewVoting(WithUnweightedVoting())
		if err != nil {
			t.Fatal(err)
		}
		wres, err := weighted.Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		mres, err := majority.Run(ds)
		if err != nil {
			t.Fatal(err)
		}
		wa, err := Accuracy(wres.Truths, truths)
		if err != nil {
			t.Fatal(err)
		}
		ma, err := Accuracy(mres.Truths, truths)
		if err != nil {
			t.Fatal(err)
		}
		weightedAcc += wa
		majorityAcc += ma
	}
	if weightedAcc <= majorityAcc {
		t.Fatalf("weighted total accuracy %v not above majority %v", weightedAcc, majorityAcc)
	}
}

func TestVotingWeightsTrackQuality(t *testing.T) {
	rng := randx.New(3)
	probs := []float64{0.95, 0.7, 0.4}
	ds, _ := genCategorical(t, rng, 200, 3, probs)
	v, err := NewVoting()
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Weights[0] > res.Weights[1] && res.Weights[1] > res.Weights[2]) {
		t.Fatalf("weights not ordered by quality: %v", res.Weights)
	}
}

func TestVotingValidation(t *testing.T) {
	if _, err := NewVoting(WithVotingMaxIterations(0)); !errors.Is(err, ErrBadParam) {
		t.Error("zero iterations accepted")
	}
	v, err := NewVoting()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
	if v.Name() != "weighted-voting" {
		t.Errorf("name = %q", v.Name())
	}
	m, err := NewVoting(WithUnweightedVoting())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "majority" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestAccuracyValidation(t *testing.T) {
	if _, err := Accuracy([]int{1}, []int{1, 2}); !errors.Is(err, ErrBadParam) {
		t.Error("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); !errors.Is(err, ErrBadParam) {
		t.Error("empty accepted")
	}
	acc, err := Accuracy([]int{1, 2, 3}, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestRandomizedResponseKeepProbability(t *testing.T) {
	rr, err := NewRandomizedResponse(math.Log(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	// e^eps = 3, K = 3: keep prob = 3/(3+2) = 0.6.
	if math.Abs(rr.KeepProbability()-0.6) > 1e-12 {
		t.Fatalf("keep prob = %v, want 0.6", rr.KeepProbability())
	}
	if rr.Epsilon() != math.Log(3) {
		t.Fatalf("epsilon = %v", rr.Epsilon())
	}
}

func TestRandomizedResponseEmpiricalDistribution(t *testing.T) {
	rng := randx.New(4)
	const (
		k      = 4
		eps    = 1.0
		trials = 200000
	)
	rr, err := NewRandomizedResponse(eps, k)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := 0; i < trials; i++ {
		out, err := rr.Perturb(2, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[out]++
	}
	keep := float64(counts[2]) / trials
	if math.Abs(keep-rr.KeepProbability()) > 0.01 {
		t.Fatalf("empirical keep %v vs %v", keep, rr.KeepProbability())
	}
	// The other categories should be uniform.
	otherWant := (1 - rr.KeepProbability()) / float64(k-1)
	for cat, c := range counts {
		if cat == 2 {
			continue
		}
		if got := float64(c) / trials; math.Abs(got-otherWant) > 0.01 {
			t.Errorf("category %d frequency %v, want %v", cat, got, otherWant)
		}
	}
	// LDP ratio: Pr[report y | true a] / Pr[report y | true b] <= e^eps,
	// with the maximum attained at y = a: keep/( (1-keep)/(k-1) ).
	ratio := rr.KeepProbability() / otherWant
	if math.Abs(ratio-math.Exp(eps)) > 1e-9 {
		t.Errorf("LDP ratio %v, want e^eps = %v", ratio, math.Exp(eps))
	}
}

func TestRandomizedResponseValidation(t *testing.T) {
	if _, err := NewRandomizedResponse(0, 3); !errors.Is(err, ErrBadParam) {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewRandomizedResponse(1, 1); !errors.Is(err, ErrBadParam) {
		t.Error("one category accepted")
	}
	rr, err := NewRandomizedResponse(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Perturb(5, randx.New(1)); !errors.Is(err, ErrBadIndex) {
		t.Error("bad category accepted")
	}
	if _, err := rr.Perturb(0, nil); !errors.Is(err, ErrBadParam) {
		t.Error("nil rng accepted")
	}
	if _, err := rr.PerturbDataset(nil, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("nil dataset accepted")
	}
}

func TestRandomizedResponseCategoryMismatch(t *testing.T) {
	b := NewBuilder(1, 1, 2)
	b.Add(0, 0, 1)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRandomizedResponse(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.PerturbDataset(ds, randx.New(1)); !errors.Is(err, ErrBadParam) {
		t.Error("category count mismatch accepted")
	}
}

func TestPrivateCategoricalTruthDiscovery(t *testing.T) {
	// End-to-end categorical Algorithm 2: randomize every claim, then
	// weighted voting still recovers most truths at moderate epsilon.
	rng := randx.New(5)
	probs := make([]float64, 60)
	for i := range probs {
		probs[i] = 0.6 + 0.35*rng.Float64()
	}
	ds, truths := genCategorical(t, rng, 80, 3, probs)
	rr, err := NewRandomizedResponse(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := rr.PerturbDataset(ds, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if noisy.NumClaims() != ds.NumClaims() {
		t.Fatal("perturbation changed claim count")
	}
	v, err := NewVoting()
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Run(noisy)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(res.Truths, truths)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy under eps=2 randomized response = %v", acc)
	}
}

func TestVotingDeterministic(t *testing.T) {
	rng := randx.New(6)
	probs := []float64{0.9, 0.6, 0.5, 0.8}
	ds, _ := genCategorical(t, rng, 40, 3, probs)
	v, err := NewVoting()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := v.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for n := range r1.Truths {
		if r1.Truths[n] != r2.Truths[n] {
			t.Fatal("non-deterministic voting")
		}
	}
}
