// Package categorical extends pptd to categorical claims: weighted-voting
// truth discovery plus a k-ary randomized-response perturbation mechanism
// satisfying pure epsilon-local differential privacy.
//
// The paper's mechanism targets continuous data; its companion work
// (Li et al., KDD'18, cited as [23]) covers the categorical case. This
// package implements that direction so the library covers both claim
// types: each user flips their answer through k-ary randomized response
// (keep probability e^eps/(e^eps+K-1)), and the server runs iterative
// weighted voting, which down-weights users whose answers disagree with
// the emerging consensus — including users randomized away from it.
package categorical

import (
	"errors"
	"fmt"
	"math"

	"pptd/internal/randx"
)

var (
	// ErrBadParam reports an invalid parameter.
	ErrBadParam = errors.New("categorical: invalid parameter")
	// ErrBadIndex reports an out-of-range user, object or category.
	ErrBadIndex = errors.New("categorical: index out of range")
	// ErrDuplicate reports two claims by one user on one object.
	ErrDuplicate = errors.New("categorical: duplicate claim")
	// ErrNoClaims reports an object with no claims.
	ErrNoClaims = errors.New("categorical: object has no claims")
)

// Claim is one categorical answer: user asserts Category for Object.
type Claim struct {
	User     int
	Object   int
	Category int
}

// Dataset is an immutable sparse matrix of categorical claims over K
// categories.
type Dataset struct {
	numUsers      int
	numObjects    int
	numCategories int

	byUser   [][]objCat
	byObject [][]userCat
	count    int
}

type objCat struct {
	object   int
	category int
}

type userCat struct {
	user     int
	category int
}

// Builder accumulates claims for a Dataset.
type Builder struct {
	numUsers      int
	numObjects    int
	numCategories int
	claims        []Claim
	seen          map[[2]int]struct{}
	err           error
}

// NewBuilder returns a Builder for the given dimensions and category
// count.
func NewBuilder(numUsers, numObjects, numCategories int) *Builder {
	return &Builder{
		numUsers:      numUsers,
		numObjects:    numObjects,
		numCategories: numCategories,
		seen:          make(map[[2]int]struct{}),
	}
}

// Add records one claim; errors are sticky and reported by Build.
func (b *Builder) Add(user, object, category int) {
	if b.err != nil {
		return
	}
	switch {
	case user < 0 || user >= b.numUsers:
		b.err = fmt.Errorf("%w: user %d of %d", ErrBadIndex, user, b.numUsers)
	case object < 0 || object >= b.numObjects:
		b.err = fmt.Errorf("%w: object %d of %d", ErrBadIndex, object, b.numObjects)
	case category < 0 || category >= b.numCategories:
		b.err = fmt.Errorf("%w: category %d of %d", ErrBadIndex, category, b.numCategories)
	default:
		key := [2]int{user, object}
		if _, dup := b.seen[key]; dup {
			b.err = fmt.Errorf("%w: user %d object %d", ErrDuplicate, user, object)
			return
		}
		b.seen[key] = struct{}{}
		b.claims = append(b.claims, Claim{User: user, Object: object, Category: category})
	}
}

// Build validates and returns the Dataset.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.numUsers <= 0 || b.numObjects <= 0 {
		return nil, fmt.Errorf("%w: %d users, %d objects", ErrBadParam, b.numUsers, b.numObjects)
	}
	if b.numCategories < 2 {
		return nil, fmt.Errorf("%w: %d categories (need >= 2)", ErrBadParam, b.numCategories)
	}
	ds := &Dataset{
		numUsers:      b.numUsers,
		numObjects:    b.numObjects,
		numCategories: b.numCategories,
		byUser:        make([][]objCat, b.numUsers),
		byObject:      make([][]userCat, b.numObjects),
		count:         len(b.claims),
	}
	for _, c := range b.claims {
		ds.byUser[c.User] = append(ds.byUser[c.User], objCat{object: c.Object, category: c.Category})
		ds.byObject[c.Object] = append(ds.byObject[c.Object], userCat{user: c.User, category: c.Category})
	}
	for n, claims := range ds.byObject {
		if len(claims) == 0 {
			return nil, fmt.Errorf("%w: object %d", ErrNoClaims, n)
		}
	}
	return ds, nil
}

// NumUsers returns S.
func (d *Dataset) NumUsers() int { return d.numUsers }

// NumObjects returns N.
func (d *Dataset) NumObjects() int { return d.numObjects }

// NumCategories returns K.
func (d *Dataset) NumCategories() int { return d.numCategories }

// NumClaims returns the claim count.
func (d *Dataset) NumClaims() int { return d.count }

// Claims returns a copy of all claims in user-major order.
func (d *Dataset) Claims() []Claim {
	out := make([]Claim, 0, d.count)
	for s, cs := range d.byUser {
		for _, oc := range cs {
			out = append(out, Claim{User: s, Object: oc.object, Category: oc.category})
		}
	}
	return out
}

// Map returns a new Dataset with every category replaced by
// f(user, object, category); the sparsity pattern is preserved.
func (d *Dataset) Map(f func(user, object, category int) int) (*Dataset, error) {
	b := NewBuilder(d.numUsers, d.numObjects, d.numCategories)
	for s, cs := range d.byUser {
		for _, oc := range cs {
			b.Add(s, oc.object, f(s, oc.object, oc.category))
		}
	}
	return b.Build()
}

// Result is the output of categorical truth discovery.
type Result struct {
	// Truths holds the winning category per object.
	Truths []int
	// Weights holds per-user weights (0 for silent users).
	Weights []float64
	// Iterations is the number of voting/weighting rounds.
	Iterations int
	// Converged reports whether the truths stabilized before the cap.
	Converged bool
}

// Voting is iterative weighted-voting truth discovery for categorical
// claims, the categorical counterpart of CRH: truths are weighted
// plurality votes, and user weights decrease with their disagreement rate
// against the current truths (Eq. 3 with 0/1 distance).
type Voting struct {
	maxIterations int
	weighted      bool
}

// VotingOption configures NewVoting.
type VotingOption interface {
	applyVoting(*Voting)
}

type votingOptionFunc func(*Voting)

func (f votingOptionFunc) applyVoting(v *Voting) { f(v) }

// WithVotingMaxIterations caps the iteration count (default 50).
func WithVotingMaxIterations(n int) VotingOption {
	return votingOptionFunc(func(v *Voting) { v.maxIterations = n })
}

// WithUnweightedVoting disables weight estimation, reducing the method to
// plain majority voting (the baseline).
func WithUnweightedVoting() VotingOption {
	return votingOptionFunc(func(v *Voting) { v.weighted = false })
}

// NewVoting returns a configured voting method.
func NewVoting(opts ...VotingOption) (*Voting, error) {
	v := &Voting{maxIterations: 50, weighted: true}
	for _, o := range opts {
		o.applyVoting(v)
	}
	if v.maxIterations <= 0 {
		return nil, fmt.Errorf("%w: max iterations %d", ErrBadParam, v.maxIterations)
	}
	return v, nil
}

// Name identifies the method.
func (v *Voting) Name() string {
	if v.weighted {
		return "weighted-voting"
	}
	return "majority"
}

// Run executes the method.
func (v *Voting) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	weights := make([]float64, ds.numUsers)
	for s := range weights {
		weights[s] = 1
	}
	truths := make([]int, ds.numObjects)
	scores := make([]float64, ds.numCategories)
	vote := func() bool {
		changed := false
		for n, claims := range ds.byObject {
			for k := range scores {
				scores[k] = 0
			}
			for _, uc := range claims {
				scores[uc.category] += weights[uc.user]
			}
			best := 0
			for k := 1; k < len(scores); k++ {
				if scores[k] > scores[best] {
					best = k
				}
			}
			if truths[n] != best {
				truths[n] = best
				changed = true
			}
		}
		return changed
	}

	res := &Result{Truths: truths, Weights: weights}
	vote() // initial plurality under uniform weights
	if !v.weighted {
		res.Iterations = 1
		res.Converged = true
		return res, nil
	}
	const errFloor = 1e-6
	errRates := make([]float64, ds.numUsers)
	for iter := 1; iter <= v.maxIterations; iter++ {
		res.Iterations = iter
		var total float64
		for s, claims := range ds.byUser {
			if len(claims) == 0 {
				errRates[s] = math.NaN()
				continue
			}
			disagree := 0
			for _, oc := range claims {
				if truths[oc.object] != oc.category {
					disagree++
				}
			}
			e := float64(disagree) / float64(len(claims))
			if e < errFloor {
				e = errFloor
			}
			errRates[s] = e
			total += e
		}
		if total <= 0 {
			total = errFloor
		}
		for s := range weights {
			if math.IsNaN(errRates[s]) {
				weights[s] = 0
				continue
			}
			w := -math.Log(errRates[s] / total)
			if w < 0 {
				w = 0
			}
			weights[s] = w
		}
		if !vote() {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// Accuracy returns the fraction of objects whose discovered truth matches
// the reference.
func Accuracy(truths, reference []int) (float64, error) {
	if len(truths) != len(reference) {
		return 0, fmt.Errorf("%w: %d truths vs %d references", ErrBadParam, len(truths), len(reference))
	}
	if len(truths) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrBadParam)
	}
	correct := 0
	for i := range truths {
		if truths[i] == reference[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truths)), nil
}

// RandomizedResponse is the k-ary randomized response mechanism: it keeps
// the true category with probability e^eps/(e^eps + K - 1) and otherwise
// reports one of the K-1 other categories uniformly. It satisfies pure
// eps-local differential privacy.
type RandomizedResponse struct {
	epsilon       float64
	numCategories int
	keepProb      float64
}

// NewRandomizedResponse returns the mechanism for K categories at privacy
// level eps.
func NewRandomizedResponse(eps float64, numCategories int) (*RandomizedResponse, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w: epsilon = %v", ErrBadParam, eps)
	}
	if numCategories < 2 {
		return nil, fmt.Errorf("%w: %d categories (need >= 2)", ErrBadParam, numCategories)
	}
	e := math.Exp(eps)
	return &RandomizedResponse{
		epsilon:       eps,
		numCategories: numCategories,
		keepProb:      e / (e + float64(numCategories) - 1),
	}, nil
}

// Epsilon returns the privacy level.
func (rr *RandomizedResponse) Epsilon() float64 { return rr.epsilon }

// KeepProbability returns e^eps/(e^eps + K - 1).
func (rr *RandomizedResponse) KeepProbability() float64 { return rr.keepProb }

// Perturb randomizes one category.
func (rr *RandomizedResponse) Perturb(category int, rng *randx.RNG) (int, error) {
	if category < 0 || category >= rr.numCategories {
		return 0, fmt.Errorf("%w: category %d of %d", ErrBadIndex, category, rr.numCategories)
	}
	if rng == nil {
		return 0, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	if rng.Float64() < rr.keepProb {
		return category, nil
	}
	// Uniform over the other K-1 categories.
	other := rng.Intn(rr.numCategories - 1)
	if other >= category {
		other++
	}
	return other, nil
}

// PerturbDataset randomizes every claim independently, simulating all
// users of the categorical Algorithm 2.
func (rr *RandomizedResponse) PerturbDataset(ds *Dataset, rng *randx.RNG) (*Dataset, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadParam)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParam)
	}
	if ds.numCategories != rr.numCategories {
		return nil, fmt.Errorf("%w: dataset has %d categories, mechanism %d",
			ErrBadParam, ds.numCategories, rr.numCategories)
	}
	var firstErr error
	out, err := ds.Map(func(_, _, category int) int {
		noisy, perr := rr.Perturb(category, rng)
		if perr != nil && firstErr == nil {
			firstErr = perr
		}
		return noisy
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, fmt.Errorf("categorical: perturb: %w", err)
	}
	return out, nil
}
