package randx

import (
	"errors"
	"fmt"
	"math"
)

// Dist is a univariate continuous distribution that can be sampled and
// evaluated. All pptd noise and error models implement it so tests can
// verify samplers against their analytic forms.
type Dist interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// PDF evaluates the probability density at x.
	PDF(x float64) float64
	// CDF evaluates the cumulative distribution at x.
	CDF(x float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Variance returns the distribution variance.
	Variance() float64
}

var (
	// ErrBadParam reports an invalid distribution parameter.
	ErrBadParam = errors.New("randx: invalid distribution parameter")
)

// Normal is the Gaussian distribution N(mu, sigma^2).
type Normal struct {
	Mu    float64 // mean
	Sigma float64 // standard deviation, > 0
}

var _ Dist = Normal{}

// NewNormal validates the parameters and returns N(mu, sigma^2).
func NewNormal(mu, sigma float64) (Normal, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Normal{}, fmt.Errorf("%w: normal sigma %v", ErrBadParam, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws from N(mu, sigma^2).
func (n Normal) Sample(rng *RNG) float64 { return n.Mu + n.Sigma*rng.Norm() }

// PDF is the Gaussian density.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF is the Gaussian distribution function, computed via math.Erf.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Quantile returns the p-quantile, p in (0,1), via the Acklam/Wichura
// rational approximation refined with one Halley step (|error| < 1e-12).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*stdNormQuantile(p)
}

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns sigma^2.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// TailBound returns the Gaussian tail inequality bound used in Lemma 4.7:
// Pr{|X - mu| > b*sigma} <= 2 e^{-b^2/2} / b for b > 0.
func (n Normal) TailBound(b float64) float64 {
	if b <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-b*b/2)/b)
}

// Exponential is the exponential distribution with rate lambda
// (density lambda*e^{-lambda x}, mean 1/lambda). The paper parameterizes
// both the error-variance prior (lambda1) and the noise-variance prior
// (lambda2) this way.
type Exponential struct {
	Rate float64 // lambda, > 0
}

var _ Dist = Exponential{}

// NewExponential validates the rate and returns Exp(rate).
func NewExponential(rate float64) (Exponential, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("%w: exponential rate %v", ErrBadParam, rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws from Exp(rate).
func (e Exponential) Sample(rng *RNG) float64 { return rng.Exp() / e.Rate }

// PDF is the exponential density (0 for x < 0).
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF is the exponential distribution function.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Quantile returns the p-quantile, p in [0,1).
func (e Exponential) Quantile(p float64) float64 {
	return -math.Log(1-p) / e.Rate
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Variance returns 1/rate^2.
func (e Exponential) Variance() float64 { return 1 / (e.Rate * e.Rate) }

// Gamma is the gamma distribution with the given shape k and scale theta
// (mean k*theta). Theorem A.1 uses Gamma(3, 1/lambda1) for the c = 1
// special case.
type Gamma struct {
	Shape float64 // k, > 0
	Scale float64 // theta, > 0
}

var _ Dist = Gamma{}

// NewGamma validates the parameters and returns Gamma(shape, scale).
func NewGamma(shape, scale float64) (Gamma, error) {
	if shape <= 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return Gamma{}, fmt.Errorf("%w: gamma shape %v", ErrBadParam, shape)
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Gamma{}, fmt.Errorf("%w: gamma scale %v", ErrBadParam, scale)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Sample draws from Gamma(shape, scale).
func (g Gamma) Sample(rng *RNG) float64 { return g.Scale * rng.Gamma(g.Shape) }

// PDF is the gamma density (0 for x < 0).
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if g.Shape < 1 {
			return math.Inf(1)
		}
		if g.Shape == 1 {
			return 1 / g.Scale
		}
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	logp := (g.Shape-1)*math.Log(x) - x/g.Scale - g.Shape*math.Log(g.Scale) - lg
	return math.Exp(logp)
}

// CDF is the regularized lower incomplete gamma function P(shape, x/scale).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.Shape, x/g.Scale)
}

// Mean returns shape*scale.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Variance returns shape*scale^2.
func (g Gamma) Variance() float64 { return g.Shape * g.Scale * g.Scale }

// stdNormQuantile computes the standard normal inverse CDF.
func stdNormQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0 || p >= 1:
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Beasley-Springer-Moro style rational approximation (Acklam's
	// coefficients), then one Halley refinement against math.Erf.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// Halley refinement.
	e := 0.5*(1+math.Erf(x/math.Sqrt2)) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// regIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x) using the series expansion for x < a+1 and the
// continued fraction for the complement otherwise (Numerical Recipes
// style, stdlib only).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return incGammaSeries(a, x)
	}
	return 1 - incGammaContinuedFraction(a, x)
}

func incGammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for range make([]struct{}, 500) {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func incGammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
