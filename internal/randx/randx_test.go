package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d identical draws out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 500000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormTail(t *testing.T) {
	r := New(9)
	const n = 500000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Norm()) > 2 {
			beyond2++
		}
	}
	// Pr{|Z|>2} ~ 0.0455.
	frac := float64(beyond2) / n
	if math.Abs(frac-0.0455) > 0.004 {
		t.Errorf("Pr{|Z|>2} = %v, want ~0.0455", frac)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(10)
	const n = 500000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("Exp produced negative value %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exponential variance = %v, want ~1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(11)
	for _, shape := range []float64{0.5, 1, 2, 3, 7.5} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("Gamma(%v) produced negative value %v", shape, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*math.Max(1, shape) {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
		if math.Abs(variance-shape) > 0.1*math.Max(1, shape) {
			t.Errorf("Gamma(%v) variance = %v, want ~%v", shape, variance, shape)
		}
	}
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	New(1).Gamma(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestMul128AgainstBig(t *testing.T) {
	// Property: mul128 must match (a*b) mod 2^64 in its low word for all
	// inputs, and simple known cases in the high word.
	f := func(a, b uint64) bool {
		_, lo := mul128(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	hi, lo := mul128(1<<63, 2)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul128(2^63, 2) = (%d, %d), want (1, 0)", hi, lo)
	}
}

func TestFloat64QuickProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
