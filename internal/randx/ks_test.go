package randx

import (
	"math"
	"testing"

	"pptd/internal/stats"
)

// ksCheck draws n samples and verifies the KS statistic against the
// distribution's analytic CDF at significance 1e-4 (loose enough to keep
// the seeded test deterministic and non-flaky, tight enough to catch a
// broken sampler immediately).
func ksCheck(t *testing.T, name string, d Dist, rng *RNG, n int) {
	t.Helper()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	stat, err := stats.KolmogorovSmirnov(xs, d.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.KSCriticalValue(n, 1e-4); stat > crit {
		t.Errorf("%s: KS statistic %v exceeds critical value %v", name, stat, crit)
	}
}

func TestSamplersPassKS(t *testing.T) {
	const n = 50000
	rng := New(2024)
	tests := []struct {
		name string
		dist Dist
	}{
		{name: "std normal", dist: Normal{Mu: 0, Sigma: 1}},
		{name: "shifted normal", dist: Normal{Mu: -3, Sigma: 0.5}},
		{name: "exp rate 1", dist: Exponential{Rate: 1}},
		{name: "exp rate 5", dist: Exponential{Rate: 5}},
		{name: "gamma shape 0.7", dist: Gamma{Shape: 0.7, Scale: 2}},
		{name: "gamma shape 3", dist: Gamma{Shape: 3, Scale: 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ksCheck(t, tt.name, tt.dist, rng.Split(), n)
		})
	}
}

func TestCompoundNoiseDistribution(t *testing.T) {
	// The mechanism's compound noise xi ~ N(0, Z), Z ~ Exp(lambda2) has
	// CDF expressible via the variance mixture; rather than derive it,
	// verify the weaker but load-bearing property used by the theory:
	// the uniform half of draws below 0 and the closed-form E|xi|.
	rng := New(2025)
	const (
		n       = 200000
		lambda2 = 2.0
	)
	below := 0
	var absSum float64
	for i := 0; i < n; i++ {
		variance := rng.Exp() / lambda2
		x := Normal{Mu: 0, Sigma: math.Sqrt(variance)}.Sample(rng)
		if x < 0 {
			below++
		}
		if x < 0 {
			absSum -= x
		} else {
			absSum += x
		}
	}
	frac := float64(below) / n
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("compound noise not symmetric: Pr{x<0} = %v", frac)
	}
	want := 1 / math.Sqrt(2*lambda2)
	if got := absSum / n; got < 0.97*want || got > 1.03*want {
		t.Errorf("E|xi| = %v, closed form %v", got, want)
	}
}
