// Package randx provides the deterministic random-number substrate used by
// every stochastic component in pptd.
//
// The paper's mechanism stacks randomness three deep — per-user error
// variances sigma_s^2 ~ Exp(lambda1), per-user noise variances
// delta_s^2 ~ Exp(lambda2), and per-reading Gaussian noise N(0, delta_s^2) —
// so reproducible experiments need an RNG whose output is stable across
// machines and Go releases. randx implements xoshiro256++ seeded through
// splitmix64, together with the samplers the mechanism needs (uniform,
// normal, exponential, gamma). Only the standard library is used.
package randx

import "math"

// RNG is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; derive independent streams with Split instead of sharing.
type RNG struct {
	s [4]uint64

	// Spare variate cached by the polar normal sampler.
	spare    float64
	hasSpare bool
}

// New returns an RNG seeded from seed via splitmix64, following the
// xoshiro authors' recommended initialization. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro256++ must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new RNG whose stream is independent of the receiver's
// future output. It consumes one value from the receiver, so repeated
// Split calls yield distinct children deterministically.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256++).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul128(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul128(v, un)
		}
	}
	return int(hi)
}

// Norm returns a standard normal N(0,1) variate using the Marsaglia polar
// method. The polar method is exact (no tail truncation) and needs only
// Float64 draws, keeping the stream portable.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Exp returns an Exp(1) variate (mean 1) via inversion. Callers scale by
// the desired mean: mean * Exp().
func (r *RNG) Exp() float64 {
	// 1 - Float64() is in (0, 1], so the log argument is never zero.
	return -math.Log(1 - r.Float64())
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method, with the Johnk boost for shape < 1. It panics if
// shape <= 0.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("randx: Gamma called with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using swap (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// splitmix64 advances the splitmix64 state and returns (next state, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32

	t := a0 * b0
	lo = t & mask32
	carry := t >> 32

	t = a1*b0 + carry
	mid1 := t & mask32
	carry = t >> 32

	t = a0*b1 + mid1
	lo |= (t & mask32) << 32
	carry2 := t >> 32

	hi = a1*b1 + carry + carry2
	return hi, lo
}
