package randx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewNormalValidation(t *testing.T) {
	tests := []struct {
		name    string
		mu      float64
		sigma   float64
		wantErr bool
	}{
		{name: "valid", mu: 0, sigma: 1, wantErr: false},
		{name: "zero sigma", mu: 0, sigma: 0, wantErr: true},
		{name: "negative sigma", mu: 0, sigma: -1, wantErr: true},
		{name: "nan sigma", mu: 0, sigma: math.NaN(), wantErr: true},
		{name: "inf sigma", mu: 0, sigma: math.Inf(1), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewNormal(tt.mu, tt.sigma)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("NewNormal(%v, %v) error = %v, wantErr %v", tt.mu, tt.sigma, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParam) {
				t.Fatalf("error %v does not wrap ErrBadParam", err)
			}
		})
	}
}

func TestNormalPDFCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if !almostEqual(n.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("standard normal PDF(0) = %v", n.PDF(0))
	}
	if !almostEqual(n.CDF(0), 0.5, 1e-12) {
		t.Errorf("standard normal CDF(0) = %v", n.CDF(0))
	}
	if !almostEqual(n.CDF(1.959963984540054), 0.975, 1e-9) {
		t.Errorf("CDF(1.96) = %v, want 0.975", n.CDF(1.959963984540054))
	}

	shifted := Normal{Mu: 3, Sigma: 2}
	if !almostEqual(shifted.CDF(3), 0.5, 1e-12) {
		t.Errorf("N(3,4) CDF(3) = %v, want 0.5", shifted.CDF(3))
	}
	if !almostEqual(shifted.Mean(), 3, 0) || !almostEqual(shifted.Variance(), 4, 1e-12) {
		t.Errorf("N(3,4) moments wrong: mean %v var %v", shifted.Mean(), shifted.Variance())
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: -1.5, Sigma: 0.7}
	for _, p := range []float64{1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-6} {
		x := n.Quantile(p)
		if got := n.CDF(x); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if !math.IsInf(n.Quantile(0), -1) {
		t.Errorf("Quantile(0) = %v, want -Inf", n.Quantile(0))
	}
	if !math.IsInf(n.Quantile(1), 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", n.Quantile(1))
	}
	if !math.IsNaN(n.Quantile(-0.1)) || !math.IsNaN(n.Quantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

func TestNormalSampleMatchesCDF(t *testing.T) {
	rng := New(100)
	n := Normal{Mu: 2, Sigma: 3}
	const draws = 200000
	below := 0
	for i := 0; i < draws; i++ {
		if n.Sample(rng) <= 2 {
			below++
		}
	}
	frac := float64(below) / draws
	if !almostEqual(frac, 0.5, 0.005) {
		t.Errorf("Pr{X <= mu} = %v, want ~0.5", frac)
	}
}

func TestNormalTailBound(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	// The bound must dominate the true two-sided tail probability.
	for _, b := range []float64{0.5, 1, 2, 3} {
		trueTail := 2 * (1 - n.CDF(b))
		if bound := n.TailBound(b); bound < trueTail {
			t.Errorf("TailBound(%v) = %v below true tail %v", b, bound, trueTail)
		}
	}
	if n.TailBound(-1) != 1 || n.TailBound(0) != 1 {
		t.Error("TailBound for non-positive b should be the trivial bound 1")
	}
}

func TestNewExponentialValidation(t *testing.T) {
	if _, err := NewExponential(2); err != nil {
		t.Fatalf("NewExponential(2) unexpected error: %v", err)
	}
	for _, rate := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(rate); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewExponential(%v) error = %v, want ErrBadParam", rate, err)
		}
	}
}

func TestExponentialAnalytic(t *testing.T) {
	e := Exponential{Rate: 2}
	if !almostEqual(e.Mean(), 0.5, 1e-15) || !almostEqual(e.Variance(), 0.25, 1e-15) {
		t.Errorf("Exp(2) moments: mean %v var %v", e.Mean(), e.Variance())
	}
	if !almostEqual(e.PDF(0), 2, 1e-15) {
		t.Errorf("Exp(2) PDF(0) = %v, want 2", e.PDF(0))
	}
	if e.PDF(-1) != 0 || e.CDF(-1) != 0 {
		t.Error("Exp density/CDF should be 0 for x < 0")
	}
	if !almostEqual(e.CDF(e.Quantile(0.7)), 0.7, 1e-12) {
		t.Error("Exp quantile/CDF round trip failed")
	}
}

func TestExponentialSampleMean(t *testing.T) {
	rng := New(101)
	e := Exponential{Rate: 4}
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += e.Sample(rng)
	}
	if mean := sum / draws; !almostEqual(mean, 0.25, 0.005) {
		t.Errorf("Exp(4) sample mean = %v, want ~0.25", mean)
	}
}

func TestNewGammaValidation(t *testing.T) {
	if _, err := NewGamma(3, 0.5); err != nil {
		t.Fatalf("NewGamma(3, 0.5) unexpected error: %v", err)
	}
	bad := [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {math.NaN(), 1}, {1, math.Inf(1)}}
	for _, p := range bad {
		if _, err := NewGamma(p[0], p[1]); !errors.Is(err, ErrBadParam) {
			t.Errorf("NewGamma(%v, %v) error = %v, want ErrBadParam", p[0], p[1], err)
		}
	}
}

func TestGammaAnalytic(t *testing.T) {
	g := Gamma{Shape: 3, Scale: 0.5}
	if !almostEqual(g.Mean(), 1.5, 1e-15) || !almostEqual(g.Variance(), 0.75, 1e-15) {
		t.Errorf("Gamma(3, 0.5) moments: mean %v var %v", g.Mean(), g.Variance())
	}
	// Gamma(1, theta) is Exp(1/theta).
	g1 := Gamma{Shape: 1, Scale: 2}
	e := Exponential{Rate: 0.5}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		if !almostEqual(g1.PDF(x), e.PDF(x), 1e-12) {
			t.Errorf("Gamma(1,2).PDF(%v) = %v, want Exp(0.5).PDF = %v", x, g1.PDF(x), e.PDF(x))
		}
		if !almostEqual(g1.CDF(x), e.CDF(x), 1e-10) {
			t.Errorf("Gamma(1,2).CDF(%v) = %v, want Exp(0.5).CDF = %v", x, g1.CDF(x), e.CDF(x))
		}
	}
	// Known value: P(3, 3) where P is the regularized lower incomplete
	// gamma: 1 - e^{-3}(1 + 3 + 4.5) = 0.5768099...
	g3 := Gamma{Shape: 3, Scale: 1}
	want := 1 - math.Exp(-3)*(1+3+4.5)
	if !almostEqual(g3.CDF(3), want, 1e-10) {
		t.Errorf("Gamma(3,1).CDF(3) = %v, want %v", g3.CDF(3), want)
	}
}

func TestGammaPDFEdgeCases(t *testing.T) {
	if got := (Gamma{Shape: 0.5, Scale: 1}).PDF(0); !math.IsInf(got, 1) {
		t.Errorf("Gamma(0.5).PDF(0) = %v, want +Inf", got)
	}
	if got := (Gamma{Shape: 1, Scale: 2}).PDF(0); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("Gamma(1,2).PDF(0) = %v, want 0.5", got)
	}
	if got := (Gamma{Shape: 2, Scale: 1}).PDF(0); got != 0 {
		t.Errorf("Gamma(2).PDF(0) = %v, want 0", got)
	}
	if got := (Gamma{Shape: 2, Scale: 1}).PDF(-1); got != 0 {
		t.Errorf("Gamma(2).PDF(-1) = %v, want 0", got)
	}
}

func TestGammaSampleMatchesCDF(t *testing.T) {
	rng := New(102)
	g := Gamma{Shape: 3, Scale: 1.0 / 2}
	const draws = 200000
	median := 0.0
	// Empirical check: fraction below an arbitrary threshold matches CDF.
	threshold := 1.2
	below := 0
	for i := 0; i < draws; i++ {
		x := g.Sample(rng)
		if x <= threshold {
			below++
		}
		median += x
	}
	frac := float64(below) / draws
	if want := g.CDF(threshold); !almostEqual(frac, want, 0.01) {
		t.Errorf("empirical CDF(%v) = %v, want %v", threshold, frac, want)
	}
}

func TestCDFMonotoneQuick(t *testing.T) {
	dists := []Dist{
		Normal{Mu: 0.3, Sigma: 1.7},
		Exponential{Rate: 0.9},
		Gamma{Shape: 2.5, Scale: 0.8},
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, d := range dists {
			cl, ch := d.CDF(lo), d.CDF(hi)
			if cl > ch+1e-12 || cl < 0 || ch > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncGammaLowerEdges(t *testing.T) {
	if got := regIncGammaLower(2, 0); got != 0 {
		t.Errorf("P(2, 0) = %v, want 0", got)
	}
	if got := regIncGammaLower(-1, 1); !math.IsNaN(got) {
		t.Errorf("P(-1, 1) = %v, want NaN", got)
	}
	if got := regIncGammaLower(2, -1); !math.IsNaN(got) {
		t.Errorf("P(2, -1) = %v, want NaN", got)
	}
	// Large x: P(a, x) -> 1.
	if got := regIncGammaLower(2, 100); !almostEqual(got, 1, 1e-12) {
		t.Errorf("P(2, 100) = %v, want ~1", got)
	}
}
