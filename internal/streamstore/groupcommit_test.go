package streamstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pptd/internal/stream"
)

// TestGroupCommitDurability hammers AppendCharge from many goroutines
// under several batching configurations and verifies the core contract:
// every acknowledged append is durable, parseable, and replayed exactly
// once after reopen — batching changes how records reach the disk,
// never whether.
func TestGroupCommitDurability(t *testing.T) {
	const (
		writers = 16
		perW    = 25
	)
	for _, opts := range []Options{
		{},                                // default group commit
		{MaxBatch: 1},                     // per-append fsync (batching off)
		{MaxBatch: 4},                     // tiny batches, frequent seals
		{FlushInterval: time.Millisecond}, // lingering leaders
	} {
		opts := opts
		t.Run(fmt.Sprintf("batch-%d-linger-%v", opts.MaxBatch, opts.FlushInterval), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenWith(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						rec := stream.ChargeRecord{
							User:    fmt.Sprintf("user-%02d", w),
							Window:  i,
							Epsilon: 0.25,
							Claims:  []stream.Claim{{Object: 0, Value: float64(i)}},
						}
						if err := s.AppendCharge(rec); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			re := mustOpen(t, dir)
			defer func() { _ = re.Close() }()
			st, err := re.LoadState()
			if err != nil {
				t.Fatal(err)
			}
			if st == nil || len(st.Users) != writers {
				t.Fatalf("recovered %+v, want %d users", st, writers)
			}
			for _, u := range st.Users {
				if u.Windows != perW || u.LastWindow != perW-1 {
					t.Errorf("user %s = %+v, want %d windows", u.ID, u, perW)
				}
			}
		})
	}
}

// TestGroupCommitSharesSyncs checks that concurrent appends actually
// coalesce: with a lingering leader, appends that arrive during the
// linger join its batch and ride one fsync, so the store issues far
// fewer syncs than it acknowledges appends — and the journal still
// parses to every record with no torn lines.
func TestGroupCommitSharesSyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{FlushInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = s.AppendCharge(stream.ChargeRecord{User: fmt.Sprintf("u%d", i), Window: 0, Epsilon: 1})
		}(i)
	}
	wg.Wait()
	// Every append that starts inside the first leader's 50ms linger
	// joins its batch; even on a badly scheduled machine 64 goroutines
	// spawned back-to-back cannot need anywhere near n syncs.
	if syncs := s.JournalSyncs(); syncs >= n/2 {
		t.Errorf("%d appends took %d syncs: group commit not coalescing", n, syncs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segmentFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := parseJournal(data)
	if len(recs) != n {
		t.Fatalf("parsed %d records, want %d", len(recs), n)
	}
	if valid != int64(len(data)) {
		t.Fatalf("journal has %d trailing unparseable bytes", int64(len(data))-valid)
	}
}

// TestAppendAfterCloseFailsBatch: appends that reach the disk after
// Close must fail with ErrClosed, including followers of a batch whose
// leader lost the race with Close.
func TestAppendAfterCloseFailsBatch(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCharge(stream.ChargeRecord{User: "a", Window: 0, Epsilon: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

// TestOpenWithRejectsBadOptions checks option validation.
func TestOpenWithRejectsBadOptions(t *testing.T) {
	for _, opts := range []Options{
		{FlushInterval: -time.Second},
		{MaxBatch: -1},
		{SegmentBytes: -1},
		{SnapshotEvery: -2},
		{SnapshotBytes: -1},
		{RetainSnapshots: -1},
	} {
		if _, err := OpenWith(t.TempDir(), opts); err == nil {
			t.Errorf("OpenWith(%+v) succeeded", opts)
		}
	}
}
