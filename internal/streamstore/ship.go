package streamstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Segment-shipping support: the read-side API behind internal/cluster's
// background shipper. Sealed journal segments are immutable, so a
// replica that has a segment at its final size never needs it again;
// the active segment ships as its durable prefix (append-only with
// per-record CRCs, so a prefix is always a valid journal — the
// follower's torn-tail repair handles anything past it). Snapshots, the
// last published results, and the user spill file ship whole: each is
// replaced (or appended) atomically, so a point-in-time copy is always
// internally consistent.
//
// Ordering is the shipper's durability contract: Shippable lists the
// journal segments BEFORE the snapshot, and a shipper must Put files in
// listing order within one sync pass. A snapshot compacts away the
// sealed segments it covers; shipping the snapshot last guarantees the
// destination never holds a snapshot whose journal suffix it is still
// missing. (The reverse — segments newer than the shipped snapshot —
// just means the follower replays a little more.)

// SnapshotFileName is the engine snapshot's base name inside a state
// directory — exported for shippers, which must treat it as the sync
// pass's commit point: it ships last and re-ships even when the sink
// already holds a same-size copy, because an atomic rewrite can leave
// the size unchanged while the state moved.
const SnapshotFileName = snapshotName

// ShippableFile describes one file of the durable state directory a
// shipper replicates.
type ShippableFile struct {
	// Name is the file's base name inside the state directory.
	Name string `json:"name"`
	// Size is the durable byte count to ship: the whole file, except for
	// the active journal segment where it is the fsync'd prefix.
	Size int64 `json:"size"`
	// Immutable marks sealed journal segments: once shipped at this
	// size, the file never changes and need not ship again.
	Immutable bool `json:"immutable"`
}

// Shippable enumerates the current durable state as shippable files, in
// the order a shipper must replicate them: sealed journal segments
// (ascending), the active segment's durable prefix, the user spill
// file, retained window results, the latest result, and the snapshot
// last. Files of size zero are omitted.
func (s *Store) Shippable() ([]ShippableFile, error) {
	s.mu.Lock()
	if s.active == nil {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var out []ShippableFile
	for _, seg := range s.sealed {
		if seg.size > 0 {
			out = append(out, ShippableFile{Name: segmentFileName(seg.seq), Size: seg.size, Immutable: true})
		}
	}
	activeName := segmentFileName(s.activeSeq)
	activeSize := s.activeSize
	s.mu.Unlock()
	if activeSize > 0 {
		out = append(out, ShippableFile{Name: activeName, Size: activeSize})
	}

	s.spillMu.Lock()
	spillSize := s.spillSize
	s.spillMu.Unlock()
	if spillSize > 0 {
		out = append(out, ShippableFile{Name: spillName, Size: spillSize})
	}

	// Retained history results, the latest result, the cluster-close
	// record, then the snapshot: all atomically replaced, shipped whole
	// at their current size.
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("streamstore: list state dir: %w", err)
	}
	var history []string
	for _, e := range entries {
		if _, ok := resultHistoryWindow(e.Name()); ok {
			history = append(history, e.Name())
		}
	}
	sort.Strings(history)
	for _, name := range append(history, resultName, clusterCloseName, snapshotName) {
		fi, err := s.fs.Stat(filepath.Join(s.dir, name))
		if err != nil || fi.Size() == 0 {
			continue // never written yet (or pruned between list and stat)
		}
		out = append(out, ShippableFile{Name: name, Size: fi.Size()})
	}
	return out, nil
}

// ValidShippableName reports whether name is a file Shippable can
// list — exported for a push follower, which must refuse to write any
// other name into its replica directory.
func ValidShippableName(name string) bool { return shippableName(name) }

// shippableName reports whether name is a file Shippable can list — the
// only names ReadShippable (and, transitively, a push follower) will
// touch. Anything else, path separators included, is rejected.
func shippableName(name string) bool {
	if name == "" || strings.ContainsAny(name, "/\\") || name != filepath.Base(name) {
		return false
	}
	if name == snapshotName || name == resultName || name == spillName || name == clusterCloseName {
		return true
	}
	if _, ok := resultHistoryWindow(name); ok {
		return true
	}
	if _, ok := parseSegmentName(name); ok {
		return true
	}
	return false
}

// ReadShippable reads one file from the state directory as enumerated
// by Shippable. For journal segments the read is capped at size — the
// durable prefix the listing promised, even if the active segment has
// grown since — and a segment shorter than size (compacted away and
// the name reused is impossible; truncation is not) is an error. Other
// files ship whole at their current content, size notwithstanding:
// they are atomically replaced, so the current content is always a
// consistent, newer-or-equal version.
func (s *Store) ReadShippable(name string, size int64) ([]byte, error) {
	if !shippableName(name) {
		return nil, fmt.Errorf("streamstore: %q is not a shippable file", name)
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	if _, isSegment := parseSegmentName(name); isSegment {
		if int64(len(data)) < size {
			return nil, fmt.Errorf("streamstore: segment %s is %d bytes, want durable prefix of %d",
				name, len(data), size)
		}
		data = data[:size]
	}
	return data, nil
}
