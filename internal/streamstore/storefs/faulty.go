package storefs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
)

// ErrCrash is returned by every operation at and after a configured
// crash point: the simulated process is dead, and nothing it does past
// that instant reaches the disk.
var ErrCrash = errors.New("storefs: crash injected")

// ErrInjected is returned by a sync that FailSync targeted — a
// transient fsync failure (think one EIO) after which the filesystem
// keeps working.
var ErrInjected = errors.New("storefs: sync failure injected")

// OpKind names one class of filesystem operation in the op log.
type OpKind string

// The operation kinds a Faulty FS numbers and logs.
const (
	OpOpen     OpKind = "open"
	OpWrite    OpKind = "write"
	OpSync     OpKind = "sync"
	OpSyncDir  OpKind = "syncdir"
	OpRename   OpKind = "rename"
	OpRemove   OpKind = "remove"
	OpReadDir  OpKind = "readdir"
	OpStat     OpKind = "stat"
	OpLink     OpKind = "link"
	OpTruncate OpKind = "truncate"
	OpRead     OpKind = "read"
	OpReadFile OpKind = "readfile"
	OpClose    OpKind = "close"
)

// Op is one logged filesystem operation. The sequence number N is what
// a crash-point sweep enumerates: "crash at op 17" is deterministic and
// reproducible from the log alone.
type Op struct {
	N    int
	Kind OpKind
	Path string
	// Off and Len describe writes (and truncates, Off = size).
	Off int64
	Len int
	// Err is the outcome when the op failed ("" on success).
	Err string
}

func (o Op) String() string {
	s := fmt.Sprintf("#%03d %-8s %s", o.N, o.Kind, o.Path)
	if o.Kind == OpWrite {
		s += fmt.Sprintf(" off=%d len=%d", o.Off, o.Len)
	}
	if o.Kind == OpTruncate {
		s += fmt.Sprintf(" size=%d", o.Off)
	}
	if o.Err != "" {
		s += " ! " + o.Err
	}
	return s
}

// Faulty wraps another FS, numbering every operation into an op log and
// injecting deterministic faults:
//
//   - CrashAt(n, tear): operation n and everything after it fail with
//     ErrCrash. If operation n is a write, its first tear bytes still
//     reach the inner FS — a torn write, the on-disk shape of a power
//     cut mid-append.
//   - FailSync(n): the nth sync (file or directory) fails once with
//     ErrInjected; the filesystem keeps working afterwards.
//
// A Faulty with no faults configured is a pure op logger, useful for
// enumerating a workload's crash points and for asserting I/O patterns
// (e.g. "compaction deleted segments without rewriting survivors").
// Safe for concurrent use.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	log     []Op
	n       int
	syncN   int
	crashAt int
	tear    int
	failAt  int
	crashed bool
}

var _ FS = (*Faulty)(nil)

// NewFaulty wraps inner (storefs.OS{} in practice) with fault injection
// disabled; configure faults with CrashAt / FailSync before use.
func NewFaulty(inner FS) *Faulty {
	return &Faulty{inner: inner}
}

// CrashAt makes operation n (1-based, counted across the whole FS) and
// every later operation fail with ErrCrash. If operation n is a write,
// its first tear bytes (capped at the write's length) still land — the
// torn write a real crash leaves. n <= 0 disables the crash point.
func (fy *Faulty) CrashAt(n, tear int) {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	fy.crashAt = n
	fy.tear = tear
}

// FailSync makes the nth sync operation (file Sync or SyncDir, counted
// together, 1-based) fail once with ErrInjected. The filesystem — unlike
// a crash — keeps working afterwards.
func (fy *Faulty) FailSync(n int) {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	fy.failAt = n
}

// Crashed reports whether the crash point has been reached.
func (fy *Faulty) Crashed() bool {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	return fy.crashed
}

// OpCount returns how many operations have been numbered so far.
func (fy *Faulty) OpCount() int {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	return fy.n
}

// Ops returns a copy of the op log.
func (fy *Faulty) Ops() []Op {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	return append([]Op(nil), fy.log...)
}

// WriteOpLog renders the op log one line per operation — the
// reproduction artifact a failing crash-point test uploads from CI.
func (fy *Faulty) WriteOpLog(w io.Writer) error {
	for _, op := range fy.Ops() {
		if _, err := fmt.Fprintln(w, op); err != nil {
			return err
		}
	}
	return nil
}

// OpLogString returns the rendered op log.
func (fy *Faulty) OpLogString() string {
	var b strings.Builder
	_ = fy.WriteOpLog(&b)
	return b.String()
}

// begin numbers one operation and decides its fate: nil to proceed,
// ErrCrash at and after the crash point, ErrInjected for a targeted
// sync. For the crashing op itself, tear reports how many bytes of a
// write may still reach the inner FS.
func (fy *Faulty) begin(kind OpKind, path string, off int64, length int) (tear int, err error) {
	fy.mu.Lock()
	defer fy.mu.Unlock()
	fy.n++
	op := Op{N: fy.n, Kind: kind, Path: path, Off: off, Len: length}
	atCrash := fy.crashAt > 0 && fy.n == fy.crashAt
	if fy.crashed || atCrash || (fy.crashAt > 0 && fy.n > fy.crashAt) {
		fy.crashed = true
		op.Err = ErrCrash.Error()
		if atCrash && kind == OpWrite {
			tear = fy.tear
			if tear > length {
				tear = length
			}
			if tear > 0 {
				op.Err = fmt.Sprintf("%s (torn after %d/%d bytes)", ErrCrash, tear, length)
			}
		}
		fy.log = append(fy.log, op)
		return tear, ErrCrash
	}
	if kind == OpSync || kind == OpSyncDir {
		fy.syncN++
		if fy.failAt > 0 && fy.syncN == fy.failAt {
			op.Err = ErrInjected.Error()
			fy.log = append(fy.log, op)
			return 0, ErrInjected
		}
	}
	fy.log = append(fy.log, op)
	return 0, nil
}

// OpenFile implements FS.
func (fy *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if _, err := fy.begin(OpOpen, name, 0, 0); err != nil {
		return nil, err
	}
	f, err := fy.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fy: fy, inner: f, path: name}, nil
}

// Rename implements FS.
func (fy *Faulty) Rename(oldpath, newpath string) error {
	if _, err := fy.begin(OpRename, oldpath+" -> "+newpath, 0, 0); err != nil {
		return err
	}
	return fy.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (fy *Faulty) Remove(name string) error {
	if _, err := fy.begin(OpRemove, name, 0, 0); err != nil {
		return err
	}
	return fy.inner.Remove(name)
}

// ReadDir implements FS.
func (fy *Faulty) ReadDir(dir string) ([]fs.DirEntry, error) {
	if _, err := fy.begin(OpReadDir, dir, 0, 0); err != nil {
		return nil, err
	}
	return fy.inner.ReadDir(dir)
}

// Stat implements FS.
func (fy *Faulty) Stat(name string) (fs.FileInfo, error) {
	if _, err := fy.begin(OpStat, name, 0, 0); err != nil {
		return nil, err
	}
	return fy.inner.Stat(name)
}

// Link implements FS.
func (fy *Faulty) Link(oldname, newname string) error {
	if _, err := fy.begin(OpLink, oldname+" -> "+newname, 0, 0); err != nil {
		return err
	}
	return fy.inner.Link(oldname, newname)
}

// SyncDir implements FS.
func (fy *Faulty) SyncDir(dir string) error {
	if _, err := fy.begin(OpSyncDir, dir, 0, 0); err != nil {
		return err
	}
	return fy.inner.SyncDir(dir)
}

// MkdirAll implements FS. Directory creation is not a numbered op: the
// store only does it once at Open, before any state exists.
func (fy *Faulty) MkdirAll(dir string, perm fs.FileMode) error {
	if fy.Crashed() {
		return ErrCrash
	}
	return fy.inner.MkdirAll(dir, perm)
}

// ReadFile implements FS.
func (fy *Faulty) ReadFile(name string) ([]byte, error) {
	if _, err := fy.begin(OpReadFile, name, 0, 0); err != nil {
		return nil, err
	}
	return fy.inner.ReadFile(name)
}

// WriteFile implements FS.
func (fy *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if _, err := fy.begin(OpWrite, name, 0, len(data)); err != nil {
		return err
	}
	return fy.inner.WriteFile(name, data, perm)
}

// faultyFile routes every file operation through the owning Faulty's
// numbering and fault gate.
type faultyFile struct {
	fy    *Faulty
	inner File
	path  string
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.fy.begin(OpRead, f.path, off, len(p)); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultyFile) Write(p []byte) (int, error) {
	tear, err := f.fy.begin(OpWrite, f.path, -1, len(p))
	if err != nil {
		if tear > 0 {
			_, _ = f.inner.Write(p[:tear]) // the torn fragment that made it out
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	tear, err := f.fy.begin(OpWrite, f.path, off, len(p))
	if err != nil {
		if tear > 0 {
			_, _ = f.inner.WriteAt(p[:tear], off)
		}
		return 0, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultyFile) Sync() error {
	if _, err := f.fy.begin(OpSync, f.path, 0, 0); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultyFile) Truncate(size int64) error {
	if _, err := f.fy.begin(OpTruncate, f.path, size, 0); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultyFile) Stat() (fs.FileInfo, error) {
	if _, err := f.fy.begin(OpStat, f.path, 0, 0); err != nil {
		return nil, err
	}
	return f.inner.Stat()
}

func (f *faultyFile) Name() string { return f.path }

// Close always releases the inner handle — a crashed simulation must
// not leak file descriptors — but still reports ErrCrash past the
// crash point.
func (f *faultyFile) Close() error {
	_, gateErr := f.fy.begin(OpClose, f.path, 0, 0)
	if err := f.inner.Close(); err != nil && gateErr == nil {
		return err
	}
	return gateErr
}
