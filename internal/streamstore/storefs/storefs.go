// Package storefs abstracts the filesystem operations the stream store
// performs — open/create, rename, remove, directory listing and sync,
// and per-file write/sync — behind a small interface with two
// implementations:
//
//   - OS, the real thing, delegating straight to package os; and
//   - Faulty, a deterministic fault injector that wraps another FS,
//     numbers every operation, and can fail the Nth sync, tear a write
//     after K bytes, or crash-stop the "process" at operation N.
//
// The point of the split is that crash-recovery contracts become
// enumerable: instead of reaching a torn write inside compaction or a
// failed fsync mid-batch by kill -9 timing, a test lists the store's
// operations once, then replays the workload crashing at each one and
// asserts recovery invariants. Faulty also keeps a structured op log,
// which doubles as the reproduction artifact when a crash point fails
// in CI.
//
// The store's advisory LOCK file stays outside this abstraction: flock
// is about real inter-process exclusion, which a simulated filesystem
// cannot meaningfully provide.
package storefs

import (
	"io"
	"io/fs"
	"os"
)

// File is the per-file surface the store needs: positioned reads for
// recovery, appends and syncs for the journal, truncation for torn-tail
// repair.
type File interface {
	io.ReaderAt
	io.Writer
	io.Closer
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
}

// FS is the filesystem surface the store needs. All paths are plain
// operating-system paths (the store always passes absolute paths inside
// its state directory).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat stats a path like os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// Link creates newname as a hard link to oldname (used for retained
	// snapshot generations; may fail on filesystems without links).
	Link(oldname, newname string) error
	// SyncDir fsyncs a directory, making just-created or just-renamed
	// names durable.
	SyncDir(dir string) error
	// MkdirAll creates a directory path like os.MkdirAll.
	MkdirAll(dir string, perm fs.FileMode) error
	// ReadFile reads a whole file like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes a whole file like os.WriteFile (used only for
	// best-effort artifacts, never for durability-critical state).
	WriteFile(name string, data []byte, perm fs.FileMode) error
}

// OS is the production FS: every method delegates to package os.
type OS struct{}

var _ FS = OS{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Link implements FS.
func (OS) Link(oldname, newname string) error { return os.Link(oldname, newname) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
