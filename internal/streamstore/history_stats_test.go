package streamstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pptd/internal/obs"
	"pptd/internal/stream"
)

func mkResult(window int, truth float64) *stream.WindowResult {
	return &stream.WindowResult{
		Window:  window,
		Truths:  []float64{truth},
		Covered: []bool{true},
	}
}

func TestResultHistoryPersistAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{ResultHistory: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	for w := 1; w <= 5; w++ {
		if err := s.SaveResult(mkResult(w, float64(10*w))); err != nil {
			t.Fatalf("save %d: %v", w, err)
		}
	}

	// Only the last three history files survive pruning.
	for _, w := range []int{1, 2} {
		if _, err := os.Stat(filepath.Join(dir, resultHistoryName(w))); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("window %d history file should be pruned (err %v)", w, err)
		}
	}
	hist, err := s.LoadResultHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	for i, want := range []int{3, 4, 5} {
		if hist[i].Window != want || hist[i].Truths[0] != float64(10*want) {
			t.Errorf("history[%d] = %+v, want window %d", i, hist[i], want)
		}
	}
	// The latest is still result.json and agrees with the history tail.
	last, err := s.LoadResult()
	if err != nil || last.Window != 5 {
		t.Fatalf("LoadResult = %+v, %v", last, err)
	}
}

func TestResultHistorySkipsCorruptGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{ResultHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 3; w++ {
		if err := s.SaveResult(mkResult(w, float64(w))); err != nil {
			t.Fatal(err)
		}
	}
	// Damage one old generation: recovery must skip it, not fail.
	if err := os.WriteFile(filepath.Join(dir, resultHistoryName(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	hist, err := s.LoadResultHistory()
	if err != nil {
		t.Fatalf("LoadResultHistory with corrupt generation: %v", err)
	}
	got := make([]int, len(hist))
	for i, r := range hist {
		got[i] = r.Window
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("history windows = %v, want [1 3]", got)
	}
	// A corrupt latest result is still a hard error, matching LoadResult.
	if err := os.WriteFile(filepath.Join(dir, resultName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadResultHistory(); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("corrupt latest: err = %v, want ErrCorruptResult", err)
	}
	_ = s.Close()
}

func TestResultHistoryWithoutOptionKeepsLatestOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	for w := 1; w <= 3; w++ {
		if err := s.SaveResult(mkResult(w, float64(w))); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := s.LoadResultHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Window != 3 {
		t.Fatalf("history without option = %+v, want just window 3", hist)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{MaxBatch: 1, ResultHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	for i := 0; i < 4; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: "u", Window: i, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats(false)
	if st.JournalAppends != 4 {
		t.Errorf("appends = %d, want 4", st.JournalAppends)
	}
	// MaxBatch 1: every append pays its own sync, batch size always 1.
	if st.JournalSyncs != 4 || st.BatchSizes.Count != 4 {
		t.Errorf("syncs = %d batches = %d, want 4/4", st.JournalSyncs, st.BatchSizes.Count)
	}
	if st.BatchSizes.Counts[0] != 4 || st.BatchSizes.Max != 1 {
		t.Errorf("batch histogram = %+v", st.BatchSizes)
	}
	if st.FlushLatencySeconds.Count != 4 || st.FlushLatencySeconds.Sum <= 0 {
		t.Errorf("latency histogram = %+v", st.FlushLatencySeconds)
	}
	if st.JournalBytes <= 0 {
		t.Errorf("journal bytes = %d", st.JournalBytes)
	}
	if err := s.SaveResult(mkResult(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(false).ResultsSaved; got != 1 {
		t.Errorf("results saved = %d, want 1", got)
	}

	// Stats snapshots are independent copies: mutating one must not
	// alias the store's live counters.
	before := s.Stats(false)
	before.BatchSizes.Counts[0] = 999
	if s.Stats(false).BatchSizes.Counts[0] == 999 {
		t.Error("Stats shares bucket slice with the store")
	}
}

// TestStatsResetWindow: Stats(true) returns the window-so-far and
// advances the window boundary, so a long-lived node polling with
// reset sees per-window rates; gauges (JournalBytes, Segments) keep
// describing the present, and counting resumes from zero afterwards.
// The store's underlying counters stay monotone for /metrics — the
// reset only moves the baseline the windowed view subtracts.
func TestStatsResetWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	for i := 0; i < 3; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: "u", Window: i, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	window1 := s.Stats(true)
	if window1.JournalAppends != 3 || window1.JournalSyncs != 3 || window1.BatchSizes.Count != 3 {
		t.Fatalf("first window = %+v, want 3 appends/syncs/batches", window1)
	}
	after := s.Stats(false)
	if after.JournalAppends != 0 || after.JournalSyncs != 0 ||
		after.BatchSizes.Count != 0 || after.FlushLatencySeconds.Count != 0 {
		t.Errorf("counters survived reset: %+v", after)
	}
	if after.JournalBytes != window1.JournalBytes || after.JournalBytes <= 0 {
		t.Errorf("gauge JournalBytes = %d, want %d (unreset)", after.JournalBytes, window1.JournalBytes)
	}
	if after.Segments != window1.Segments || after.Segments < 1 {
		t.Errorf("gauge Segments = %d, want %d (unreset)", after.Segments, window1.Segments)
	}

	// Re-accumulation starts from zero, not from the pre-reset totals.
	for i := 3; i < 5; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: "u", Window: i, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	window2 := s.Stats(true)
	if window2.JournalAppends != 2 || window2.JournalSyncs != 2 || window2.BatchSizes.Count != 2 {
		t.Errorf("second window = %+v, want 2 appends/syncs/batches", window2)
	}
	if window2.FlushLatencySeconds.Max <= 0 || window2.FlushLatencySeconds.Count != 2 {
		t.Errorf("second-window latency histogram = %+v", window2.FlushLatencySeconds)
	}
}

// TestHistogramQuantileAndString exercises the promoted obs.Histogram
// through the streamstore alias, pinning that the wire type kept its
// behavior across the move.
func TestHistogramQuantileAndString(t *testing.T) {
	h := obs.NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 8} {
		h.Observe(v)
	}
	if h.Count != 5 || h.Sum != 15 || h.Max != 8 {
		t.Fatalf("histogram aggregates = %+v", h)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 = %v, want max 8", got)
	}
	if got := h.Mean(); math.Abs(got-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", got)
	}
	if s := h.String(); s == "" || s == "empty" {
		t.Errorf("String = %q", s)
	}
}

// TestStatsResetConcurrentAppends hammers Stats(true) against
// concurrent durable appends (run it with -race): every append must
// land in exactly one window — the windowed counts summed across every
// reset plus the final residue equal the true total, nothing lost or
// double-counted across reset boundaries.
func TestStatsResetConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	const (
		writers    = 4
		perWriter  = 200
		totalWrite = writers * perWriter
	)
	var wg sync.WaitGroup
	done := make(chan struct{})
	var windowSum int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			windowSum += s.Stats(true).JournalAppends
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.AppendCharge(stream.ChargeRecord{
					User: "u", Window: w*perWriter + i, Epsilon: 0.01,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(done)
	wg.Wait()
	windowSum += s.Stats(false).JournalAppends
	if windowSum != totalWrite {
		t.Fatalf("windowed appends sum to %d, want %d (lost or double-counted across resets)",
			windowSum, totalWrite)
	}
	// Gauges survived every reset.
	if st := s.Stats(false); st.JournalBytes <= 0 || st.Segments < 1 {
		t.Fatalf("gauges after resets = %+v", st)
	}
}

// TestStoreMetricsStayMonotoneAcrossResets pins the one-source-of-truth
// contract: the registered /metrics collectors read the same counters
// Stats does, match its cumulative view exactly, and keep growing
// through Stats(true) resets instead of snapping back.
func TestStoreMetricsStayMonotoneAcrossResets(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := OpenWith(dir, Options{MaxBatch: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	scrape := func(name string) float64 {
		t.Helper()
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		p, err := obs.ParseText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("parse exposition: %v", err)
		}
		v, err := p.Value(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	for i := 0; i < 3; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: "u", Window: i, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := scrape("pptd_store_journal_appends_total"); got != 3 {
		t.Fatalf("appends series = %v, want 3", got)
	}
	if got, want := scrape("pptd_store_journal_bytes"), float64(s.Stats(false).JournalBytes); got != want {
		t.Fatalf("journal bytes series = %v, stats say %v", got, want)
	}
	_ = s.Stats(true) // windowed JSON view resets...
	for i := 3; i < 5; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: "u", Window: i, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// ...but the exposition stays cumulative: 5, not the window's 2.
	if got := scrape("pptd_store_journal_appends_total"); got != 5 {
		t.Fatalf("appends series after reset = %v, want 5 (monotone)", got)
	}
	if got := s.Stats(false).JournalAppends; got != 2 {
		t.Fatalf("windowed appends = %v, want 2", got)
	}
	if got := scrape("pptd_store_flush_duration_seconds_count"); got != 5 {
		t.Fatalf("flush histogram count = %v, want 5", got)
	}
}
