//go:build unix

package streamstore

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking flock on the LOCK file. The
// kernel releases it automatically when the process dies, so a crashed
// owner never leaves a stale lock behind.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return fmt.Errorf("%w: %s held by another process", ErrLocked, f.Name())
	}
	if err != nil {
		return fmt.Errorf("streamstore: lock %s: %w", f.Name(), err)
	}
	return nil
}

func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
