package streamstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenEmptyDirHasNoState(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer func() { _ = s.Close() }()
	st, err := s.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("fresh directory returned state %+v", st)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// TestJournalReplayWithoutSnapshot is budget recovery in its purest
// form: no snapshot was ever written, yet journaled charges alone must
// reconstruct every user's cumulative spending.
func TestJournalReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for _, rec := range []stream.ChargeRecord{
		{User: "alice", Window: 0, Epsilon: 0.5},
		{User: "bob", Window: 0, Epsilon: 0.5},
		{User: "alice", Window: 1, Epsilon: 0.5},
	} {
		if err := s.AppendCharge(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	st, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.Users) != 2 {
		t.Fatalf("recovered state = %+v, want 2 users", st)
	}
	if a := st.Users[0]; a.ID != "alice" || math.Abs(a.CumulativeEpsilon-1) > 1e-12 || a.LastWindow != 1 || a.Windows != 2 {
		t.Errorf("alice = %+v", a)
	}
	if b := st.Users[1]; b.ID != "bob" || math.Abs(b.CumulativeEpsilon-0.5) > 1e-12 || b.LastWindow != 0 {
		t.Errorf("bob = %+v", b)
	}
}

// TestTornJournalTail simulates a crash mid-append: garbage and a
// partial record after the last complete line must be truncated away on
// reopen, the valid prefix replayed, and later appends must land cleanly.
func TestTornJournalTail(t *testing.T) {
	for _, tail := range []string{
		"deadbeef {\"user\":\"mallory\"", // torn mid-payload, no newline
		"xxxx",                           // short garbage
		"00000000 {\"user\":\"mallory\",\"window\":0,\"epsilon\":1}\n", // bad checksum, complete line
		"deadbeef not-json-at-all\n",                                   // bad payload, complete line
	} {
		dir := t.TempDir()
		s := mustOpen(t, dir)
		if err := s.AppendCharge(stream.ChargeRecord{User: "alice", Window: 0, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendCharge(stream.ChargeRecord{User: "bob", Window: 0, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// The crash: raw bytes land after the last durable record.
		f, err := os.OpenFile(filepath.Join(dir, segmentFileName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		re := mustOpen(t, dir)
		st, err := re.LoadState()
		if err != nil {
			t.Fatalf("tail %q: %v", tail, err)
		}
		if st == nil || len(st.Users) != 2 {
			t.Fatalf("tail %q: recovered %+v, want alice+bob", tail, st)
		}
		for _, u := range st.Users {
			if u.ID == "mallory" {
				t.Fatalf("tail %q: corrupt record replayed", tail)
			}
		}
		// The tail was repaired: appending and replaying again stays clean.
		if err := re.AppendCharge(stream.ChargeRecord{User: "carol", Window: 1, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		again := mustOpen(t, dir)
		st, err = again.LoadState()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Users) != 3 {
			t.Fatalf("tail %q: after repair+append got %d users, want 3", tail, len(st.Users))
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotRoundTripResetsJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer func() { _ = s.Close() }()
	if err := s.AppendCharge(stream.ChargeRecord{User: "alice", Window: 0, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	state := &stream.EngineState{
		NumObjects:   3,
		Window:       1,
		WindowClaims: 2,
		TotalClaims:  7,
		Users: []stream.UserSnapshot{
			{ID: "alice", Carry: 1.25, CumulativeEpsilon: 1, LastWindow: 0, Windows: 1},
		},
		Stats: []stream.StatSnapshot{
			{Object: 0, User: "alice", Sum: 3.5, Mass: 1},
			{Object: 2, User: "alice", Sum: -1, Mass: 0.5},
		},
	}
	if err := s.WriteSnapshot(state, s.JournalPos()); err != nil {
		t.Fatal(err)
	}
	// Full coverage rolls the active segment and deletes the covered one:
	// the journal is back to a single empty segment.
	if st := s.Stats(false); st.JournalBytes != 0 || st.Segments != 1 {
		t.Errorf("journal not reset after snapshot: %d bytes in %d segments", st.JournalBytes, st.Segments)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("covered segment 1 not deleted: %v", err)
	}

	got, err := s.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 1 || got.WindowClaims != 2 || got.TotalClaims != 7 {
		t.Errorf("counters = %+v", got)
	}
	if len(got.Users) != 1 || got.Users[0] != state.Users[0] {
		t.Errorf("users = %+v", got.Users)
	}
	if len(got.Stats) != 2 || got.Stats[0] != state.Stats[0] || got.Stats[1] != state.Stats[1] {
		t.Errorf("stats = %+v", got.Stats)
	}
}

// TestJournalNewerThanSnapshot is the crash window the issue calls out:
// charges accepted after the last snapshot exist only in the journal,
// and recovery must fold them on top of the snapshot.
func TestJournalNewerThanSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer func() { _ = s.Close() }()
	state := &stream.EngineState{
		Window: 1,
		Users: []stream.UserSnapshot{
			{ID: "alice", Carry: 1, CumulativeEpsilon: 1, LastWindow: 0, Windows: 1},
		},
	}
	if err := s.WriteSnapshot(state, s.JournalPos()); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot traffic: alice joins the open window 1, bob appears
	// for the first time. Then the process dies with no further snapshot.
	if err := s.AppendCharge(stream.ChargeRecord{User: "alice", Window: 1, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCharge(stream.ChargeRecord{User: "bob", Window: 1, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}

	got, err := s.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 2 {
		t.Fatalf("users = %+v", got.Users)
	}
	if a := got.Users[0]; math.Abs(a.CumulativeEpsilon-2) > 1e-12 || a.LastWindow != 1 || a.Windows != 2 {
		t.Errorf("alice = %+v, want cum 2 over windows {0,1}", a)
	}
	if b := got.Users[1]; b.ID != "bob" || math.Abs(b.CumulativeEpsilon-1) > 1e-12 || b.LastWindow != 1 {
		t.Errorf("bob = %+v", b)
	}
}

func TestCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.WriteSnapshot(&stream.EngineState{Window: 3}, JournalPos{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the state payload.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	if _, err := re.LoadState(); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("LoadState on corrupt snapshot = %v, want ErrCorruptSnapshot", err)
	}
}

func TestClosedStoreRefusesEverything(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCharge(stream.ChargeRecord{User: "a", Window: 0, Epsilon: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("AppendCharge after Close = %v", err)
	}
	if err := s.WriteSnapshot(&stream.EngineState{}, JournalPos{}); !errors.Is(err, ErrClosed) {
		t.Errorf("WriteSnapshot after Close = %v", err)
	}
	if _, err := s.LoadState(); !errors.Is(err, ErrClosed) {
		t.Errorf("LoadState after Close = %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v", err)
	}
}

// TestSnapshotPreservesConcurrentTail is the regression test for the
// snapshot/ingest race: a charge journaled after the snapshot's state
// was exported (but before WriteSnapshot ran) must survive the journal
// compaction — erasing it would lose an acknowledged submission's only
// durable trace.
func TestSnapshotPreservesConcurrentTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.AppendCharge(stream.ChargeRecord{User: "alice", Window: 0, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	// The snapshot's export happens "now": it covers alice only.
	coveredUpTo := s.JournalPos()
	state := &stream.EngineState{
		Window: 1,
		Users: []stream.UserSnapshot{
			{ID: "alice", Carry: 1, CumulativeEpsilon: 1, LastWindow: 0, Windows: 1},
		},
	}
	// Bob's submission is charged, journaled, and acknowledged while the
	// snapshot file is still being written.
	if err := s.AppendCharge(stream.ChargeRecord{User: "bob", Window: 1, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state, coveredUpTo); err != nil {
		t.Fatal(err)
	}

	// Crash + recover: bob's charge must still be there.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	got, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 2 {
		t.Fatalf("recovered users = %+v, want alice+bob", got.Users)
	}
	if b := got.Users[1]; b.ID != "bob" || b.CumulativeEpsilon != 1 || b.LastWindow != 1 {
		t.Errorf("bob's acknowledged charge lost across snapshot compaction: %+v", b)
	}
	// And the compacted journal is append-clean.
	if err := re.AppendCharge(stream.ChargeRecord{User: "carol", Window: 1, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	got, err = re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 3 {
		t.Fatalf("append after compaction: users = %+v", got.Users)
	}
}
