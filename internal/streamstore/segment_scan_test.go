package streamstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pptd/internal/stream"
)

// TestLargeSegmentChunkedRecovery exercises the streaming recovery scan
// on a segment that the old whole-file read would have buffered at
// once: thousands of records crossing many scan-chunk boundaries, one
// record whose line alone spans several chunks, and a torn tail. The
// reopened store must replay everything, truncate the tail, and accept
// further appends on a clean record boundary.
func TestLargeSegmentChunkedRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SegmentBytes: 64 << 20}) // keep it one segment
	if err != nil {
		t.Fatal(err)
	}

	// A single record far larger than journalScanChunk: its line must be
	// carried across several refills without being mistaken for a torn
	// tail.
	bigID := "big-" + strings.Repeat("u", 3*journalScanChunk)
	if err := s.AppendCharge(stream.ChargeRecord{User: bigID, Window: 0, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	const small = 2000
	for i := 0; i < small; i++ {
		rec := stream.ChargeRecord{User: fmt.Sprintf("user-%04d", i), Window: i % 7, Epsilon: 0.125}
		if err := s.AppendCharge(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: a torn line lands after the last durable record.
	f, err := os.OpenFile(filepath.Join(dir, segmentFileName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"user\":\"mallory\""); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenWith(dir, Options{SegmentBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.Users) != small+1 {
		t.Fatalf("recovered %d users, want %d", len(st.Users), small+1)
	}
	found := false
	for _, u := range st.Users {
		if u.ID == "mallory" {
			t.Fatal("torn record replayed")
		}
		if u.ID == bigID {
			found = true
			if math.Abs(u.CumulativeEpsilon-1) > 1e-12 {
				t.Errorf("big record epsilon = %v, want 1", u.CumulativeEpsilon)
			}
		}
	}
	if !found {
		t.Fatalf("multi-chunk record lost on recovery")
	}

	// The repair must have left the next append on a record boundary.
	if err := re.AppendCharge(stream.ChargeRecord{User: "carol", Window: 8, Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := OpenWith(dir, Options{SegmentBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = third.Close() }()
	st, err = third.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Users) != small+2 {
		t.Fatalf("after post-repair append: %d users, want %d", len(st.Users), small+2)
	}
}

// TestScanJournalFileMatchesParseJournal pins the chunked scanner to the
// in-memory parser it replaced: over the same bytes — valid records of
// assorted sizes plus a torn tail — both must report the same valid
// length and the same records after any skip offset.
func TestScanJournalFileMatchesParseJournal(t *testing.T) {
	var data []byte
	var ends []int64
	for i, id := range []string{
		"a",
		strings.Repeat("b", journalScanChunk+17), // line straddles a chunk boundary
		"c",
		strings.Repeat("d", 2*journalScanChunk),
		"e",
	} {
		line, err := encodeChargeLine(stream.ChargeRecord{User: id, Window: i, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, line...)
		ends = append(ends, int64(len(data)))
	}
	torn := append(append([]byte{}, data...), "00000000 {\"user\":\"x\"}\n junk"...)

	path := filepath.Join(t.TempDir(), "seg.wal")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()

	skips := []int64{0, 1, ends[0], ends[1], ends[len(ends)-1], int64(len(torn))}
	for _, skip := range skips {
		wantRecs, wantValid := parseJournalAfter(torn, skip)
		var gotRecs []stream.ChargeRecord
		gotValid, err := scanJournalFile(f, int64(len(torn)), skip, func(rec stream.ChargeRecord) {
			gotRecs = append(gotRecs, rec)
		})
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		if gotValid != wantValid {
			t.Errorf("skip %d: valid = %d, want %d", skip, gotValid, wantValid)
		}
		if len(gotRecs) != len(wantRecs) {
			t.Fatalf("skip %d: %d records, want %d", skip, len(gotRecs), len(wantRecs))
		}
		for i := range gotRecs {
			if !reflect.DeepEqual(gotRecs[i], wantRecs[i]) {
				t.Errorf("skip %d: record %d = %+v, want %+v", skip, i, gotRecs[i], wantRecs[i])
			}
		}
	}
}
