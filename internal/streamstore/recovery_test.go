package streamstore

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stream"
)

// TestKillAndRecoverThroughStore is the end-to-end crash drill over the
// real serialization path: an engine journals charges through the store
// and snapshots at every window close; after a "kill" (the engine is
// dropped with no further persistence) a new engine recovered via
// LoadState must produce the same next-window truths and weights as an
// uninterrupted engine over identical traffic, within 1e-9, and a user
// who exhausted their budget before the kill must stay rejected.
func TestKillAndRecoverThroughStore(t *testing.T) {
	const (
		numObjects = 6
		numUsers   = 8
		numWindows = 3
		cutAfter   = 2
	)
	cfg := stream.Config{
		NumObjects: numObjects,
		NumShards:  3,
		Decay:      0.9,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}

	// Deterministic per-window traffic shared by both runs.
	rng := randx.New(11)
	windows := make([][][]stream.Claim, numWindows)
	for w := range windows {
		windows[w] = make([][]stream.Claim, numUsers)
		for u := range windows[w] {
			claims := make([]stream.Claim, numObjects)
			for obj := range claims {
				claims[obj] = stream.Claim{Object: obj, Value: 10*rng.Float64() - 5}
			}
			windows[w][u] = claims
		}
	}
	ingest := func(t *testing.T, e *stream.Engine, w int) {
		t.Helper()
		for u, claims := range windows[w] {
			if _, _, err := e.Ingest(fmt.Sprintf("user-%d", u), claims); err != nil {
				t.Fatalf("window %d user %d: %v", w, u, err)
			}
		}
	}

	// Reference run: no interruption, no persistence.
	ref, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ref.Close() }()
	var want *stream.WindowResult
	for w := 0; w < numWindows; w++ {
		ingest(t, ref, w)
		if want, err = ref.CloseWindow(); err != nil {
			t.Fatal(err)
		}
	}

	// Durable run, killed after cutAfter windows.
	dir := t.TempDir()
	store := mustOpen(t, dir)
	durCfg := cfg
	durCfg.Ledger = store
	dur, err := stream.New(durCfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < cutAfter; w++ {
		ingest(t, dur, w)
		if _, err := dur.CloseWindow(); err != nil {
			t.Fatal(err)
		}
		if err := store.SnapshotEngine(dur); err != nil {
			t.Fatal(err)
		}
	}
	// The kill: shard workers stop, nothing else is persisted.
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery in a "new process".
	store2 := mustOpen(t, dir)
	defer func() { _ = store2.Close() }()
	state, err := store2.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if state == nil {
		t.Fatal("no recovered state")
	}
	recCfg := cfg
	recCfg.Ledger = store2
	rec, err := stream.New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}

	var got *stream.WindowResult
	for w := cutAfter; w < numWindows; w++ {
		ingest(t, rec, w)
		if got, err = rec.CloseWindow(); err != nil {
			t.Fatal(err)
		}
	}
	const tol = 1e-9
	if got.Window != want.Window || got.TotalClaims != want.TotalClaims {
		t.Fatalf("recovered window/claims = %d/%d, want %d/%d",
			got.Window, got.TotalClaims, want.Window, want.TotalClaims)
	}
	for n := range want.Truths {
		if got.Covered[n] != want.Covered[n] {
			t.Fatalf("object %d covered mismatch", n)
		}
		if want.Covered[n] && math.Abs(got.Truths[n]-want.Truths[n]) > tol {
			t.Errorf("object %d truth differs by %g", n, math.Abs(got.Truths[n]-want.Truths[n]))
		}
	}
	for id, w := range want.Weights {
		if math.Abs(got.Weights[id]-w) > tol {
			t.Errorf("weight %s differs by %g", id, math.Abs(got.Weights[id]-w))
		}
	}
	if math.Abs(got.Privacy.MaxCumulative-want.Privacy.MaxCumulative) > tol {
		t.Errorf("MaxCumulative = %v, want %v", got.Privacy.MaxCumulative, want.Privacy.MaxCumulative)
	}
}

// TestExhaustedUserStaysRejectedAfterCrash drives a budget to the cap,
// crashes WITHOUT ever writing a post-charge snapshot, and verifies the
// journal alone keeps the user rejected after recovery — including a
// charge that was newer than the last snapshot.
func TestExhaustedUserStaysRejectedAfterCrash(t *testing.T) {
	cfg := stream.Config{
		NumObjects: 1,
		NumShards:  1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
	}
	probe, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe.EpsilonPerWindow()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.EpsilonBudget = 2.5 * eps // affords exactly two windows

	dir := t.TempDir()
	store := mustOpen(t, dir)
	durCfg := cfg
	durCfg.Ledger = store
	e, err := stream.New(durCfg)
	if err != nil {
		t.Fatal(err)
	}
	claims := []stream.Claim{{Object: 0, Value: 1}}

	// Window 1: charge journaled, window closed, snapshot written.
	if _, _, err := e.Ingest("alice", claims); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if err := store.SnapshotEngine(e); err != nil {
		t.Fatal(err)
	}
	// Window 2 charge arrives AFTER the snapshot: alice now sits at the
	// cap, but only the journal knows. Crash before any further snapshot.
	if _, _, err := e.Ingest("alice", claims); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := mustOpen(t, dir)
	defer func() { _ = store2.Close() }()
	state, err := store2.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	recCfg := cfg
	recCfg.Ledger = store2
	rec, err := stream.New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}

	// Alice already released into the still-open window 2: duplicate.
	if _, _, err := rec.Ingest("alice", claims); !errors.Is(err, stream.ErrDuplicateWindow) {
		t.Fatalf("alice resubmitting the open window after crash = %v, want ErrDuplicateWindow", err)
	}
	// Fresh users keep the stream alive; once the window advances, alice
	// is out of budget — the journal-replayed charge holds.
	if _, _, err := rec.Ingest("bob", claims); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Ingest("alice", claims); !errors.Is(err, stream.ErrBudgetExhausted) {
		t.Fatalf("alice past the cap after crash recovery = %v, want ErrBudgetExhausted", err)
	}
}
