package streamstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
)

// pr4FixtureConfig is the engine configuration the committed PR 4-era
// fixture (testdata/pr4-state) was produced with.
func pr4FixtureConfig() stream.Config {
	return stream.Config{
		NumObjects: 4,
		NumShards:  1,
		Decay:      0.9,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
}

// copyFixture clones a committed state-dir fixture into a temp dir,
// since Open mutates the directory (migration, lock file).
func copyFixture(t *testing.T, fixture string) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// pr4Expected is the recovery outcome the pre-segmentation code
// produced from the fixture, captured at fixture-generation time.
type pr4Expected struct {
	State          *stream.EngineState `json:"state"`
	HistoryWindows []int               `json:"historyWindows"`
	LatestWindow   int                 `json:"latestWindow"`
}

func loadPR4Expected(t *testing.T) pr4Expected {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "pr4-expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	var exp pr4Expected
	if err := json.Unmarshal(data, &exp); err != nil {
		t.Fatal(err)
	}
	return exp
}

// requireStateEquivalent compares two engine states within tol on the
// float fields and exactly elsewhere.
func requireStateEquivalent(t *testing.T, got, want *stream.EngineState, tol float64) {
	t.Helper()
	if got.Window != want.Window || got.WindowClaims != want.WindowClaims || got.TotalClaims != want.TotalClaims {
		t.Fatalf("counters = window %d claims %d/%d, want %d %d/%d",
			got.Window, got.WindowClaims, got.TotalClaims, want.Window, want.WindowClaims, want.TotalClaims)
	}
	if len(got.Users) != len(want.Users) {
		t.Fatalf("users = %d, want %d", len(got.Users), len(want.Users))
	}
	for i, w := range want.Users {
		g := got.Users[i]
		if g.ID != w.ID || g.LastWindow != w.LastWindow || g.Windows != w.Windows {
			t.Errorf("user[%d] = %+v, want %+v", i, g, w)
		}
		if math.Abs(g.Carry-w.Carry) > tol || math.Abs(g.CumulativeEpsilon-w.CumulativeEpsilon) > tol {
			t.Errorf("user[%d] floats = (%v, %v), want (%v, %v)", i, g.Carry, g.CumulativeEpsilon, w.Carry, w.CumulativeEpsilon)
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("stats = %d entries, want %d", len(got.Stats), len(want.Stats))
	}
	for i, w := range want.Stats {
		g := got.Stats[i]
		if g.Object != w.Object || g.User != w.User {
			t.Errorf("stat[%d] = (%d, %s), want (%d, %s)", i, g.Object, g.User, w.Object, w.User)
		}
		if math.Abs(g.Sum-w.Sum) > tol || math.Abs(g.Mass-w.Mass) > tol {
			t.Errorf("stat[%d] floats = (%v, %v), want (%v, %v)", i, g.Sum, g.Mass, w.Sum, w.Mass)
		}
	}
}

// TestMigrateLegacyJournal opens a committed PR 4-era state directory —
// single-file ledger.journal, pre-JournalPos snapshot, result history —
// and verifies the segmented store (a) migrates the journal to segment 1
// byte-for-byte, (b) recovers the exact engine state the old code
// recovered, and (c) leaves a directory a second Open sees as pure
// segments with nothing left to migrate.
func TestMigrateLegacyJournal(t *testing.T) {
	fixture := filepath.Join("testdata", "pr4-state")
	dir := copyFixture(t, fixture)
	legacyBytes, err := os.ReadFile(filepath.Join(dir, legacyJournalName))
	if err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	if _, err := os.Stat(filepath.Join(dir, legacyJournalName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy journal still present after migration: %v", err)
	}
	segBytes, err := os.ReadFile(filepath.Join(dir, segmentFileName(1)))
	if err != nil {
		t.Fatalf("migrated segment missing: %v", err)
	}
	if string(segBytes) != string(legacyBytes) {
		t.Fatalf("migration changed journal bytes: %d -> %d", len(legacyBytes), len(segBytes))
	}

	e := mustEngine(t, pr4FixtureConfig())
	defer func() { _ = e.Close() }()
	found, err := s.Recover(e)
	if err != nil || !found {
		t.Fatalf("Recover = %v, %v; want found", found, err)
	}
	st, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	exp := loadPR4Expected(t)
	requireStateEquivalent(t, st, exp.State, 1e-9)
	var gotHist []int
	for _, res := range e.History() {
		gotHist = append(gotHist, res.Window)
	}
	if len(gotHist) != len(exp.HistoryWindows) {
		t.Fatalf("history windows = %v, want %v", gotHist, exp.HistoryWindows)
	}
	for i, w := range exp.HistoryWindows {
		if gotHist[i] != w {
			t.Fatalf("history windows = %v, want %v", gotHist, exp.HistoryWindows)
		}
	}
	if snap := e.Snapshot(); snap == nil || snap.Window != exp.LatestWindow {
		t.Fatalf("latest served window = %+v, want %d", snap, exp.LatestWindow)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Second Open: pure segments, identical recovery, and writes land in
	// the migrated world (the legacy name never comes back).
	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	e2 := mustEngine(t, pr4FixtureConfig())
	defer func() { _ = e2.Close() }()
	if found, err := re.Recover(e2); err != nil || !found {
		t.Fatalf("second Recover = %v, %v", found, err)
	}
	st2, err := e2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	requireStateEquivalent(t, st2, exp.State, 1e-9)
	if err := re.AppendCharge(stream.ChargeRecord{User: "post-migration", Window: exp.State.Window, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.Name() == legacyJournalName {
			t.Fatal("legacy journal reappeared after migration")
		}
	}
}

// TestSnapshotVersionGuardsDowngrade: snapshots carrying a covered
// JournalPos are written as envelope version 2, so a rolled-back
// pre-segmentation binary — which accepts only version 1 and knows
// nothing of journal-*.wal — fails loudly ("unsupported version")
// instead of restoring the snapshot while silently dropping every
// charge journaled after it. Results stay version 1: old binaries can
// still read them, and this binary reads both.
func TestSnapshotVersionGuardsDowngrade(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer func() { _ = s.Close() }()
	if err := s.WriteSnapshot(&stream.EngineState{Window: 1}, s.JournalPos()); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(mkResult(1, 2.5)); err != nil {
		t.Fatal(err)
	}
	versionOf := func(name string) int {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var env envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		return env.Version
	}
	if v := versionOf(snapshotName); v != segmentedSnapshotVersion {
		t.Errorf("snapshot envelope version = %d, want %d (downgrade guard)", v, segmentedSnapshotVersion)
	}
	if v := versionOf(resultName); v != envelopeVersion {
		t.Errorf("result envelope version = %d, want %d (old binaries keep reading results)", v, envelopeVersion)
	}
}

// TestStraySegmentLookalikesIgnored: files that merely start like a
// segment name (an operator's journal-000000001.wal.bak backup) must
// not register as segments — a duplicate sequence number would replay
// records twice and let compaction delete the live file.
func TestStraySegmentLookalikesIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: fmt.Sprintf("u%d", i), Window: 0, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, segmentFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{
		segmentFileName(1) + ".bak", // backup copy of the live segment
		"journal-1.wal",             // unpadded: not a name we ever write
		"journal-000000002.wal.tmp",
	} {
		if err := os.WriteFile(filepath.Join(dir, stray), seg, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	if pos := re.JournalPos(); pos.Seq != 1 {
		t.Fatalf("stray look-alike changed the active segment: pos %+v", pos)
	}
	st, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Users) != 3 {
		t.Fatalf("recovered %d users, want 3 (stray files replayed?)", len(st.Users))
	}
	for _, u := range st.Users {
		if u.CumulativeEpsilon != 1 {
			t.Errorf("user %s epsilon = %v, want 1 (double replay)", u.ID, u.CumulativeEpsilon)
		}
	}
	// A compaction must not touch the stray files either.
	if err := re.WriteSnapshot(&stream.EngineState{Window: 1}, re.JournalPos()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(1)+".bak")); err != nil {
		t.Errorf("compaction removed the operator's backup: %v", err)
	}
}

// TestMigrateRefusesAmbiguousLayout: a directory holding BOTH a legacy
// journal and segments has no well-defined record order; Open must fail
// loudly instead of guessing (silently misordering replay could
// mischarge users).
func TestMigrateRefusesAmbiguousLayout(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.AppendCharge(stream.ChargeRecord{User: "a", Window: 0, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyJournalName), []byte("stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on a directory with both ledger.journal and segments")
	}
}
