package streamstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"pptd/internal/stream"
)

// Cluster-close durability: a worker participating in a coordinated
// cluster window close (internal/cluster) must be able to answer a
// retried close RPC for a window its engine already advanced past —
// across a crash, not just within one process lifetime. The worker
// therefore persists its per-window export alongside the engine
// snapshot (cluster-close.json, atomically replaced like the snapshot),
// and flips the record's Committed flag once the coordinator's merged
// carries were applied and snapshotted. On recovery the file restores
// the export cache, and its Committed flag is how a rebooting
// coordinator distinguishes "window W closed and committed everywhere"
// from "window W closed but the merge/commit never finished" — the
// latter must be re-driven before serving, or every later window would
// estimate from stale carries.

const (
	clusterCloseName    = "cluster-close.json"
	clusterCloseTmpName = "cluster-close.json.tmp"
)

// ClusterCloseFileName is the cluster-close record's base name inside a
// state directory — exported for shippers, which (like the snapshot)
// must re-ship it even when the sink holds a same-size copy: the record
// is atomically rewritten each round, and a stale copy on a restored
// replica could wedge a retried close.
const ClusterCloseFileName = clusterCloseName

// ErrCorruptClusterClose reports a persisted cluster-close record that
// fails its integrity check. It is written atomically, so this means
// on-disk damage; recovery must not silently continue from it, because
// losing the export cache can wedge a retried cluster close.
var ErrCorruptClusterClose = errors.New("streamstore: corrupt cluster close record")

// ClusterCloseState is one worker's durable record of its most recent
// coordinated cluster window close.
type ClusterCloseState struct {
	// Window is the 1-based window the export belongs to.
	Window int `json:"window"`
	// Committed reports whether the coordinator's merged carries for
	// Window were applied (and snapshotted) on this worker. False means
	// the close round is still in flight: a coordinator booting against
	// this worker must finish the merge/commit before serving.
	Committed bool `json:"committed"`
	// State is the pre-close export served to close retries.
	State *stream.EngineState `json:"state"`
}

// SaveClusterClose atomically persists the worker's cluster-close
// record (same temp/fsync/rename/dir-fsync dance as the snapshot). Each
// close overwrites the previous record — only the latest window's
// export is ever needed, because the coordinator never reaches back
// past it.
func (s *Store) SaveClusterClose(cs *ClusterCloseState) error {
	if cs == nil || cs.State == nil {
		return errors.New("streamstore: nil cluster close state")
	}
	body, err := json.Marshal(cs)
	if err != nil {
		return fmt.Errorf("streamstore: encode cluster close: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.writeEnvelopeLocked("cluster close", clusterCloseName, clusterCloseTmpName, body, nil)
}

// LoadClusterClose returns the persisted cluster-close record, or nil
// when this worker never served a coordinated close.
func (s *Store) LoadClusterClose() (*ClusterCloseState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	body, _, err := readEnvelope(s.fs, filepath.Join(s.dir, clusterCloseName), ErrCorruptClusterClose)
	if body == nil || err != nil {
		return nil, err
	}
	cs := new(ClusterCloseState)
	if err := json.Unmarshal(body, cs); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorruptClusterClose, err)
	}
	return cs, nil
}
