package streamstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

// The journal is a sequence of rolling segment files, journal-<seq>.wal,
// with seq ascending from 1 (zero-padded so lexical order is sequence
// order). Appends go only to the active segment — the highest sequence
// number — and once a flush pushes it past Options.SegmentBytes it is
// sealed: already fsync'd, never written again, and a fresh segment is
// created (its name made durable with a directory sync) for subsequent
// appends. Sealed segments are immutable, which is what makes compaction
// O(segments): a snapshot that covers a sealed segment entirely lets it
// be deleted outright, no bytes rewritten. The one partially-covered
// boundary segment is left intact and its covered prefix skipped on
// recovery using the snapshot's JournalPos marker.
//
// Legacy layout: before segmentation the journal was one rewrite-on-
// compact file, ledger.journal. Open migrates it by renaming it to the
// first segment — the record format is unchanged — so a pre-segmentation
// state directory recovers cleanly and a second Open sees only segments.

// segmentInfo is the store's bookkeeping for one sealed segment.
type segmentInfo struct {
	seq  int64
	size int64
}

// end is the journal position just past the segment's last byte; a
// snapshot covers the whole segment iff its covered position is not
// before it.
func (g segmentInfo) end() JournalPos {
	return JournalPos{Seq: g.seq, Off: g.size}
}

// JournalPos identifies a point in the segmented journal: every byte of
// segments with sequence numbers below Seq, plus the first Off bytes of
// segment Seq, lie before it. The zero value is the start of the
// journal. Snapshots embed the position their export covers, so
// compaction can delete covered segments and recovery can skip the
// covered prefix of the boundary segment.
type JournalPos struct {
	Seq int64 `json:"seq"`
	Off int64 `json:"off"`
}

// Before reports whether p orders strictly before q.
func (p JournalPos) Before(q JournalPos) bool {
	return p.Seq < q.Seq || (p.Seq == q.Seq && p.Off < q.Off)
}

func segmentFileName(seq int64) string {
	return fmt.Sprintf("journal-%09d.wal", seq)
}

func (s *Store) segmentPath(seq int64) string {
	return filepath.Join(s.dir, segmentFileName(seq))
}

// parseSegmentName parses journal-<seq>.wal back to its sequence
// number, reporting false for other files. Only exact round-trips
// count: Sscanf tolerates trailing bytes, and accepting e.g. an
// operator's journal-000000003.wal.bak as segment 3 would register a
// duplicate sequence — double replay on recovery, and compaction
// deleting the live file.
func parseSegmentName(name string) (int64, bool) {
	var seq int64
	if n, err := fmt.Sscanf(name, "journal-%d.wal", &seq); n != 1 || err != nil {
		return 0, false
	}
	if seq <= 0 || name != segmentFileName(seq) {
		return 0, false
	}
	return seq, true
}

// segmentBytesLocked returns the effective segment size cap.
func (s *Store) segmentBytesLocked() int64 {
	if s.opts.SegmentBytes > 0 {
		return s.opts.SegmentBytes
	}
	return defaultSegmentBytes
}

// journalBytesLocked returns the journal's total live size across every
// segment. Callers must hold s.mu.
func (s *Store) journalBytesLocked() int64 {
	total := s.activeSize
	for _, seg := range s.sealed {
		total += seg.size
	}
	return total
}

// openJournalLocked brings the segmented journal up at Open time: it
// migrates a legacy single-file journal into segment 1, scans the
// directory for segments, opens the highest sequence as the active
// segment (creating segment 1 on a fresh directory), and repairs any
// torn tail a crash mid-append left in it. Sealed segments are never
// touched — a roll only happens after a successful fsync, so a torn
// tail can only live in the last segment.
func (s *Store) openJournalLocked() error {
	if err := s.migrateLegacyJournalLocked(); err != nil {
		return err
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("streamstore: scan state dir: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		fi, err := s.fs.Stat(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return fmt.Errorf("streamstore: stat segment %s: %w", e.Name(), err)
		}
		segs = append(segs, segmentInfo{seq: seq, size: fi.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })

	activeSeq := int64(1)
	created := len(segs) == 0
	if !created {
		activeSeq = segs[len(segs)-1].seq
		segs = segs[:len(segs)-1]
	}
	f, err := s.fs.OpenFile(s.segmentPath(activeSeq), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: open journal segment: %w", err)
	}
	if created {
		if err := s.fs.SyncDir(s.dir); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: sync state dir: %w", err)
		}
	}
	s.sealed = segs
	s.active = f
	s.activeSeq = activeSeq
	if err := s.repairActiveLocked(); err != nil {
		_ = f.Close()
		s.active = nil
		return err
	}
	return nil
}

// migrateLegacyJournalLocked renames a pre-segmentation ledger.journal
// into the first free segment slot. The rename is atomic and the record
// format unchanged, so a crash before, during, or after migration
// leaves a directory that the next Open handles identically.
func (s *Store) migrateLegacyJournalLocked() error {
	legacy := filepath.Join(s.dir, legacyJournalName)
	if _, err := s.fs.Stat(legacy); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("streamstore: stat legacy journal: %w", err)
	}
	// Our own migration is a single atomic rename, so segments can never
	// coexist with ledger.journal from any crash of ours; seeing both
	// means outside interference, and there is no way to know whether
	// the legacy records predate or postdate the segments'. Refuse
	// loudly — misordered replay could mischarge users.
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("streamstore: scan state dir before migration: %w", err)
	}
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			return fmt.Errorf("streamstore: legacy journal %s coexists with segment %s: refusing to guess record order",
				legacyJournalName, e.Name())
		}
	}
	if err := s.fs.Rename(legacy, s.segmentPath(1)); err != nil {
		return fmt.Errorf("streamstore: migrate legacy journal: %w", err)
	}
	// A pre-segmentation binary that crashed mid-compaction can leave
	// ledger.journal.tmp behind; nothing will ever touch it again, and a
	// stale file full of journal-looking records invites operator
	// confusion. Best-effort: it holds no acknowledged state.
	_ = s.fs.Remove(legacy + ".tmp")
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	return nil
}

// repairActiveLocked scans the active segment for its longest valid
// prefix and truncates anything after it (a torn tail from a crashed
// append), so subsequent appends land on a record boundary. The scan
// streams the segment in chunks — a store whose active segment grew
// huge (say, a raised SegmentBytes or a roll that kept failing) must
// not need segment-sized memory just to boot. Callers must hold s.mu.
func (s *Store) repairActiveLocked() error {
	fi, err := s.active.Stat()
	if err != nil {
		return fmt.Errorf("streamstore: stat journal segment: %w", err)
	}
	valid, err := scanJournalFile(s.active, fi.Size(), fi.Size(), nil)
	if err != nil {
		return err
	}
	if fi.Size() > valid {
		if err := s.active.Truncate(valid); err != nil {
			return fmt.Errorf("streamstore: repair journal tail: %w", err)
		}
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("streamstore: sync repaired journal: %w", err)
		}
	}
	s.activeSize = valid
	return nil
}

// readSegmentLocked reads one whole segment through its open handle.
func (s *Store) readSegmentLocked(f storefs.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("streamstore: stat journal segment: %w", err)
	}
	data := make([]byte, fi.Size())
	n, err := f.ReadAt(data, 0)
	if int64(n) != fi.Size() && err != nil {
		return nil, fmt.Errorf("streamstore: read journal segment: %w", err)
	}
	return data[:n], nil
}

// rollSegmentLocked seals the active segment (it is already fsync'd —
// rolls only happen after a successful flush) and opens the next
// sequence number, syncing the directory so the new name is durable.
// Failures leave the current segment active past its size cap and are
// returned for the caller to decide: the append path ignores them (the
// batch is already durable, and failing an acknowledged-able append
// over a housekeeping error would roll back charges that are safely on
// disk; the next flush simply retries), while compaction propagates
// them so a state directory that can no longer create files surfaces
// as a snapshot error instead of unbounded silent journal growth.
// Callers must hold s.mu.
func (s *Store) rollSegmentLocked() error {
	next := s.activeSeq + 1
	f, err := s.fs.OpenFile(s.segmentPath(next), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create journal segment %d: %w", next, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		_ = f.Close()
		_ = s.fs.Remove(s.segmentPath(next))
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	old := s.active
	s.sealed = append(s.sealed, segmentInfo{seq: s.activeSeq, size: s.activeSize})
	s.active = f
	s.activeSeq = next
	s.activeSize = 0
	s.segmentsSealed++
	_ = old.Close()
	return nil
}

// compactJournalLocked applies a snapshot's coverage to the segmented
// journal: every sealed segment at or before covered is deleted whole —
// O(segments), no surviving byte rewritten — and the partially-covered
// boundary segment (if any) is left intact, its covered prefix skipped
// on recovery via the JournalPos marker the snapshot carries. When the
// coverage reaches the active segment's durable tail, the active
// segment is rolled and deleted too, so a quiet store snapshotting
// every close keeps exactly one small live segment. If any step is
// interrupted, leftover covered segments are harmless: recovery replay
// is idempotent and the marker skips them; the next compaction deletes
// them. Callers must hold s.mu.
func (s *Store) compactJournalLocked(covered JournalPos) error {
	// The whole journal covered: seal the active segment and let the
	// sealed-segment pass below delete it with the rest. A roll failure
	// here must not stay silent — it means the journal can no longer be
	// reclaimed — so it surfaces as the snapshot's error (the snapshot
	// itself is already durable; recovery is unaffected).
	if covered.Seq == s.activeSeq && covered.Off >= s.activeSize && s.activeSize > 0 {
		if err := s.rollSegmentLocked(); err != nil {
			return err
		}
	}
	kept := s.sealed[:0]
	var firstErr error
	for _, seg := range s.sealed {
		if !covered.Before(seg.end()) {
			if err := s.fs.Remove(s.segmentPath(seg.seq)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("streamstore: delete covered segment %d: %w", seg.seq, err)
				}
				kept = append(kept, seg)
				continue
			}
			s.segmentsDeleted++
			continue
		}
		kept = append(kept, seg)
	}
	s.sealed = kept
	if firstErr != nil {
		return firstErr
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	return nil
}

// readJournalLocked reads every journal record past covered, in segment
// order: sealed segments first (skipping those the snapshot covers
// entirely and the covered prefix of the boundary segment), then the
// active segment's durable prefix. Each segment contributes the longest
// valid prefix of its bytes — the per-segment CRC torn-tail rule — so
// damage in one segment never hides records in another. Segments are
// scanned in chunks, never buffered whole (see scanJournalFile).
// Callers must hold s.mu.
func (s *Store) readJournalLocked(covered JournalPos) ([]stream.ChargeRecord, error) {
	var recs []stream.ChargeRecord
	emit := func(rec stream.ChargeRecord) { recs = append(recs, rec) }
	for _, seg := range s.sealed {
		if !covered.Before(seg.end()) {
			continue
		}
		var skip int64
		if seg.seq == covered.Seq {
			skip = covered.Off
		}
		if err := s.scanSealedSegment(seg, skip, emit); err != nil {
			return nil, err
		}
	}
	fi, err := s.active.Stat()
	if err != nil {
		return nil, fmt.Errorf("streamstore: stat journal segment: %w", err)
	}
	var skip int64
	if s.activeSeq == covered.Seq {
		skip = covered.Off
	}
	if _, err := scanJournalFile(s.active, fi.Size(), skip, emit); err != nil {
		return nil, err
	}
	return recs, nil
}

// scanSealedSegment opens one sealed segment read-only and streams its
// records past skip into emit.
func (s *Store) scanSealedSegment(seg segmentInfo, skip int64, emit func(stream.ChargeRecord)) error {
	f, err := s.fs.OpenFile(s.segmentPath(seg.seq), os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("streamstore: open journal segment %d: %w", seg.seq, err)
	}
	defer func() { _ = f.Close() }()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("streamstore: stat journal segment %d: %w", seg.seq, err)
	}
	if _, err := scanJournalFile(f, fi.Size(), skip, emit); err != nil {
		return fmt.Errorf("streamstore: read journal segment %d: %w", seg.seq, err)
	}
	return nil
}
