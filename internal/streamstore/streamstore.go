// Package streamstore persists the streaming truth-discovery engine's
// state so that privacy guarantees and estimator statistics survive
// process restarts. It keeps three artifacts in one state directory:
//
//   - an append-only journal of rolling segment files (journal-<seq>.wal):
//     one checksummed record per accepted submission, holding the
//     (user, window) epsilon charge and — with stream.Config.ClaimWAL —
//     the submission's claims, fsync'd before the engine acknowledges
//     the submission. Concurrent appends group-commit: the first
//     appender in becomes the batch leader and flushes everyone that
//     joined with a single write+fsync (see Options), so durable ingest
//     scales with concurrency instead of serializing on the disk.
//     Appends go to the active (highest-sequence) segment only; a
//     segment that outgrows Options.SegmentBytes is sealed — immutable
//     from then on — and a fresh one opened. The journal is the ground
//     truth between snapshots: a crash never loses an acknowledged
//     charge, nor (with the claim WAL) the statistics it paid for.
//
//   - a periodic engine snapshot (snapshot.json): the full
//     stream.EngineState (window counter, per-user carry weights and
//     budgets, decayed sufficient statistics) written with a
//     write-temp / fsync / atomic-rename / fsync-dir sequence and an
//     embedded CRC-32, per the Options cadence (every Nth window close
//     and/or once the journal outgrows a size bound; see
//     MaybeSnapshotEngine). The snapshot embeds the JournalPos its
//     export covers; compaction then deletes the sealed segments that
//     position subsumes — O(segments), no surviving byte rewritten —
//     and recovery skips the covered prefix of the one boundary
//     segment. Previous generations can be retained as operator
//     artifacts (Options.RetainSnapshots).
//
//   - the last published window result (result.json): the estimate the
//     last window close produced, written atomically like the snapshot,
//     so a restarted server can serve the previous truths immediately
//     instead of nothing until the next close.
//
//   - the user-spill file (users.spill): one checksummed record per
//     evicted user (carry weight, cumulative epsilon, estimator state),
//     written newest-wins by the engine's residency-cap eviction and
//     read back on re-admission; an in-memory offset index makes loads
//     one positioned read, and the file compacts by atomic rewrite
//     once dead records outweigh live ones. See spill.go.
//
//   - the batch-campaign leg (batch.wal + batch-result.json): every
//     accepted batch submission fsync'd before its acknowledgement,
//     plus the aggregated result written atomically, so the one-shot
//     campaign's duplicate guard and published result survive a
//     restart too. See batch.go.
//
// Recovery (Recover) restores the latest snapshot into a fresh engine,
// replays every journaled record past the snapshot's covered position
// (budgets always, claims when present — re-running any window closes
// the journal implies), and seeds the last published result. Replay is
// idempotent — records the snapshot already covers are skipped — so
// state recovers correctly from any crash point: journal older than,
// overlapping, or strictly newer than the snapshot, including a journal
// with no snapshot at all. A torn or corrupt journal tail (a crash
// mid-append) is detected by the per-record checksum and truncated
// away; a corrupt snapshot is an error, since the atomic rename means
// it can only arise from disk damage, not a crash.
//
// Pre-segmentation state directories (a single ledger.journal) are
// migrated on Open: the file becomes segment 1 by atomic rename — the
// record format is unchanged — and every later Open sees only segments.
//
// All file I/O goes through a storefs.FS (Options.FS; the real
// filesystem by default), so crash points inside group commit, segment
// sealing, snapshot renames, and compaction are enumerable in tests via
// storefs.Faulty instead of reachable only by kill -9 timing. The
// advisory LOCK file alone stays on the real filesystem — flock is
// inter-process exclusion, which a simulated filesystem cannot provide.
package streamstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pptd/internal/obs"
	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

const (
	snapshotName      = "snapshot.json"
	snapshotTmpName   = "snapshot.json.tmp"
	resultName        = "result.json"
	resultTmpName     = "result.json.tmp"
	legacyJournalName = "ledger.journal"
	lockName          = "LOCK"

	// envelopeVersion marks results and pre-segmentation snapshots;
	// segmentedSnapshotVersion marks snapshots that carry a covered
	// JournalPos. The bump is the downgrade guard: a pre-segmentation
	// binary pointed at a segmented state dir rejects the version-2
	// snapshot loudly ("unsupported version") instead of accepting the
	// state while silently ignoring the journal-*.wal segments — which
	// would erase every charge journaled after the snapshot. This
	// binary reads both versions.
	envelopeVersion          = 1
	segmentedSnapshotVersion = 2

	// defaultMaxBatch bounds a group-commit batch when Options.MaxBatch
	// is zero: large enough that the disk, not the bound, paces ingest.
	defaultMaxBatch = 256

	// defaultSegmentBytes caps the active journal segment when
	// Options.SegmentBytes is zero: small enough that compaction deletes
	// segments promptly, large enough that a segment outlives many
	// group-commit batches.
	defaultSegmentBytes = 4 << 20
)

var (
	// ErrClosed reports use of a store after Close.
	ErrClosed = errors.New("streamstore: store closed")
	// ErrLocked reports a state directory already held by another live
	// store (usually another process).
	ErrLocked = errors.New("streamstore: state directory locked")
	// ErrCorruptSnapshot reports a snapshot whose checksum or envelope
	// does not verify. Snapshots are written atomically, so this means
	// on-disk damage rather than an interrupted write; recovery should
	// not silently continue from it.
	ErrCorruptSnapshot = errors.New("streamstore: corrupt snapshot")
	// ErrCorruptResult reports a persisted window result that fails its
	// integrity check. Like the snapshot it is written atomically, so
	// this means on-disk damage; deleting result.json clears it at the
	// cost of serving no estimate until the next window close.
	ErrCorruptResult = errors.New("streamstore: corrupt result")
)

// Options tunes a store's durability/throughput trade-offs. The zero
// value is the sensible default: group commit with no added latency,
// 4 MiB journal segments, a snapshot at every window close, no retained
// generations.
type Options struct {
	// FlushInterval is the longest a group-commit leader lingers to let
	// more concurrent appends join its batch before syncing. Zero adds
	// no latency: batching then comes only from appends arriving while
	// an earlier sync (or a snapshot) holds the disk, which is already
	// enough to make durable ingest scale with concurrency. Positive
	// values trade per-append latency for larger batches — fewer fsyncs
	// — under load that arrives faster than it syncs.
	FlushInterval time.Duration
	// MaxBatch caps the records one group-commit batch may carry; a
	// full batch stops waiting and syncs immediately. Zero means 256.
	// MaxBatch 1 disables group commit entirely — every append pays its
	// own fsync (kept for benchmarking the trade-off and for strict
	// one-record-per-sync deployments).
	MaxBatch int
	// SegmentBytes caps the active journal segment: the first flush
	// that pushes it past the cap seals it and rolls to a fresh
	// segment, so one segment may exceed the cap by at most a batch.
	// Smaller segments mean finer-grained compaction (covered segments
	// are deleted whole, never rewritten) at the cost of more files.
	// Zero means 4 MiB.
	SegmentBytes int64
	// SnapshotEvery makes MaybeSnapshotEngine write a snapshot on every
	// Nth call (the server calls it once per window close) instead of
	// every one. Zero or one snapshots at every close. The journal —
	// and the claim WAL, when enabled — covers the windows in between.
	SnapshotEvery int
	// SnapshotBytes forces a snapshot on the next MaybeSnapshotEngine
	// call whenever the journal has grown past this many bytes,
	// regardless of cadence, bounding both recovery replay time and
	// disk growth. Zero disables the size trigger.
	SnapshotBytes int64
	// RetainSnapshots keeps the previous N snapshot generations
	// (snapshot.json.1 is the most recent previous) as manual-recovery
	// artifacts for operators. Recovery never reads them: an older
	// snapshot combined with a journal compacted against a newer one is
	// missing charges, and silently falling back would hand users their
	// spent epsilon back. Zero retains none.
	RetainSnapshots int
	// ResultHistory persists the last N published window results (one
	// result-<window>.json per close, atomically written like result.json
	// and pruned past the bound), so GET /v1/stream/truths?window=N keeps
	// answering for recent windows across a kill-and-recover. Zero or one
	// persists only the latest result, the pre-history behavior. Match it
	// to the engine's stream.Config.HistoryWindows — persisting more than
	// the engine ring retains is wasted disk, fewer means late readers
	// lose windows on restart.
	ResultHistory int
	// FS routes every file operation (journal segments, snapshots,
	// results — everything but the flock'd LOCK file) through the given
	// filesystem. Nil means the real one (storefs.OS). Tests inject
	// storefs.Faulty here to enumerate crash points deterministically.
	FS storefs.FS
	// Metrics, when non-nil, receives the store's pptd_store_* series
	// as scrape-time callbacks over the same counters Stats reads (one
	// source of truth for /v1/stream/stats and /metrics). The registry
	// must not already carry another store's collectors.
	Metrics *obs.Registry
}

func (o Options) validate() error {
	switch {
	case o.FlushInterval < 0:
		return fmt.Errorf("streamstore: FlushInterval = %v", o.FlushInterval)
	case o.MaxBatch < 0:
		return fmt.Errorf("streamstore: MaxBatch = %d", o.MaxBatch)
	case o.SegmentBytes < 0:
		return fmt.Errorf("streamstore: SegmentBytes = %d", o.SegmentBytes)
	case o.SnapshotEvery < 0:
		return fmt.Errorf("streamstore: SnapshotEvery = %d", o.SnapshotEvery)
	case o.SnapshotBytes < 0:
		return fmt.Errorf("streamstore: SnapshotBytes = %d", o.SnapshotBytes)
	case o.RetainSnapshots < 0:
		return fmt.Errorf("streamstore: RetainSnapshots = %d", o.RetainSnapshots)
	case o.ResultHistory < 0:
		return fmt.Errorf("streamstore: ResultHistory = %d", o.ResultHistory)
	}
	return nil
}

// Store is a durable state directory for one streaming engine. It
// implements stream.Ledger, so it can be wired directly into
// stream.Config.Ledger. Safe for concurrent use; concurrent appends
// coalesce into group-commit batches that share one fsync each.
type Store struct {
	dir  string
	opts Options
	fs   storefs.FS

	// commitMu guards the open group-commit batch; it is never held
	// across I/O, so joining a batch stays cheap under contention.
	commitMu sync.Mutex
	pending  *commitBatch

	mu   sync.Mutex
	lock *os.File

	// Segmented journal state: sealed (immutable, ascending seq) plus
	// the active segment appends go to.
	sealed     []segmentInfo
	active     storefs.File
	activeSeq  int64
	activeSize int64

	// User-spill state (users.spill; see spill.go). spillMu is its own
	// lock so spills and loads never contend with group commit; lock
	// order is s.mu before spillMu. spill == nil means closed.
	spillMu          sync.Mutex
	spill            storefs.File
	spillSize        int64
	spillLive        int64
	spillIndex       map[string]spillRef
	userSpills       int64
	userLoads        int64
	spillCompactions int64

	// Batch-campaign WAL state (batch.wal; see batch.go). The file is
	// created lazily on the first append, so batch == nil does not mean
	// closed — batchClosed does. Lock order is s.mu before batchMu.
	batchMu      sync.Mutex
	batch        storefs.File
	batchSize    int64
	batchClosed  bool
	batchAppends int64

	// Observability counters. All cumulative and monotone — they back
	// the registered /metrics callbacks — with base marking the last
	// Stats(reset) boundary for the windowed JSON view.
	journalSyncs        int64
	journalAppends      int64
	snapshots           int64
	resultsSaved        int64
	segmentsSealed      int64
	segmentsDeleted     int64
	batchSizes          Histogram
	flushLatency        Histogram
	base                statsBase
	closesSinceSnapshot int
	closed              bool
}

// JournalSyncs returns how many journal fsyncs the store has issued
// since Open. With group commit one sync can cover many appends; the
// ratio of appends to syncs is the batching win (reported by
// BenchmarkDurableIngest and useful for ops dashboards).
func (s *Store) JournalSyncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalSyncs
}

// Open creates (or reopens) the state directory with default Options.
// See OpenWith.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith creates (or reopens) the state directory and prepares the
// segmented ledger journal for appending: a legacy single-file journal
// is migrated to segment 1, the highest-sequence segment becomes the
// active one, and any torn tail left by a crash mid-append is truncated
// away. The directory is guarded by an advisory lock (LOCK file, flock
// on unix, released automatically if the process dies): two processes
// sharing one state directory would silently overwrite each other's
// journal records, so a second concurrent Open fails with ErrLocked
// instead. Callers own the returned store and must Close it.
func OpenWith(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("streamstore: empty state directory")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = storefs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("streamstore: create state dir: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streamstore: open lock file: %w", err)
	}
	if err := lockFile(lock); err != nil {
		_ = lock.Close()
		return nil, err
	}
	s := &Store{
		dir: dir, opts: opts, fs: fsys, lock: lock,
		batchSizes:   obs.NewHistogram(batchSizeBounds),
		flushLatency: obs.NewHistogram(flushLatencyBounds),
	}
	fail := func(err error) (*Store, error) {
		for _, f := range []storefs.File{s.active, s.spill, s.batch} {
			if f != nil {
				_ = f.Close()
			}
		}
		_ = unlockFile(lock)
		_ = lock.Close()
		return nil, err
	}
	if err := s.openJournalLocked(); err != nil {
		return fail(err)
	}
	if err := s.openSpillLocked(); err != nil {
		return fail(err)
	}
	if err := s.openBatchLocked(); err != nil {
		return fail(err)
	}
	if opts.Metrics != nil {
		s.registerMetrics(opts.Metrics)
	}
	return s, nil
}

// Dir returns the state directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// AppendCharge durably appends one privacy-ledger record: it returns
// only after the record is written and fsync'd, which is what lets the
// engine acknowledge the submission. Concurrent calls group-commit —
// one of them leads the batch and runs a single write+fsync for all —
// so the fsync cost amortizes across however many submissions are in
// flight. Implements stream.Ledger.
func (s *Store) AppendCharge(rec stream.ChargeRecord) error {
	line, err := encodeChargeLine(rec)
	if err != nil {
		return err
	}
	return s.commit(line)
}

// envelope wraps a serialized payload (engine state or window result)
// with an integrity check: CRC32 is the IEEE checksum of the raw State
// bytes. Snapshot envelopes additionally carry the JournalPos their
// state covers (absent in pre-segmentation snapshots, which cover
// nothing the journal does not re-prove — replay is idempotent).
type envelope struct {
	Version int             `json:"version"`
	CRC32   string          `json:"crc32"`
	Covered *JournalPos     `json:"covered,omitempty"`
	State   json.RawMessage `json:"state"`
}

// JournalPos returns the journal's current durable end position.
// Captured BEFORE an engine state export, it bounds the records that
// export is guaranteed to cover (a charge journaled before the capture
// was debited in-memory before the export quiesced the engine), which
// is what makes WriteSnapshot's segment compaction safe under
// concurrent ingestion.
func (s *Store) JournalPos() JournalPos {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JournalPos{Seq: s.activeSeq, Off: s.activeSize}
}

// SnapshotEngine persists the engine's current state through this store
// in the race-free order: journal position first, then the quiesced
// state export, then WriteSnapshot. Charges appended concurrently with
// the export land at or past the captured position and survive the
// segment compaction, so an acknowledged submission is never erased by
// a snapshot that predates it.
func (s *Store) SnapshotEngine(e *stream.Engine) error {
	covered := s.JournalPos()
	st, err := e.ExportState()
	if err != nil {
		return err
	}
	return s.WriteSnapshot(st, covered)
}

// MaybeSnapshotEngine applies the store's snapshot cadence: it counts
// one window close and snapshots the engine (SnapshotEngine) when the
// count reaches Options.SnapshotEvery, or sooner once the journal has
// outgrown Options.SnapshotBytes. It reports whether a snapshot was
// attempted; a skipped close costs nothing beyond the counter. Skipping
// is safe exactly when the journal can reconstruct the skipped windows:
// budgets always can, statistics only with the claim WAL — without it a
// crash between snapshots falls back to losing post-snapshot claims
// (privacy-conservative, as before).
func (s *Store) MaybeSnapshotEngine(e *stream.Engine) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	s.closesSinceSnapshot++
	every := s.opts.SnapshotEvery
	if every <= 0 {
		every = 1
	}
	due := s.closesSinceSnapshot >= every ||
		(s.opts.SnapshotBytes > 0 && s.journalBytesLocked() >= s.opts.SnapshotBytes)
	s.mu.Unlock()
	if !due {
		return false, nil
	}
	return true, s.SnapshotEngine(e)
}

// WriteSnapshot atomically replaces the on-disk snapshot with the given
// engine state: the envelope — carrying covered, the journal position
// captured before st was exported (see JournalPos; SnapshotEngine does
// the whole dance) — is written to a temporary file, fsync'd, renamed
// over the snapshot name, and the directory is fsync'd, so a crash at
// any point leaves either the old snapshot or the new one — never a
// partial file. When Options.RetainSnapshots is set, the previous
// snapshot is first filed as generation .1 (older generations shift up)
// without ever touching the live file. After the snapshot is durable
// the journal is compacted: sealed segments at or before covered are
// deleted whole, records past it — which may postdate the export — are
// preserved untouched. If compaction is interrupted, replaying stale
// records is harmless because recovery replay is idempotent and skips
// everything before the snapshot's covered position.
func (s *Store) WriteSnapshot(st *stream.EngineState, covered JournalPos) error {
	if st == nil {
		return errors.New("streamstore: nil engine state")
	}
	body, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("streamstore: encode snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.RetainSnapshots > 0 {
		s.rotateSnapshotsLocked()
	}
	if err := s.writeEnvelopeLocked("snapshot", snapshotName, snapshotTmpName, body, &covered); err != nil {
		return err
	}
	s.snapshots++
	s.closesSinceSnapshot = 0
	return s.compactJournalLocked(covered)
}

// SaveResult atomically persists one window close's published result
// (same temp/fsync/rename/dir-fsync dance as the snapshot), so recovery
// can serve the previous estimate immediately instead of answering
// not-ready until the next close. With Options.ResultHistory > 1 the
// result is additionally filed as result-<window>.json and results older
// than the history bound are pruned, so recent windows stay answerable
// by number across a restart. Truths of uncovered objects are NaN in the
// engine, which JSON cannot carry; they are stored as zeros and restored
// from the Covered mask on load.
func (s *Store) SaveResult(res *stream.WindowResult) error {
	if res == nil {
		return errors.New("streamstore: nil window result")
	}
	cp := *res
	cp.Truths = make([]float64, len(res.Truths))
	for i, v := range res.Truths {
		if i < len(res.Covered) && res.Covered[i] {
			cp.Truths[i] = v
		}
	}
	body, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("streamstore: encode result: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.ResultHistory > 1 {
		name := resultHistoryName(res.Window)
		if err := s.writeEnvelopeLocked("result history", name, name+".tmp", body, nil); err != nil {
			return err
		}
		s.pruneResultHistoryLocked(res.Window)
	}
	if err := s.writeEnvelopeLocked("result", resultName, resultTmpName, body, nil); err != nil {
		return err
	}
	s.resultsSaved++
	return nil
}

// LoadResult returns the last persisted window result, or nil when none
// was ever saved. Uncovered truths come back as NaN, matching what the
// engine published.
func (s *Store) LoadResult() (*stream.WindowResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.loadResultFileLocked(filepath.Join(s.dir, resultName))
}

// loadResultFileLocked reads, verifies, and decodes one persisted result
// file, restoring NaN for uncovered truths. Callers must hold s.mu.
func (s *Store) loadResultFileLocked(path string) (*stream.WindowResult, error) {
	body, _, err := readEnvelope(s.fs, path, ErrCorruptResult)
	if body == nil || err != nil {
		return nil, err
	}
	res := new(stream.WindowResult)
	if err := json.Unmarshal(body, res); err != nil {
		return nil, fmt.Errorf("%w: decode result: %v", ErrCorruptResult, err)
	}
	for i := range res.Truths {
		if i >= len(res.Covered) || !res.Covered[i] {
			res.Truths[i] = math.NaN()
		}
	}
	return res, nil
}

// resultHistoryName is the file name one retained window result is filed
// under (zero-padded so lexical order is window order).
func resultHistoryName(window int) string {
	return fmt.Sprintf("result-%09d.json", window)
}

// resultHistoryWindow parses a history file name back to its window,
// reporting false for files that are not history results.
func resultHistoryWindow(name string) (int, bool) {
	var w int
	if n, err := fmt.Sscanf(name, "result-%d.json", &w); n != 1 || err != nil {
		return 0, false
	}
	return w, true
}

// pruneResultHistoryLocked removes history results at or below
// latest - ResultHistory. Pruning is best-effort: a leftover file costs
// disk, never correctness. Callers must hold s.mu.
func (s *Store) pruneResultHistoryLocked(latest int) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if w, ok := resultHistoryWindow(e.Name()); ok && w <= latest-s.opts.ResultHistory {
			_ = s.fs.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// LoadResultHistory returns every retained window result in ascending
// window order (empty when none were ever saved, e.g. a store without
// Options.ResultHistory). The latest result (result.json) is included
// even when it predates the history option being enabled. Individual
// history files that fail their integrity check are skipped — they are
// auxiliary read-side artifacts, and losing one old window must not
// block recovering the stream — while a corrupt latest result is still
// reported (ErrCorruptResult), matching LoadResult.
func (s *Store) LoadResultHistory() ([]*stream.WindowResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	byWindow := make(map[int]*stream.WindowResult)
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("streamstore: read state dir: %w", err)
	}
	for _, e := range entries {
		if _, ok := resultHistoryWindow(e.Name()); !ok {
			continue
		}
		res, err := s.loadResultFileLocked(filepath.Join(s.dir, e.Name()))
		if err != nil || res == nil {
			continue // auxiliary artifact: skip, recovery must not block
		}
		byWindow[res.Window] = res
	}
	latest, err := s.loadResultFileLocked(filepath.Join(s.dir, resultName))
	if err != nil {
		return nil, err
	}
	if latest != nil {
		byWindow[latest.Window] = latest
	}
	out := make([]*stream.WindowResult, 0, len(byWindow))
	for _, res := range byWindow {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out, nil
}

// writeEnvelopeLocked writes payload under a checksummed envelope with
// the atomic temp/fsync/rename/dir-fsync sequence. covered, when
// non-nil, records the journal position a snapshot subsumes. Callers
// must hold s.mu.
func (s *Store) writeEnvelopeLocked(what, name, tmpName string, payload []byte, covered *JournalPos) error {
	version := envelopeVersion
	if covered != nil {
		version = segmentedSnapshotVersion
	}
	env, err := json.Marshal(envelope{
		Version: version,
		CRC32:   fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)),
		Covered: covered,
		State:   payload,
	})
	if err != nil {
		return fmt.Errorf("streamstore: encode %s envelope: %w", what, err)
	}
	tmp := filepath.Join(s.dir, tmpName)
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create %s temp: %w", what, err)
	}
	if _, err := f.Write(env); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: write %s: %w", what, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync %s: %w", what, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("streamstore: close %s temp: %w", what, err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("streamstore: publish %s: %w", what, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	return nil
}

// rotateSnapshotsLocked files the current snapshot as generation .1,
// shifting older generations up and dropping the one past
// RetainSnapshots. Every step leaves snapshot.json itself untouched —
// the current generation is hard-linked, not moved — so a crash
// mid-rotation can cost at most a retained copy, never the live
// snapshot. Failures are ignored for the same reason: generations are
// operator artifacts, never read by recovery. Callers must hold s.mu.
func (s *Store) rotateSnapshotsLocked() {
	cur := filepath.Join(s.dir, snapshotName)
	if _, err := s.fs.Stat(cur); err != nil {
		return // nothing to retain yet
	}
	gen := func(k int) string { return fmt.Sprintf("%s.%d", cur, k) }
	for k := s.opts.RetainSnapshots - 1; k >= 1; k-- {
		_ = s.fs.Rename(gen(k), gen(k+1))
	}
	_ = s.fs.Remove(gen(1))
	if err := s.fs.Link(cur, gen(1)); err != nil {
		// Hard links can be unsupported (some network filesystems); fall
		// back to a plain copy of the current bytes.
		if data, rerr := s.fs.ReadFile(cur); rerr == nil {
			_ = s.fs.WriteFile(gen(1), data, 0o644)
		}
	}
}

// Recover restores everything the store persists into a freshly
// constructed engine: the latest snapshot (if any) via Engine.Restore,
// then the journal records past the snapshot's covered position
// replayed on top via Engine.ReplayJournal — budgets always; claims too
// when the records carry them (stream.Config.ClaimWAL), re-running any
// window closes the journal implies — then window closes that only the
// published result proves (Engine.ReplayClosesTo; a cadence-skipped
// snapshot leaves the last close with no journal trace), and finally
// the retained published window results via Engine.RestoreHistory, so
// the previous estimate — and, with Options.ResultHistory, recent
// windows by number — is servable immediately. It reports whether any
// persisted state was found; false means a fresh deployment.
func (s *Store) Recover(e *stream.Engine) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	st, covered, err := s.loadSnapshotLocked()
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	recs, err := s.readJournalLocked(covered)
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	s.mu.Unlock()

	history, err := s.LoadResultHistory()
	if err != nil {
		return true, err
	}
	if st == nil && len(recs) == 0 && len(history) == 0 {
		return false, nil
	}
	if st != nil {
		if err := e.Restore(st); err != nil {
			return true, err
		}
	}
	if len(recs) > 0 {
		if _, err := e.ReplayJournal(recs); err != nil {
			return true, err
		}
	}
	if len(history) > 0 {
		// A close that no journal record postdates — snapshot skipped by
		// cadence, no traffic afterwards — is provable only through the
		// published result: fast-forward the window counter to it, so
		// the recovered engine does not re-open a window its users
		// already saw close.
		if err := e.ReplayClosesTo(history[len(history)-1].Window); err != nil {
			return true, err
		}
	}
	e.RestoreHistory(history)
	return true, nil
}

// LoadState recovers the engine state: the latest snapshot (if any) with
// all journaled charges past its covered position replayed on top. It
// returns (nil, nil) when the directory holds no state at all — a fresh
// deployment.
//
// LoadState is the budgets-only, state-level view: claims carried by
// claim-WAL records are not folded (stream.EngineState.ReplayCharges
// ignores them), and no persisted window result is loaded. Recover is
// the full recovery path.
func (s *Store) LoadState() (*stream.EngineState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	st, covered, err := s.loadSnapshotLocked()
	if err != nil {
		return nil, err
	}
	recs, err := s.readJournalLocked(covered)
	if err != nil {
		return nil, err
	}
	if st == nil && len(recs) == 0 {
		return nil, nil
	}
	if st == nil {
		st = &stream.EngineState{}
	}
	st.ReplayCharges(recs)
	return st, nil
}

// loadSnapshotLocked reads and verifies the snapshot file, returning
// the engine state plus the journal position the snapshot covers (zero
// for pre-segmentation snapshots: replay then sees every record, which
// idempotence makes correct). A nil state means no snapshot exists.
// Callers must hold s.mu.
func (s *Store) loadSnapshotLocked() (*stream.EngineState, JournalPos, error) {
	body, covered, err := readEnvelope(s.fs, filepath.Join(s.dir, snapshotName), ErrCorruptSnapshot)
	if body == nil || err != nil {
		return nil, JournalPos{}, err
	}
	st := new(stream.EngineState)
	if err := json.Unmarshal(body, st); err != nil {
		return nil, JournalPos{}, fmt.Errorf("%w: decode state: %v", ErrCorruptSnapshot, err)
	}
	return st, covered, nil
}

// readEnvelope reads and integrity-checks one enveloped file, returning
// (nil, zero, nil) when the file does not exist and wrapping
// verification failures in corruptErr. The returned JournalPos is the
// envelope's covered marker (zero when absent — results and legacy
// snapshots).
func readEnvelope(fsys storefs.FS, path string, corruptErr error) ([]byte, JournalPos, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, JournalPos{}, nil
	}
	if err != nil {
		return nil, JournalPos{}, fmt.Errorf("streamstore: read %s: %w", filepath.Base(path), err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, JournalPos{}, fmt.Errorf("%w: %v", corruptErr, err)
	}
	if env.Version < envelopeVersion || env.Version > segmentedSnapshotVersion {
		return nil, JournalPos{}, fmt.Errorf("%w: unsupported version %d", corruptErr, env.Version)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.State)); got != env.CRC32 {
		return nil, JournalPos{}, fmt.Errorf("%w: checksum %s, want %s", corruptErr, got, env.CRC32)
	}
	covered := JournalPos{}
	if env.Covered != nil {
		covered = *env.Covered
	}
	return env.State, covered, nil
}

// Close releases the journal handle and the directory lock. Appends and
// loads fail afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	err := s.active.Close()
	s.spillMu.Lock()
	if s.spill != nil {
		if serr := s.spill.Close(); err == nil {
			err = serr
		}
		s.spill = nil
	}
	s.spillMu.Unlock()
	s.batchMu.Lock()
	s.batchClosed = true
	if s.batch != nil {
		if berr := s.batch.Close(); err == nil {
			err = berr
		}
		s.batch = nil
	}
	s.batchMu.Unlock()
	if uerr := unlockFile(s.lock); err == nil {
		err = uerr
	}
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}
