// Package streamstore persists the streaming truth-discovery engine's
// state so that privacy guarantees and estimator statistics survive
// process restarts. It keeps two artifacts in one state directory:
//
//   - an append-only privacy ledger journal (ledger.journal): one
//     checksummed record per (user, window) epsilon charge, fsync'd
//     before the engine acknowledges the submission. The journal is the
//     ground truth for cumulative budgets between snapshots — a crash
//     can lose claims, but never a charge that was acknowledged.
//
//   - a periodic engine snapshot (snapshot.json): the full
//     stream.EngineState (window counter, per-user carry weights and
//     budgets, decayed sufficient statistics) written with a
//     write-temp / fsync / atomic-rename / fsync-dir sequence and an
//     embedded CRC-32, typically at every window close. A successful
//     snapshot subsumes the journal records that predate its export,
//     which are compacted away; records appended concurrently with the
//     export are preserved (see SnapshotEngine).
//
// Recovery (LoadState) returns the latest snapshot with every journaled
// charge replayed on top. Replay is idempotent — records the snapshot
// already covers are skipped — so budgets recover correctly from any
// crash point: journal older than, overlapping, or strictly newer than
// the snapshot, including a journal with no snapshot at all. A torn or
// corrupt journal tail (a crash mid-append) is detected by the per-record
// checksum and truncated away; a corrupt snapshot is an error, since the
// atomic rename means it can only arise from disk damage, not a crash.
package streamstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"pptd/internal/stream"
)

const (
	snapshotName    = "snapshot.json"
	snapshotTmpName = "snapshot.json.tmp"
	journalName     = "ledger.journal"
	lockName        = "LOCK"
	snapshotVersion = 1
)

var (
	// ErrClosed reports use of a store after Close.
	ErrClosed = errors.New("streamstore: store closed")
	// ErrLocked reports a state directory already held by another live
	// store (usually another process).
	ErrLocked = errors.New("streamstore: state directory locked")
	// ErrCorruptSnapshot reports a snapshot whose checksum or envelope
	// does not verify. Snapshots are written atomically, so this means
	// on-disk damage rather than an interrupted write; recovery should
	// not silently continue from it.
	ErrCorruptSnapshot = errors.New("streamstore: corrupt snapshot")
)

// Store is a durable state directory for one streaming engine. It
// implements stream.Ledger, so it can be wired directly into
// stream.Config.Ledger. Safe for concurrent use; appends from concurrent
// submissions are serialized internally (each paying one fsync — batched
// group commit is a possible future optimization).
type Store struct {
	dir string

	mu          sync.Mutex
	lock        *os.File
	journal     *os.File
	journalSize int64
	closed      bool
}

// Open creates (or reopens) the state directory and prepares the ledger
// journal for appending, truncating any torn tail left by a crash
// mid-append. The directory is guarded by an advisory lock (LOCK file,
// flock on unix, released automatically if the process dies): two
// processes sharing one state directory would silently overwrite each
// other's journal records, so a second concurrent Open fails with
// ErrLocked instead. Callers own the returned store and must Close it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("streamstore: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("streamstore: create state dir: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("streamstore: open lock file: %w", err)
	}
	if err := lockFile(lock); err != nil {
		_ = lock.Close()
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		_ = unlockFile(lock)
		_ = lock.Close()
		return nil, fmt.Errorf("streamstore: open journal: %w", err)
	}
	s := &Store{dir: dir, lock: lock, journal: f}
	if err := s.repairJournalLocked(); err != nil {
		_ = f.Close()
		_ = unlockFile(lock)
		_ = lock.Close()
		return nil, err
	}
	return s, nil
}

// Dir returns the state directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// AppendCharge durably appends one privacy-ledger record: it returns
// only after the record is written and fsync'd, which is what lets the
// engine acknowledge the submission. Implements stream.Ledger.
func (s *Store) AppendCharge(rec stream.ChargeRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.appendJournalLocked(rec)
}

// snapshotEnvelope wraps the serialized EngineState with an integrity
// check: CRC32 is the IEEE checksum of the raw State bytes.
type snapshotEnvelope struct {
	Version int             `json:"version"`
	CRC32   string          `json:"crc32"`
	State   json.RawMessage `json:"state"`
}

// JournalOffset returns the journal's current durable size. Captured
// BEFORE an engine state export, it bounds the records that export is
// guaranteed to cover (a charge journaled before the capture was debited
// in-memory before the export quiesced the engine), which is what makes
// WriteSnapshot's journal compaction safe under concurrent ingestion.
func (s *Store) JournalOffset() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalSize
}

// SnapshotEngine persists the engine's current state through this store
// in the race-free order: journal offset first, then the quiesced state
// export, then WriteSnapshot. Charges appended concurrently with the
// export land at or past the captured offset and survive the journal
// compaction, so an acknowledged submission is never erased by a
// snapshot that predates it.
func (s *Store) SnapshotEngine(e *stream.Engine) error {
	coveredUpTo := s.JournalOffset()
	st, err := e.ExportState()
	if err != nil {
		return err
	}
	return s.WriteSnapshot(st, coveredUpTo)
}

// WriteSnapshot atomically replaces the on-disk snapshot with the given
// engine state: the envelope is written to a temporary file, fsync'd,
// renamed over the snapshot name, and the directory is fsync'd, so a
// crash at any point leaves either the old snapshot or the new one —
// never a partial file. After the snapshot is durable the journal is
// compacted: records before coveredUpTo — a journal offset captured
// before st was exported (see JournalOffset; SnapshotEngine does the
// whole dance) — are covered by the snapshot and dropped, while records
// past it, which may postdate the export, are preserved. If compaction
// is interrupted, replaying stale records is harmless because recovery
// replay is idempotent.
func (s *Store) WriteSnapshot(st *stream.EngineState, coveredUpTo int64) error {
	if st == nil {
		return errors.New("streamstore: nil engine state")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	body, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("streamstore: encode snapshot: %w", err)
	}
	env, err := json.Marshal(snapshotEnvelope{
		Version: snapshotVersion,
		CRC32:   fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)),
		State:   body,
	})
	if err != nil {
		return fmt.Errorf("streamstore: encode snapshot envelope: %w", err)
	}

	tmp := filepath.Join(s.dir, snapshotTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create snapshot temp: %w", err)
	}
	if _, err := f.Write(env); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("streamstore: close snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("streamstore: publish snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	return s.compactJournalLocked(coveredUpTo)
}

// LoadState recovers the engine state: the latest snapshot (if any) with
// all journaled charges replayed on top. It returns (nil, nil) when the
// directory holds no state at all — a fresh deployment.
func (s *Store) LoadState() (*stream.EngineState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	st, err := s.loadSnapshotLocked()
	if err != nil {
		return nil, err
	}
	recs, _, err := s.readJournalLocked()
	if err != nil {
		return nil, err
	}
	if st == nil && len(recs) == 0 {
		return nil, nil
	}
	if st == nil {
		st = &stream.EngineState{}
	}
	st.ReplayCharges(recs)
	return st, nil
}

// loadSnapshotLocked reads and verifies the snapshot file, returning nil
// when none exists. Callers must hold s.mu.
func (s *Store) loadSnapshotLocked() (*stream.EngineState, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("streamstore: read snapshot: %w", err)
	}
	var env snapshotEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if env.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSnapshot, env.Version)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.State)); got != env.CRC32 {
		return nil, fmt.Errorf("%w: checksum %s, want %s", ErrCorruptSnapshot, got, env.CRC32)
	}
	st := new(stream.EngineState)
	if err := json.Unmarshal(env.State, st); err != nil {
		return nil, fmt.Errorf("%w: decode state: %v", ErrCorruptSnapshot, err)
	}
	return st, nil
}

// Close releases the journal handle and the directory lock. Appends and
// loads fail afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	err := s.journal.Close()
	if uerr := unlockFile(s.lock); err == nil {
		err = uerr
	}
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}
