package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

func spillOf(id string, eps float64, windows int) stream.UserSpill {
	return stream.UserSpill{
		ID:                id,
		Carry:             1.25,
		CumulativeEpsilon: eps,
		LastWindow:        windows - 1,
		Windows:           windows,
		Estimator:         stream.EstimatorCRH,
	}
}

// TestSpillRoundTrip: spilled users load back exactly, newest record
// wins, the index survives a reopen (including a torn tail), and loads
// of never-spilled users report absence without error.
func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	if err := s.SpillUsers([]stream.UserSpill{
		spillOf("alice", 1.5, 3),
		spillOf("bob", 0.5, 1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.SpillUsers([]stream.UserSpill{spillOf("alice", 2.0, 4)}); err != nil {
		t.Fatal(err) // newest-wins overwrite
	}
	if _, found, err := s.LoadUser("nobody"); err != nil || found {
		t.Fatalf("LoadUser(nobody) = %v, %v; want absent", found, err)
	}
	sp, found, err := s.LoadUser("alice")
	if err != nil || !found {
		t.Fatalf("LoadUser(alice): %v, %v", found, err)
	}
	if sp.CumulativeEpsilon != 2.0 || sp.Windows != 4 {
		t.Fatalf("alice = %+v, want the newest record", sp)
	}
	if got := s.SpilledUsers(); got != 2 {
		t.Fatalf("SpilledUsers = %d, want 2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-line: reopen must keep the durable prefix.
	path := filepath.Join(dir, spillName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("0bad crc {torn")...), 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	sp, found, err = re.LoadUser("alice")
	if err != nil || !found {
		t.Fatalf("reopened LoadUser(alice): %v, %v", found, err)
	}
	if sp.CumulativeEpsilon != 2.0 {
		t.Fatalf("reopened alice epsilon = %v, want 2.0", sp.CumulativeEpsilon)
	}
	if _, found, err := re.LoadUser("bob"); err != nil || !found {
		t.Fatalf("reopened LoadUser(bob): %v, %v", found, err)
	}
	if got := re.SpilledUsers(); got != 2 {
		t.Fatalf("reopened SpilledUsers = %d, want 2", got)
	}
}

// TestSpillRejectsBadRecords: an empty ID is refused before anything
// touches the file — it would be indexed live but silently dropped on
// reopen, a split-brain the encoder must prevent.
func TestSpillRejectsBadRecords(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer func() { _ = s.Close() }()
	if err := s.SpillUsers([]stream.UserSpill{{ID: ""}}); err == nil {
		t.Fatal("empty-ID spill accepted")
	}
	if got := s.SpilledUsers(); got != 0 {
		t.Fatalf("SpilledUsers = %d after rejected spill", got)
	}
}

// TestSpillCompaction: re-spilling the same users past the size
// threshold compacts the file down to one newest record per user, the
// records survive, and a reopen agrees.
func TestSpillCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	// Pad records so overwrites cross spillCompactMinBytes quickly.
	pad := json.RawMessage(`{"pad":"` + string(bytes.Repeat([]byte("x"), 400)) + `"}`)
	const users = 8
	var rounds int
	for rounds = 0; ; rounds++ {
		batch := make([]stream.UserSpill, users)
		for u := range batch {
			batch[u] = spillOf(fmt.Sprintf("user-%02d", u), float64(rounds), rounds)
			batch[u].EstimatorState = pad
		}
		if err := s.SpillUsers(batch); err != nil {
			t.Fatal(err)
		}
		st := s.Stats(false)
		if st.UserSpills > int64((users*spillCompactMinBytes)/400) {
			t.Fatal("compaction never triggered")
		}
		if fi, err := os.Stat(filepath.Join(dir, spillName)); err == nil &&
			rounds > 2 && fi.Size() <= int64(users*550) {
			break // the file has been compacted down to ~one record per user
		}
	}
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("user-%02d", u)
		sp, found, err := s.LoadUser(id)
		if err != nil || !found {
			t.Fatalf("LoadUser(%s) after compaction: %v, %v", id, found, err)
		}
		if sp.CumulativeEpsilon != float64(rounds) {
			t.Fatalf("%s epsilon = %v, want %d (newest round)", id, sp.CumulativeEpsilon, rounds)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	if got := re.SpilledUsers(); got != users {
		t.Fatalf("reopened SpilledUsers = %d, want %d", got, users)
	}
}

// runSpillCycle is the user-spill crash workload: rounds of spills (with
// overwrites, so compaction triggers mid-cycle) plus loads. It returns
// the per-user cumulative epsilon acknowledged durable — counted only
// after SpillUsers returned nil, exactly when the engine would have
// dropped the in-memory state.
func runSpillCycle(fsys storefs.FS, dir string) (acked map[string]float64, err error) {
	acked = make(map[string]float64)
	opts := Options{FS: fsys}
	store, err := OpenWith(dir, opts)
	if err != nil {
		return acked, err
	}
	defer func() { _ = store.Close() }()

	pad := json.RawMessage(`{"pad":"` + string(bytes.Repeat([]byte("p"), 2200)) + `"}`)
	const users = 4
	for round := 1; round <= 4; round++ {
		batch := make([]stream.UserSpill, users)
		for u := range batch {
			batch[u] = spillOf(fmt.Sprintf("user-%d", u), float64(round), round)
			batch[u].EstimatorState = pad
		}
		if err := store.SpillUsers(batch); err != nil {
			return acked, err
		}
		for _, sp := range batch {
			acked[sp.ID] = sp.CumulativeEpsilon
		}
		if _, _, err := store.LoadUser("user-0"); err != nil {
			return acked, err
		}
	}
	return acked, nil
}

// TestSpillCrashPointSweep crashes at every filesystem operation of the
// spill workload (appends, fsyncs, and the compaction's whole
// write/rename dance, plus torn variants of every write) and asserts the
// recovery contract: the reopened store loads, for every user whose
// spill was acknowledged, a valid record carrying at least the
// acknowledged epsilon — an exhausted user can never come back cheaper —
// and never returns a corrupt record.
func TestSpillCrashPointSweep(t *testing.T) {
	pilot := storefs.NewFaulty(storefs.OS{})
	if _, err := runSpillCycle(pilot, t.TempDir()); err != nil {
		t.Fatalf("pilot: %v", err)
	}
	pilotOps := pilot.Ops()
	if len(pilotOps) < 15 {
		t.Fatalf("pilot enumerated only %d ops", len(pilotOps))
	}
	sawCompactionRename := false
	for _, op := range pilotOps {
		if op.Kind == storefs.OpRename {
			sawCompactionRename = true
		}
	}
	if !sawCompactionRename {
		t.Fatal("workload never triggered a spill compaction — the sweep is not covering it")
	}

	type crashCase struct{ op, tear int }
	var cases []crashCase
	for _, op := range pilotOps {
		cases = append(cases, crashCase{op: op.N})
		if op.Kind == storefs.OpWrite && op.Len > 1 {
			cases = append(cases, crashCase{op: op.N, tear: op.Len / 2})
		}
	}

	for _, tc := range cases {
		tc := tc
		label := fmt.Sprintf("op%03d", tc.op)
		if tc.tear > 0 {
			label += fmt.Sprintf("-torn%d", tc.tear)
		}
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			fy := storefs.NewFaulty(storefs.OS{})
			fy.CrashAt(tc.op, tc.tear)
			acked, _ := runSpillCycle(fy, dir)

			re, err := OpenWith(dir, Options{})
			if err != nil {
				dumpOpLog(t, fy, "spill-"+label)
				t.Fatalf("recovery open: %v", err)
			}
			defer func() { _ = re.Close() }()
			for id, wantEps := range acked {
				sp, found, err := re.LoadUser(id)
				if err != nil {
					dumpOpLog(t, fy, "spill-"+label)
					t.Fatalf("LoadUser(%s) after crash: %v", id, err)
				}
				if !found {
					dumpOpLog(t, fy, "spill-"+label)
					t.Fatalf("acknowledged spill for %s lost", id)
				}
				if sp.CumulativeEpsilon < wantEps-1e-12 {
					dumpOpLog(t, fy, "spill-"+label)
					t.Errorf("%s recovered epsilon %v < acknowledged %v: budget state lost",
						id, sp.CumulativeEpsilon, wantEps)
				}
			}
		})
	}
}

// batchSub builds one batch submission with a recognizable claim.
func batchSub(i int) BatchSubmission {
	return BatchSubmission{
		ClientID: fmt.Sprintf("client-%02d", i),
		Claims: []stream.Claim{
			{Object: i % 3, Value: float64(i) + 0.25},
			{Object: (i + 1) % 3, Value: -0.5 * float64(i)},
		},
	}
}

// TestBatchWALRoundTrip: appends come back in acknowledgement order
// across a reopen, the WAL is created lazily (a stream-only directory
// never grows one), the result round-trips atomically, and a torn tail
// costs only the unacknowledged record.
func TestBatchWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	if subs, err := s.LoadBatchSubmissions(); err != nil || subs != nil {
		t.Fatalf("fresh store LoadBatchSubmissions = %v, %v; want empty", subs, err)
	}
	if _, err := os.Stat(filepath.Join(dir, batchWALName)); !os.IsNotExist(err) {
		t.Fatal("batch.wal exists before any append — lazy creation broken")
	}
	if err := s.AppendBatchSubmission(BatchSubmission{}); err == nil {
		t.Fatal("empty client ID accepted")
	}
	for i := 0; i < 5; i++ {
		if err := s.AppendBatchSubmission(batchSub(i)); err != nil {
			t.Fatal(err)
		}
	}
	if res, err := s.LoadBatchResult(); err != nil || res != nil {
		t.Fatalf("LoadBatchResult before save = %v, %v; want absent", res, err)
	}
	payload := []byte(`{"truths":[1,2,3]}`)
	if err := s.SaveBatchResult(payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the WAL tail; the five acknowledged records must survive.
	path := filepath.Join(dir, batchWALName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("ffffffff {half a rec")...), 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	subs, err := re.LoadBatchSubmissions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 5 {
		t.Fatalf("recovered %d submissions, want 5", len(subs))
	}
	for i, sub := range subs {
		want := batchSub(i)
		if sub.ClientID != want.ClientID || len(sub.Claims) != len(want.Claims) {
			t.Fatalf("submission %d = %+v, want %+v (order must be ack order)", i, sub, want)
		}
		for c := range sub.Claims {
			if sub.Claims[c] != want.Claims[c] {
				t.Fatalf("submission %d claim %d = %+v, want %+v", i, c, sub.Claims[c], want.Claims[c])
			}
		}
	}
	res, err := re.LoadBatchResult()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res, payload) {
		t.Fatalf("recovered result = %q, want %q", res, payload)
	}
}

// runBatchCycle is the batch-persistence crash workload: six appends
// with the result saved (and once overwritten) along the way. It returns
// how many appends were acknowledged and every result payload whose save
// was acknowledged.
func runBatchCycle(fsys storefs.FS, dir string) (ackedSubs int, ackedResults [][]byte, err error) {
	store, err := OpenWith(dir, Options{FS: fsys})
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = store.Close() }()
	for i := 0; i < 6; i++ {
		if err := store.AppendBatchSubmission(batchSub(i)); err != nil {
			return ackedSubs, ackedResults, err
		}
		ackedSubs++
		if i == 2 || i == 4 {
			payload := []byte(fmt.Sprintf(`{"aggregatedAt":%d}`, i))
			if err := store.SaveBatchResult(payload); err != nil {
				return ackedSubs, ackedResults, err
			}
			ackedResults = append(ackedResults, payload)
		}
	}
	return ackedSubs, ackedResults, nil
}

// TestBatchCrashPointSweep crashes at every filesystem operation of the
// batch workload (WAL creation, appends, result save with its
// temp/rename dance, torn write variants) and asserts: every
// acknowledged submission survives recovery in order, an unacknowledged
// one is either absent or the complete in-flight record (never garbage),
// and the recovered result is exactly an acknowledged payload or absent
// — never torn.
func TestBatchCrashPointSweep(t *testing.T) {
	pilot := storefs.NewFaulty(storefs.OS{})
	if _, _, err := runBatchCycle(pilot, t.TempDir()); err != nil {
		t.Fatalf("pilot: %v", err)
	}
	pilotOps := pilot.Ops()
	if len(pilotOps) < 15 {
		t.Fatalf("pilot enumerated only %d ops", len(pilotOps))
	}

	type crashCase struct{ op, tear int }
	var cases []crashCase
	for _, op := range pilotOps {
		cases = append(cases, crashCase{op: op.N})
		if op.Kind == storefs.OpWrite && op.Len > 1 {
			cases = append(cases, crashCase{op: op.N, tear: op.Len / 2})
		}
	}

	for _, tc := range cases {
		tc := tc
		label := fmt.Sprintf("op%03d", tc.op)
		if tc.tear > 0 {
			label += fmt.Sprintf("-torn%d", tc.tear)
		}
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			fy := storefs.NewFaulty(storefs.OS{})
			fy.CrashAt(tc.op, tc.tear)
			ackedSubs, ackedResults, _ := runBatchCycle(fy, dir)

			re, err := OpenWith(dir, Options{})
			if err != nil {
				dumpOpLog(t, fy, "batch-"+label)
				t.Fatalf("recovery open: %v", err)
			}
			defer func() { _ = re.Close() }()

			subs, err := re.LoadBatchSubmissions()
			if err != nil {
				dumpOpLog(t, fy, "batch-"+label)
				t.Fatalf("LoadBatchSubmissions: %v", err)
			}
			if len(subs) < ackedSubs || len(subs) > ackedSubs+1 {
				dumpOpLog(t, fy, "batch-"+label)
				t.Fatalf("recovered %d submissions, acknowledged %d (at most one in-flight may appear)",
					len(subs), ackedSubs)
			}
			for i, sub := range subs {
				want := batchSub(i)
				if sub.ClientID != want.ClientID {
					dumpOpLog(t, fy, "batch-"+label)
					t.Fatalf("submission %d = %q, want %q: ack order broken", i, sub.ClientID, want.ClientID)
				}
				for c := range sub.Claims {
					if math.IsNaN(sub.Claims[c].Value) {
						t.Fatalf("submission %d claim %d is NaN", i, c)
					}
				}
			}

			res, err := re.LoadBatchResult()
			if err != nil {
				dumpOpLog(t, fy, "batch-"+label)
				t.Fatalf("LoadBatchResult: %v", err)
			}
			if res != nil {
				ok := false
				for _, want := range ackedResults {
					if bytes.Equal(res, want) {
						ok = true
					}
				}
				// The crash may have landed after the last save's write but
				// before its acknowledgement: the in-flight payload is also
				// legal, as long as it is a complete JSON document.
				if !ok && json.Valid(res) {
					ok = true
				}
				if !ok {
					dumpOpLog(t, fy, "batch-"+label)
					t.Fatalf("recovered result %q is torn", res)
				}
			} else if len(ackedResults) > 0 {
				dumpOpLog(t, fy, "batch-"+label)
				t.Fatalf("acknowledged result lost (had %d saves)", len(ackedResults))
			}
		})
	}
}

// TestSpillAfterCloseFails: both spill and batch surfaces refuse cleanly
// once the store is closed.
func TestSpillAfterCloseFails(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.SpillUsers([]stream.UserSpill{spillOf("x", 1, 1)}); err != ErrClosed {
		t.Errorf("SpillUsers after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.LoadUser("x"); err != ErrClosed {
		t.Errorf("LoadUser after close = %v, want ErrClosed", err)
	}
	if err := s.AppendBatchSubmission(batchSub(0)); err != ErrClosed {
		t.Errorf("AppendBatchSubmission after close = %v, want ErrClosed", err)
	}
	if _, err := s.LoadBatchSubmissions(); err != ErrClosed {
		t.Errorf("LoadBatchSubmissions after close = %v, want ErrClosed", err)
	}
	if err := s.SaveBatchResult([]byte("{}")); err != ErrClosed {
		t.Errorf("SaveBatchResult after close = %v, want ErrClosed", err)
	}
	if _, err := s.LoadBatchResult(); err != ErrClosed {
		t.Errorf("LoadBatchResult after close = %v, want ErrClosed", err)
	}
}
