package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"pptd/internal/stream"
)

// Batch-campaign persistence: the collect-then-aggregate flow's durable
// leg (batch.wal + batch-result.json).
//
// The batch campaign acknowledges each submission once and aggregates
// exactly once, so its durability needs are simpler than the stream's:
// every accepted submission is appended to batch.wal (one checksummed
// line, fsync'd before the acknowledgement, same format and torn-tail
// rule as the charge journal) and the aggregated result is persisted
// atomically like the stream's window result. Recovery replays the WAL
// into a fresh campaign server and reloads the published result, so a
// restarted node neither forgets who already submitted (the duplicate
// guard keeps holding) nor re-opens an aggregated campaign.
//
// The WAL is created lazily on the first append: a stream-only state
// directory never grows a batch.wal. Records are neutral — client ID
// plus claims — because this package sits below the wire layer.

const (
	batchWALName       = "batch.wal"
	batchResultName    = "batch-result.json"
	batchResultTmpName = "batch-result.json.tmp"
)

// BatchSubmission is one durable batch-campaign submission: the
// client's ID and their perturbed claims, exactly as accepted.
type BatchSubmission struct {
	ClientID string         `json:"clientId"`
	Claims   []stream.Claim `json:"claims"`
}

// encodeBatchLine renders one submission in the shared CRC line format.
func encodeBatchLine(sub BatchSubmission) ([]byte, error) {
	payload, err := json.Marshal(sub)
	if err != nil {
		return nil, fmt.Errorf("streamstore: encode batch submission: %w", err)
	}
	return []byte(fmt.Sprintf("%0*x %s\n", journalCRCLen, crc32.ChecksumIEEE(payload), payload)), nil
}

// parseBatchLine decodes one WAL line (without its newline), reporting
// false on any damage.
func parseBatchLine(line []byte) (BatchSubmission, bool) {
	var sub BatchSubmission
	if len(line) < journalCRCLen+2 || line[journalCRCLen] != ' ' {
		return sub, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:journalCRCLen]), "%08x", &want); err != nil {
		return sub, false
	}
	payload := line[journalCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return sub, false
	}
	if err := json.Unmarshal(payload, &sub); err != nil || sub.ClientID == "" {
		return sub, false
	}
	return sub, true
}

// openBatchLocked repairs an existing batch WAL at Open time (torn-tail
// truncation, durable size). A directory without one stays without one
// until the first append. Called from OpenWith under s.mu.
func (s *Store) openBatchLocked() error {
	path := filepath.Join(s.dir, batchWALName)
	if _, err := s.fs.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil // lazy: created by the first AppendBatchSubmission
		}
		return fmt.Errorf("streamstore: stat batch wal: %w", err)
	}
	f, err := s.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: open batch wal: %w", err)
	}
	data, err := s.readSegmentLocked(f)
	if err != nil {
		_ = f.Close()
		return err
	}
	valid := validBatchPrefix(data)
	if int64(len(data)) > valid {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: repair batch wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: sync repaired batch wal: %w", err)
		}
	}
	s.batch = f
	s.batchSize = valid
	return nil
}

// validBatchPrefix returns the byte length of the WAL's longest valid
// prefix (the per-line CRC torn-tail rule).
func validBatchPrefix(data []byte) int64 {
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		if _, ok := parseBatchLine(data[off : off+nl]); !ok {
			break
		}
		off += nl + 1
		valid = int64(off)
	}
	return valid
}

// AppendBatchSubmission durably appends one accepted batch submission:
// it returns only after the record is written and fsync'd, which is
// what lets the campaign server acknowledge the submission. On failure
// the WAL is truncated back to its durable size and the submission must
// not be acknowledged.
func (s *Store) AppendBatchSubmission(sub BatchSubmission) error {
	if sub.ClientID == "" {
		return fmt.Errorf("streamstore: batch submission with empty client id")
	}
	line, err := encodeBatchLine(sub)
	if err != nil {
		return err
	}
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batchClosed {
		return ErrClosed
	}
	if s.batch == nil {
		f, err := s.fs.OpenFile(filepath.Join(s.dir, batchWALName), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("streamstore: create batch wal: %w", err)
		}
		// The new name must be durable before any record in it is: a
		// crash after an acked append must not lose the whole file.
		if err := s.fs.SyncDir(s.dir); err != nil {
			_ = f.Close()
			_ = s.fs.Remove(filepath.Join(s.dir, batchWALName))
			return fmt.Errorf("streamstore: sync state dir: %w", err)
		}
		s.batch = f
		s.batchSize = 0
	}
	if _, err := s.batch.WriteAt(line, s.batchSize); err != nil {
		_ = s.batch.Truncate(s.batchSize)
		return fmt.Errorf("streamstore: append batch submission: %w", err)
	}
	if err := s.batch.Sync(); err != nil {
		_ = s.batch.Truncate(s.batchSize)
		return fmt.Errorf("streamstore: sync batch wal: %w", err)
	}
	s.batchSize += int64(len(line))
	s.batchAppends++
	return nil
}

// LoadBatchSubmissions returns every durable batch submission in append
// (acknowledgement) order; nil when the directory holds no batch WAL.
func (s *Store) LoadBatchSubmissions() ([]BatchSubmission, error) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batchClosed {
		return nil, ErrClosed
	}
	if s.batch == nil {
		return nil, nil
	}
	data, err := s.readSegmentLocked(s.batch)
	if err != nil {
		return nil, err
	}
	var subs []BatchSubmission
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		sub, ok := parseBatchLine(data[off : off+nl])
		if !ok {
			break
		}
		subs = append(subs, sub)
		off += nl + 1
	}
	return subs, nil
}

// SaveBatchResult atomically persists the aggregated batch result (an
// opaque payload — the campaign server owns its wire shape) with the
// same temp/fsync/rename/dir-fsync dance as the stream's window result.
// The server persists before publishing: a result a client ever saw
// survives any crash after.
func (s *Store) SaveBatchResult(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("streamstore: empty batch result")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.writeEnvelopeLocked("batch result", batchResultName, batchResultTmpName, payload, nil); err != nil {
		return err
	}
	s.resultsSaved++
	return nil
}

// LoadBatchResult returns the persisted aggregated result payload, or
// nil when the campaign never aggregated. Corruption (possible only
// from on-disk damage — the write is atomic) fails with
// ErrCorruptResult.
func (s *Store) LoadBatchResult() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	body, _, err := readEnvelope(s.fs, filepath.Join(s.dir, batchResultName), ErrCorruptResult)
	return body, err
}
