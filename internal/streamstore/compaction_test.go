package streamstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

// TestCompactionDeletesCoveredSegmentsWithoutRewrite is the segmented
// journal's reason to exist: with several sealed segments on disk, a
// snapshot's compaction must delete the fully-covered ones outright —
// O(segments) — and leave every surviving byte untouched, including the
// partially-covered boundary segment whose uncovered tail is still the
// only durable trace of acknowledged charges. The storefs op log proves
// the "no rewrite" half: after the snapshot lands, the only journal
// I/O is Remove.
func TestCompactionDeletesCoveredSegmentsWithoutRewrite(t *testing.T) {
	dir := t.TempDir()
	fy := storefs.NewFaulty(storefs.OS{}) // no faults: pure op logger
	s, err := OpenWith(dir, Options{
		FS:            fy,
		MaxBatch:      1,
		SegmentBytes:  128, // ~2 charge records per segment
		SnapshotEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	addCharge := func(i int) {
		t.Helper()
		if err := s.AppendCharge(stream.ChargeRecord{
			User: fmt.Sprintf("user-%02d", i), Window: 0, Epsilon: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// First half of the workload, then the snapshot's covered position:
	// everything before it is compactable, everything after must survive.
	for i := 0; i < 6; i++ {
		addCharge(i)
	}
	covered := s.JournalPos()
	for i := 6; i < 14; i++ {
		addCharge(i)
	}
	st := s.Stats(false)
	if st.SegmentsSealed < 4 {
		t.Fatalf("workload sealed only %d segments; the test needs >= 4", st.SegmentsSealed)
	}

	// Segment inventory and bytes before compaction.
	segBytes := func() map[string][]byte {
		out := make(map[string][]byte)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if _, ok := parseSegmentName(e.Name()); !ok {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = data
		}
		return out
	}
	before := segBytes()
	opsBefore := fy.OpCount()

	if err := s.WriteSnapshot(&stream.EngineState{Window: 1}, covered); err != nil {
		t.Fatal(err)
	}

	// Covered sealed segments are gone; the boundary segment (the one
	// covered points into) and everything after survive byte-identical.
	after := segBytes()
	var deleted, surviving []string
	for name, data := range before {
		got, ok := after[name]
		seq, _ := parseSegmentName(name)
		fullyCovered := seq < covered.Seq || (seq == covered.Seq && int64(len(data)) <= covered.Off)
		if fullyCovered {
			if ok {
				t.Errorf("covered segment %s still on disk after compaction", name)
			}
			deleted = append(deleted, name)
			continue
		}
		surviving = append(surviving, name)
		if !ok {
			t.Errorf("surviving segment %s deleted by compaction", name)
			continue
		}
		if string(got) != string(data) {
			t.Errorf("surviving segment %s rewritten: %d -> %d bytes", name, len(data), len(got))
		}
	}
	if len(deleted) == 0 || len(surviving) == 0 {
		t.Fatalf("degenerate coverage split: deleted %v surviving %v", deleted, surviving)
	}

	// The op log proves the mechanism: from the snapshot on, journal
	// segments see Remove ops only — no write, no truncate, no rename.
	removes := 0
	for _, op := range fy.Ops()[opsBefore:] {
		if !strings.Contains(op.Path, "journal-") {
			continue
		}
		switch op.Kind {
		case storefs.OpRemove:
			removes++
		case storefs.OpWrite, storefs.OpTruncate, storefs.OpRename, storefs.OpOpen:
			t.Errorf("compaction touched journal bytes: %s", op)
		}
	}
	if removes != len(deleted) {
		t.Errorf("compaction issued %d segment removes, deleted %d segments", removes, len(deleted))
	}
	st = s.Stats(false)
	if int(st.SegmentsDeleted) != len(deleted) {
		t.Errorf("stats: segmentsDeleted %d, want %d", st.SegmentsDeleted, len(deleted))
	}

	// Recovery sees exactly the uncovered records on top of the snapshot.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	got, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	users := make(map[string]bool)
	for _, u := range got.Users {
		users[u.ID] = true
	}
	for i := 6; i < 14; i++ {
		if !users[fmt.Sprintf("user-%02d", i)] {
			t.Errorf("post-mark user-%02d lost by compaction", i)
		}
	}
}

// TestSegmentRollKeepsAppendsFlowing: the size cap seals segments
// mid-stream without disturbing appends, and a reopened store continues
// in the highest segment rather than resurrecting old names.
func TestSegmentRollKeepsAppendsFlowing(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{MaxBatch: 1, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.AppendCharge(stream.ChargeRecord{User: fmt.Sprintf("u%d", i), Window: 0, Epsilon: 1}); err != nil {
			t.Fatal(err)
		}
	}
	pos := s.JournalPos()
	if pos.Seq < 3 {
		t.Fatalf("active segment seq = %d after %d appends at 96-byte cap; rolls not happening", pos.Seq, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	if got := re.JournalPos(); got != pos {
		t.Fatalf("reopened journal position = %+v, want %+v", got, pos)
	}
	if err := re.AppendCharge(stream.ChargeRecord{User: "late", Window: 1, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := re.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Users) != n+1 {
		t.Fatalf("recovered %d users, want %d", len(st.Users), n+1)
	}
}
