package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pptd/internal/stream"
)

// Journal line format: one charge record per line,
//
//	crc32hex SP json-payload LF
//
// where crc32hex is the IEEE CRC-32 of the payload in fixed-width lower
// hex. The checksum plus the trailing newline make torn tails
// unambiguous: a crashed append leaves either a complete valid line or a
// detectable partial one, never a silently-wrong record.
const journalCRCLen = 8

// commitBatch is one group-commit unit: the concatenated journal lines
// of every append that joined it, flushed with a single write+fsync by
// its leader. Followers block on done and share err. The buffer is only
// mutated under commitMu while the batch is pending; the leader reads
// it after sealing (removing it from Store.pending under commitMu), so
// no append can race the flush.
type commitBatch struct {
	buf  []byte
	n    int
	full chan struct{} // closed by the append that fills the batch
	done chan struct{} // closed by the leader after the sync (or failure)
	err  error
}

// commit hands one encoded journal line to the group-commit machinery
// and returns once it is durable (or failed). The first appender to
// find no pending batch becomes the leader: it opens a batch, optionally
// lingers (Options.FlushInterval), and — crucially — keeps the batch
// open while it waits its turn at the disk behind an in-flight sync,
// snapshot, or compaction. Appends arriving in that window join as
// followers and ride the leader's single write+fsync, which is what
// makes durable ingest throughput scale with concurrency instead of
// paying one serialized fsync per submission. A batch that reaches
// Options.MaxBatch seals itself and the next append starts a new one.
func (s *Store) commit(line []byte) error {
	maxBatch := s.opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}

	s.commitMu.Lock()
	if b := s.pending; b != nil {
		// Follower: ride the open batch and wait for its leader's sync.
		b.buf = append(b.buf, line...)
		b.n++
		if b.n >= maxBatch {
			s.pending = nil
			close(b.full) // wake a lingering leader: the batch is full
		}
		s.commitMu.Unlock()
		<-b.done
		return b.err
	}
	b := &commitBatch{full: make(chan struct{}), done: make(chan struct{})}
	b.buf = append(b.buf, line...)
	b.n = 1
	shared := b.n < maxBatch // MaxBatch 1: solo batch, plain per-append fsync
	if shared {
		s.pending = b
	}
	s.commitMu.Unlock()

	if shared {
		if s.opts.FlushInterval > 0 {
			t := time.NewTimer(s.opts.FlushInterval)
			select {
			case <-t.C:
			case <-b.full:
			}
			t.Stop()
		} else {
			// Give every appender already in flight one scheduling
			// quantum to join the open batch. Waiting on s.mu below
			// achieves the same thing while an earlier sync holds the
			// disk, but not reliably on a single-P runtime: a goroutine
			// blocked in fsync(2) only releases its P when sysmon
			// notices, so without this yield concurrent appenders may
			// never run mid-sync and every batch degenerates to one
			// record. A yield costs well under a microsecond; the fsync
			// it amortizes costs tens to hundreds.
			runtime.Gosched()
		}
	}
	s.mu.Lock()
	if shared {
		// Seal: late arrivals start the next batch. Acquiring commitMu
		// here also orders every follower's buffer append before the
		// flush below.
		s.commitMu.Lock()
		if s.pending == b {
			s.pending = nil
		}
		s.commitMu.Unlock()
	}
	if s.closed {
		s.mu.Unlock()
		b.err = ErrClosed
		close(b.done)
		return b.err
	}
	b.err = s.flushLocked(b.buf, b.n)
	s.mu.Unlock()
	close(b.done)
	return b.err
}

// flushLocked appends one group-commit batch of n records at the durable
// tail with a single write and a single fsync, recording the batch size
// and flush latency in the stats histograms. On any failure it truncates
// the file back to the last known good size so a partial batch cannot
// poison later appends — every submission in the batch then fails and
// rolls its in-memory charge back. Callers must hold s.mu.
func (s *Store) flushLocked(buf []byte, n int) error {
	start := time.Now()
	if _, err := s.journal.WriteAt(buf, s.journalSize); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: append charge batch: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: sync journal: %w", err)
	}
	s.journalSyncs++
	s.journalAppends += int64(n)
	s.journalSize += int64(len(buf))
	s.batchSizes.observe(float64(n))
	s.flushLatency.observe(time.Since(start).Seconds())
	return nil
}

// rewindJournalLocked best-effort truncates the journal back to the last
// durable size after a failed append.
func (s *Store) rewindJournalLocked() {
	_ = s.journal.Truncate(s.journalSize)
}

// readJournalLocked reads and parses the whole journal from the open
// handle. It returns every record of the longest valid prefix and that
// prefix's byte length; a torn or corrupt tail simply ends the prefix.
func (s *Store) readJournalLocked() ([]stream.ChargeRecord, int64, error) {
	fi, err := s.journal.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("streamstore: stat journal: %w", err)
	}
	data := make([]byte, fi.Size())
	if _, err := io.ReadFull(io.NewSectionReader(s.journal, 0, fi.Size()), data); err != nil {
		return nil, 0, fmt.Errorf("streamstore: read journal: %w", err)
	}
	recs, valid := parseJournal(data)
	return recs, valid, nil
}

// parseJournal decodes the longest valid prefix of journal bytes,
// returning its records and byte length. Parsing stops at the first
// incomplete line (no trailing newline — a torn write), malformed
// checksum prefix, checksum mismatch, or undecodable payload.
func parseJournal(data []byte) ([]stream.ChargeRecord, int64) {
	var recs []stream.ChargeRecord
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the final append never completed
		}
		line := data[off : off+nl]
		rec, ok := parseJournalLine(line)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = int64(off)
	}
	return recs, valid
}

func parseJournalLine(line []byte) (stream.ChargeRecord, bool) {
	var rec stream.ChargeRecord
	if len(line) < journalCRCLen+2 || line[journalCRCLen] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:journalCRCLen]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[journalCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// repairJournalLocked scans the journal for its longest valid prefix and
// truncates anything after it (a torn tail from a crashed append), so
// subsequent appends land on a record boundary. Callers must hold s.mu.
func (s *Store) repairJournalLocked() error {
	_, valid, err := s.readJournalLocked()
	if err != nil {
		return err
	}
	fi, err := s.journal.Stat()
	if err != nil {
		return fmt.Errorf("streamstore: stat journal: %w", err)
	}
	if fi.Size() > valid {
		if err := s.journal.Truncate(valid); err != nil {
			return fmt.Errorf("streamstore: repair journal tail: %w", err)
		}
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("streamstore: sync repaired journal: %w", err)
		}
	}
	s.journalSize = valid
	return nil
}

// compactJournalLocked drops the journal prefix [0, coveredUpTo) — the
// records subsumed by a snapshot that was exported after they were
// appended — while preserving every record at or past the offset, which
// may postdate the exported state and is still the only durable trace of
// its charge. A non-empty tail is rewritten into a fresh file that
// atomically replaces the journal, so a crash at any point leaves either
// the full old journal (recovery replay is idempotent) or the compacted
// one — never a torn middle. Callers must hold s.mu.
func (s *Store) compactJournalLocked(coveredUpTo int64) error {
	if coveredUpTo < 0 {
		coveredUpTo = 0
	}
	if coveredUpTo > s.journalSize {
		coveredUpTo = s.journalSize
	}
	tailLen := s.journalSize - coveredUpTo
	if tailLen == 0 {
		// Every record is covered by the snapshot; an in-place truncate
		// cannot lose anything.
		if err := s.journal.Truncate(0); err != nil {
			return fmt.Errorf("streamstore: reset journal: %w", err)
		}
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("streamstore: sync reset journal: %w", err)
		}
		s.journalSize = 0
		return nil
	}

	tail := make([]byte, tailLen)
	if _, err := io.ReadFull(io.NewSectionReader(s.journal, coveredUpTo, tailLen), tail); err != nil {
		return fmt.Errorf("streamstore: read journal tail: %w", err)
	}
	tmp := filepath.Join(s.dir, journalName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create compacted journal: %w", err)
	}
	if _, err := f.Write(tail); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: write compacted journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync compacted journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalName)); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: publish compacted journal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	old := s.journal
	s.journal = f // same inode as the renamed journal
	s.journalSize = tailLen
	_ = old.Close()
	return nil
}

// syncDir flushes a directory's entries so a just-renamed or just-created
// file name is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}
