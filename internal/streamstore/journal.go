package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"runtime"
	"time"

	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

// Journal line format: one charge record per line,
//
//	crc32hex SP json-payload LF
//
// where crc32hex is the IEEE CRC-32 of the payload in fixed-width lower
// hex. The checksum plus the trailing newline make torn tails
// unambiguous: a crashed append leaves either a complete valid line or a
// detectable partial one, never a silently-wrong record. The format is
// identical across the segmented layout and the legacy single-file
// journal, which is what makes migration a pure rename.
const journalCRCLen = 8

// encodeChargeLine renders one charge record in the journal line
// format. Shared by AppendCharge and the fuzz seed corpus.
func encodeChargeLine(rec stream.ChargeRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("streamstore: encode charge: %w", err)
	}
	return []byte(fmt.Sprintf("%0*x %s\n", journalCRCLen, crc32.ChecksumIEEE(payload), payload)), nil
}

// commitBatch is one group-commit unit: the concatenated journal lines
// of every append that joined it, flushed with a single write+fsync by
// its leader. Followers block on done and share err. The buffer is only
// mutated under commitMu while the batch is pending; the leader reads
// it after sealing (removing it from Store.pending under commitMu), so
// no append can race the flush.
type commitBatch struct {
	buf  []byte
	n    int
	full chan struct{} // closed by the append that fills the batch
	done chan struct{} // closed by the leader after the sync (or failure)
	err  error
}

// commit hands one encoded journal line to the group-commit machinery
// and returns once it is durable (or failed). The first appender to
// find no pending batch becomes the leader: it opens a batch, optionally
// lingers (Options.FlushInterval), and — crucially — keeps the batch
// open while it waits its turn at the disk behind an in-flight sync,
// snapshot, or compaction. Appends arriving in that window join as
// followers and ride the leader's single write+fsync, which is what
// makes durable ingest throughput scale with concurrency instead of
// paying one serialized fsync per submission. A batch that reaches
// Options.MaxBatch seals itself and the next append starts a new one.
func (s *Store) commit(line []byte) error {
	maxBatch := s.opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}

	s.commitMu.Lock()
	if b := s.pending; b != nil {
		// Follower: ride the open batch and wait for its leader's sync.
		b.buf = append(b.buf, line...)
		b.n++
		if b.n >= maxBatch {
			s.pending = nil
			close(b.full) // wake a lingering leader: the batch is full
		}
		s.commitMu.Unlock()
		<-b.done
		return b.err
	}
	b := &commitBatch{full: make(chan struct{}), done: make(chan struct{})}
	b.buf = append(b.buf, line...)
	b.n = 1
	shared := b.n < maxBatch // MaxBatch 1: solo batch, plain per-append fsync
	if shared {
		s.pending = b
	}
	s.commitMu.Unlock()

	if shared {
		if s.opts.FlushInterval > 0 {
			t := time.NewTimer(s.opts.FlushInterval)
			select {
			case <-t.C:
			case <-b.full:
			}
			t.Stop()
		} else {
			// Give every appender already in flight one scheduling
			// quantum to join the open batch. Waiting on s.mu below
			// achieves the same thing while an earlier sync holds the
			// disk, but not reliably on a single-P runtime: a goroutine
			// blocked in fsync(2) only releases its P when sysmon
			// notices, so without this yield concurrent appenders may
			// never run mid-sync and every batch degenerates to one
			// record. A yield costs well under a microsecond; the fsync
			// it amortizes costs tens to hundreds.
			runtime.Gosched()
		}
	}
	s.mu.Lock()
	if shared {
		// Seal: late arrivals start the next batch. Acquiring commitMu
		// here also orders every follower's buffer append before the
		// flush below.
		s.commitMu.Lock()
		if s.pending == b {
			s.pending = nil
		}
		s.commitMu.Unlock()
	}
	if s.closed {
		s.mu.Unlock()
		b.err = ErrClosed
		close(b.done)
		return b.err
	}
	b.err = s.flushLocked(b.buf, b.n)
	s.mu.Unlock()
	close(b.done)
	return b.err
}

// flushLocked appends one group-commit batch of n records at the active
// segment's durable tail with a single write and a single fsync,
// recording the batch size and flush latency in the stats histograms.
// On any failure it truncates the segment back to the last known good
// size so a partial batch cannot poison later appends — every
// submission in the batch then fails and rolls its in-memory charge
// back. After a successful flush, an active segment that has outgrown
// Options.SegmentBytes is sealed and a fresh segment opened (see
// rollSegmentLocked). Callers must hold s.mu.
func (s *Store) flushLocked(buf []byte, n int) error {
	start := time.Now()
	if _, err := s.active.WriteAt(buf, s.activeSize); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: append charge batch: %w", err)
	}
	if err := s.active.Sync(); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: sync journal: %w", err)
	}
	s.journalSyncs++
	s.journalAppends += int64(n)
	s.activeSize += int64(len(buf))
	s.batchSizes.Observe(float64(n))
	s.flushLatency.Observe(time.Since(start).Seconds())
	if s.activeSize >= s.segmentBytesLocked() {
		// Best-effort by design: the batch is durable, so a failed roll
		// must not fail acknowledged appends; see rollSegmentLocked.
		_ = s.rollSegmentLocked()
	}
	return nil
}

// rewindJournalLocked best-effort truncates the active segment back to
// the last durable size after a failed append.
func (s *Store) rewindJournalLocked() {
	_ = s.active.Truncate(s.activeSize)
}

// parseJournal decodes the longest valid prefix of one segment's bytes,
// returning its records and byte length. Parsing stops at the first
// incomplete line (no trailing newline — a torn write), malformed
// checksum prefix, checksum mismatch, or undecodable payload.
func parseJournal(data []byte) ([]stream.ChargeRecord, int64) {
	return parseJournalAfter(data, 0)
}

// parseJournalAfter is parseJournal restricted to the records past the
// byte offset skip: the whole prefix is still validated (valid counts
// it), but records whose line ends at or before skip — the part of a
// boundary segment a snapshot already covers — are not returned. skip
// always falls on a line boundary in practice (it is a durable size the
// store captured itself); a skip inside a line simply keeps that line.
func parseJournalAfter(data []byte, skip int64) ([]stream.ChargeRecord, int64) {
	var recs []stream.ChargeRecord
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the final append never completed
		}
		line := data[off : off+nl]
		rec, ok := parseJournalLine(line)
		if !ok {
			break
		}
		off += nl + 1
		valid = int64(off)
		if valid > skip {
			recs = append(recs, rec)
		}
	}
	return recs, valid
}

// journalScanChunk is the read granularity of the streaming recovery
// scan: large enough to amortize syscalls, small enough that recovering
// a multi-gigabyte segment never buffers more than one chunk plus one
// record.
const journalScanChunk = 256 << 10

// scanJournalFile is parseJournalAfter over a file instead of a byte
// slice: it scans the first size bytes of f in journalScanChunk reads,
// carrying only the current incomplete line between reads, and stops at
// the first invalid or torn line. Memory is O(chunk + longest record),
// not O(segment) — the active segment of a long-lived store can dwarf
// RAM and recovery must still come up. Records whose line ends past
// skip are passed to emit (which may be nil when only the valid length
// matters, e.g. torn-tail repair); the returned length counts every
// valid line, skipped or not, exactly as parseJournalAfter does.
func scanJournalFile(f storefs.File, size, skip int64, emit func(stream.ChargeRecord)) (int64, error) {
	var (
		carry   []byte
		chunk   = make([]byte, journalScanChunk)
		fileOff int64
		valid   int64
	)
	for {
		nl := bytes.IndexByte(carry, '\n')
		for nl < 0 && fileOff < size {
			n := len(chunk)
			if rem := size - fileOff; rem < int64(n) {
				n = int(rem)
			}
			m, err := f.ReadAt(chunk[:n], fileOff)
			if m < n && err != nil {
				return valid, fmt.Errorf("streamstore: read journal segment: %w", err)
			}
			fileOff += int64(m)
			carry = append(carry, chunk[:m]...)
			nl = bytes.IndexByte(carry, '\n')
		}
		if nl < 0 {
			// No newline left anywhere in the file: a torn tail (or a clean
			// end exactly on a boundary, in which case carry is empty).
			return valid, nil
		}
		rec, ok := parseJournalLine(carry[:nl])
		if !ok {
			return valid, nil
		}
		carry = carry[nl+1:]
		valid += int64(nl + 1)
		if valid > skip && emit != nil {
			emit(rec)
		}
	}
}

func parseJournalLine(line []byte) (stream.ChargeRecord, bool) {
	var rec stream.ChargeRecord
	if len(line) < journalCRCLen+2 || line[journalCRCLen] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:journalCRCLen]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[journalCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}
