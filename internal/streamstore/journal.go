package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pptd/internal/stream"
)

// Journal line format: one charge record per line,
//
//	crc32hex SP json-payload LF
//
// where crc32hex is the IEEE CRC-32 of the payload in fixed-width lower
// hex. The checksum plus the trailing newline make torn tails
// unambiguous: a crashed append leaves either a complete valid line or a
// detectable partial one, never a silently-wrong record.
const journalCRCLen = 8

// appendJournalLocked appends one fsync'd record at s.journalSize. On
// any write or sync failure it truncates the file back to the last known
// good size so a partial line cannot poison later appends. Callers must
// hold s.mu.
func (s *Store) appendJournalLocked(rec stream.ChargeRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("streamstore: encode charge: %w", err)
	}
	line := fmt.Sprintf("%0*x %s\n", journalCRCLen, crc32.ChecksumIEEE(payload), payload)
	if _, err := s.journal.WriteAt([]byte(line), s.journalSize); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: append charge: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		s.rewindJournalLocked()
		return fmt.Errorf("streamstore: sync journal: %w", err)
	}
	s.journalSize += int64(len(line))
	return nil
}

// rewindJournalLocked best-effort truncates the journal back to the last
// durable size after a failed append.
func (s *Store) rewindJournalLocked() {
	_ = s.journal.Truncate(s.journalSize)
}

// readJournalLocked reads and parses the whole journal from the open
// handle. It returns every record of the longest valid prefix and that
// prefix's byte length; a torn or corrupt tail simply ends the prefix.
func (s *Store) readJournalLocked() ([]stream.ChargeRecord, int64, error) {
	fi, err := s.journal.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("streamstore: stat journal: %w", err)
	}
	data := make([]byte, fi.Size())
	if _, err := io.ReadFull(io.NewSectionReader(s.journal, 0, fi.Size()), data); err != nil {
		return nil, 0, fmt.Errorf("streamstore: read journal: %w", err)
	}
	recs, valid := parseJournal(data)
	return recs, valid, nil
}

// parseJournal decodes the longest valid prefix of journal bytes,
// returning its records and byte length. Parsing stops at the first
// incomplete line (no trailing newline — a torn write), malformed
// checksum prefix, checksum mismatch, or undecodable payload.
func parseJournal(data []byte) ([]stream.ChargeRecord, int64) {
	var recs []stream.ChargeRecord
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the final append never completed
		}
		line := data[off : off+nl]
		rec, ok := parseJournalLine(line)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = int64(off)
	}
	return recs, valid
}

func parseJournalLine(line []byte) (stream.ChargeRecord, bool) {
	var rec stream.ChargeRecord
	if len(line) < journalCRCLen+2 || line[journalCRCLen] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:journalCRCLen]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[journalCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// repairJournalLocked scans the journal for its longest valid prefix and
// truncates anything after it (a torn tail from a crashed append), so
// subsequent appends land on a record boundary. Callers must hold s.mu.
func (s *Store) repairJournalLocked() error {
	_, valid, err := s.readJournalLocked()
	if err != nil {
		return err
	}
	fi, err := s.journal.Stat()
	if err != nil {
		return fmt.Errorf("streamstore: stat journal: %w", err)
	}
	if fi.Size() > valid {
		if err := s.journal.Truncate(valid); err != nil {
			return fmt.Errorf("streamstore: repair journal tail: %w", err)
		}
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("streamstore: sync repaired journal: %w", err)
		}
	}
	s.journalSize = valid
	return nil
}

// compactJournalLocked drops the journal prefix [0, coveredUpTo) — the
// records subsumed by a snapshot that was exported after they were
// appended — while preserving every record at or past the offset, which
// may postdate the exported state and is still the only durable trace of
// its charge. A non-empty tail is rewritten into a fresh file that
// atomically replaces the journal, so a crash at any point leaves either
// the full old journal (recovery replay is idempotent) or the compacted
// one — never a torn middle. Callers must hold s.mu.
func (s *Store) compactJournalLocked(coveredUpTo int64) error {
	if coveredUpTo < 0 {
		coveredUpTo = 0
	}
	if coveredUpTo > s.journalSize {
		coveredUpTo = s.journalSize
	}
	tailLen := s.journalSize - coveredUpTo
	if tailLen == 0 {
		// Every record is covered by the snapshot; an in-place truncate
		// cannot lose anything.
		if err := s.journal.Truncate(0); err != nil {
			return fmt.Errorf("streamstore: reset journal: %w", err)
		}
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("streamstore: sync reset journal: %w", err)
		}
		s.journalSize = 0
		return nil
	}

	tail := make([]byte, tailLen)
	if _, err := io.ReadFull(io.NewSectionReader(s.journal, coveredUpTo, tailLen), tail); err != nil {
		return fmt.Errorf("streamstore: read journal tail: %w", err)
	}
	tmp := filepath.Join(s.dir, journalName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create compacted journal: %w", err)
	}
	if _, err := f.Write(tail); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: write compacted journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync compacted journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalName)); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: publish compacted journal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("streamstore: sync state dir: %w", err)
	}
	old := s.journal
	s.journal = f // same inode as the renamed journal
	s.journalSize = tailLen
	_ = old.Close()
	return nil
}

// syncDir flushes a directory's entries so a just-renamed or just-created
// file name is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}
