package streamstore

import (
	"pptd/internal/obs"
)

// Histogram is the fixed-bucket counting histogram inside StoreStats —
// the shared obs.Histogram, so the store's JSON stats and the node's
// /metrics exposition render the same type. (It was born here and was
// promoted to internal/obs when the node grew a metrics registry.)
type Histogram = obs.Histogram

// Bucket bounds for the two group-commit histograms: batch sizes in
// records (powers of two up to the default batch cap) and flush
// latencies in seconds (50µs up to 1s; an fsync on real hardware lands
// in the middle of this range).
var (
	batchSizeBounds    = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	flushLatencyBounds = []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
	}
)

// StoreStats is a point-in-time snapshot of the store's observability
// counters (GET /v1/stream/stats on a durable streaming server). The
// append/sync ratio and the two histograms are the data for tuning
// Options.FlushInterval and Options.MaxBatch against observed load:
// batches pinned at 1 under concurrency mean group commit is not
// engaging; flush latencies near FlushInterval mean the linger, not the
// disk, paces ingest.
type StoreStats struct {
	// JournalAppends counts accepted AppendCharge calls; JournalSyncs
	// counts the fsyncs that made them durable. Appends/Syncs is the
	// group-commit amortization factor.
	JournalAppends int64 `json:"journalAppends"`
	JournalSyncs   int64 `json:"journalSyncs"`
	// JournalBytes is the journal's current live size across every
	// segment (a gauge: Stats(true) does not reset it).
	JournalBytes int64 `json:"journalBytes"`
	// Segments is the current number of live journal segment files,
	// including the active one (a gauge). SegmentsSealed and
	// SegmentsDeleted count segment rolls and compaction deletions
	// (one compaction pass runs per snapshot, so Snapshots counts
	// those). Sealed minus deleted trending up means snapshots are not
	// keeping pace with ingest.
	Segments        int   `json:"segments"`
	SegmentsSealed  int64 `json:"segmentsSealed"`
	SegmentsDeleted int64 `json:"segmentsDeleted"`
	// Snapshots counts engine snapshots written; ResultsSaved counts
	// persisted window results.
	Snapshots    int64 `json:"snapshots"`
	ResultsSaved int64 `json:"resultsSaved"`
	// UserSpills counts users spilled to the user-spill file by
	// residency-cap eviction; UserLoads counts spill records read back
	// on re-admission. SpilledUsers is the number of distinct users
	// currently living in the spill store (a gauge, never reset).
	UserSpills   int64 `json:"userSpills"`
	UserLoads    int64 `json:"userLoads"`
	SpilledUsers int   `json:"spilledUsers"`
	// BatchAppends counts accepted batch-campaign submissions made
	// durable in the batch WAL.
	BatchAppends int64 `json:"batchAppends"`
	// BatchSizes is the histogram of records per group-commit flush.
	BatchSizes Histogram `json:"batchSizes"`
	// FlushLatencySeconds is the histogram of write+fsync wall time per
	// flush, in seconds.
	FlushLatencySeconds Histogram `json:"flushLatencySeconds"`
}

// statsBase records the cumulative counter values at the last
// Stats(reset): the store's fields only ever grow (they also back the
// monotone /metrics series), and the windowed view Stats returns is
// cumulative-minus-base. Gauges have no base — they describe the
// present.
type statsBase struct {
	journalAppends  int64
	journalSyncs    int64
	segmentsSealed  int64
	segmentsDeleted int64
	snapshots       int64
	resultsSaved    int64
	userSpills      int64
	userLoads       int64
	batchAppends    int64
	batchSizes      Histogram
	flushLatency    Histogram
}

// Stats returns a copy of the store's counters and histograms. Safe for
// concurrent use with appends and snapshots.
//
// With reset true, the window boundary advances after the copy is
// taken: the cumulative counters and both histograms restart from zero
// in the next snapshot, so a long-lived node can poll in windows and
// see rates instead of an all-time blur (an fsync latency regression in
// hour 40 is invisible inside a 40-hour histogram). Gauges —
// JournalBytes, Segments — describe the present and are never reset.
// Histogram Max is the one all-time exception: it is a high-water mark
// that survives resets, because a window's true maximum cannot be
// recovered from two cumulative snapshots.
//
// Resetting is a read-side view change only: the store's underlying
// counters stay monotone, which is what keeps the node's /metrics
// series (same source, sampled at scrape) Prometheus-legal regardless
// of how often a stats poller resets. Concurrent flushes serialize with
// the reset under the store lock, so no observation is lost or
// double-counted across the boundary — every append lands in exactly
// one window.
func (s *Store) Stats(reset bool) StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Lock order s.mu -> spillMu -> batchMu, matching Close.
	s.spillMu.Lock()
	userSpills, userLoads, spilled := s.userSpills, s.userLoads, len(s.spillIndex)
	s.spillMu.Unlock()
	s.batchMu.Lock()
	batchAppends := s.batchAppends
	s.batchMu.Unlock()
	st := StoreStats{
		JournalAppends:      s.journalAppends - s.base.journalAppends,
		JournalSyncs:        s.journalSyncs - s.base.journalSyncs,
		JournalBytes:        s.journalBytesLocked(),
		Segments:            len(s.sealed) + 1,
		SegmentsSealed:      s.segmentsSealed - s.base.segmentsSealed,
		SegmentsDeleted:     s.segmentsDeleted - s.base.segmentsDeleted,
		Snapshots:           s.snapshots - s.base.snapshots,
		ResultsSaved:        s.resultsSaved - s.base.resultsSaved,
		UserSpills:          userSpills - s.base.userSpills,
		UserLoads:           userLoads - s.base.userLoads,
		SpilledUsers:        spilled,
		BatchAppends:        batchAppends - s.base.batchAppends,
		BatchSizes:          s.batchSizes.Sub(s.base.batchSizes),
		FlushLatencySeconds: s.flushLatency.Sub(s.base.flushLatency),
	}
	if reset {
		s.base = statsBase{
			journalAppends:  s.journalAppends,
			journalSyncs:    s.journalSyncs,
			segmentsSealed:  s.segmentsSealed,
			segmentsDeleted: s.segmentsDeleted,
			snapshots:       s.snapshots,
			resultsSaved:    s.resultsSaved,
			userSpills:      userSpills,
			userLoads:       userLoads,
			batchAppends:    batchAppends,
			batchSizes:      s.batchSizes.Clone(),
			flushLatency:    s.flushLatency.Clone(),
		}
	}
	return st
}

// registerMetrics exposes the store's cumulative counters on the given
// registry as callback instruments: the exposition samples the very
// fields Stats reads, so /v1/stream/stats and /metrics cannot drift.
// The registry must not already carry another store's collectors.
func (s *Store) registerMetrics(reg *obs.Registry) {
	counter := func(name, help string, f func() int64) {
		reg.CounterFunc(name, help, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(f())
		})
	}
	counter("pptd_store_journal_appends_total",
		"Ledger records appended to the journal (accepted AppendCharge and claim-WAL writes).",
		func() int64 { return s.journalAppends })
	counter("pptd_store_journal_syncs_total",
		"Journal fsyncs issued; appends/syncs is the group-commit amortization factor.",
		func() int64 { return s.journalSyncs })
	counter("pptd_store_segments_sealed_total",
		"Journal segments sealed (rolled) since open.",
		func() int64 { return s.segmentsSealed })
	counter("pptd_store_segments_deleted_total",
		"Sealed journal segments deleted by snapshot compaction.",
		func() int64 { return s.segmentsDeleted })
	counter("pptd_store_snapshots_total",
		"Engine snapshots written.",
		func() int64 { return s.snapshots })
	counter("pptd_store_results_saved_total",
		"Window results persisted.",
		func() int64 { return s.resultsSaved })
	spillCounter := func(name, help string, f func() int64) {
		reg.CounterFunc(name, help, func() float64 {
			s.spillMu.Lock()
			defer s.spillMu.Unlock()
			return float64(f())
		})
	}
	spillCounter("pptd_store_user_spills_total",
		"Users spilled to the user-spill file by residency-cap eviction.",
		func() int64 { return s.userSpills })
	spillCounter("pptd_store_user_loads_total",
		"Spill records read back on user re-admission.",
		func() int64 { return s.userLoads })
	reg.GaugeFunc("pptd_store_spilled_users",
		"Distinct users currently living in the user-spill file.",
		func() float64 {
			s.spillMu.Lock()
			defer s.spillMu.Unlock()
			return float64(len(s.spillIndex))
		})
	reg.CounterFunc("pptd_store_batch_appends_total",
		"Batch-campaign submissions made durable in the batch WAL.",
		func() float64 {
			s.batchMu.Lock()
			defer s.batchMu.Unlock()
			return float64(s.batchAppends)
		})
	reg.GaugeFunc("pptd_store_journal_bytes",
		"Live journal size in bytes across every segment.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.journalBytesLocked())
		})
	reg.GaugeFunc("pptd_store_segments",
		"Live journal segment files, including the active one.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sealed) + 1)
		})
	reg.HistogramFunc("pptd_store_commit_batch_records",
		"Records per group-commit flush.",
		func() Histogram {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.batchSizes.Clone()
		})
	reg.HistogramFunc("pptd_store_flush_duration_seconds",
		"Write+fsync wall time per group-commit flush, in seconds.",
		func() Histogram {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.flushLatency.Clone()
		})
}
