package streamstore

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket counting histogram, the wire-friendly
// shape behind the store's group-commit observability. Bucket i counts
// observations v with v <= UpperBounds[i] (and above the previous
// bound); the final entry of Counts is the overflow bucket, so
// len(Counts) == len(UpperBounds)+1.
type Histogram struct {
	// UpperBounds are the inclusive bucket upper bounds, ascending.
	UpperBounds []float64 `json:"upperBounds"`
	// Counts holds one count per bucket plus the trailing overflow
	// bucket.
	Counts []int64 `json:"counts"`
	// Count and Sum aggregate every observation (Sum in the histogram's
	// unit), so mean = Sum/Count without walking buckets; Max is the
	// largest observation seen.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
}

func newHistogram(bounds []float64) Histogram {
	return Histogram{
		UpperBounds: bounds,
		Counts:      make([]int64, len(bounds)+1),
	}
}

func (h *Histogram) observe(v float64) {
	i := 0
	for i < len(h.UpperBounds) && v > h.UpperBounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average observation (0 before any).
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observations: the smallest bucket bound at which the cumulative count
// reaches q, or Max for observations past the last bound. It is a
// bucket-resolution estimate, good enough for dashboards and tuning.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if float64(target) < q*float64(h.Count) || target == 0 {
		target++
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.UpperBounds) {
				return h.UpperBounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// String renders the non-empty buckets compactly, e.g.
// "<=1:3 <=4:10 >256:1 (count 14)".
func (h Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i < len(h.UpperBounds) {
			fmt.Fprintf(&b, "<=%g:%d", h.UpperBounds[i], c)
		} else {
			fmt.Fprintf(&b, ">%g:%d", h.UpperBounds[len(h.UpperBounds)-1], c)
		}
	}
	if b.Len() == 0 {
		b.WriteString("empty")
	}
	fmt.Fprintf(&b, " (count %d)", h.Count)
	return b.String()
}

// Bucket bounds for the two group-commit histograms: batch sizes in
// records (powers of two up to the default batch cap) and flush
// latencies in seconds (50µs up to 1s; an fsync on real hardware lands
// in the middle of this range).
var (
	batchSizeBounds    = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	flushLatencyBounds = []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
	}
)

// StoreStats is a point-in-time snapshot of the store's observability
// counters (GET /v1/stream/stats on a durable streaming server). The
// append/sync ratio and the two histograms are the data for tuning
// Options.FlushInterval and Options.MaxBatch against observed load:
// batches pinned at 1 under concurrency mean group commit is not
// engaging; flush latencies near FlushInterval mean the linger, not the
// disk, paces ingest.
type StoreStats struct {
	// JournalAppends counts accepted AppendCharge calls; JournalSyncs
	// counts the fsyncs that made them durable. Appends/Syncs is the
	// group-commit amortization factor.
	JournalAppends int64 `json:"journalAppends"`
	JournalSyncs   int64 `json:"journalSyncs"`
	// JournalBytes is the journal's current live size across every
	// segment (a gauge: Stats(true) does not reset it).
	JournalBytes int64 `json:"journalBytes"`
	// Segments is the current number of live journal segment files,
	// including the active one (a gauge). SegmentsSealed and
	// SegmentsDeleted count segment rolls and compaction deletions
	// (one compaction pass runs per snapshot, so Snapshots counts
	// those). Sealed minus deleted trending up means snapshots are not
	// keeping pace with ingest.
	Segments        int   `json:"segments"`
	SegmentsSealed  int64 `json:"segmentsSealed"`
	SegmentsDeleted int64 `json:"segmentsDeleted"`
	// Snapshots counts engine snapshots written; ResultsSaved counts
	// persisted window results.
	Snapshots    int64 `json:"snapshots"`
	ResultsSaved int64 `json:"resultsSaved"`
	// BatchSizes is the histogram of records per group-commit flush.
	BatchSizes Histogram `json:"batchSizes"`
	// FlushLatencySeconds is the histogram of write+fsync wall time per
	// flush, in seconds.
	FlushLatencySeconds Histogram `json:"flushLatencySeconds"`
}

// Stats returns a copy of the store's counters and histograms. Safe for
// concurrent use with appends and snapshots.
//
// With reset true, the cumulative counters and both histograms are
// zeroed after the copy is taken, so a long-lived node can poll in
// windows and see rates instead of an all-time blur (an fsync latency
// regression in hour 40 is invisible inside a 40-hour histogram).
// Gauges — JournalBytes, Segments — describe the present and are never
// reset. Concurrent flushes serialize with the reset, so no observation
// is lost or double-counted across the boundary.
func (s *Store) Stats(reset bool) StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		JournalAppends:      s.journalAppends,
		JournalSyncs:        s.journalSyncs,
		JournalBytes:        s.journalBytesLocked(),
		Segments:            len(s.sealed) + 1,
		SegmentsSealed:      s.segmentsSealed,
		SegmentsDeleted:     s.segmentsDeleted,
		Snapshots:           s.snapshots,
		ResultsSaved:        s.resultsSaved,
		BatchSizes:          s.batchSizes,
		FlushLatencySeconds: s.flushLatency,
	}
	st.BatchSizes.Counts = append([]int64(nil), s.batchSizes.Counts...)
	st.FlushLatencySeconds.Counts = append([]int64(nil), s.flushLatency.Counts...)
	if reset {
		s.journalAppends, s.journalSyncs = 0, 0
		s.segmentsSealed, s.segmentsDeleted = 0, 0
		s.snapshots, s.resultsSaved = 0, 0
		s.batchSizes = newHistogram(batchSizeBounds)
		s.flushLatency = newHistogram(flushLatencyBounds)
	}
	return st
}
