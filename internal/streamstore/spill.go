package streamstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"pptd/internal/stream"
)

// User-spill store: the durable home of evicted users (users.spill).
//
// When the engine runs under a residency cap (stream.Config.
// MaxResidentUsers / ResidentBytes), window close evicts idle users and
// hands their state here via SpillUsers before dropping it from memory.
// The spill record can then become the ONLY copy of a user's cumulative
// privacy spending — a later snapshot may compact away the journal
// segments holding their charges — so SpillUsers returns only after the
// records are written and fsync'd.
//
// The file reuses the journal's line format (crc32hex SP json LF, one
// stream.UserSpill per line) and the same torn-tail rule: Open parses
// the longest valid prefix and truncates the rest, so a crash mid-spill
// costs at most the batch being written — whose users stayed resident,
// because eviction drops memory only after SpillUsers returns. Appends
// are newest-wins: an in-memory index (built at Open, maintained per
// append) maps each user ID to its latest record's offset, and LoadUser
// is one positioned read. Once dead records outweigh live ones the file
// is compacted by atomic rewrite (write temp, fsync, rename over,
// directory sync), the same dance as the snapshot.
//
// The spill file has its own mutex: spills and loads ride the admission
// and close paths and must not contend with the journal's group commit.
// Lock order is s.mu before s.spillMu; SpillUsers and LoadUser take
// only s.spillMu.

const (
	spillName    = "users.spill"
	spillTmpName = "users.spill.tmp"

	// spillCompactMinBytes keeps compaction from thrashing on tiny
	// files: below this size the dead-record overhead is noise.
	spillCompactMinBytes = 16 << 10
)

// spillRef locates one user's newest record inside users.spill: the
// line's byte offset and length (newline included).
type spillRef struct {
	off int64
	n   int64
}

var _ stream.UserStore = (*Store)(nil)

// encodeSpillLine renders one spill record in the shared CRC line
// format.
func encodeSpillLine(sp stream.UserSpill) ([]byte, error) {
	if sp.ID == "" {
		return nil, fmt.Errorf("streamstore: user spill with empty id")
	}
	payload, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("streamstore: encode user spill: %w", err)
	}
	return []byte(fmt.Sprintf("%0*x %s\n", journalCRCLen, crc32.ChecksumIEEE(payload), payload)), nil
}

// parseSpillLine decodes one spill line (without its newline),
// reporting false on any damage.
func parseSpillLine(line []byte) (stream.UserSpill, bool) {
	var sp stream.UserSpill
	if len(line) < journalCRCLen+2 || line[journalCRCLen] != ' ' {
		return sp, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:journalCRCLen]), "%08x", &want); err != nil {
		return sp, false
	}
	payload := line[journalCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return sp, false
	}
	if err := json.Unmarshal(payload, &sp); err != nil || sp.ID == "" {
		return sp, false
	}
	return sp, true
}

// openSpillLocked brings the spill file up at Open time: it opens (or
// creates) users.spill, builds the newest-wins offset index from the
// longest valid prefix, and truncates any torn tail a crash mid-spill
// left. Called from OpenWith under s.mu.
func (s *Store) openSpillLocked() error {
	_, statErr := s.fs.Stat(filepath.Join(s.dir, spillName))
	created := os.IsNotExist(statErr)
	f, err := s.fs.OpenFile(filepath.Join(s.dir, spillName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: open user spill file: %w", err)
	}
	if created {
		if err := s.fs.SyncDir(s.dir); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: sync state dir: %w", err)
		}
	}
	data, err := s.readSegmentLocked(f)
	if err != nil {
		_ = f.Close()
		return err
	}
	index := make(map[string]spillRef)
	var live int64
	var valid int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the final spill never completed
		}
		sp, ok := parseSpillLine(data[off : off+nl])
		if !ok {
			break
		}
		ref := spillRef{off: int64(off), n: int64(nl + 1)}
		if old, dup := index[sp.ID]; dup {
			live -= old.n
		}
		index[sp.ID] = ref
		live += ref.n
		off += nl + 1
		valid = int64(off)
	}
	if int64(len(data)) > valid {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: repair user spill tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("streamstore: sync repaired user spill: %w", err)
		}
	}
	s.spill = f
	s.spillSize = valid
	s.spillLive = live
	s.spillIndex = index
	return nil
}

// SpillUsers durably appends one record per evicted user and returns
// only once they are fsync'd — the engine drops the in-memory state
// right after, and from then on the spill record may be the only copy
// of the user's budget. All records share one write+fsync. On failure
// the file is truncated back to its durable size and the index is left
// untouched, so the eviction aborts cleanly (the users stay resident).
// Implements stream.UserStore.
func (s *Store) SpillUsers(users []stream.UserSpill) error {
	if len(users) == 0 {
		return nil
	}
	type pending struct {
		id  string
		ref spillRef
	}
	var buf []byte
	refs := make([]pending, 0, len(users))
	for _, sp := range users {
		line, err := encodeSpillLine(sp)
		if err != nil {
			return err
		}
		refs = append(refs, pending{id: sp.ID, ref: spillRef{off: int64(len(buf)), n: int64(len(line))}})
		buf = append(buf, line...)
	}

	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.spill == nil {
		return ErrClosed
	}
	base := s.spillSize
	if _, err := s.spill.WriteAt(buf, base); err != nil {
		_ = s.spill.Truncate(base)
		return fmt.Errorf("streamstore: append user spill: %w", err)
	}
	if err := s.spill.Sync(); err != nil {
		_ = s.spill.Truncate(base)
		return fmt.Errorf("streamstore: sync user spill: %w", err)
	}
	s.spillSize += int64(len(buf))
	for _, p := range refs {
		if old, dup := s.spillIndex[p.id]; dup {
			s.spillLive -= old.n
		}
		s.spillIndex[p.id] = spillRef{off: base + p.ref.off, n: p.ref.n}
		s.spillLive += p.ref.n
	}
	s.userSpills += int64(len(users))
	// Housekeeping, never durability: the records above are already
	// safe in the un-compacted file, so a failed compaction must not
	// fail the eviction that triggered it.
	if s.spillSize >= spillCompactMinBytes && s.spillSize >= 2*s.spillLive {
		_ = s.compactSpillLocked()
	}
	return nil
}

// LoadUser returns the newest spill record for one user, or false when
// the user was never spilled. One positioned read through the offset
// index; no scan. Implements stream.UserStore.
func (s *Store) LoadUser(id string) (*stream.UserSpill, bool, error) {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.spill == nil {
		return nil, false, ErrClosed
	}
	ref, ok := s.spillIndex[id]
	if !ok {
		return nil, false, nil
	}
	line := make([]byte, ref.n)
	if _, err := s.spill.ReadAt(line, ref.off); err != nil {
		return nil, false, fmt.Errorf("streamstore: read user spill: %w", err)
	}
	sp, valid := parseSpillLine(bytes.TrimSuffix(line, []byte("\n")))
	if !valid {
		return nil, false, fmt.Errorf("streamstore: user spill record for %q is corrupt", id)
	}
	s.userLoads++
	return &sp, true, nil
}

// SpilledUsers returns how many distinct users currently live in the
// spill store (a gauge; re-admission does not remove a record — the
// next eviction overwrites it).
func (s *Store) SpilledUsers() int {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	return len(s.spillIndex)
}

// compactSpillLocked rewrites users.spill down to one newest record per
// user: the live lines are copied (in sorted ID order, so the output is
// deterministic) into a temp file, fsync'd, and renamed over the live
// name with a directory sync — the open temp handle survives the rename
// and becomes the new spill handle, so there is no window where the
// store holds no usable file. Every failure path keeps the old file,
// handle, and index fully intact. A crash at any point leaves either
// the old file (all records, dead ones included) or the new one; both
// recover identically. Callers must hold s.spillMu.
func (s *Store) compactSpillLocked() error {
	data, err := s.readSegmentLocked(s.spill)
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(s.spillIndex))
	for id := range s.spillIndex {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf []byte
	index := make(map[string]spillRef, len(ids))
	for _, id := range ids {
		ref := s.spillIndex[id]
		if ref.off+ref.n > int64(len(data)) {
			return fmt.Errorf("streamstore: user spill index out of bounds for %q", id)
		}
		index[id] = spillRef{off: int64(len(buf)), n: ref.n}
		buf = append(buf, data[ref.off:ref.off+ref.n]...)
	}

	tmp := filepath.Join(s.dir, spillTmpName)
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("streamstore: create user spill temp: %w", err)
	}
	abort := func(e error) error {
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return e
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return abort(fmt.Errorf("streamstore: write compacted user spill: %w", err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("streamstore: sync compacted user spill: %w", err))
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, spillName)); err != nil {
		return abort(fmt.Errorf("streamstore: publish compacted user spill: %w", err))
	}
	// Best-effort: if the rename has not hit the directory yet, a crash
	// recovers from the old file, which holds every live record too.
	_ = s.fs.SyncDir(s.dir)
	old := s.spill
	s.spill = f
	s.spillSize = int64(len(buf))
	s.spillLive = int64(len(buf))
	s.spillIndex = index
	s.spillCompactions++
	_ = old.Close()
	return nil
}
