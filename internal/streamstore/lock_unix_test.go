//go:build unix

package streamstore

import (
	"errors"
	"testing"
)

// TestOpenLocksStateDir checks the single-owner guard: a second live
// store on the same directory would silently clobber the first one's
// journal, so Open must refuse it until the owner closes.
func TestOpenLocksStateDir(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open on a held directory = %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after owner closed: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
