//go:build !unix

package streamstore

import "os"

// Advisory state-directory locking is only implemented on unix; on other
// platforms keeping a directory to a single live store is the
// operator's responsibility.
func lockFile(*os.File) error { return nil }

func unlockFile(*os.File) error { return nil }
