package streamstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

// The crash-point sweep: run one ingest → seal → snapshot → compact
// cycle on a fault-injecting filesystem, crash at EVERY numbered
// filesystem operation in turn (including torn variants of every
// write), recover with the real filesystem, and assert the recovery
// contract at each point:
//
//  1. recovery succeeds;
//  2. no acknowledged charge is lost (budgets only ever err toward
//     charging more, never less);
//  3. the recovered engine is equivalent — within 1e-9, probed by
//     ingesting fresh claims and closing a window — to an
//     uninterrupted engine that processed either every logical step
//     completed before the crash, or those steps plus the one in
//     flight (the crashing operation's step atomically happened or
//     didn't; nothing in between).
//
// The sweep is what turns the DURABILITY.md contract from
// spot-checked ("we killed it between operations a few times") into
// enumerated: torn writes inside group commit, a crash between a
// snapshot's rename and its compaction, a half-created segment file —
// every one is a case in this table. When a case fails, the faulty
// filesystem's op log is written to $CRASH_ARTIFACT_DIR (the CI
// crash-matrix job uploads it), making the crash point reproducible
// from the artifact alone.

// sweepStep is one logical operation of the crash-cycle workload.
type sweepStep struct {
	kind   string // "ingest" or "close"
	user   string
	claims []stream.Claim
}

const sweepWindows = 4

func sweepConfig() stream.Config {
	return stream.Config{
		NumObjects: 3,
		NumShards:  1, // deterministic fold order, so oracles match bit-for-bit
		Decay:      0.9,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
}

func sweepOptions() Options {
	return Options{
		MaxBatch:      1,   // serial appends: one logical step per flush
		SegmentBytes:  384, // a few records per segment: rolls mid-cycle
		SnapshotEvery: 2,   // snapshots + compaction at closes 2 and 4
		ResultHistory: 3,
	}
}

// sweepSteps is the deterministic workload: three users per window,
// four windows, a close after each window's ingests. Before window 3's
// close it replays the snapshot/ingest race deterministically:
// "race-mark" captures the covered position and exports the state (as
// SnapshotEngine would), then enough race ingests land — and roll the
// active segment — before "race-snapshot" writes the stale snapshot.
// The compaction that follows then faces a SEALED segment only
// partially covered by the snapshot: the boundary segment the covered
// JournalPos exists for. Deleting it would lose acknowledged charges,
// which invariant 2 catches at every crash point in and after it.
func sweepSteps() []sweepStep {
	var steps []sweepStep
	for w := 0; w < sweepWindows; w++ {
		for u := 0; u < 3; u++ {
			steps = append(steps, sweepStep{
				kind: "ingest",
				user: fmt.Sprintf("user-%d", u),
				claims: []stream.Claim{
					{Object: u % 3, Value: float64(w) + 0.5*float64(u)},
					{Object: (u + 1) % 3, Value: 2*float64(w) - float64(u) + 0.25},
				},
			})
		}
		if w == 2 {
			steps = append(steps, sweepStep{kind: "race-mark"})
			for r := 0; r < 4; r++ { // 4 records > SegmentBytes: forces a roll past the mark
				steps = append(steps, sweepStep{
					kind: "ingest",
					user: fmt.Sprintf("race-%d", r),
					claims: []stream.Claim{
						{Object: r % 3, Value: 3.5 - float64(r)},
						{Object: (r + 2) % 3, Value: 0.5 * float64(r)},
					},
				})
			}
			steps = append(steps, sweepStep{kind: "race-snapshot"})
		}
		steps = append(steps, sweepStep{kind: "close"})
	}
	return steps
}

// runSweepCycle executes the workload against dir on fsys, mirroring
// what crowd.StreamServer does per close (SaveResult, then
// MaybeSnapshotEngine), with a final graceful-shutdown snapshot. It
// returns how many logical steps fully completed and the per-user
// epsilon acknowledged as durable (counted only after AppendCharge
// succeeded, i.e. after the engine acked the submission).
func runSweepCycle(fsys storefs.FS, dir string) (completed int, acked map[string]float64, err error) {
	acked = make(map[string]float64)
	opts := sweepOptions()
	opts.FS = fsys
	store, err := OpenWith(dir, opts)
	if err != nil {
		return 0, acked, err
	}
	defer func() { _ = store.Close() }()
	cfg := sweepConfig()
	cfg.Ledger = store
	cfg.ClaimWAL = true
	e, err := stream.New(cfg)
	if err != nil {
		return 0, acked, err
	}
	defer func() { _ = e.Close() }()

	eps := e.EpsilonPerWindow()
	var racePos JournalPos
	var raceState *stream.EngineState
	for i, step := range sweepSteps() {
		switch step.kind {
		case "ingest":
			if _, _, err := e.Ingest(step.user, step.claims); err != nil {
				return i, acked, err
			}
			acked[step.user] += eps
		case "race-mark":
			// SnapshotEngine's first half, frozen: the covered position and
			// the quiesced export. No filesystem I/O happens here.
			racePos = store.JournalPos()
			if raceState, err = e.ExportState(); err != nil {
				return i, acked, err
			}
		case "race-snapshot":
			// The second half, after acknowledged ingests rolled the active
			// segment past the mark: the compaction below must preserve the
			// partially-covered sealed boundary segment.
			if err := store.WriteSnapshot(raceState, racePos); err != nil {
				return i, acked, err
			}
		case "close":
			res, err := e.CloseWindow()
			if err != nil {
				return i, acked, err
			}
			if err := store.SaveResult(res); err != nil {
				return i, acked, err
			}
			if _, err := store.MaybeSnapshotEngine(e); err != nil {
				return i, acked, err
			}
		}
		completed = i + 1
	}
	// Graceful shutdown writes a final snapshot (crowd.StreamServer.Close
	// does the same); in the sweep it extends coverage to a crash inside
	// a full-coverage compaction.
	if err := store.SnapshotEngine(e); err != nil {
		return completed, acked, err
	}
	return completed, acked, nil
}

// oracleProbe runs the first n logical steps on a fresh in-memory
// engine, then the probe (a new user claiming every object, one window
// close), returning the probe's published result.
func oracleProbe(t *testing.T, n int) *stream.WindowResult {
	t.Helper()
	e := mustEngine(t, sweepConfig())
	defer func() { _ = e.Close() }()
	for _, step := range sweepSteps()[:n] {
		switch step.kind {
		case "ingest":
			if _, _, err := e.Ingest(step.user, step.claims); err != nil {
				t.Fatalf("oracle(%d) ingest: %v", n, err)
			}
		case "close":
			if _, err := e.CloseWindow(); err != nil {
				t.Fatalf("oracle(%d) close: %v", n, err)
			}
			// race-mark / race-snapshot have no engine effect.
		}
	}
	return probeEngine(t, e)
}

func probeEngine(t *testing.T, e *stream.Engine) *stream.WindowResult {
	t.Helper()
	if _, _, err := e.Ingest("probe-user", []stream.Claim{
		{Object: 0, Value: 1.5}, {Object: 1, Value: -2.25}, {Object: 2, Value: 0.75},
	}); err != nil {
		t.Fatalf("probe ingest: %v", err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatalf("probe close: %v", err)
	}
	return res
}

// resultsEquivalent compares two probe results within tol.
func resultsEquivalent(a, b *stream.WindowResult, tol float64) bool {
	if a.Window != b.Window || a.TotalClaims != b.TotalClaims || len(a.Truths) != len(b.Truths) {
		return false
	}
	for i := range a.Truths {
		if a.Covered[i] != b.Covered[i] {
			return false
		}
		if a.Covered[i] && math.Abs(a.Truths[i]-b.Truths[i]) > tol {
			return false
		}
	}
	if len(a.Weights) != len(b.Weights) {
		return false
	}
	for id, w := range a.Weights {
		if math.Abs(b.Weights[id]-w) > tol {
			return false
		}
	}
	return true
}

// dumpOpLog writes the faulty filesystem's op log where the CI
// crash-matrix job can upload it, so a failing crash point reproduces
// from the artifact alone.
func dumpOpLog(t *testing.T, fy *storefs.Faulty, label string) {
	t.Helper()
	dir := os.Getenv("CRASH_ARTIFACT_DIR")
	if dir == "" {
		t.Logf("op log (%s):\n%s", label, fy.OpLogString())
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("crash-%s.oplog", label))
	if err := os.WriteFile(path, []byte(fy.OpLogString()), 0o644); err != nil {
		t.Logf("write op log: %v", err)
		return
	}
	t.Logf("op log written to %s", path)
}

// TestCrashPointSweep enumerates the cycle's filesystem operations with
// a pilot run, then crashes at each in turn (and again with the write
// torn in half, when the op is a write) and asserts the recovery
// contract.
func TestCrashPointSweep(t *testing.T) {
	const tol = 1e-9
	steps := sweepSteps()

	// Pilot: no faults, just the op enumeration.
	pilot := storefs.NewFaulty(storefs.OS{})
	if _, _, err := runSweepCycle(pilot, t.TempDir()); err != nil {
		t.Fatalf("pilot cycle: %v", err)
	}
	pilotOps := pilot.Ops()
	if len(pilotOps) < 40 {
		t.Fatalf("pilot enumerated only %d ops — the cycle is not exercising the store", len(pilotOps))
	}

	// Oracles: the probe outcome after every logical prefix.
	oracles := make([]*stream.WindowResult, len(steps)+1)
	for n := 0; n <= len(steps); n++ {
		oracles[n] = oracleProbe(t, n)
	}

	type crashCase struct {
		op   int
		tear int
	}
	var cases []crashCase
	for _, op := range pilotOps {
		cases = append(cases, crashCase{op: op.N})
		if op.Kind == storefs.OpWrite && op.Len > 1 {
			cases = append(cases, crashCase{op: op.N, tear: op.Len / 2})
		}
	}

	for _, tc := range cases {
		tc := tc
		label := fmt.Sprintf("op%03d", tc.op)
		if tc.tear > 0 {
			label += fmt.Sprintf("-torn%d", tc.tear)
		}
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			fy := storefs.NewFaulty(storefs.OS{})
			fy.CrashAt(tc.op, tc.tear)
			completed, acked, err := runSweepCycle(fy, dir)
			if err == nil {
				// The crash point landed after the workload's last op (the
				// pilot's tail belongs to Close); nothing to recover against.
				if !fy.Crashed() {
					t.Fatalf("crash at op %d never fired", tc.op)
				}
				completed = len(steps)
			}

			// Recover on the real filesystem, as a restarted process would.
			store, err := OpenWith(dir, sweepOptions())
			if err != nil {
				dumpOpLog(t, fy, label)
				t.Fatalf("recovery open: %v", err)
			}
			defer func() { _ = store.Close() }()
			rec := mustEngine(t, sweepConfig())
			defer func() { _ = rec.Close() }()
			if _, err := store.Recover(rec); err != nil {
				dumpOpLog(t, fy, label)
				t.Fatalf("recover after crash at op %d: %v", tc.op, err)
			}

			// Invariant 2: every acknowledged charge survived.
			st, err := rec.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			recovered := make(map[string]float64, len(st.Users))
			for _, u := range st.Users {
				recovered[u.ID] = u.CumulativeEpsilon
			}
			for user, want := range acked {
				if recovered[user] < want-tol {
					dumpOpLog(t, fy, label)
					t.Errorf("user %s recovered epsilon %v < acknowledged %v: acknowledged charge lost",
						user, recovered[user], want)
				}
			}

			// Invariant 3: equivalence to an uninterrupted engine that saw
			// the completed prefix, with or without the in-flight step.
			got := probeEngine(t, rec)
			withL, withL1 := oracles[completed], oracles[completed]
			if completed < len(steps) {
				withL1 = oracles[completed+1]
			}
			if !resultsEquivalent(got, withL, tol) && !resultsEquivalent(got, withL1, tol) {
				dumpOpLog(t, fy, label)
				t.Errorf("crash at op %d (step %d): recovered probe matches neither oracle(%d) nor oracle(%d)\n got: window %d claims %d truths %v",
					tc.op, completed, completed, completed+1, got.Window, got.TotalClaims, got.Truths)
			}
		})
	}
}

// TestFailedSyncIsTransient: a single failed fsync mid-batch must fail
// that submission (charge rolled back, ErrLedger to the caller) without
// wedging the store — the next append lands cleanly and recovery sees
// exactly the acknowledged records.
func TestFailedSyncIsTransient(t *testing.T) {
	for failN := 1; failN <= 6; failN++ {
		t.Run(fmt.Sprintf("sync%d", failN), func(t *testing.T) {
			dir := t.TempDir()
			fy := storefs.NewFaulty(storefs.OS{})
			fy.FailSync(failN)
			opts := sweepOptions()
			opts.FS = fy
			store, err := OpenWith(dir, opts)
			if err != nil {
				// The injected failure hit Open's repair/creation sync;
				// transient by contract: a second Open must succeed.
				if !errors.Is(err, storefs.ErrInjected) {
					t.Fatalf("open: %v", err)
				}
				store, err = OpenWith(dir, opts)
				if err != nil {
					t.Fatalf("reopen after transient sync failure: %v", err)
				}
			}
			defer func() { _ = store.Close() }()

			var okUsers []string
			for i := 0; i < 8; i++ {
				user := fmt.Sprintf("u%d", i)
				err := store.AppendCharge(stream.ChargeRecord{User: user, Window: 0, Epsilon: 1})
				if err == nil {
					okUsers = append(okUsers, user)
				} else if !errors.Is(err, storefs.ErrInjected) {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if len(okUsers) < 7 {
				t.Fatalf("only %d/8 appends survived one injected sync failure", len(okUsers))
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			re := mustOpen(t, dir)
			defer func() { _ = re.Close() }()
			st, err := re.LoadState()
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]bool)
			if st != nil {
				for _, u := range st.Users {
					got[u.ID] = true
				}
			}
			for _, user := range okUsers {
				if !got[user] {
					t.Errorf("acknowledged append for %s missing after recovery", user)
				}
			}
		})
	}
}
