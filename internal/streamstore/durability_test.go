package streamstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stream"
	"pptd/internal/streamstore/storefs"
)

func mustEngine(t *testing.T, cfg stream.Config) *stream.Engine {
	t.Helper()
	e, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSnapshotCadenceEveryN: with SnapshotEvery 3, only every third
// window close writes a snapshot; the journal covers the gap.
func TestSnapshotCadenceEveryN(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	e := mustEngine(t, stream.Config{NumObjects: 1, NumShards: 1})
	defer func() { _ = e.Close() }()

	snapPath := filepath.Join(dir, snapshotName)
	for close := 1; close <= 6; close++ {
		if _, _, err := e.Ingest(fmt.Sprintf("u%d", close), []stream.Claim{{Object: 0, Value: 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.CloseWindow(); err != nil {
			t.Fatal(err)
		}
		wrote, err := s.MaybeSnapshotEngine(e)
		if err != nil {
			t.Fatal(err)
		}
		wantWrite := close%3 == 0
		if wrote != wantWrite {
			t.Errorf("close %d: wrote = %v, want %v", close, wrote, wantWrite)
		}
		if _, err := os.Stat(snapPath); (err == nil) != (close >= 3) {
			t.Errorf("close %d: snapshot existence = %v", close, err == nil)
		}
	}
}

// TestSnapshotCadenceSizeTrigger: a journal past SnapshotBytes forces
// the snapshot early, regardless of the every-N cadence.
func TestSnapshotCadenceSizeTrigger(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{SnapshotEvery: 1000, SnapshotBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	e := mustEngine(t, stream.Config{NumObjects: 1, NumShards: 1})
	defer func() { _ = e.Close() }()
	if err := s.AppendCharge(stream.ChargeRecord{User: "a", Window: 0, Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("a", []stream.Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	wrote, err := s.MaybeSnapshotEngine(e)
	if err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("size trigger did not force a snapshot")
	}
	// The snapshot compacted the journal below the bound: the next close
	// is back on cadence (no write).
	if wrote, err = s.MaybeSnapshotEngine(e); err != nil || wrote {
		t.Fatalf("post-compaction close wrote = %v, %v; want false, nil", wrote, err)
	}
}

// TestRetainedSnapshotGenerations: with RetainSnapshots 2 the previous
// two snapshots survive as .1 (newest) and .2, each a valid envelope,
// and the live snapshot is never disturbed.
func TestRetainedSnapshotGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{RetainSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	for w := 1; w <= 4; w++ {
		if err := s.WriteSnapshot(&stream.EngineState{Window: w}, s.JournalPos()); err != nil {
			t.Fatal(err)
		}
	}
	wantWindow := func(path string, want int) {
		t.Helper()
		body, _, err := readEnvelope(storefs.OS{}, path, ErrCorruptSnapshot)
		if err != nil || body == nil {
			t.Fatalf("%s: %v", path, err)
		}
		var st stream.EngineState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Window != want {
			t.Errorf("%s holds window %d, want %d", filepath.Base(path), st.Window, want)
		}
	}
	wantWindow(filepath.Join(dir, snapshotName), 4)
	wantWindow(filepath.Join(dir, snapshotName+".1"), 3)
	wantWindow(filepath.Join(dir, snapshotName+".2"), 2)
	if _, err := os.Stat(filepath.Join(dir, snapshotName+".3")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("generation .3 retained past the bound: %v", err)
	}
}

// TestResultRoundTrip persists a window result — including an uncovered
// object, whose NaN truth JSON cannot carry — and loads it back across
// a store reopen.
func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if res, err := s.LoadResult(); err != nil || res != nil {
		t.Fatalf("LoadResult on fresh dir = %+v, %v", res, err)
	}
	res := &stream.WindowResult{
		Window:       3,
		Truths:       []float64{1.5, math.NaN()},
		Covered:      []bool{true, false},
		Weights:      map[string]float64{"alice": 2.25},
		Iterations:   5,
		Converged:    true,
		ActiveUsers:  1,
		WindowClaims: 4,
		TotalClaims:  12,
		Privacy:      &stream.PrivacyReport{EpsilonPerWindow: 0.5, MaxCumulative: 1.5},
	}
	if err := s.SaveResult(res); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	got, err := re.LoadResult()
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != 3 || got.Truths[0] != 1.5 || !math.IsNaN(got.Truths[1]) ||
		!got.Covered[0] || got.Covered[1] {
		t.Errorf("result = %+v", got)
	}
	if got.Weights["alice"] != 2.25 || got.Privacy == nil || got.Privacy.MaxCumulative != 1.5 {
		t.Errorf("result detail = %+v privacy %+v", got, got.Privacy)
	}
}

// TestCorruptResultFailsLoudly mirrors the snapshot contract: results
// are written atomically, so a bad checksum means disk damage and must
// surface as ErrCorruptResult rather than silently serving garbage.
func TestCorruptResultFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.SaveResult(&stream.WindowResult{Window: 1, Truths: []float64{1}, Covered: []bool{true}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, resultName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	if _, err := re.LoadResult(); !errors.Is(err, ErrCorruptResult) {
		t.Fatalf("LoadResult on corrupt file = %v, want ErrCorruptResult", err)
	}
}

// TestRecoverClaimWALNoSnapshot is the crash drill the claim WAL was
// built for: the process dies mid-window having NEVER written a
// snapshot, and Recover must rebuild the engine — budgets, statistics,
// intermediate closes — from the journal alone, so the next close
// matches an uninterrupted engine within 1e-9.
func TestRecoverClaimWALNoSnapshot(t *testing.T) {
	const (
		numObjects = 5
		numUsers   = 7
		tol        = 1e-9
	)
	cfg := stream.Config{
		NumObjects: numObjects,
		NumShards:  2,
		Decay:      0.9,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
	rng := randx.New(41)
	windows := make([][][]stream.Claim, 3)
	for w := range windows {
		windows[w] = make([][]stream.Claim, numUsers)
		for u := range windows[w] {
			claims := make([]stream.Claim, numObjects)
			for obj := range claims {
				claims[obj] = stream.Claim{Object: obj, Value: 10*rng.Float64() - 5}
			}
			windows[w][u] = claims
		}
	}
	ingest := func(t *testing.T, e *stream.Engine, w int) {
		t.Helper()
		for u, claims := range windows[w] {
			if _, _, err := e.Ingest(fmt.Sprintf("user-%d", u), claims); err != nil {
				t.Fatalf("window %d user %d: %v", w, u, err)
			}
		}
	}

	// Reference: uninterrupted, memory only.
	ref := mustEngine(t, cfg)
	defer func() { _ = ref.Close() }()
	var want *stream.WindowResult
	var err error
	for w := range windows {
		ingest(t, ref, w)
		if want, err = ref.CloseWindow(); err != nil {
			t.Fatal(err)
		}
	}

	// Durable run: claim WAL on, no snapshot ever, killed mid-window 3.
	dir := t.TempDir()
	store := mustOpen(t, dir)
	durCfg := cfg
	durCfg.Ledger = store
	durCfg.ClaimWAL = true
	dur := mustEngine(t, durCfg)
	for w := 0; w < 2; w++ {
		ingest(t, dur, w)
		if _, err := dur.CloseWindow(); err != nil {
			t.Fatal(err)
		}
	}
	ingest(t, dur, 2)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := mustOpen(t, dir)
	defer func() { _ = store2.Close() }()
	recCfg := cfg
	recCfg.Ledger = store2
	recCfg.ClaimWAL = true
	rec := mustEngine(t, recCfg)
	defer func() { _ = rec.Close() }()
	found, err := store2.Recover(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("Recover found no state")
	}
	got, err := rec.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != want.Window || got.TotalClaims != want.TotalClaims {
		t.Fatalf("recovered window/claims = %d/%d, want %d/%d",
			got.Window, got.TotalClaims, want.Window, want.TotalClaims)
	}
	for n := range want.Truths {
		if got.Covered[n] != want.Covered[n] {
			t.Fatalf("object %d covered mismatch", n)
		}
		if want.Covered[n] && math.Abs(got.Truths[n]-want.Truths[n]) > tol {
			t.Errorf("object %d truth differs by %g", n, math.Abs(got.Truths[n]-want.Truths[n]))
		}
	}
	for id, w := range want.Weights {
		if math.Abs(got.Weights[id]-w) > tol {
			t.Errorf("weight %s differs by %g", id, math.Abs(got.Weights[id]-w))
		}
	}
	if math.Abs(got.Privacy.MaxCumulative-want.Privacy.MaxCumulative) > tol {
		t.Errorf("MaxCumulative = %v, want %v", got.Privacy.MaxCumulative, want.Privacy.MaxCumulative)
	}
}

// TestRecoverAdvancesPastResultOnlyClose is the cadence crash window:
// a window closes (result persisted), the snapshot is skipped by
// SnapshotEvery, and the process dies before any further traffic. The
// close then has no journal record postdating it — only result.json
// proves it happened — and recovery must fast-forward the counter to
// it: the returning user joins the next window instead of being 409'd
// as a duplicate, the window numbering never regresses, and with decay
// enabled the skipped close's decay is re-applied so the next estimate
// matches an uninterrupted engine within 1e-9.
func TestRecoverAdvancesPastResultOnlyClose(t *testing.T) {
	const tol = 1e-9
	cfg := stream.Config{
		NumObjects: 2,
		NumShards:  2,
		Decay:      0.8,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
	}
	claims := func(a, b float64) []stream.Claim {
		return []stream.Claim{{Object: 0, Value: a}, {Object: 1, Value: b}}
	}

	// Reference: uninterrupted.
	ref := mustEngine(t, cfg)
	defer func() { _ = ref.Close() }()
	if _, _, err := ref.Ingest("alice", claims(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ref.Ingest("alice", claims(2, 5)); err != nil {
		t.Fatal(err)
	}
	want, err := ref.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}

	// Durable run: the close's snapshot is skipped (SnapshotEvery 2),
	// then the process dies with the close provable only from result.json.
	dir := t.TempDir()
	store, err := OpenWith(dir, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	durCfg := cfg
	durCfg.Ledger = store
	durCfg.ClaimWAL = true
	dur := mustEngine(t, durCfg)
	if _, _, err := dur.Ingest("alice", claims(1, 4)); err != nil {
		t.Fatal(err)
	}
	res, err := dur.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveResult(res); err != nil {
		t.Fatal(err)
	}
	if wrote, err := store.MaybeSnapshotEngine(dur); err != nil || wrote {
		t.Fatalf("snapshot wrote = %v, %v; want skipped by cadence", wrote, err)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenWith(dir, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = store2.Close() }()
	recCfg := cfg
	recCfg.Ledger = store2
	recCfg.ClaimWAL = true
	rec := mustEngine(t, recCfg)
	defer func() { _ = rec.Close() }()
	if _, err := store2.Recover(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Window() != 1 {
		t.Fatalf("recovered window counter = %d, want 1 (the result-only close)", rec.Window())
	}
	// Alice joins window 2 — not a duplicate of the re-opened window 1.
	if _, _, err := rec.Ingest("alice", claims(2, 5)); err != nil {
		t.Fatalf("alice rejoining after the recovered close: %v", err)
	}
	got, err := rec.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != want.Window {
		t.Fatalf("recovered close published window %d, want %d", got.Window, want.Window)
	}
	for n := range want.Truths {
		if math.Abs(got.Truths[n]-want.Truths[n]) > tol {
			t.Errorf("object %d truth differs by %g", n, math.Abs(got.Truths[n]-want.Truths[n]))
		}
	}
	for id, w := range want.Weights {
		if math.Abs(got.Weights[id]-w) > tol {
			t.Errorf("weight %s differs by %g", id, math.Abs(got.Weights[id]-w))
		}
	}
}

// TestRecoverSeedsLastResult: Recover must hand the persisted result to
// the engine so the previous estimate is immediately servable, and an
// empty directory must recover nothing.
func TestRecoverSeedsLastResult(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	e := mustEngine(t, stream.Config{NumObjects: 1, NumShards: 1})
	found, err := s.Recover(e)
	if err != nil || found {
		t.Fatalf("Recover on empty dir = %v, %v; want false, nil", found, err)
	}
	if _, _, err := e.Ingest("a", []stream.Claim{{Object: 0, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(res); err != nil {
		t.Fatal(err)
	}
	if err := s.SnapshotEngine(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer func() { _ = re.Close() }()
	e2 := mustEngine(t, stream.Config{NumObjects: 1, NumShards: 1})
	defer func() { _ = e2.Close() }()
	found, err = re.Recover(e2)
	if err != nil || !found {
		t.Fatalf("Recover = %v, %v; want true, nil", found, err)
	}
	snap := e2.Snapshot()
	if snap == nil || snap.Window != 1 || snap.Truths[0] != 2 {
		t.Fatalf("recovered last result = %+v, want window 1 truth 2", snap)
	}
}
