package streamstore

import (
	"bytes"
	"reflect"
	"testing"

	"pptd/internal/stream"
)

// fuzzSeedLines builds a few well-formed journal lines for the seed
// corpus through the same encoder AppendCharge uses.
func fuzzSeedLines(t testing.TB) [][]byte {
	t.Helper()
	var lines [][]byte
	for _, rec := range []stream.ChargeRecord{
		{User: "alice", Window: 0, Epsilon: 0.5},
		{User: "bob", Window: 3, Epsilon: 1.25, Claims: []stream.Claim{{Object: 1, Value: -2.5}, {Object: 0, Value: 7}}},
		{User: "углерод", Window: 42, Epsilon: 1e-9}, // non-ASCII user id
	} {
		line, err := encodeChargeLine(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	return lines
}

// FuzzDecodeRecord fuzzes the journal decoder with arbitrary bytes and
// checks the decoder's whole contract, not just "no panic":
//
//   - the reported valid prefix never exceeds the input and always ends
//     on a line boundary;
//   - decoding is deterministic and prefix-stable: re-parsing exactly
//     the valid prefix yields the same records and consumes all of it;
//   - torn-tail repair is garbage-proof: appending any junk that does
//     not itself form a valid line after a valid prefix never loses or
//     changes the prefix's records (the crash-recovery property — a torn
//     write after the last durable record must cost nothing).
//
// Run as a CI smoke with: go test -fuzz FuzzDecodeRecord -fuzztime 10s
func FuzzDecodeRecord(f *testing.F) {
	seeds := fuzzSeedLines(f)
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Add([]byte("deadbeef {\"user\":\"torn"))                              // torn mid-payload
	f.Add([]byte("00000000 {\"user\":\"badcrc\",\"window\":0}\n"))          // wrong checksum
	f.Add([]byte("nothexxx {\"user\":\"badprefix\",\"window\":0}\n"))       // malformed crc field
	f.Add([]byte("deadbeef not-json\n"))                                    // bad payload
	f.Add(seeds[0])                                                         // one valid record
	f.Add(append(append([]byte{}, seeds[0]...), seeds[1]...))               // two valid records
	f.Add(append(append([]byte{}, seeds[2]...), []byte("garbage tail")...)) // valid + torn
	f.Add(append(append([]byte{}, seeds[1]...), 0xff, 0x00, '\n'))          // valid + binary junk line

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := parseJournal(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if valid > 0 && data[valid-1] != '\n' {
			t.Fatalf("valid prefix %d does not end on a line boundary", valid)
		}
		// Re-parsing the valid prefix alone is lossless and complete.
		recs2, valid2 := parseJournal(data[:valid])
		if valid2 != valid || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("re-parse of valid prefix diverged: %d/%d records, %d/%d bytes",
				len(recs), len(recs2), valid, valid2)
		}
		// A torn/garbage tail after the valid prefix never costs a record.
		// The junk deliberately cannot form a valid line (no newline), so
		// the prefix must decode identically.
		torn := append(append([]byte{}, data[:valid]...), []byte("\xff\xfe torn-write-junk")...)
		recs3, valid3 := parseJournal(torn)
		if valid3 != valid || !reflect.DeepEqual(recs, recs3) {
			t.Fatalf("garbage tail changed the valid prefix: %d -> %d records", len(recs), len(recs3))
		}
		// Round-trip: every decoded record re-encodes to a line the
		// decoder accepts again (the journal can always be rewritten from
		// its decoded form).
		for _, rec := range recs {
			line, err := encodeChargeLine(rec)
			if err != nil {
				t.Fatalf("re-encode decoded record: %v", err)
			}
			if _, ok := parseJournalLine(bytes.TrimSuffix(line, []byte("\n"))); !ok {
				t.Fatalf("re-encoded line rejected: %q", line)
			}
		}
	})
}
