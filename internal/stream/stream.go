// Package stream implements an online, windowed truth-discovery engine
// for continuous submission streams — the streaming counterpart of the
// batch pipeline in internal/core. Perturbed claims are ingested
// concurrently into worker shards (objects hash-partitioned across
// shards, batched channel hand-off), folded into exponentially-decayed
// sufficient statistics per (object, user), and truths plus user weights
// are re-estimated incrementally when a window closes. User weights
// carry over between windows as the warm start of the next estimation,
// and an optional privacy accountant charges every user's cumulative
// (epsilon, delta) budget once per window they participate in, so the
// privacy loss of a long-lived stream is tracked and enforceable. The
// accounting unit matches the release unit: with accounting enabled a
// user gets exactly one submission per window, with at most one claim
// per object, and both epsilon and delta compose linearly across the
// windows a user is charged for.
//
// The per-window estimation is pluggable behind the Estimator interface:
// Config.Estimator selects an incremental implementation of one of the
// batch methods in internal/truth — CRH (the default), GTM, or CATD —
// and each one holds the same equivalence property: on a closed window
// with decay disabled and at most one claim per (object, user) pair, its
// truths and weights agree with the batch method's Run over the same
// claims to floating-point reordering error (well within 1e-9;
// property-tested). Estimators may carry private cross-window state
// (GTM's per-user variances); it is exported and restored with the
// engine's snapshots, and a snapshot names the estimator that wrote it
// so recovery under a different one fails loudly (ErrEstimatorMismatch)
// instead of misfolding.
package stream

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pptd/internal/core"
	"pptd/internal/obs"
	"pptd/internal/truth"
)

var (
	// ErrBadConfig reports an invalid engine configuration.
	ErrBadConfig = errors.New("stream: invalid config")
	// ErrBadClaim reports a claim with an out-of-range object or a
	// non-finite value.
	ErrBadClaim = errors.New("stream: bad claim")
	// ErrBudgetExhausted reports a submission from a user whose cumulative
	// privacy budget would be exceeded by participating in this window.
	ErrBudgetExhausted = errors.New("stream: privacy budget exhausted")
	// ErrDuplicateWindow reports a second submission from the same user
	// into the same open window while privacy accounting is enabled: each
	// window's epsilon charge pays for exactly one perturbed release, so
	// further releases are rejected rather than averaged in for free.
	ErrDuplicateWindow = errors.New("stream: duplicate submission in window")
	// ErrEngineClosed reports use of an engine after Close.
	ErrEngineClosed = errors.New("stream: engine closed")
	// ErrEmptyWindow reports a window close before any claim ever arrived.
	ErrEmptyWindow = errors.New("stream: no claims ingested yet")
	// ErrUserStore reports a failed spill-store operation while admitting
	// a user: their spilled state could not be read back, so the engine
	// rejects the submission rather than risk resetting their budget.
	ErrUserStore = errors.New("stream: user spill store failed")
)

// DefaultHistoryWindows is the result-ring capacity used when
// Config.HistoryWindows is zero: enough recent windows that a late
// reader polling a live stream can catch up, small enough that the
// retained estimates stay negligible next to the sufficient statistics.
const DefaultHistoryWindows = 8

// Claim is one perturbed (object, value) report inside a streamed
// submission. Values must already be perturbed on the client device; the
// engine, like the batch server, only ever sees noisy data.
type Claim struct {
	Object int     `json:"object"`
	Value  float64 `json:"value"`
}

// Config parameterizes a streaming engine.
type Config struct {
	// NumObjects is the number of micro-tasks (objects) in the stream.
	NumObjects int
	// NumShards is the number of ingestion/estimation worker shards.
	// Objects are partitioned across shards by object index. Zero means
	// min(GOMAXPROCS, 8).
	NumShards int
	// QueueDepth is the per-shard ingestion channel buffer (backpressure
	// bound). Zero means 64 batches.
	QueueDepth int
	// Estimator selects the per-window estimation algorithm: EstimatorCRH
	// (the default when empty), EstimatorGTM, or EstimatorCATD. Each is
	// the incremental counterpart of the same-named batch method in
	// internal/truth. The choice is recorded in every exported snapshot;
	// restoring a snapshot written by a different estimator fails with
	// ErrEstimatorMismatch.
	Estimator string
	// Decay is the per-window retention factor in (0, 1] applied to every
	// sufficient statistic when a window closes; 1 (the default via zero
	// value 0 meaning 1) keeps all history, smaller values forget old
	// claims exponentially. Statistics whose decayed mass drops below an
	// internal floor are evicted to bound memory.
	Decay float64
	// Distance selects the claim-to-truth distance of the weight update
	// (default truth.NormalizedSquaredDistance, matching truth.CRH).
	Distance truth.Distance
	// Tolerance and MaxIterations control the per-window estimation loop
	// (defaults truth.DefaultTolerance, truth.DefaultMaxIterations).
	Tolerance     float64
	MaxIterations int
	// DisableCarryover resets user weights to the uniform batch
	// initialization at every window instead of warm-starting from the
	// previous window's estimates.
	DisableCarryover bool
	// HistoryWindows bounds the ring of recent WindowResults the engine
	// retains for ResultAt (late readers asking for a specific closed
	// window, e.g. GET /v1/stream/truths?window=N). Zero means
	// DefaultHistoryWindows; 1 keeps only the latest result, matching the
	// pre-history behavior.
	HistoryWindows int

	// Lambda1 enables privacy accounting when positive: it is the
	// data-quality rate the accountant assumes (as in core.NewAccountant).
	Lambda1 float64
	// Lambda2 is the perturbation rate published to users; required when
	// accounting is enabled.
	Lambda2 float64
	// Delta is the LDP delta each window's epsilon is accounted at;
	// required in (0, 1) when accounting is enabled. Like epsilon, delta
	// composes linearly across windows under basic composition: a user
	// charged for k windows holds a (k*eps, k*Delta)-LDP guarantee (see
	// PrivacyReport.CumulativeDelta).
	Delta float64
	// EpsilonBudget caps each user's cumulative epsilon across windows;
	// zero tracks spending without enforcing. Submissions that would
	// start a new window past the cap are rejected with
	// ErrBudgetExhausted.
	EpsilonBudget float64
	// PerUserReport opts the full per-user cumulative-epsilon map into
	// every PrivacyReport. Off by default: the map is the complete
	// historical client-ID roster — O(users) work per report and
	// participation metadata for any poller — so reports normally carry
	// aggregates only (MaxCumulative, MaxWindows, CumulativeDelta,
	// TrackedUsers, ExhaustedUsers). Requires accounting (Lambda1 > 0).
	PerUserReport bool
	// Ledger, when set, is the durable privacy ledger: every accepted
	// (user, window) charge is appended — and must be durable — before
	// Ingest acknowledges the submission, so cumulative budgets survive
	// a crash. An append failure rolls the in-memory charge back and the
	// submission fails with ErrLedger. Requires accounting (Lambda1 > 0).
	Ledger Ledger
	// MaxResidentUsers bounds the number of users held resident in
	// memory: when a window close leaves more, the least-recently-seen
	// users whose sufficient statistics have fully decayed away are
	// spilled to the UserStore and evicted, to be re-admitted
	// transparently on their next claim. Zero means unbounded. Requires
	// UserStore (the spilled budget state must be durable, or eviction
	// would reset privacy budgets).
	MaxResidentUsers int
	// ResidentBytes bounds the estimated in-memory footprint of the
	// resident user set (registry bookkeeping plus estimator slots; an
	// estimate, not an exact byte count) the same way MaxResidentUsers
	// bounds the population. Zero means unbounded. Requires UserStore.
	// Both caps may be set; eviction stops once both are satisfied.
	ResidentBytes int64
	// UserStore, when set, is the durable spill store for evicted users'
	// state (carry weight, cumulative budget, estimator state). Eviction
	// only completes after SpillUsers returns — the record must be
	// durable before the in-memory state is dropped — and an unknown
	// user's admission consults LoadUser before creating fresh state, so
	// an exhausted user stays exhausted across evict/readmit.
	// internal/streamstore implements it next to the charge journal.
	UserStore UserStore
	// ClaimWAL additionally journals each accepted submission's claims
	// inside its ledger record, making the sufficient statistics as
	// durable as the budget: the user's epsilon never pays for a release
	// that a crash erases before it reached an estimate. Recovery
	// (ReplayJournal) folds the claims back and re-runs any window closes
	// the journal implies, so a kill-and-recover engine matches an
	// uninterrupted one. Requires Ledger.
	ClaimWAL bool
	// Metrics, when non-nil, receives the engine's pptd_stream_* series:
	// claims ingested, submissions rejected by reason, window-close
	// count and duration, per-shard queue depth, tracked users, and the
	// cumulative-epsilon distribution. The registry must not already
	// carry another engine's collectors.
	Metrics *obs.Registry
}

func (c *Config) validate() error {
	switch {
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.NumShards < 0:
		return fmt.Errorf("%w: NumShards = %d", ErrBadConfig, c.NumShards)
	case c.QueueDepth < 0:
		return fmt.Errorf("%w: QueueDepth = %d", ErrBadConfig, c.QueueDepth)
	case c.Decay < 0 || c.Decay > 1 || math.IsNaN(c.Decay):
		return fmt.Errorf("%w: Decay = %v", ErrBadConfig, c.Decay)
	case c.Tolerance < 0 || math.IsNaN(c.Tolerance):
		return fmt.Errorf("%w: Tolerance = %v", ErrBadConfig, c.Tolerance)
	case c.MaxIterations < 0:
		return fmt.Errorf("%w: MaxIterations = %d", ErrBadConfig, c.MaxIterations)
	case c.EpsilonBudget < 0 || math.IsNaN(c.EpsilonBudget) || math.IsInf(c.EpsilonBudget, 0):
		return fmt.Errorf("%w: EpsilonBudget = %v", ErrBadConfig, c.EpsilonBudget)
	case c.HistoryWindows < 0:
		return fmt.Errorf("%w: HistoryWindows = %d", ErrBadConfig, c.HistoryWindows)
	case c.MaxResidentUsers < 0:
		return fmt.Errorf("%w: MaxResidentUsers = %d", ErrBadConfig, c.MaxResidentUsers)
	case c.ResidentBytes < 0:
		return fmt.Errorf("%w: ResidentBytes = %d", ErrBadConfig, c.ResidentBytes)
	}
	if (c.MaxResidentUsers > 0 || c.ResidentBytes > 0) && c.UserStore == nil {
		// Evicting without a durable spill store would hand evicted users
		// their privacy budget back on their next claim.
		return fmt.Errorf("%w: residency cap without a UserStore", ErrBadConfig)
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = DefaultHistoryWindows
	}
	if c.NumShards == 0 {
		c.NumShards = runtime.GOMAXPROCS(0)
		if c.NumShards > 8 {
			c.NumShards = 8
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Decay == 0 {
		c.Decay = 1
	}
	if c.Estimator == "" {
		c.Estimator = EstimatorCRH
	}
	if !KnownEstimator(c.Estimator) {
		return fmt.Errorf("%w: unknown estimator %q (have %v)", ErrBadConfig, c.Estimator, EstimatorNames)
	}
	switch c.Distance {
	case 0:
		c.Distance = truth.NormalizedSquaredDistance
	case truth.SquaredDistance, truth.AbsoluteDistance, truth.NormalizedSquaredDistance:
	default:
		return fmt.Errorf("%w: unknown distance %v", ErrBadConfig, c.Distance)
	}
	if c.Tolerance == 0 {
		c.Tolerance = truth.DefaultTolerance
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = truth.DefaultMaxIterations
	}
	if c.Lambda1 < 0 || math.IsNaN(c.Lambda1) || math.IsInf(c.Lambda1, 0) {
		return fmt.Errorf("%w: Lambda1 = %v", ErrBadConfig, c.Lambda1)
	}
	if c.Lambda2 < 0 || math.IsNaN(c.Lambda2) || math.IsInf(c.Lambda2, 0) {
		return fmt.Errorf("%w: Lambda2 = %v", ErrBadConfig, c.Lambda2)
	}
	if c.Lambda1 > 0 {
		if c.Lambda2 == 0 {
			return fmt.Errorf("%w: Lambda2 = 0 with accounting enabled", ErrBadConfig)
		}
		if c.Delta <= 0 || c.Delta >= 1 || math.IsNaN(c.Delta) {
			return fmt.Errorf("%w: Delta = %v with accounting enabled", ErrBadConfig, c.Delta)
		}
	} else {
		// Half-configured accounting is a misconfiguration, not a silent
		// no-op: a Delta or budget without Lambda1 would publish privacy
		// parameters while no accounting actually runs.
		if c.EpsilonBudget > 0 {
			return fmt.Errorf("%w: EpsilonBudget without Lambda1 accounting", ErrBadConfig)
		}
		if c.Delta != 0 {
			return fmt.Errorf("%w: Delta = %v without Lambda1 accounting", ErrBadConfig, c.Delta)
		}
		if c.PerUserReport {
			return fmt.Errorf("%w: PerUserReport without Lambda1 accounting", ErrBadConfig)
		}
		if c.Ledger != nil {
			return fmt.Errorf("%w: Ledger without Lambda1 accounting", ErrBadConfig)
		}
	}
	if c.ClaimWAL && c.Ledger == nil {
		return fmt.Errorf("%w: ClaimWAL without a Ledger", ErrBadConfig)
	}
	return nil
}

// WindowResult is the estimate published when a window closes.
type WindowResult struct {
	// Window is the 1-based index of the closed window.
	Window int
	// Estimator names the estimator that produced this result ("crh",
	// "gtm", "catd"); empty on results persisted before estimators were
	// pluggable (which were always CRH).
	Estimator string `json:",omitempty"`
	// Truths holds the estimated truth per object; objects with no live
	// statistics are NaN (see Covered).
	Truths []float64
	// Covered marks objects that had at least one live statistic.
	Covered []bool
	// Weights holds the estimated weight per user active in this
	// estimate, keyed by client ID.
	Weights map[string]float64
	// Iterations and Converged mirror truth.Result for the estimation
	// loop of this window.
	Iterations int
	Converged  bool
	// ActiveUsers is the number of users with live statistics.
	ActiveUsers int
	// WindowClaims is the number of claims ingested during this window;
	// TotalClaims counts the whole stream so far.
	WindowClaims int64
	TotalClaims  int64
	// Privacy summarizes cumulative budget spending; nil when accounting
	// is disabled.
	Privacy *PrivacyReport
}

// Engine is a sharded streaming truth-discovery engine. Ingest may be
// called from any number of goroutines; CloseWindow serializes against
// ingestion and publishes a fresh estimate.
type Engine struct {
	cfg       Config
	epsWindow float64 // epsilon charged per active window; 0 = accounting off
	est       Estimator

	users   *registry
	shards  []*shard
	wg      sync.WaitGroup
	metrics *engineMetrics // nil-safe; nil when Config.Metrics is nil
	scratch *sync.Pool     // *ingestScratch, sized to the shard count

	// admitMu serializes the slow path of user admission (spill-store
	// lookup plus estimator slot seeding) — Ingest holds the window lock
	// shared, so concurrent admissions of unknown users need their own
	// exclusion.
	admitMu sync.Mutex

	// mu is the window lock: ingestion holds it shared, CloseWindow and
	// Close hold it exclusively.
	mu     sync.RWMutex
	closed bool
	window int // completed windows

	windowClaims atomic.Int64
	totalClaims  atomic.Int64

	// histMu guards history, the bounded ring of recent published
	// results (ascending by Window, at most cfg.HistoryWindows entries).
	histMu  sync.Mutex
	history []*WindowResult
}

// New starts an engine with the given configuration. Callers must
// eventually Close it to stop the shard workers.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		est:   newEstimator(&cfg),
		users: newRegistry(),
	}
	if cfg.Lambda1 > 0 {
		acct, err := core.NewAccountant(cfg.Lambda1)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		mech, err := core.NewMechanism(cfg.Lambda2)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		eps, err := acct.Epsilon(mech, cfg.Delta)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		e.epsWindow = eps
	}
	e.scratch = newIngestScratchPool(cfg.NumShards)
	e.shards = make([]*shard, cfg.NumShards)
	for i := range e.shards {
		e.shards[i] = newShard(cfg.QueueDepth)
		e.wg.Add(1)
		go func(s *shard) {
			defer e.wg.Done()
			s.run()
		}(e.shards[i])
	}
	e.metrics = newEngineMetrics(cfg.Metrics, cfg.Estimator)
	registerEngineGauges(cfg.Metrics, e)
	return e, nil
}

// EpsilonPerWindow returns the epsilon charged to a user for each window
// they participate in (0 when accounting is disabled).
func (e *Engine) EpsilonPerWindow() float64 { return e.epsWindow }

// NumShards returns the shard count the engine runs with.
func (e *Engine) NumShards() int { return e.cfg.NumShards }

// Estimator returns the name of the per-window estimator the engine runs
// ("crh", "gtm", "catd").
func (e *Engine) Estimator() string { return e.cfg.Estimator }

// NumObjects returns the number of objects in the stream.
func (e *Engine) NumObjects() int { return e.cfg.NumObjects }

// Lambda2 returns the perturbation rate published to users (0 when none
// was configured).
func (e *Engine) Lambda2() float64 { return e.cfg.Lambda2 }

// Delta returns the LDP delta windows are accounted at (0 when
// accounting is disabled).
func (e *Engine) Delta() float64 { return e.cfg.Delta }

// EpsilonBudget returns the enforced cumulative epsilon cap (0 when
// tracking only).
func (e *Engine) EpsilonBudget() float64 { return e.cfg.EpsilonBudget }

// ResidentUsers returns the number of users currently held resident in
// memory (the pptd_stream_resident_users gauge). Without a residency cap
// it equals the number of distinct users ever seen.
func (e *Engine) ResidentUsers() int { return e.users.count() }

// MaxResidentUsers returns the configured residency cap (0 = unbounded).
func (e *Engine) MaxResidentUsers() int { return e.cfg.MaxResidentUsers }

// TrackedUsers returns the number of users the engine accounts for:
// resident plus evicted-to-store.
func (e *Engine) TrackedUsers() int { return e.users.tracked() }

// Ingest folds one user's batch of perturbed claims into the current
// window and returns the accepted claim count plus the 1-based index of
// the open window the batch joined. The whole batch is accepted or
// rejected: bad claims fail with ErrBadClaim, and, when a budget is
// enforced, a user who cannot afford the current window fails with
// ErrBudgetExhausted.
//
// With privacy accounting enabled the engine enforces the release
// contract the per-window epsilon is derived for — one perturbed release
// per (user, object, window): a batch carrying the same object twice
// fails with ErrBadClaim, and a second batch from the same user inside
// one open window fails with ErrDuplicateWindow. Without accounting the
// engine is a plain streaming aggregator and repeat submissions simply
// fold into the decayed statistics.
//
// Safe for concurrent use; a batch racing a CloseWindow lands in one
// window or the next, never split.
func (e *Engine) Ingest(user string, claims []Claim) (int, int, error) {
	n, window, err := e.ingest(user, nil, claims)
	if err != nil {
		e.metrics.reject(err)
	}
	return n, window, err
}

// IngestBytes is Ingest for callers holding the user ID as a byte slice
// — above all the binary wire decoder, whose pooled buffers must not
// force a string allocation per request. Semantics are identical to
// Ingest; the ID is only materialized as a string the first time a user
// is admitted, so the steady-state path performs no per-claim heap
// allocations. The engine does not retain user or claims past the call.
func (e *Engine) IngestBytes(user []byte, claims []Claim) (int, int, error) {
	n, window, err := e.ingest("", user, claims)
	if err != nil {
		e.metrics.reject(err)
	}
	return n, window, err
}

// ingest backs Ingest and IngestBytes without the rejection accounting
// (every error path funnels through one metrics classification in the
// wrappers). Exactly one of user and key identifies the submitter; the
// byte form avoids allocating for IDs the registry already interned.
func (e *Engine) ingest(user string, key []byte, claims []Claim) (int, int, error) {
	if user == "" && len(key) == 0 {
		return 0, 0, fmt.Errorf("%w: empty user id", ErrBadClaim)
	}
	if len(claims) == 0 {
		return 0, 0, fmt.Errorf("%w: empty batch", ErrBadClaim)
	}
	sc := e.scratch.Get().(*ingestScratch)
	defer e.scratch.Put(sc)
	var seen map[int]struct{}
	if e.epsWindow > 0 {
		seen = sc.seen
		clear(seen)
	}
	for _, c := range claims {
		if c.Object < 0 || c.Object >= e.cfg.NumObjects {
			return 0, 0, fmt.Errorf("%w: object %d of %d", ErrBadClaim, c.Object, e.cfg.NumObjects)
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return 0, 0, fmt.Errorf("%w: non-finite value for object %d", ErrBadClaim, c.Object)
		}
		if seen != nil {
			if _, dup := seen[c.Object]; dup {
				return 0, 0, fmt.Errorf("%w: duplicate object %d in batch", ErrBadClaim, c.Object)
			}
			seen[c.Object] = struct{}{}
		}
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, 0, ErrEngineClosed
	}
	var (
		st    *userState
		fresh bool
		err   error
	)
	if key != nil {
		st, fresh, err = e.admitBytes(key)
	} else {
		st, fresh, err = e.admit(user)
	}
	if err != nil {
		return 0, 0, err
	}
	prevWindow, cumEps, err := e.users.charge(st, e.window, e.epsWindow, e.cfg.EpsilonBudget)
	if err != nil {
		// A freshly admitted user whose submission is then rejected is
		// dropped again without a re-spill: the on-disk record (or, for a
		// brand-new user, their absence) still describes them exactly, so
		// a rejected client — exhausted or otherwise — cannot pin
		// residency by hammering.
		if fresh {
			e.users.dropIfIdle(st, e.window, e.epsWindow, e.cfg.EpsilonBudget)
		}
		return 0, 0, err
	}
	if e.epsWindow > 0 && e.cfg.Ledger != nil {
		// The ledger record must be durable before the submission is
		// acknowledged: a crash after the ack but before the append would
		// hand the user their epsilon back on recovery. A failed append
		// therefore rejects the submission and reverts the charge.
		// st.id is the registry's interned copy of the submitter's ID —
		// identical to user on the string path, and the only string form
		// that exists on the byte-key path.
		rec := ChargeRecord{User: st.id, Window: e.window, Epsilon: e.epsWindow}
		if e.cfg.ClaimWAL {
			// With the claim WAL the statistics ride the same durable
			// record as the charge: one fsync covers both, and recovery
			// can replay the submission instead of just its debit.
			rec.Claims = claims
		}
		if err := e.cfg.Ledger.AppendCharge(rec); err != nil {
			e.users.uncharge(st, e.epsWindow, prevWindow)
			if fresh {
				e.users.dropIfIdle(st, e.window, e.epsWindow, e.cfg.EpsilonBudget)
			}
			return 0, 0, fmt.Errorf("%w: user %q window %d: %v", ErrLedger, st.id, e.window+1, err)
		}
	}

	// Partition the batch by owning shard into pooled slices and hand
	// each piece off on the shard's channel (FIFO, so a later window
	// close drains it first). The shard worker recycles each slice after
	// folding it, and the claims are copied by value, so the caller's
	// slice is reusable the moment this returns.
	for _, c := range claims {
		idx := c.Object % len(e.shards)
		cb := sc.bufs[idx]
		if cb == nil {
			cb = claimBufPool.Get().(*claimBuf)
			sc.bufs[idx] = cb
		}
		cb.claims = append(cb.claims, c)
	}
	for i, cb := range sc.bufs {
		if cb == nil {
			continue
		}
		sc.bufs[i] = nil
		e.shards[i].in <- shardMsg{user: st.idx, claims: cb.claims, buf: cb}
	}
	e.windowClaims.Add(int64(len(claims)))
	e.totalClaims.Add(int64(len(claims)))
	e.metrics.ingested(len(claims))
	e.metrics.observeCumEps(cumEps)
	return len(claims), e.window + 1, nil
}

// CloseWindow drains all pending ingestion, re-estimates truths and
// weights from the live sufficient statistics, applies the per-window
// decay, and advances the window counter. The returned result is also
// retained for Snapshot.
func (e *Engine) CloseWindow() (*WindowResult, error) {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	release := e.pauseShards()
	defer close(release)

	res, err := e.estimateLocked()
	if err != nil {
		return nil, err
	}
	if e.cfg.Decay < 1 {
		e.eachShardParallel(func(s *shard) { s.decay(e.cfg.Decay) })
	}
	e.window++
	res.Window = e.window
	res.WindowClaims = e.windowClaims.Swap(0)
	res.TotalClaims = e.totalClaims.Load()
	if e.epsWindow > 0 {
		res.Privacy = e.users.report(e.epsWindow, e.cfg.Delta, e.cfg.EpsilonBudget, e.cfg.PerUserReport)
	}
	// Eviction runs after the report so the closing window describes the
	// same population an unbounded engine would, and before the result is
	// published so a persistence layer snapshotting right after this
	// close (crowd.StreamServer does) can never write a snapshot that
	// excludes a user whose spill is not durable yet.
	e.evictIdleLocked()

	e.pushResult(res)
	e.metrics.windowClosed(time.Since(start))
	return res, nil
}

// pushResult appends one published result to the bounded history ring,
// evicting the oldest entry past capacity. Results arrive in ascending
// window order (CloseWindow serializes on e.mu).
func (e *Engine) pushResult(res *WindowResult) {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	e.history = append(e.history, res)
	if n := len(e.history) - e.cfg.HistoryWindows; n > 0 {
		e.history = append(e.history[:0], e.history[n:]...)
	}
}

// Snapshot returns the most recently closed window's result, or nil if
// no window has closed yet. The result is shared; treat it as read-only.
func (e *Engine) Snapshot() *WindowResult {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	if len(e.history) == 0 {
		return nil
	}
	return e.history[len(e.history)-1]
}

// ResultAt returns the retained published result of the given 1-based
// closed window. It reports false when that window never closed or has
// been evicted from the bounded ring (Config.HistoryWindows). The result
// is shared; treat it as read-only.
func (e *Engine) ResultAt(window int) (*WindowResult, bool) {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	for i := len(e.history) - 1; i >= 0; i-- {
		switch {
		case e.history[i].Window == window:
			return e.history[i], true
		case e.history[i].Window < window:
			return nil, false
		}
	}
	return nil, false
}

// History returns the retained published results in ascending window
// order (at most Config.HistoryWindows of them). The slice is a copy;
// the results are shared and read-only.
func (e *Engine) History() []*WindowResult {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	out := make([]*WindowResult, len(e.history))
	copy(out, e.history)
	return out
}

// HistoryWindows returns the capacity of the retained result ring.
func (e *Engine) HistoryWindows() int { return e.cfg.HistoryWindows }

// RestoreHistory seeds the published-result ring with persisted
// WindowResults after a Restore, so Snapshot and ResultAt serve the
// pre-restart estimates immediately instead of nothing until the next
// window close. Results are not re-derived from engine state — they are
// whatever was last published, stored verbatim (internal/streamstore
// persists them at every window close). The input may be unsorted and
// overlap what the ring already holds; it is deduplicated by window,
// sorted, and trimmed to capacity.
func (e *Engine) RestoreHistory(results []*WindowResult) {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	byWindow := make(map[int]*WindowResult, len(e.history)+len(results))
	for _, r := range e.history {
		byWindow[r.Window] = r
	}
	for _, r := range results {
		if r != nil {
			byWindow[r.Window] = r
		}
	}
	merged := make([]*WindowResult, 0, len(byWindow))
	for _, r := range byWindow {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Window < merged[j].Window })
	if n := len(merged) - e.cfg.HistoryWindows; n > 0 {
		merged = merged[n:]
	}
	e.history = merged
}

// RestoreLastResult seeds the published-result ring with one persisted
// WindowResult after a Restore.
//
// Deprecated: use RestoreHistory, which seeds the whole retained ring;
// RestoreLastResult keeps working and is equivalent to a one-element
// RestoreHistory.
func (e *Engine) RestoreLastResult(res *WindowResult) {
	if res == nil {
		return
	}
	e.RestoreHistory([]*WindowResult{res})
}

// Window returns the number of closed windows so far.
func (e *Engine) Window() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.window
}

// TotalClaims returns the number of claims accepted over the stream's
// lifetime.
func (e *Engine) TotalClaims() int64 { return e.totalClaims.Load() }

// Close stops the shard workers. The engine rejects all calls afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	return nil
}

// pauseShards brings every shard to a quiescent point: all batches
// enqueued before the exclusive lock was taken are applied, then the
// workers block until the returned channel is closed. Callers must hold
// e.mu exclusively.
func (e *Engine) pauseShards() chan struct{} {
	release := make(chan struct{})
	acks := make([]chan struct{}, len(e.shards))
	for i, s := range e.shards {
		acks[i] = make(chan struct{})
		s.in <- shardMsg{ctl: &pauseReq{acquired: acks[i], release: release}}
	}
	for _, ack := range acks {
		<-ack
	}
	return release
}

// eachShardParallel runs fn once per shard on its own goroutine and
// waits. Callers must have the shards paused.
func (e *Engine) eachShardParallel(fn func(*shard)) {
	e.eachShardParallelIndexed(func(_ int, s *shard) { fn(s) })
}
