package stream

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

// Estimator names for Config.Estimator. Each has a batch counterpart in
// internal/truth with the same name, and the streaming implementation
// reproduces it within 1e-9 on a closed undecayed window (property-tested
// in estimator_test.go).
const (
	EstimatorCRH  = "crh"
	EstimatorGTM  = "gtm"
	EstimatorCATD = "catd"
)

// EstimatorNames lists every estimator the engine can run, in the order
// they were introduced. The slice is shared; treat it as read-only.
var EstimatorNames = []string{EstimatorCRH, EstimatorGTM, EstimatorCATD}

// KnownEstimator reports whether name selects a streaming estimator.
func KnownEstimator(name string) bool {
	for _, n := range EstimatorNames {
		if n == name {
			return true
		}
	}
	return false
}

// Estimator is the per-window estimation algorithm behind CloseWindow: it
// folds the frozen, decayed sufficient statistics of one quiesced window
// into per-object truths and per-user weights. Implementations are
// constructed per engine by Config.Estimator and are NOT safe for
// concurrent use on their own — the engine invokes them with the window
// lock held and the shards paused.
//
// The contract is sealed (the methods traffic in the engine's unexported
// window view), so implementations live in this package; the exported
// interface exists to name the concept in snapshots, the wire protocol,
// and documentation.
//
// State: an estimator may keep private cross-window state (e.g. GTM's
// per-user variances). exportState/restoreState round-trip it through
// EngineState.EstimatorState keyed by stable user IDs, so kill-and-recover
// preserves it even when the restoring engine re-indexes users or runs a
// different shard count. Estimators with no private state return nil.
type Estimator interface {
	// Name is the stable identifier recorded in snapshots and surfaced on
	// the wire ("crh", "gtm", "catd").
	Name() string
	// estimate runs the window's iteration loop over w, writing truths
	// (pre-seeded to NaN, covered objects only), weights and claimCount
	// (both indexed by registry user index), and returning the iteration
	// count and convergence flag, mirroring truth.Result.
	estimate(e *Engine, w *windowData) (iterations int, converged bool)
	// exportState serializes the estimator's private cross-window state,
	// keyed by user ID via ids (registry index → ID). Nil means none.
	exportState(ids []string) (json.RawMessage, error)
	// restoreState loads previously exported state into a fresh estimator;
	// byID maps the restored registry's user IDs to their indices. A nil
	// or empty payload resets to the initial state.
	restoreState(data json.RawMessage, byID map[string]int) error
	// exportUser serializes one user slot's private state for a spill
	// record (UserSpill.EstimatorState). Nil means none worth spilling —
	// re-admission with a nil payload must reproduce the slot exactly.
	exportUser(idx int) (json.RawMessage, error)
	// seedUser prepares the slot of a freshly admitted user: a nil (or
	// empty) payload resets it to the initial per-user state — slots are
	// recycled across evictions, so stale values must not leak into the
	// new occupant — and a payload from exportUser restores the spilled
	// state.
	seedUser(idx int, data json.RawMessage) error
}

// windowData is the frozen view of one window handed to an estimator:
// per-shard statistic views plus pre-allocated output and scratch slices.
type windowData struct {
	views    []*shardView
	numUsers int
	// truths is NaN-initialized, len NumObjects; estimate fills covered
	// objects. covered marks objects with at least one live statistic.
	truths  []float64
	covered []bool
	// weights enters holding the carry weights (the previous window's
	// estimates, or all-ones when carryover is disabled) and leaves
	// holding this window's estimates. claimCount leaves holding each
	// user's live statistic count (0 = silent this window).
	weights    []float64
	claimCount []int
}

// newEstimator constructs the estimator Config.Estimator selects. The
// config must already be validated (the name is known, defaults applied).
func newEstimator(cfg *Config) Estimator {
	switch cfg.Estimator {
	case EstimatorGTM:
		return &gtmEstimator{
			priorMeanWeight: 0.01,
			alpha:           2,
			beta:            1,
			initVariance:    1,
		}
	case EstimatorCATD:
		return &catdEstimator{confidence: 0.95}
	default:
		return &crhEstimator{}
	}
}

// foldWeightedTruths evaluates the weighted mean of the effective claims
// per covered object, with non-positive user weights clamped to the
// weight floor exactly as the batch methods do. Shards work their own
// (disjoint) objects in parallel.
func foldWeightedTruths(views []*shardView, weights, truths []float64) {
	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *shardView) {
			defer wg.Done()
			for i, obj := range v.objects {
				var num, den float64
				for _, c := range v.claims[i] {
					w := weights[c.user]
					if w < weightFloor {
						w = weightFloor
					}
					num += w * c.value
					den += w
				}
				truths[obj] = num / den
			}
		}(v)
	}
	wg.Wait()
}

// countClaims fills claimCount with each user's live statistic count
// across the views.
func countClaims(views []*shardView, claimCount []int) {
	for i := range claimCount {
		claimCount[i] = 0
	}
	for _, v := range views {
		for i := range v.objects {
			for _, c := range v.claims[i] {
				claimCount[c.user]++
			}
		}
	}
}

// sumSquaredResiduals accumulates, per user, the squared distance between
// each effective claim and the current truth of its object: the shards
// accumulate their objects' contributions in parallel, then the partials
// are reduced into ss in shard-index order so the result is deterministic.
// partial must hold one numUsers-sized scratch slice per view.
func sumSquaredResiduals(views []*shardView, truths []float64, partial [][]float64, ss []float64) {
	var wg sync.WaitGroup
	for si, v := range views {
		wg.Add(1)
		go func(v *shardView, acc []float64) {
			defer wg.Done()
			for u := range acc {
				acc[u] = 0
			}
			for i, obj := range v.objects {
				t := truths[obj]
				for _, c := range v.claims[i] {
					d := c.value - t
					acc[c.user] += d * d
				}
			}
		}(v, partial[si])
	}
	wg.Wait()
	for u := range ss {
		ss[u] = 0
		for si := range partial {
			ss[u] += partial[si][u]
		}
	}
}

// userScratch allocates one numUsers-sized float64 scratch slice per view.
func userScratch(views []*shardView, numUsers int) [][]float64 {
	partial := make([][]float64, len(views))
	for i := range partial {
		partial[i] = make([]float64, numUsers)
	}
	return partial
}

// normalizeActiveWeights scales the active users' weights to mean 1
// across the active population (claimCount > 0), leaving silent users'
// weights untouched. It is truth.NormalizeWeights restricted to active
// users: normalizing over every slot would make the scale depend on how
// many silent (or evicted-and-recycled) slots the registry happens to
// hold, and a residency-capped engine would drift from an unbounded one.
func normalizeActiveWeights(ws []float64, claimCount []int) {
	var sum float64
	n := 0
	for u, k := range claimCount {
		if k > 0 {
			sum += ws[u]
			n++
		}
	}
	if n == 0 || sum <= 0 {
		return
	}
	scale := float64(n) / sum
	for u, k := range claimCount {
		if k > 0 {
			ws[u] *= scale
		}
	}
}

// restoreNoState is the restoreState of stateless estimators: anything
// but an empty payload is a corrupt or foreign snapshot.
func restoreNoState(name string, data json.RawMessage) error {
	if len(data) == 0 || string(data) == "null" {
		return nil
	}
	return fmt.Errorf("%w: estimator %q carries no state but snapshot has %d bytes",
		ErrBadState, name, len(data))
}

// maxAbsDiffCovered is the convergence check restricted to covered
// objects (uncovered truths stay NaN and never converge by comparison).
func maxAbsDiffCovered(a, b []float64, covered []bool) float64 {
	var maxd float64
	for i := range a {
		if !covered[i] {
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}
