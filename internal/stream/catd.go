package stream

import (
	"encoding/json"

	"pptd/internal/truth"
)

// catdEstimator is the confidence-aware method of Li et al. (VLDB'15)
// (truth.CATD) run incrementally: each user's weight is the upper
// chi-squared confidence bound on their error precision,
// Chi2Quantile(confidence, k_s) / ss_s, normalized to mean 1 across the
// registry. Like its batch counterpart it restarts from uniform weights
// every window — the claim counts and residuals it weighs by are already
// carried by the decayed sufficient statistics — so it keeps no private
// cross-window state.
type catdEstimator struct {
	confidence float64
}

func (*catdEstimator) Name() string { return EstimatorCATD }

func (c *catdEstimator) estimate(e *Engine, w *windowData) (int, bool) {
	countClaims(w.views, w.claimCount)
	quantile := make([]float64, w.numUsers)
	for u, k := range w.claimCount {
		w.weights[u] = 1
		if k > 0 {
			quantile[u] = truth.Chi2Quantile(c.confidence, float64(k))
		}
	}

	partial := userScratch(w.views, w.numUsers)
	ss := make([]float64, w.numUsers)
	prev := make([]float64, e.cfg.NumObjects)

	foldWeightedTruths(w.views, w.weights, w.truths)
	iterations := 0
	for iter := 1; iter <= e.cfg.MaxIterations; iter++ {
		iterations = iter
		sumSquaredResiduals(w.views, w.truths, partial, ss)
		for u, k := range w.claimCount {
			if k == 0 {
				w.weights[u] = 0
				continue
			}
			s := ss[u]
			if s < distFloor {
				s = distFloor
			}
			w.weights[u] = quantile[u] / s
		}
		// Weights are scale-free ratios; normalize to mean 1 over the
		// active users so the floor in foldWeightedTruths stays negligible
		// and reports are comparable. Active-only: silent and evicted
		// slots carry 0 and must not skew the scale, or a residency-capped
		// engine would drift from an unbounded one.
		normalizeActiveWeights(w.weights, w.claimCount)
		copy(prev, w.truths)
		foldWeightedTruths(w.views, w.weights, w.truths)
		if maxAbsDiffCovered(prev, w.truths, w.covered) < e.cfg.Tolerance {
			return iterations, true
		}
	}
	return iterations, false
}

func (*catdEstimator) exportState([]string) (json.RawMessage, error) { return nil, nil }

func (*catdEstimator) restoreState(data json.RawMessage, _ map[string]int) error {
	return restoreNoState(EstimatorCATD, data)
}

// CATD restarts from uniform weights every window, so there is no
// per-user state to spill.
func (*catdEstimator) exportUser(int) (json.RawMessage, error) { return nil, nil }

func (*catdEstimator) seedUser(_ int, data json.RawMessage) error {
	return restoreNoState(EstimatorCATD, data)
}
