package stream

import (
	"encoding/json"
	"fmt"
)

// admit resolves a user ID to resident state, creating it when the user
// is unknown. With a UserStore configured the slow path first consults
// the spill store, so a previously evicted user is re-admitted with
// their spilled carry weight, cumulative budget, and estimator state —
// an exhausted user comes back exhausted. The returned fresh flag
// reports a slow-path admission (the caller may drop it again via
// dropIfIdle if the submission is then rejected).
//
// Callers hold e.mu (shared or exclusive); the slow path additionally
// serializes on admitMu so concurrent admissions cannot race on the
// estimator's per-user slots.
func (e *Engine) admit(id string) (*userState, bool, error) {
	if st, ok := e.users.get(id, e.window); ok {
		return st, false, nil
	}
	if e.cfg.UserStore == nil {
		return e.users.getOrCreate(id, e.window), false, nil
	}
	e.admitMu.Lock()
	defer e.admitMu.Unlock()
	if st, ok := e.users.get(id, e.window); ok {
		return st, false, nil // raced with another admission; theirs won
	}
	sp, found, err := e.cfg.UserStore.LoadUser(id)
	if err != nil {
		return nil, false, fmt.Errorf("%w: load user %q: %v", ErrUserStore, id, err)
	}
	if found {
		if err := validateSpill(sp); err != nil {
			return nil, false, err
		}
		// Spilled estimator state is only meaningful to the estimator
		// that wrote it, exactly like snapshots (records written before
		// the field existed were CRH).
		written := sp.Estimator
		if written == "" {
			written = EstimatorCRH
		}
		if written != e.cfg.Estimator {
			return nil, false, fmt.Errorf("%w: spilled state of user %q written by %q, engine configured for %q",
				ErrEstimatorMismatch, id, written, e.cfg.Estimator)
		}
	}
	st := e.users.getOrCreate(id, e.window)
	var raw json.RawMessage
	if found {
		e.users.readmitSpill(st, sp, e.epsWindow, e.cfg.EpsilonBudget)
		raw = sp.EstimatorState
	}
	// The slot may be recycled from an evicted user; seeding resets it to
	// the initial per-user state or restores the spilled one.
	if err := e.est.seedUser(st.idx, raw); err != nil {
		e.users.dropIfIdle(st, e.window, e.epsWindow, e.cfg.EpsilonBudget)
		return nil, false, err
	}
	if found {
		e.metrics.readmitted(1)
	}
	return st, true, nil
}

// admitBytes is admit for a byte-slice ID (the binary wire's pooled
// decode path): the resident fast path looks the user up without
// allocating, and only an unknown user — whose ID the registry must
// intern anyway — pays the string conversion on the slow path.
func (e *Engine) admitBytes(id []byte) (*userState, bool, error) {
	if st, ok := e.users.getBytes(id, e.window); ok {
		return st, false, nil
	}
	return e.admit(string(id))
}

// evictIdleLocked enforces the residency caps at a window boundary: if
// the resident set exceeds MaxResidentUsers or ResidentBytes, the
// least-recently-seen users whose sufficient statistics have fully
// decayed away are spilled to the UserStore and evicted. Users that
// still hold live statistics are pinned resident — their decayed
// sums/masses keep contributing to estimates, so evicting them would
// change results; a fully decayed user contributes nothing, which is
// what makes an evict/readmit run match an unbounded one exactly.
//
// The spill must be durable before the in-memory state is dropped: a
// snapshot taken after this close may exclude the user and allow the
// journal holding their charges to be compacted away, leaving the spill
// record as the only copy of their budget. A spill failure therefore
// skips the eviction (the users stay resident, the next close retries)
// and never fails the close.
//
// Callers must hold e.mu exclusively with the shards paused.
func (e *Engine) evictIdleLocked() {
	if e.cfg.UserStore == nil || (e.cfg.MaxResidentUsers == 0 && e.cfg.ResidentBytes == 0) {
		return
	}
	liveCount := e.users.count()
	liveBytes := e.users.bytes()
	over := func() bool {
		return (e.cfg.MaxResidentUsers > 0 && liveCount > e.cfg.MaxResidentUsers) ||
			(e.cfg.ResidentBytes > 0 && liveBytes > e.cfg.ResidentBytes)
	}
	if !over() {
		return
	}
	pinned := make(map[int]struct{})
	for _, s := range e.shards {
		for _, users := range s.stats {
			for u := range users {
				pinned[u] = struct{}{}
			}
		}
	}
	var victims []*userState
	for _, st := range e.users.evictable(pinned) {
		if !over() {
			break
		}
		victims = append(victims, st)
		liveCount--
		liveBytes -= residentFootprint(st.id)
	}
	if len(victims) == 0 {
		return
	}
	spills := make([]UserSpill, len(victims))
	for i, st := range victims {
		raw, err := e.est.exportUser(st.idx)
		if err != nil {
			e.metrics.spillFailed()
			return
		}
		spills[i] = UserSpill{
			ID:                st.id,
			Carry:             st.carry,
			CumulativeEpsilon: st.cumEps,
			LastWindow:        st.lastWindow,
			Windows:           st.windows,
			Estimator:         e.cfg.Estimator,
			EstimatorState:    raw,
		}
	}
	if err := e.cfg.UserStore.SpillUsers(spills); err != nil {
		e.metrics.spillFailed()
		return
	}
	e.users.evict(victims, e.epsWindow, e.cfg.EpsilonBudget)
	e.metrics.evicted(len(victims))
}
