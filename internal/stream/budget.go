package stream

import (
	"fmt"
	"sync"
)

// userState is the engine's per-user bookkeeping: the dense index claims
// are stored under, the carried weight warm-starting the next window,
// and the cumulative privacy spending.
type userState struct {
	idx        int
	id         string
	carry      float64
	cumEps     float64
	lastWindow int // last window index this user was charged for
	windows    int // number of windows participated in
	lastSeen   int // open-window index of the user's last activity (LRU order)
	fromSpill  bool
}

// residentOverheadBytes approximates the fixed in-memory footprint of one
// resident user beyond their ID bytes: the userState struct, its registry
// map entry and slot pointer, and the estimator's per-user slot. It only
// has to be the same rough order as reality for Config.ResidentBytes to
// bound memory usefully.
const residentOverheadBytes = 192

func residentFootprint(id string) int64 {
	return residentOverheadBytes + 2*int64(len(id))
}

// registry maps client IDs to user state. It has its own lock so that
// concurrent Ingest calls (which hold the window lock shared) can still
// register users and charge budgets safely.
//
// Residency is bounded, not the accounting: a user's cumulative epsilon
// must outlive their sufficient statistics, otherwise a returning (or
// hostile, ID-minting) client could reset their privacy budget by going
// idle. Without Config.UserStore entries are therefore never evicted and
// memory grows with the number of distinct client IDs ever seen. With a
// UserStore (and a residency cap) the engine spills idle users' state to
// the durable store at window close and re-admits them on their next
// claim, so residency stays bounded while the spilled record — and the
// ledger underneath it — keeps the budget authoritative. Evicted slots
// are reused through a free list; a slot index is only recycled once no
// sufficient statistic references it (eviction requires fully decayed
// statistics), so the shards never need rewriting.
type registry struct {
	mu     sync.Mutex
	byID   map[string]*userState
	states []*userState // slot-indexed; nil entries are free-list holes
	free   []int        // recycled slot indices

	live      int   // resident users (non-nil slots)
	liveBytes int64 // estimated resident footprint (residentFootprint sum)

	// Evicted-population aggregates, so PrivacyReport keeps describing
	// every user this engine has accounted for (not just the resident
	// ones). evicted counts currently spilled users; the high-water marks
	// stay valid because an evicted user's spending is frozen until they
	// are readmitted back into the resident scan.
	evicted          int
	evictedExhausted int
	evictedMaxCum    float64
	evictedMaxWin    int
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*userState)}
}

// get returns the resident state for id, stamping its LRU clock with the
// open window, or reports false when the user is not resident.
func (r *registry) get(id string, window int) (*userState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byID[id]
	if ok && window > st.lastSeen {
		st.lastSeen = window
	}
	return st, ok
}

// getBytes is get for a byte-slice key: the map lookup converts without
// allocating (the compiler's m[string(b)] special case), so the ingest
// hot path never materializes a string for a user the registry already
// interned.
func (r *registry) getBytes(id []byte, window int) (*userState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byID[string(id)]
	if ok && window > st.lastSeen {
		st.lastSeen = window
	}
	return st, ok
}

// getOrCreate returns the resident state for id, admitting a fresh one
// (free-list slot first, then a new slot) when the user is not resident.
// window stamps the LRU clock.
func (r *registry) getOrCreate(id string, window int) *userState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.byID[id]; ok {
		if window > st.lastSeen {
			st.lastSeen = window
		}
		return st
	}
	st := &userState{
		id:         id,
		carry:      1, // the uniform batch initialization
		lastWindow: -1,
		lastSeen:   window,
	}
	if n := len(r.free); n > 0 {
		st.idx = r.free[n-1]
		r.free = r.free[:n-1]
		r.states[st.idx] = st
	} else {
		st.idx = len(r.states)
		r.states = append(r.states, st)
	}
	r.byID[id] = st
	r.live++
	r.liveBytes += residentFootprint(id)
	return st
}

// readmitSpill loads a spilled user's persistent bookkeeping into their
// freshly admitted state and moves them from the evicted population back
// into the resident one.
func (r *registry) readmitSpill(st *userState, sp *UserSpill, eps, budget float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st.carry = sp.Carry
	st.cumEps = sp.CumulativeEpsilon
	st.lastWindow = sp.LastWindow
	st.windows = sp.Windows
	st.fromSpill = true
	if r.evicted > 0 {
		r.evicted--
	}
	if r.evictedExhausted > 0 && exhausted(st.cumEps, eps, budget) {
		r.evictedExhausted--
	}
}

// charge debits eps for participating in the given window. The
// accounting unit is the release unit: each submission is an
// independently-perturbed release, so the per-window epsilon pays for
// exactly one of them — a second submission into the same open window is
// rejected with ErrDuplicateWindow instead of being folded into the
// statistics for free. With a positive budget the debit is also refused
// (and the submission rejected) when it would exhaust the user's cap.
// On success it returns the user's previous lastWindow — so a failed
// durable-ledger append can roll the debit back with uncharge — and
// the new cumulative epsilon, for the engine's spending-distribution
// histogram.
func (r *registry) charge(st *userState, window int, eps, budget float64) (int, float64, error) {
	if eps == 0 {
		return 0, 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.lastWindow == window {
		return 0, 0, fmt.Errorf("%w: user %q already submitted in window %d",
			ErrDuplicateWindow, st.id, window+1)
	}
	if exhausted(st.cumEps, eps, budget) {
		return 0, 0, fmt.Errorf("%w: user %q spent %.6g of %.6g, next window costs %.6g",
			ErrBudgetExhausted, st.id, st.cumEps, budget, eps)
	}
	prev := st.lastWindow
	st.cumEps += eps
	st.lastWindow = window
	st.windows++
	return prev, st.cumEps, nil
}

// replayCharge folds one already-durable journal record into the user's
// budget during recovery replay. Unlike charge it never rejects: the
// epsilon was spent and acknowledged before the crash, so the budget cap
// does not apply retroactively and the duplicate-window guard doubles as
// the idempotency check — a record whose window the user was already
// charged for (by the snapshot or an earlier record) reports false and
// must be skipped entirely by the caller.
func (r *registry) replayCharge(st *userState, window int, eps float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if window <= st.lastWindow {
		return false
	}
	st.cumEps += eps
	st.lastWindow = window
	st.windows++
	return true
}

// uncharge reverts a charge whose ledger record could not be made
// durable: without the record on disk the release must not be admitted,
// or a crash would hand the user the epsilon back.
func (r *registry) uncharge(st *userState, eps float64, prevLastWindow int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st.cumEps -= eps
	if st.cumEps < 0 {
		st.cumEps = 0
	}
	st.lastWindow = prevLastWindow
	st.windows--
}

// dropIfIdle removes a freshly admitted user whose submission was then
// rejected, provided nothing charged them into the open window in the
// meantime (a racing successful ingest must keep its state). The caller
// guarantees the on-disk record (spill or nothing at all) still matches
// the state being dropped, so no re-spill is needed — which is what
// stops an exhausted client from pinning residency by hammering. It
// reports whether the user returned to the evicted population.
func (r *registry) dropIfIdle(st *userState, window int, eps, budget float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.lastWindow == window {
		return false // a concurrent ingest charged them; they stay
	}
	if r.states[st.idx] != st || r.byID[st.id] != st {
		return false // already dropped or superseded
	}
	r.removeLocked(st)
	if st.fromSpill {
		r.evicted++
		if exhausted(st.cumEps, eps, budget) {
			r.evictedExhausted++
		}
		if st.cumEps > r.evictedMaxCum {
			r.evictedMaxCum = st.cumEps
		}
		if st.windows > r.evictedMaxWin {
			r.evictedMaxWin = st.windows
		}
	}
	return st.fromSpill
}

// evict removes already-spilled users from the resident set, folding
// their spending into the evicted-population aggregates. Callers must
// have made the matching spill records durable first.
func (r *registry) evict(victims []*userState, eps, budget float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range victims {
		if r.states[st.idx] != st {
			continue
		}
		r.removeLocked(st)
		r.evicted++
		if exhausted(st.cumEps, eps, budget) {
			r.evictedExhausted++
		}
		if st.cumEps > r.evictedMaxCum {
			r.evictedMaxCum = st.cumEps
		}
		if st.windows > r.evictedMaxWin {
			r.evictedMaxWin = st.windows
		}
	}
}

// removeLocked frees one resident slot. Callers hold r.mu.
func (r *registry) removeLocked(st *userState) {
	delete(r.byID, st.id)
	r.states[st.idx] = nil
	r.free = append(r.free, st.idx)
	r.live--
	r.liveBytes -= residentFootprint(st.id)
}

// evictable returns the resident users eligible for eviction — the ones
// no live sufficient statistic references (pinned holds the slot indices
// that do) — in LRU order: least-recently-seen first, ties by slot index
// so the order is deterministic.
func (r *registry) evictable(pinned map[int]struct{}) []*userState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*userState, 0, r.live)
	for _, st := range r.states {
		if st == nil {
			continue
		}
		if _, ok := pinned[st.idx]; ok {
			continue
		}
		out = append(out, st)
	}
	// Insertion sort keeps this allocation-free; eviction scans run at
	// window close, not on the ingest hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.lastSeen < b.lastSeen || (a.lastSeen == b.lastSeen && a.idx < b.idx) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// exhausted reports whether spending eps for one more window would push
// the cumulative total past the budget. A small relative slack keeps an
// exact multiple of eps affordable despite accumulated rounding; the
// single definition keeps charge rejections and the ExhaustedUsers
// report in agreement.
func exhausted(cumEps, eps, budget float64) bool {
	return budget > 0 && cumEps+eps-budget > 1e-9*eps
}

// count returns the number of resident users.
func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// tracked returns the number of users the engine currently accounts for:
// resident plus evicted-to-store.
func (r *registry) tracked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live + r.evicted
}

// bytes returns the estimated resident footprint.
func (r *registry) bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveBytes
}

// slots returns the slot-space size (resident users plus free holes) —
// the length every per-user slice indexed by userState.idx must have.
func (r *registry) slots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.states)
}

// carryWeights returns the warm-start weight vector indexed by user
// slot: each user's previous estimate, or uniform 1 when carryover is
// disabled (or the user is new). Free slots get 1; nothing references
// them (eviction requires fully decayed statistics).
func (r *registry) carryWeights(disableCarryover bool) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws := make([]float64, len(r.states))
	for i, st := range r.states {
		if disableCarryover || st == nil {
			ws[i] = 1
			continue
		}
		ws[i] = st.carry
	}
	return ws
}

// updateCarry stores the window's final weights for users that were
// active (had live statistics); inactive users keep their carried value
// for when their statistics come back.
func (r *registry) updateCarry(weights []float64, claimCount []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, st := range r.states {
		if st != nil && claimCount[i] > 0 {
			st.carry = weights[i]
		}
	}
}

// ids returns the client ID per slot; free slots are "".
func (r *registry) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.states))
	for i, st := range r.states {
		if st != nil {
			out[i] = st.id
		}
	}
	return out
}

// export copies every resident user's persistent bookkeeping in slot
// order (free slots are skipped; spilled users live in the store, not
// the snapshot).
func (r *registry) export() []UserSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]UserSnapshot, 0, r.live)
	for _, st := range r.states {
		if st == nil {
			continue
		}
		out = append(out, UserSnapshot{
			ID:                st.id,
			Carry:             st.carry,
			CumulativeEpsilon: st.cumEps,
			LastWindow:        st.lastWindow,
			Windows:           st.windows,
		})
	}
	return out
}

// restore populates an empty registry from exported snapshots, keeping
// their order so restored stats can keep referencing users by index.
func (r *registry) restore(users []UserSnapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.states) != 0 {
		return fmt.Errorf("%w: registry already holds %d users", ErrBadState, len(r.states))
	}
	for _, u := range users {
		st := &userState{
			idx:        len(r.states),
			id:         u.ID,
			carry:      u.Carry,
			cumEps:     u.CumulativeEpsilon,
			lastWindow: u.LastWindow,
			windows:    u.Windows,
			lastSeen:   u.LastWindow,
		}
		r.byID[u.ID] = st
		r.states = append(r.states, st)
		r.live++
		r.liveBytes += residentFootprint(u.ID)
	}
	return nil
}

// PrivacyReport summarizes the stream's cumulative privacy spending at a
// window boundary. By default it carries aggregates only: the per-user
// map is the full historical client-ID roster — O(users) to build per
// report and participation metadata any poller could harvest — so it is
// opt-in via Config.PerUserReport.
type PrivacyReport struct {
	// EpsilonPerWindow is the epsilon charged for one window of
	// participation; Delta is the LDP delta it is accounted at.
	EpsilonPerWindow float64 `json:"epsilonPerWindow"`
	Delta            float64 `json:"delta"`
	// Budget is the enforced cumulative cap (0 = tracking only).
	Budget float64 `json:"budget"`
	// PerUser maps client IDs to cumulative epsilon spent so far. It is
	// nil (and absent on the wire) unless Config.PerUserReport opted in:
	// the roster of every client ID ever seen is participation metadata
	// that summary aggregates deliberately do not expose. On an engine
	// with a residency cap it covers resident users only — the spilled
	// remainder lives in the durable store.
	PerUser map[string]float64 `json:"perUser,omitempty"`
	// TrackedUsers counts the distinct client IDs the engine accounts
	// for: resident plus evicted-to-store. (After a recovery it counts
	// the users the recovered state references.)
	TrackedUsers int `json:"trackedUsers"`
	// MaxCumulative is the largest per-user cumulative epsilon.
	MaxCumulative float64 `json:"maxCumulative"`
	// MaxWindows is the largest number of windows any single user has
	// been charged for.
	MaxWindows int `json:"maxWindows"`
	// CumulativeDelta is the basic-composition delta of the most active
	// user: MaxWindows * Delta. Delta, like epsilon, composes linearly
	// across windows, so a user charged for k windows holds at most a
	// (k*EpsilonPerWindow, k*Delta)-LDP guarantee; any user's own delta
	// is (their cumulative epsilon / EpsilonPerWindow) * Delta.
	CumulativeDelta float64 `json:"cumulativeDelta"`
	// ExhaustedUsers counts users who can no longer afford a window
	// under the enforced budget (an evicted user's spending is frozen,
	// so their exhaustion status carries over from eviction time).
	ExhaustedUsers int `json:"exhaustedUsers"`
}

func (r *registry) report(eps, delta, budget float64, perUser bool) *PrivacyReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &PrivacyReport{
		EpsilonPerWindow: eps,
		Delta:            delta,
		Budget:           budget,
		TrackedUsers:     r.live + r.evicted,
		MaxCumulative:    r.evictedMaxCum,
		MaxWindows:       r.evictedMaxWin,
		ExhaustedUsers:   r.evictedExhausted,
	}
	if perUser {
		rep.PerUser = make(map[string]float64, r.live)
	}
	for _, st := range r.states {
		if st == nil {
			continue
		}
		if perUser {
			rep.PerUser[st.id] = st.cumEps
		}
		if st.cumEps > rep.MaxCumulative {
			rep.MaxCumulative = st.cumEps
		}
		if st.windows > rep.MaxWindows {
			rep.MaxWindows = st.windows
		}
		if exhausted(st.cumEps, eps, budget) {
			rep.ExhaustedUsers++
		}
	}
	rep.CumulativeDelta = float64(rep.MaxWindows) * delta
	return rep
}
