package stream

import (
	"fmt"
	"sync"
)

// userState is the engine's per-user bookkeeping: the dense index claims
// are stored under, the carried weight warm-starting the next window,
// and the cumulative privacy spending.
type userState struct {
	idx        int
	id         string
	carry      float64
	cumEps     float64
	lastWindow int // last window index this user was charged for
	windows    int // number of windows participated in
}

// registry maps client IDs to user state. It has its own lock so that
// concurrent Ingest calls (which hold the window lock shared) can still
// register users and charge budgets safely.
//
// Entries are never evicted: a user's cumulative epsilon must outlive
// their sufficient statistics, otherwise a returning (or hostile,
// ID-minting) client could reset their privacy budget by going idle.
// Memory therefore grows with the number of distinct client IDs ever
// seen; deployments exposed to untrusted ID churn should bound it
// upstream (auth/quota). The durable ledger (Config.Ledger plus
// internal/streamstore snapshots) makes budgets survive restarts, but
// evicting idle in-memory entries against it remains a roadmap item.
type registry struct {
	mu     sync.Mutex
	byID   map[string]*userState
	states []*userState
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*userState)}
}

func (r *registry) getOrCreate(id string) *userState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.byID[id]; ok {
		return st
	}
	st := &userState{
		idx:        len(r.states),
		id:         id,
		carry:      1, // the uniform batch initialization
		lastWindow: -1,
	}
	r.byID[id] = st
	r.states = append(r.states, st)
	return st
}

// charge debits eps for participating in the given window. The
// accounting unit is the release unit: each submission is an
// independently-perturbed release, so the per-window epsilon pays for
// exactly one of them — a second submission into the same open window is
// rejected with ErrDuplicateWindow instead of being folded into the
// statistics for free. With a positive budget the debit is also refused
// (and the submission rejected) when it would exhaust the user's cap.
// On success it returns the user's previous lastWindow — so a failed
// durable-ledger append can roll the debit back with uncharge — and
// the new cumulative epsilon, for the engine's spending-distribution
// histogram.
func (r *registry) charge(st *userState, window int, eps, budget float64) (int, float64, error) {
	if eps == 0 {
		return 0, 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.lastWindow == window {
		return 0, 0, fmt.Errorf("%w: user %q already submitted in window %d",
			ErrDuplicateWindow, st.id, window+1)
	}
	if exhausted(st.cumEps, eps, budget) {
		return 0, 0, fmt.Errorf("%w: user %q spent %.6g of %.6g, next window costs %.6g",
			ErrBudgetExhausted, st.id, st.cumEps, budget, eps)
	}
	prev := st.lastWindow
	st.cumEps += eps
	st.lastWindow = window
	st.windows++
	return prev, st.cumEps, nil
}

// replayCharge folds one already-durable journal record into the user's
// budget during recovery replay. Unlike charge it never rejects: the
// epsilon was spent and acknowledged before the crash, so the budget cap
// does not apply retroactively and the duplicate-window guard doubles as
// the idempotency check — a record whose window the user was already
// charged for (by the snapshot or an earlier record) reports false and
// must be skipped entirely by the caller.
func (r *registry) replayCharge(st *userState, window int, eps float64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if window <= st.lastWindow {
		return false
	}
	st.cumEps += eps
	st.lastWindow = window
	st.windows++
	return true
}

// uncharge reverts a charge whose ledger record could not be made
// durable: without the record on disk the release must not be admitted,
// or a crash would hand the user the epsilon back.
func (r *registry) uncharge(st *userState, eps float64, prevLastWindow int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st.cumEps -= eps
	if st.cumEps < 0 {
		st.cumEps = 0
	}
	st.lastWindow = prevLastWindow
	st.windows--
}

// exhausted reports whether spending eps for one more window would push
// the cumulative total past the budget. A small relative slack keeps an
// exact multiple of eps affordable despite accumulated rounding; the
// single definition keeps charge rejections and the ExhaustedUsers
// report in agreement.
func exhausted(cumEps, eps, budget float64) bool {
	return budget > 0 && cumEps+eps-budget > 1e-9*eps
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.states)
}

// carryWeights returns the warm-start weight vector indexed by user:
// each user's previous estimate, or uniform 1 when carryover is
// disabled (or the user is new).
func (r *registry) carryWeights(disableCarryover bool) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws := make([]float64, len(r.states))
	for i, st := range r.states {
		if disableCarryover {
			ws[i] = 1
			continue
		}
		ws[i] = st.carry
	}
	return ws
}

// updateCarry stores the window's final weights for users that were
// active (had live statistics); inactive users keep their carried value
// for when their statistics come back.
func (r *registry) updateCarry(weights []float64, claimCount []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, st := range r.states {
		if claimCount[i] > 0 {
			st.carry = weights[i]
		}
	}
}

func (r *registry) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.states))
	for i, st := range r.states {
		out[i] = st.id
	}
	return out
}

// export copies every user's persistent bookkeeping in registration
// order (the dense index order stats are stored under).
func (r *registry) export() []UserSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]UserSnapshot, len(r.states))
	for i, st := range r.states {
		out[i] = UserSnapshot{
			ID:                st.id,
			Carry:             st.carry,
			CumulativeEpsilon: st.cumEps,
			LastWindow:        st.lastWindow,
			Windows:           st.windows,
		}
	}
	return out
}

// restore populates an empty registry from exported snapshots, keeping
// their order so restored stats can keep referencing users by index.
func (r *registry) restore(users []UserSnapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.states) != 0 {
		return fmt.Errorf("%w: registry already holds %d users", ErrBadState, len(r.states))
	}
	for _, u := range users {
		st := &userState{
			idx:        len(r.states),
			id:         u.ID,
			carry:      u.Carry,
			cumEps:     u.CumulativeEpsilon,
			lastWindow: u.LastWindow,
			windows:    u.Windows,
		}
		r.byID[u.ID] = st
		r.states = append(r.states, st)
	}
	return nil
}

// PrivacyReport summarizes the stream's cumulative privacy spending at a
// window boundary. By default it carries aggregates only: the per-user
// map is the full historical client-ID roster — O(users) to build per
// report and participation metadata any poller could harvest — so it is
// opt-in via Config.PerUserReport.
type PrivacyReport struct {
	// EpsilonPerWindow is the epsilon charged for one window of
	// participation; Delta is the LDP delta it is accounted at.
	EpsilonPerWindow float64 `json:"epsilonPerWindow"`
	Delta            float64 `json:"delta"`
	// Budget is the enforced cumulative cap (0 = tracking only).
	Budget float64 `json:"budget"`
	// PerUser maps client IDs to cumulative epsilon spent so far. It is
	// nil (and absent on the wire) unless Config.PerUserReport opted in:
	// the roster of every client ID ever seen is participation metadata
	// that summary aggregates deliberately do not expose.
	PerUser map[string]float64 `json:"perUser,omitempty"`
	// TrackedUsers counts the distinct client IDs ever charged.
	TrackedUsers int `json:"trackedUsers"`
	// MaxCumulative is the largest per-user cumulative epsilon.
	MaxCumulative float64 `json:"maxCumulative"`
	// MaxWindows is the largest number of windows any single user has
	// been charged for.
	MaxWindows int `json:"maxWindows"`
	// CumulativeDelta is the basic-composition delta of the most active
	// user: MaxWindows * Delta. Delta, like epsilon, composes linearly
	// across windows, so a user charged for k windows holds at most a
	// (k*EpsilonPerWindow, k*Delta)-LDP guarantee; any user's own delta
	// is (their cumulative epsilon / EpsilonPerWindow) * Delta.
	CumulativeDelta float64 `json:"cumulativeDelta"`
	// ExhaustedUsers counts users who can no longer afford a window
	// under the enforced budget.
	ExhaustedUsers int `json:"exhaustedUsers"`
}

func (r *registry) report(eps, delta, budget float64, perUser bool) *PrivacyReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &PrivacyReport{
		EpsilonPerWindow: eps,
		Delta:            delta,
		Budget:           budget,
		TrackedUsers:     len(r.states),
	}
	if perUser {
		rep.PerUser = make(map[string]float64, len(r.states))
	}
	for _, st := range r.states {
		if perUser {
			rep.PerUser[st.id] = st.cumEps
		}
		if st.cumEps > rep.MaxCumulative {
			rep.MaxCumulative = st.cumEps
		}
		if st.windows > rep.MaxWindows {
			rep.MaxWindows = st.windows
		}
		if exhausted(st.cumEps, eps, budget) {
			rep.ExhaustedUsers++
		}
	}
	rep.CumulativeDelta = float64(rep.MaxWindows) * delta
	return rep
}
