package stream

import (
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// estimatorsUnderTest returns the estimators the property tests cover:
// all of them, unless PPTD_STREAM_ESTIMATOR narrows the run to one (the
// CI race/crash jobs loop the suite once per estimator this way).
func estimatorsUnderTest(t *testing.T) []string {
	t.Helper()
	env := os.Getenv("PPTD_STREAM_ESTIMATOR")
	if env == "" {
		return EstimatorNames
	}
	if !KnownEstimator(env) {
		t.Fatalf("PPTD_STREAM_ESTIMATOR = %q: want one of %v", env, EstimatorNames)
	}
	return []string{env}
}

// batchMethod returns the batch counterpart each streaming estimator must
// reproduce.
func batchMethod(t *testing.T, name string) truth.Method {
	t.Helper()
	var (
		m   truth.Method
		err error
	)
	switch name {
	case EstimatorCRH:
		m, err = truth.NewCRH()
	case EstimatorGTM:
		m, err = truth.NewGTM()
	case EstimatorCATD:
		m, err = truth.NewCATD()
	default:
		t.Fatalf("no batch counterpart for %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEstimatorMatchesBatch is the closed-window equivalence property for
// every estimator: one closed window with decay disabled reproduces the
// batch method's truths, weights, iteration count, and convergence flag,
// across seeds and shard counts.
func TestEstimatorMatchesBatch(t *testing.T) {
	for _, est := range estimatorsUnderTest(t) {
		for seed := uint64(1); seed <= 6; seed++ {
			for _, shards := range []int{1, 3, 7} {
				est, seed, shards := est, seed, shards
				t.Run(fmt.Sprintf("%s/seed-%d/shards-%d", est, seed, shards), func(t *testing.T) {
					rng := randx.New(seed)
					ds := randomDataset(t, rng, 30+int(seed), 13)
					batch, err := batchMethod(t, est).Run(ds)
					if err != nil {
						t.Fatal(err)
					}

					e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: shards, Estimator: est})
					if err != nil {
						t.Fatal(err)
					}
					defer func() {
						if err := e.Close(); err != nil {
							t.Error(err)
						}
					}()
					if e.Estimator() != est {
						t.Fatalf("Estimator() = %q, want %q", e.Estimator(), est)
					}
					ingestDataset(t, e, ds)
					res, err := e.CloseWindow()
					if err != nil {
						t.Fatal(err)
					}
					if res.Estimator != est {
						t.Errorf("result estimator = %q, want %q", res.Estimator, est)
					}
					if res.Iterations != batch.Iterations || res.Converged != batch.Converged {
						t.Errorf("iterations/converged: stream %d/%v, batch %d/%v",
							res.Iterations, res.Converged, batch.Iterations, batch.Converged)
					}
					requireEquivalent(t, ds, res, batch)
				})
			}
		}
	}
}

// TestEstimatorKillAndRecover is the kill-and-recover property per
// estimator: an engine exported mid-stream and restored into a fresh
// engine (possibly sharded differently) produces the same remaining
// window results as the uninterrupted engine, within 1e-9 — including
// any private estimator state (GTM's variances) riding the snapshot.
func TestEstimatorKillAndRecover(t *testing.T) {
	const (
		numObjects = 9
		numUsers   = 12
		numWindows = 4
		cutAfter   = 2
	)
	cases := []struct {
		shards, restoreShards int
		decay                 float64
	}{
		{3, 3, 0.85},
		{4, 2, 1},
	}
	for _, est := range estimatorsUnderTest(t) {
		for _, seed := range []uint64{1, 7} {
			for _, tc := range cases {
				est, seed, tc := est, seed, tc
				t.Run(fmt.Sprintf("%s/seed=%d/shards=%d-%d/decay=%v", est, seed, tc.shards, tc.restoreShards, tc.decay), func(t *testing.T) {
					cfg := Config{
						NumObjects: numObjects,
						NumShards:  tc.shards,
						Estimator:  est,
						Decay:      tc.decay,
						Lambda1:    1.5,
						Lambda2:    2,
						Delta:      0.3,
					}
					rng := randx.New(seed)
					windows := make([]map[string][]Claim, numWindows)
					for w := range windows {
						windows[w] = windowBatches(rng, numUsers, numObjects)
					}

					ref, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = ref.Close() }()
					var want *WindowResult
					for w := 0; w < numWindows; w++ {
						ingestWindow(t, ref, windows[w])
						if want, err = ref.CloseWindow(); err != nil {
							t.Fatalf("ref close %d: %v", w, err)
						}
					}

					cut, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for w := 0; w < cutAfter; w++ {
						ingestWindow(t, cut, windows[w])
						if _, err := cut.CloseWindow(); err != nil {
							t.Fatalf("cut close %d: %v", w, err)
						}
					}
					state, err := cut.ExportState()
					if err != nil {
						t.Fatal(err)
					}
					if state.Estimator != est {
						t.Fatalf("exported estimator = %q, want %q", state.Estimator, est)
					}
					if err := cut.Close(); err != nil {
						t.Fatal(err)
					}

					restoreCfg := cfg
					restoreCfg.NumShards = tc.restoreShards
					rec, err := New(restoreCfg)
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = rec.Close() }()
					if err := rec.Restore(state); err != nil {
						t.Fatal(err)
					}
					var got *WindowResult
					for w := cutAfter; w < numWindows; w++ {
						ingestWindow(t, rec, windows[w])
						if got, err = rec.CloseWindow(); err != nil {
							t.Fatalf("recovered close %d: %v", w, err)
						}
					}
					sameWindowResult(t, "recovered vs uninterrupted", want, got)
				})
			}
		}
	}
}

// TestRestoreEstimatorMismatch checks the snapshot compatibility rule: a
// state restores only into an engine running the estimator that wrote it,
// a legacy state (no estimator recorded) counts as CRH, and the refusal
// is the typed ErrEstimatorMismatch.
func TestRestoreEstimatorMismatch(t *testing.T) {
	exportFrom := func(t *testing.T, est string) *EngineState {
		t.Helper()
		e, err := New(Config{NumObjects: 3, NumShards: 2, Estimator: est})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = e.Close() }()
		ingestWindow(t, e, windowBatches(randx.New(5), 4, 3))
		if _, err := e.CloseWindow(); err != nil {
			t.Fatal(err)
		}
		state, err := e.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		return state
	}
	restoreInto := func(t *testing.T, est string, st *EngineState) error {
		t.Helper()
		e, err := New(Config{NumObjects: 3, NumShards: 1, Estimator: est})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = e.Close() }()
		return e.Restore(st)
	}

	for _, tc := range []struct {
		written, configured string
		legacy              bool // clear the recorded estimator, as pre-estimator states have it
		wantMismatch        bool
	}{
		{written: EstimatorGTM, configured: EstimatorCRH, wantMismatch: true},
		{written: EstimatorCRH, configured: EstimatorCATD, wantMismatch: true},
		{written: EstimatorCATD, configured: EstimatorGTM, wantMismatch: true},
		{written: EstimatorGTM, configured: EstimatorGTM},
		{written: EstimatorCRH, configured: EstimatorCRH, legacy: true},
		{written: EstimatorCRH, configured: EstimatorGTM, legacy: true, wantMismatch: true},
	} {
		name := fmt.Sprintf("%s-into-%s", tc.written, tc.configured)
		if tc.legacy {
			name = "legacy-" + name
		}
		t.Run(name, func(t *testing.T) {
			st := exportFrom(t, tc.written)
			if tc.legacy {
				st.Estimator = ""
				st.EstimatorState = nil
			}
			err := restoreInto(t, tc.configured, st)
			if tc.wantMismatch {
				if !errors.Is(err, ErrEstimatorMismatch) {
					t.Fatalf("Restore = %v, want ErrEstimatorMismatch", err)
				}
			} else if err != nil {
				t.Fatalf("Restore: %v", err)
			}
		})
	}

	// Corrupt estimator state also rejects, with ErrBadState.
	st := exportFrom(t, EstimatorGTM)
	st.EstimatorState = []byte(`{"variances":{"ghost-user":1}}`)
	if err := restoreInto(t, EstimatorGTM, st); !errors.Is(err, ErrBadState) {
		t.Fatalf("Restore with unknown state user = %v, want ErrBadState", err)
	}
	st.EstimatorState = []byte(`{"variances":`)
	if err := restoreInto(t, EstimatorGTM, st); !errors.Is(err, ErrBadState) {
		t.Fatalf("Restore with truncated state = %v, want ErrBadState", err)
	}
}

// TestEstimatorConfigValidation checks the estimator name is validated
// and defaulted at engine construction.
func TestEstimatorConfigValidation(t *testing.T) {
	if _, err := New(Config{NumObjects: 1, Estimator: "kalman"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("New with unknown estimator = %v, want ErrBadConfig", err)
	}
	e, err := New(Config{NumObjects: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if e.Estimator() != EstimatorCRH {
		t.Fatalf("default estimator = %q, want %q", e.Estimator(), EstimatorCRH)
	}
}

// TestEstimatorMultiWindowIncremental is TestMultiWindowIncrementalMatchesBatch
// generalized: with decay disabled and carryover off, the second window's
// estimate over accumulated statistics equals the batch method over the
// union of all claims, for every estimator.
func TestEstimatorMultiWindowIncremental(t *testing.T) {
	for _, est := range estimatorsUnderTest(t) {
		est := est
		t.Run(est, func(t *testing.T) {
			rng := randx.New(23)
			ds := randomDataset(t, rng, 40, 11)
			batch, err := batchMethod(t, est).Run(ds)
			if err != nil {
				t.Fatal(err)
			}

			e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: 3, Estimator: est, DisableCarryover: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = e.Close() }()
			for _, parity := range []int{0, 1} {
				for s := 0; s < ds.NumUsers(); s++ {
					obs, err := ds.UserObservations(s)
					if err != nil {
						t.Fatal(err)
					}
					var claims []Claim
					for _, o := range obs {
						if o.Object%2 == parity {
							claims = append(claims, Claim{Object: o.Object, Value: o.Value})
						}
					}
					if len(claims) == 0 {
						continue
					}
					if _, _, err := e.Ingest(userID(s), claims); err != nil {
						t.Fatal(err)
					}
				}
				if parity == 0 {
					if _, err := e.CloseWindow(); err != nil {
						t.Fatal(err)
					}
				}
			}
			res, err := e.CloseWindow()
			if err != nil {
				t.Fatal(err)
			}
			requireEquivalent(t, ds, res, batch)
		})
	}
}

// TestEstimatorWeightSemantics pins what the published weights mean per
// estimator on a tiny two-user window: CRH weights are non-negative log
// ratios, GTM weights are precisions (1/variance, bounded by the prior),
// CATD weights are normalized to mean 1 across the registry.
func TestEstimatorWeightSemantics(t *testing.T) {
	claims := map[string][]Claim{
		"user-00": {{Object: 0, Value: 1}, {Object: 1, Value: 2}},
		"user-01": {{Object: 0, Value: 1.5}, {Object: 1, Value: 1}},
	}
	for _, est := range estimatorsUnderTest(t) {
		est := est
		t.Run(est, func(t *testing.T) {
			e, err := New(Config{NumObjects: 2, NumShards: 2, Estimator: est})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = e.Close() }()
			ingestWindow(t, e, claims)
			res, err := e.CloseWindow()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Weights) != 2 {
				t.Fatalf("weights = %v, want both users", res.Weights)
			}
			var sum float64
			for id, w := range res.Weights {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					t.Errorf("weight[%s] = %v", id, w)
				}
				sum += w
			}
			if est == EstimatorCATD && math.Abs(sum-2) > 1e-9 {
				t.Errorf("catd weights sum to %v, want 2 (mean 1)", sum)
			}
		})
	}
}
