package stream

import "sync"

// Ingest hot-path pooling. Every call to ingest needs a per-shard
// partition of the batch plus (with accounting on) a duplicate-object
// set; allocating those per call is what used to dominate the ingest
// profile once request decoding stopped allocating. The scratch pool
// below makes the whole decode→shard→fold path allocation-free in
// steady state:
//
//   - ingestScratch holds the per-call state that never leaves the
//     call: the per-shard partition table and the dup-check set. It is
//     returned to the engine's pool before ingest returns.
//   - claimBuf holds one shard's slice of the partition. Its lifetime
//     extends past the ingest call — the slice rides the shard channel —
//     so the shard worker returns it to the package pool after folding
//     it into the sufficient statistics.
//
// Claims are partitioned by value into the pooled slices, so the
// caller's claim slice (e.g. a pooled wire-decode buffer) is free for
// reuse the moment ingest returns.

// claimBuf is one pooled per-shard claim slice, handed from ingest to a
// shard worker and recycled once applied.
type claimBuf struct {
	claims []Claim
}

var claimBufPool = sync.Pool{
	New: func() any { return &claimBuf{claims: make([]Claim, 0, 64)} },
}

// ingestScratch is the pooled per-call scratch of ingest. bufs is
// indexed by shard; entries are nil except between partitioning and
// hand-off. seen backs the duplicate-object check when privacy
// accounting is on and is cleared before each use.
type ingestScratch struct {
	bufs []*claimBuf
	seen map[int]struct{}
}

// newIngestScratchPool builds the engine's scratch pool for a given
// shard count.
func newIngestScratchPool(numShards int) *sync.Pool {
	return &sync.Pool{
		New: func() any {
			return &ingestScratch{
				bufs: make([]*claimBuf, numShards),
				seen: make(map[int]struct{}),
			}
		},
	}
}
