package stream

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// mergeTestState builds one worker's export with the given users (one
// stat per user on object 0).
func mergeTestState(est string, window int, numObjects int, users ...string) *EngineState {
	st := &EngineState{NumObjects: numObjects, Window: window, Estimator: est}
	for _, id := range users {
		st.Users = append(st.Users, UserSnapshot{ID: id, LastWindow: -1})
		st.Stats = append(st.Stats, StatSnapshot{Object: 0, User: id, Sum: 1, Mass: 1})
	}
	return st
}

func TestMergeStatesRejectsTornInputs(t *testing.T) {
	cases := []struct {
		name    string
		parts   []*EngineState
		wantErr error
	}{
		{
			name:    "no parts",
			parts:   nil,
			wantErr: ErrBadState,
		},
		{
			name:    "nil part",
			parts:   []*EngineState{mergeTestState(EstimatorCRH, 2, 3, "a"), nil},
			wantErr: ErrBadState,
		},
		{
			name: "estimator mismatch",
			parts: []*EngineState{
				mergeTestState(EstimatorCRH, 2, 3, "a"),
				mergeTestState(EstimatorGTM, 2, 3, "b"),
			},
			wantErr: ErrEstimatorMismatch,
		},
		{
			name: "window mismatch (torn close)",
			parts: []*EngineState{
				mergeTestState(EstimatorCRH, 2, 3, "a"),
				mergeTestState(EstimatorCRH, 3, 3, "b"),
			},
			wantErr: ErrBadState,
		},
		{
			name: "object-space mismatch",
			parts: []*EngineState{
				mergeTestState(EstimatorCRH, 2, 3, "a"),
				mergeTestState(EstimatorCRH, 2, 4, "b"),
			},
			wantErr: ErrBadState,
		},
		{
			name: "user on two workers",
			parts: []*EngineState{
				mergeTestState(EstimatorCRH, 2, 3, "a", "b"),
				mergeTestState(EstimatorCRH, 2, 3, "b"),
			},
			wantErr: ErrBadState,
		},
		{
			name: "corrupt gtm estimator state",
			parts: []*EngineState{
				func() *EngineState {
					st := mergeTestState(EstimatorGTM, 2, 3, "a")
					st.EstimatorState = []byte(`{"variances": "not-a-map"}`)
					return st
				}(),
			},
			wantErr: ErrBadState,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := MergeStates(tc.parts); !errors.Is(err, tc.wantErr) {
				t.Fatalf("MergeStates: err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestMergeStatesCanonicalOrderAndCounters(t *testing.T) {
	// An empty estimator string means CRH (the config default) and must
	// merge with an explicit CRH part.
	a := mergeTestState("", 1, 2, "u2")
	a.Stats = []StatSnapshot{{Object: 1, User: "u2", Sum: 4, Mass: 1}, {Object: 0, User: "u2", Sum: 3, Mass: 1}}
	a.WindowClaims, a.TotalClaims = 2, 7
	b := mergeTestState(EstimatorCRH, 1, 2, "u1")
	b.Stats = []StatSnapshot{{Object: 0, User: "u1", Sum: 1, Mass: 1}}
	b.WindowClaims, b.TotalClaims = 1, 5

	merged, err := MergeStates([]*EngineState{a, b})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.WindowClaims != 3 || merged.TotalClaims != 12 {
		t.Fatalf("claim counters = %d/%d, want 3/12", merged.WindowClaims, merged.TotalClaims)
	}
	if len(merged.Users) != 2 || len(merged.Stats) != 3 {
		t.Fatalf("merged %d users / %d stats, want 2/3", len(merged.Users), len(merged.Stats))
	}
	for i := 1; i < len(merged.Stats); i++ {
		prev, cur := merged.Stats[i-1], merged.Stats[i]
		if prev.Object > cur.Object || (prev.Object == cur.Object && prev.User >= cur.User) {
			t.Fatalf("stats not in canonical (object, user) order: %+v before %+v", prev, cur)
		}
	}
}

// TestReplayJournalParallelEquivalence: the shard-parallel replay path
// (replayWindowsParallel, the default) recovers bit-identical state to
// the sequential baseline over a multi-window journal with interleaved
// closes.
func TestReplayJournalParallelEquivalence(t *testing.T) {
	recs := replayBenchJournal(40, 6, 8)
	run := func(parallel bool) *EngineState {
		orig := replayWindowsParallel
		replayWindowsParallel = parallel
		defer func() { replayWindowsParallel = orig }()
		// Several shards even on a small box, so the partitioned path is
		// exercised for real.
		e, err := New(Config{NumObjects: 8, NumShards: 4, Lambda1: 0.5, Lambda2: 1.0, Delta: 1e-5, Decay: 0.9, ClaimWAL: true, Ledger: nopLedger{}})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		defer func() { _ = e.Close() }()
		if _, err := e.ReplayJournal(recs); err != nil {
			t.Fatalf("replay (parallel=%v): %v", parallel, err)
		}
		st, err := e.ExportState()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		return st
	}
	seq, par := run(false), run(true)
	if seq.Window != par.Window || len(seq.Stats) != len(par.Stats) || len(seq.Users) != len(par.Users) {
		t.Fatalf("shape mismatch: seq %d windows/%d stats/%d users, par %d/%d/%d",
			seq.Window, len(seq.Stats), len(seq.Users), par.Window, len(par.Stats), len(par.Users))
	}
	for i := range seq.Stats {
		s, p := seq.Stats[i], par.Stats[i]
		if s != p {
			t.Fatalf("stat %d differs: sequential %+v, parallel %+v", i, s, p)
		}
	}
	for i := range seq.Users {
		if seq.Users[i] != par.Users[i] {
			t.Fatalf("user %d differs: sequential %+v, parallel %+v", i, seq.Users[i], par.Users[i])
		}
	}
}

// replayBenchJournal synthesizes a journal of users×windows charge
// records with claims, in append order.
func replayBenchJournal(users, windows, numObjects int) []ChargeRecord {
	var recs []ChargeRecord
	for w := 0; w < windows; w++ {
		for u := 0; u < users; u++ {
			var claims []Claim
			for o := 0; o < numObjects; o++ {
				if (u+o)%3 == 0 {
					continue
				}
				claims = append(claims, Claim{Object: o, Value: math.Sin(float64(u*17 + o*5 + w*11))})
			}
			recs = append(recs, ChargeRecord{
				User:    fmt.Sprintf("user-%04d", u),
				Window:  w,
				Epsilon: 0.25,
				Claims:  claims,
			})
		}
	}
	return recs
}

// BenchmarkReplayJournal measures crash-recovery replay of a long
// journal, sequential baseline vs the shard-parallel default — the
// before/after of the parallel-replay change.
func BenchmarkReplayJournal(b *testing.B) {
	recs := replayBenchJournal(400, 10, 64)
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"sequential", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			orig := replayWindowsParallel
			replayWindowsParallel = mode.parallel
			defer func() { replayWindowsParallel = orig }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := New(Config{NumObjects: 64, NumShards: 4, Lambda1: 0.5, Lambda2: 1.0, Delta: 1e-5, Decay: 0.9, ClaimWAL: true, Ledger: nopLedger{}})
				if err != nil {
					b.Fatalf("engine: %v", err)
				}
				b.StartTimer()
				if _, err := e.ReplayJournal(recs); err != nil {
					b.Fatalf("replay: %v", err)
				}
				b.StopTimer()
				_ = e.Close()
				b.StartTimer()
			}
		})
	}
}
