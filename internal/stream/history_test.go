package stream

import (
	"errors"
	"testing"
)

// closeWindowWith ingests one claim for the given user/value and closes
// the window, returning the published result.
func closeWindowWith(t *testing.T, e *Engine, user string, value float64) *WindowResult {
	t.Helper()
	if _, _, err := e.Ingest(user, []Claim{{Object: 0, Value: value}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatalf("close window: %v", err)
	}
	return res
}

func TestHistoryRingBounds(t *testing.T) {
	e, err := New(Config{NumObjects: 1, HistoryWindows: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	if got := e.HistoryWindows(); got != 3 {
		t.Fatalf("HistoryWindows = %d, want 3", got)
	}
	if res, ok := e.ResultAt(1); ok || res != nil {
		t.Fatal("ResultAt on empty ring should miss")
	}
	for w := 1; w <= 5; w++ {
		res := closeWindowWith(t, e, "u", float64(w))
		if res.Window != w {
			t.Fatalf("close %d returned window %d", w, res.Window)
		}
	}

	// Only the last three windows are retained.
	for _, w := range []int{1, 2} {
		if _, ok := e.ResultAt(w); ok {
			t.Errorf("window %d should be evicted", w)
		}
	}
	for w := 3; w <= 5; w++ {
		res, ok := e.ResultAt(w)
		if !ok || res.Window != w {
			t.Errorf("window %d: ok=%v res=%+v", w, ok, res)
		}
	}
	if _, ok := e.ResultAt(6); ok {
		t.Error("future window should miss")
	}
	if snap := e.Snapshot(); snap == nil || snap.Window != 5 {
		t.Errorf("Snapshot = %+v, want window 5", snap)
	}
	hist := e.History()
	if len(hist) != 3 || hist[0].Window != 3 || hist[2].Window != 5 {
		t.Errorf("History windows = %v", windowsOf(hist))
	}
}

func TestHistoryDefaultCapacity(t *testing.T) {
	e, err := New(Config{NumObjects: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if got := e.HistoryWindows(); got != DefaultHistoryWindows {
		t.Fatalf("default HistoryWindows = %d, want %d", got, DefaultHistoryWindows)
	}
}

func TestHistoryConfigValidation(t *testing.T) {
	if _, err := New(Config{NumObjects: 1, HistoryWindows: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("HistoryWindows -1: err = %v, want ErrBadConfig", err)
	}
}

func TestRestoreHistoryMergesSortsAndTrims(t *testing.T) {
	e, err := New(Config{NumObjects: 1, HistoryWindows: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	// Unsorted, duplicated, and overflowing input: the ring must come
	// out sorted, deduplicated, and trimmed to its newest 3.
	mk := func(w int) *WindowResult { return &WindowResult{Window: w} }
	e.RestoreHistory([]*WindowResult{mk(4), nil, mk(2), mk(4), mk(1), mk(3)})

	hist := e.History()
	if got := windowsOf(hist); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("restored windows = %v, want [2 3 4]", got)
	}
	if snap := e.Snapshot(); snap.Window != 4 {
		t.Fatalf("Snapshot window = %d", snap.Window)
	}
	// RestoreLastResult layers on top without losing the rest.
	e.RestoreLastResult(mk(5))
	if got := windowsOf(e.History()); got[0] != 3 || got[2] != 5 {
		t.Fatalf("after RestoreLastResult: %v, want [3 4 5]", got)
	}
}

func windowsOf(hist []*WindowResult) []int {
	out := make([]int, len(hist))
	for i, r := range hist {
		out[i] = r.Window
	}
	return out
}
