package stream

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"pptd/internal/randx"
)

// nopLedger is a Ledger that accepts every append (used to exercise
// config validation).
type nopLedger struct{}

func (nopLedger) AppendCharge(ChargeRecord) error { return nil }

// memLedger records appends in memory and can inject failures.
type memLedger struct {
	recs []ChargeRecord
	fail bool
}

func (l *memLedger) AppendCharge(rec ChargeRecord) error {
	if l.fail {
		return errors.New("injected ledger failure")
	}
	l.recs = append(l.recs, rec)
	return nil
}

// windowBatches generates the deterministic claim batches of one window:
// one batch per user over a random subset of objects (at least one, no
// duplicates), honoring the one-submission-per-window release contract.
func windowBatches(rng *randx.RNG, numUsers, numObjects int) map[string][]Claim {
	batches := make(map[string][]Claim, numUsers)
	for u := 0; u < numUsers; u++ {
		var claims []Claim
		for obj := 0; obj < numObjects; obj++ {
			if rng.Float64() < 0.7 {
				claims = append(claims, Claim{Object: obj, Value: 10*rng.Float64() - 5})
			}
		}
		if len(claims) == 0 {
			claims = append(claims, Claim{Object: rng.Intn(numObjects), Value: rng.Norm()})
		}
		batches[fmt.Sprintf("user-%02d", u)] = claims
	}
	return batches
}

func ingestWindow(t *testing.T, e *Engine, batches map[string][]Claim) {
	t.Helper()
	for u := 0; u < len(batches); u++ {
		id := fmt.Sprintf("user-%02d", u)
		if _, _, err := e.Ingest(id, batches[id]); err != nil {
			t.Fatalf("ingest %s: %v", id, err)
		}
	}
}

func sameWindowResult(t *testing.T, label string, want, got *WindowResult) {
	t.Helper()
	const tol = 1e-9
	if got.Window != want.Window {
		t.Errorf("%s: window = %d, want %d", label, got.Window, want.Window)
	}
	if got.TotalClaims != want.TotalClaims || got.WindowClaims != want.WindowClaims {
		t.Errorf("%s: claims = (%d, %d), want (%d, %d)", label,
			got.WindowClaims, got.TotalClaims, want.WindowClaims, want.TotalClaims)
	}
	for n := range want.Truths {
		if got.Covered[n] != want.Covered[n] {
			t.Fatalf("%s: object %d covered = %v, want %v", label, n, got.Covered[n], want.Covered[n])
		}
		if !want.Covered[n] {
			continue
		}
		if d := math.Abs(got.Truths[n] - want.Truths[n]); d > tol {
			t.Errorf("%s: object %d truth differs by %g", label, n, d)
		}
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("%s: %d weights, want %d", label, len(got.Weights), len(want.Weights))
	}
	for id, w := range want.Weights {
		gw, ok := got.Weights[id]
		if !ok {
			t.Fatalf("%s: missing weight for %s", label, id)
		}
		if d := math.Abs(gw - w); d > tol {
			t.Errorf("%s: weight %s differs by %g", label, id, d)
		}
	}
	if want.Privacy != nil {
		if got.Privacy == nil {
			t.Fatalf("%s: missing privacy report", label)
		}
		if d := math.Abs(got.Privacy.MaxCumulative - want.Privacy.MaxCumulative); d > tol {
			t.Errorf("%s: MaxCumulative differs by %g", label, d)
		}
		if got.Privacy.MaxWindows != want.Privacy.MaxWindows {
			t.Errorf("%s: MaxWindows = %d, want %d", label, got.Privacy.MaxWindows, want.Privacy.MaxWindows)
		}
	}
}

// TestExportRestoreEquivalence is the kill-and-recover property: an
// engine exported mid-stream and restored into a fresh engine (possibly
// with a different shard count) must produce the same next-window truths
// and weights as the uninterrupted engine, within 1e-9, across seeds,
// decay settings, and shard counts.
func TestExportRestoreEquivalence(t *testing.T) {
	const (
		numObjects = 9
		numUsers   = 12
		numWindows = 4
		cutAfter   = 2 // windows closed before the "crash"
	)
	cases := []struct {
		shards, restoreShards int
		decay                 float64
	}{
		{1, 1, 1},
		{3, 3, 0.85},
		{4, 2, 1},
		{2, 5, 0.6},
	}
	for _, seed := range []uint64{1, 7, 42} {
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("seed=%d/shards=%d-%d/decay=%v", seed, tc.shards, tc.restoreShards, tc.decay), func(t *testing.T) {
				cfg := Config{
					NumObjects:    numObjects,
					NumShards:     tc.shards,
					Decay:         tc.decay,
					Lambda1:       1.5,
					Lambda2:       2,
					Delta:         0.3,
					PerUserReport: true,
				}

				// Pre-generate every window's batches so both engines see
				// byte-identical traffic.
				rng := randx.New(seed)
				windows := make([]map[string][]Claim, numWindows)
				for w := range windows {
					windows[w] = windowBatches(rng, numUsers, numObjects)
				}

				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = ref.Close() }()
				var want *WindowResult
				for w := 0; w < numWindows; w++ {
					ingestWindow(t, ref, windows[w])
					if want, err = ref.CloseWindow(); err != nil {
						t.Fatalf("ref close %d: %v", w, err)
					}
				}

				// The interrupted run: same traffic through cutAfter
				// windows, then export ("snapshot"), abandon, restore into
				// a fresh engine — possibly sharded differently — and
				// replay the remaining windows identically.
				cut, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for w := 0; w < cutAfter; w++ {
					ingestWindow(t, cut, windows[w])
					if _, err := cut.CloseWindow(); err != nil {
						t.Fatalf("cut close %d: %v", w, err)
					}
				}
				state, err := cut.ExportState()
				if err != nil {
					t.Fatal(err)
				}
				if err := cut.Close(); err != nil {
					t.Fatal(err)
				}

				restoreCfg := cfg
				restoreCfg.NumShards = tc.restoreShards
				rec, err := New(restoreCfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = rec.Close() }()
				if err := rec.Restore(state); err != nil {
					t.Fatal(err)
				}
				if rec.Snapshot() != nil {
					t.Error("Snapshot after restore should be nil until the next close")
				}
				if rec.Window() != cutAfter {
					t.Fatalf("restored window = %d, want %d", rec.Window(), cutAfter)
				}
				var got *WindowResult
				for w := cutAfter; w < numWindows; w++ {
					ingestWindow(t, rec, windows[w])
					if got, err = rec.CloseWindow(); err != nil {
						t.Fatalf("recovered close %d: %v", w, err)
					}
				}
				sameWindowResult(t, "recovered vs uninterrupted", want, got)
			})
		}
	}
}

// TestExportStateDeterministic checks two exports of the same engine
// state are identical, including ordering, so snapshots are stable.
func TestExportStateDeterministic(t *testing.T) {
	e, err := New(Config{NumObjects: 7, NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	rng := randx.New(3)
	ingestWindow(t, e, windowBatches(rng, 6, 7))
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	a, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stats) == 0 || len(a.Users) == 0 {
		t.Fatalf("empty export: %d stats, %d users", len(a.Stats), len(a.Users))
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("two exports of the same state differ")
	}
	for i := 1; i < len(a.Stats); i++ {
		p, q := a.Stats[i-1], a.Stats[i]
		if p.Object > q.Object || (p.Object == q.Object && p.User >= q.User) {
			t.Fatalf("stats not sorted at %d: %+v then %+v", i, p, q)
		}
	}
}

// TestBudgetSurvivesRestore is the recovery half of budget enforcement:
// a user who exhausted their cumulative epsilon before the export must
// still be rejected with ErrBudgetExhausted after a restore.
func TestBudgetSurvivesRestore(t *testing.T) {
	cfg := Config{
		NumObjects: 2,
		NumShards:  1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
	}
	probe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe.EpsilonPerWindow()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.EpsilonBudget = 1.5 * eps // affords exactly one window

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	claims := []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}
	if _, _, err := e.Ingest("alice", claims); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("alice", claims); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("pre-restart over-budget ingest = %v, want ErrBudgetExhausted", err)
	}
	state, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = restored.Close() }()
	if err := restored.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, _, err := restored.Ingest("alice", claims); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart over-budget ingest = %v, want ErrBudgetExhausted", err)
	}
	if _, _, err := restored.Ingest("bob", claims); err != nil {
		t.Fatalf("fresh user after restore: %v", err)
	}
}

// TestLedgerDurabilityBeforeAck checks the acknowledgement contract: a
// submission succeeds only after its charge record reached the ledger,
// and a failed append rejects the submission AND rolls the in-memory
// charge back (no epsilon is spent on an unacknowledged release).
func TestLedgerDurabilityBeforeAck(t *testing.T) {
	led := &memLedger{}
	e, err := New(Config{
		NumObjects:    2,
		NumShards:     1,
		Lambda1:       1,
		Lambda2:       2,
		Delta:         0.3,
		PerUserReport: true,
		Ledger:        led,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	eps := e.EpsilonPerWindow()
	claims := []Claim{{Object: 0, Value: 1}}

	// Failure first: no record, no charge, no acceptance.
	led.fail = true
	if _, _, err := e.Ingest("alice", claims); !errors.Is(err, ErrLedger) {
		t.Fatalf("ingest with failing ledger = %v, want ErrLedger", err)
	}
	if len(led.recs) != 0 {
		t.Fatalf("failing ledger recorded %d charges", len(led.recs))
	}

	// The rolled-back charge must leave alice able to retry the same
	// window once the ledger recovers.
	led.fail = false
	if _, _, err := e.Ingest("alice", claims); err != nil {
		t.Fatalf("retry after ledger recovery: %v", err)
	}
	if len(led.recs) != 1 {
		t.Fatalf("ledger holds %d records, want 1", len(led.recs))
	}
	rec := led.recs[0]
	if rec.User != "alice" || rec.Window != 0 || math.Abs(rec.Epsilon-eps) > 1e-12 {
		t.Fatalf("ledger record = %+v, want alice/window 0/eps %v", rec, eps)
	}

	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Privacy.PerUser["alice"]; math.Abs(got-eps) > 1e-12 {
		t.Fatalf("cumulative eps after rollback+retry = %v, want exactly %v", got, eps)
	}
	if res.Privacy.MaxWindows != 1 {
		t.Fatalf("MaxWindows = %d, want 1 (rollback must revert the window count)", res.Privacy.MaxWindows)
	}
}

// TestPerUserReportOptIn checks the wire-privacy default: reports carry
// aggregates only unless PerUserReport opts the roster in.
func TestPerUserReportOptIn(t *testing.T) {
	base := Config{NumObjects: 1, NumShards: 1, Lambda1: 1, Lambda2: 2, Delta: 0.3}
	claims := []Claim{{Object: 0, Value: 1}}

	summary, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = summary.Close() }()
	if _, _, err := summary.Ingest("u1", claims); err != nil {
		t.Fatal(err)
	}
	if _, _, err := summary.Ingest("u2", claims); err != nil {
		t.Fatal(err)
	}
	res, err := summary.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy == nil {
		t.Fatal("no privacy report")
	}
	if res.Privacy.PerUser != nil {
		t.Errorf("default report leaked the per-user roster: %v", res.Privacy.PerUser)
	}
	if res.Privacy.TrackedUsers != 2 {
		t.Errorf("TrackedUsers = %d, want 2", res.Privacy.TrackedUsers)
	}
	if res.Privacy.MaxCumulative <= 0 || res.Privacy.MaxWindows != 1 {
		t.Errorf("aggregates missing: %+v", res.Privacy)
	}

	optIn := base
	optIn.PerUserReport = true
	per, err := New(optIn)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = per.Close() }()
	if _, _, err := per.Ingest("u1", claims); err != nil {
		t.Fatal(err)
	}
	res, err = per.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Privacy.PerUser) != 1 || res.Privacy.PerUser["u1"] <= 0 {
		t.Errorf("opt-in report PerUser = %v, want u1's spending", res.Privacy.PerUser)
	}
}

// TestReplayCharges checks journal replay semantics on a snapshot:
// idempotent against windows the snapshot already covers, additive for
// newer windows, and user-creating for IDs the snapshot never saw.
func TestReplayCharges(t *testing.T) {
	st := &EngineState{
		Window: 2,
		Users: []UserSnapshot{
			{ID: "alice", Carry: 1, CumulativeEpsilon: 2, LastWindow: 1, Windows: 2},
		},
	}
	applied := st.ReplayCharges([]ChargeRecord{
		{User: "alice", Window: 0, Epsilon: 1},  // already in snapshot
		{User: "alice", Window: 1, Epsilon: 1},  // already in snapshot
		{User: "alice", Window: 2, Epsilon: 1},  // newer than snapshot
		{User: "alice", Window: 2, Epsilon: 1},  // duplicated record
		{User: "bob", Window: 2, Epsilon: 1},    // user unknown to snapshot
		{User: "", Window: 2, Epsilon: 1},       // malformed
		{User: "carol", Window: -1, Epsilon: 1}, // malformed
		{User: "dave", Window: 0, Epsilon: math.NaN()},
	})
	if applied != 2 {
		t.Errorf("applied = %d, want 2", applied)
	}
	if len(st.Users) != 2 {
		t.Fatalf("users after replay = %d, want 2 (malformed records must not create users)", len(st.Users))
	}
	alice := st.Users[0]
	if alice.CumulativeEpsilon != 3 || alice.LastWindow != 2 || alice.Windows != 3 {
		t.Errorf("alice after replay = %+v", alice)
	}
	bob := st.Users[1]
	if bob.ID != "bob" || bob.CumulativeEpsilon != 1 || bob.LastWindow != 2 || bob.Windows != 1 || bob.Carry != 1 {
		t.Errorf("bob after replay = %+v", bob)
	}

	// Replaying charges for windows past the snapshot advances the open
	// window on restore, so the duplicate guard keeps holding.
	e, err := New(Config{NumObjects: 1, NumShards: 1, Lambda1: 1, Lambda2: 2, Delta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if err := e.Restore(st); err != nil {
		t.Fatal(err)
	}
	if e.Window() != 2 {
		t.Errorf("restored window = %d, want 2", e.Window())
	}
	if _, _, err := e.Ingest("alice", []Claim{{Object: 0, Value: 1}}); !errors.Is(err, ErrDuplicateWindow) {
		t.Errorf("alice resubmitting the journaled window = %v, want ErrDuplicateWindow", err)
	}
}

// TestRestoreValidation checks Restore rejects inconsistent states and
// non-fresh engines.
func TestRestoreValidation(t *testing.T) {
	newEngine := func(t *testing.T) *Engine {
		t.Helper()
		e, err := New(Config{NumObjects: 3, NumShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		return e
	}
	cases := []struct {
		name  string
		state *EngineState
	}{
		{"nil", nil},
		{"negative window", &EngineState{Window: -1}},
		{"empty user id", &EngineState{Users: []UserSnapshot{{ID: ""}}}},
		{"duplicate user", &EngineState{Users: []UserSnapshot{{ID: "a", Carry: 1, LastWindow: -1}, {ID: "a", Carry: 1, LastWindow: -1}}}},
		{"bad carry", &EngineState{Users: []UserSnapshot{{ID: "a", Carry: math.NaN(), LastWindow: -1}}}},
		{"negative cumeps", &EngineState{Users: []UserSnapshot{{ID: "a", Carry: 1, CumulativeEpsilon: -1, LastWindow: -1}}}},
		{"object out of range", &EngineState{
			Users: []UserSnapshot{{ID: "a", Carry: 1, LastWindow: -1}},
			Stats: []StatSnapshot{{Object: 3, User: "a", Sum: 1, Mass: 1}},
		}},
		{"unknown stat user", &EngineState{
			Stats: []StatSnapshot{{Object: 0, User: "ghost", Sum: 1, Mass: 1}},
		}},
		{"non-positive mass", &EngineState{
			Users: []UserSnapshot{{ID: "a", Carry: 1, LastWindow: -1}},
			Stats: []StatSnapshot{{Object: 0, User: "a", Sum: 1, Mass: 0}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t)
			if err := e.Restore(tc.state); !errors.Is(err, ErrBadState) {
				t.Errorf("Restore(%s) = %v, want ErrBadState", tc.name, err)
			}
		})
	}

	// A non-fresh engine refuses a restore.
	e := newEngine(t)
	if _, _, err := e.Ingest("u", []Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(&EngineState{}); !errors.Is(err, ErrBadState) {
		t.Errorf("Restore into used engine = %v, want ErrBadState", err)
	}

	// And a closed engine reports ErrEngineClosed for both hooks.
	closed := newEngine(t)
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := closed.ExportState(); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("ExportState after Close = %v", err)
	}
	if err := closed.Restore(&EngineState{}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Restore after Close = %v", err)
	}
}
