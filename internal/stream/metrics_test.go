package stream

import (
	"strings"
	"testing"

	"pptd/internal/obs"
)

func scrapeValue(t *testing.T, reg *obs.Registry, name string, labelPairs ...string) float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	p, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse exposition: %v\n%s", err, b.String())
	}
	v, err := p.Value(name, labelPairs...)
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	return v
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(Config{
		NumObjects: 4, NumShards: 2,
		Lambda1: 1, Lambda2: 2, Delta: 1e-5,
		EpsilonBudget: 2 * mustEps(t, 1, 2, 1e-5),
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	if _, _, err := e.Ingest("alice", []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("bob", []Claim{{Object: 2, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	// Rejections by reason: duplicate window, bad claim.
	if _, _, err := e.Ingest("alice", []Claim{{Object: 3, Value: 1}}); err == nil {
		t.Fatal("duplicate window accepted")
	}
	if _, _, err := e.Ingest("carol", []Claim{{Object: 99, Value: 1}}); err == nil {
		t.Fatal("bad object accepted")
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	// Budget: each user can afford 2 windows; the third window's charge
	// is rejected as budget_exhausted.
	if _, _, err := e.Ingest("alice", []Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("alice", []Claim{{Object: 0, Value: 1}}); err == nil {
		t.Fatal("exhausted budget accepted")
	}

	if got := scrapeValue(t, reg, "pptd_stream_claims_ingested_total"); got != 4 {
		t.Errorf("claims ingested = %v, want 4", got)
	}
	for reason, want := range map[string]float64{
		"duplicate_window": 1, "bad_claim": 1, "budget_exhausted": 1,
	} {
		if got := scrapeValue(t, reg, "pptd_stream_submissions_rejected_total", "reason", reason); got != want {
			t.Errorf("rejected{%s} = %v, want %v", reason, got, want)
		}
	}
	if got := scrapeValue(t, reg, "pptd_stream_windows_closed_total"); got != 2 {
		t.Errorf("windows closed = %v, want 2", got)
	}
	if got := scrapeValue(t, reg, "pptd_stream_window_close_duration_seconds_count"); got != 2 {
		t.Errorf("close duration count = %v, want 2", got)
	}
	// Three accepted charges → three cumulative-epsilon observations.
	if got := scrapeValue(t, reg, "pptd_stream_user_cumulative_epsilon_count"); got != 3 {
		t.Errorf("cumulative epsilon observations = %v, want 3", got)
	}
	if got := scrapeValue(t, reg, "pptd_stream_tracked_users"); got != 2 {
		t.Errorf("tracked users = %v, want 2 (carol was rejected before registration charge)", got)
	}
	// One queue-depth series per shard, drained after the closes.
	for _, shard := range []string{"0", "1"} {
		if got := scrapeValue(t, reg, "pptd_stream_shard_queue_depth", "shard", shard); got != 0 {
			t.Errorf("queue depth shard %s = %v, want 0 after close", shard, got)
		}
	}
}

// mustEps computes the per-window epsilon an engine with these privacy
// parameters charges, mirroring New's derivation.
func mustEps(t *testing.T, lambda1, lambda2, delta float64) float64 {
	t.Helper()
	e, err := New(Config{NumObjects: 1, Lambda1: lambda1, Lambda2: lambda2, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	return e.EpsilonPerWindow()
}
