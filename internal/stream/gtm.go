package stream

import (
	"encoding/json"
	"fmt"
	"sync"
)

// gtmVarianceFloor matches the batch GTM's variance floor (truth.GTM).
const gtmVarianceFloor = 1e-9

// gtmEstimator is the Gaussian Truth Model (truth.GTM) run incrementally:
// an EM-style alternation of posterior-mean truths (given per-user
// variances, with the per-object mean of the effective claims acting as
// a weak truth prior) and MAP variances under an inverse-Gamma prior.
// Reported weights are the precisions 1/sigma_s^2.
//
// Its private cross-window state is the per-user variance vector: it
// warm-starts the next window (unless carryover is disabled, which
// resets to initVariance every window) and rides snapshots through
// exportState/restoreState keyed by user ID.
type gtmEstimator struct {
	priorMeanWeight float64
	alpha, beta     float64
	initVariance    float64

	// variances is indexed by registry user index and grown on demand;
	// users the estimator has not seen start at initVariance.
	variances []float64
}

func (*gtmEstimator) Name() string { return EstimatorGTM }

func (g *gtmEstimator) estimate(e *Engine, w *windowData) (int, bool) {
	for len(g.variances) < w.numUsers {
		g.variances = append(g.variances, g.initVariance)
	}
	variances := g.variances
	if e.cfg.DisableCarryover {
		for i := range variances {
			variances[i] = g.initVariance
		}
	}
	countClaims(w.views, w.claimCount)

	// Truth prior and initialization: the per-object mean of the effective
	// claims (the streaming analog of Dataset.ObjectMeans).
	priorMeans := make([]float64, e.cfg.NumObjects)
	g.objectMeans(w.views, priorMeans)
	for n, ok := range w.covered {
		if ok {
			w.truths[n] = priorMeans[n]
		}
	}

	partial := userScratch(w.views, w.numUsers)
	ss := make([]float64, w.numUsers)
	prev := make([]float64, e.cfg.NumObjects)

	iterations := 0
	converged := false
	for iter := 1; iter <= e.cfg.MaxIterations; iter++ {
		iterations = iter

		// E-step: posterior-mean truths given variances. Shards own
		// disjoint objects, so prev/truths writes never collide.
		var wg sync.WaitGroup
		for _, v := range w.views {
			wg.Add(1)
			go func(v *shardView) {
				defer wg.Done()
				for i, obj := range v.objects {
					num := g.priorMeanWeight * priorMeans[obj]
					den := g.priorMeanWeight
					for _, c := range v.claims[i] {
						prec := 1 / variances[c.user]
						num += prec * c.value
						den += prec
					}
					prev[obj] = w.truths[obj]
					w.truths[obj] = num / den
				}
			}(v)
		}
		wg.Wait()

		// M-step: MAP user variances given truths, under the
		// inverse-Gamma(alpha, beta) prior.
		sumSquaredResiduals(w.views, w.truths, partial, ss)
		for u, k := range w.claimCount {
			if k == 0 {
				continue
			}
			v := (2*g.beta + ss[u]) / (2*(g.alpha+1) + float64(k))
			if v < gtmVarianceFloor {
				v = gtmVarianceFloor
			}
			variances[u] = v
		}

		if maxAbsDiffCovered(prev, w.truths, w.covered) < e.cfg.Tolerance {
			converged = true
			break
		}
	}

	for u, k := range w.claimCount {
		if k == 0 {
			w.weights[u] = 0
			continue
		}
		w.weights[u] = 1 / variances[u]
	}
	return iterations, converged
}

// objectMeans fills means with each covered object's plain mean of the
// effective claims; uncovered objects are left untouched.
func (*gtmEstimator) objectMeans(views []*shardView, means []float64) {
	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *shardView) {
			defer wg.Done()
			for i, obj := range v.objects {
				var sum float64
				for _, c := range v.claims[i] {
					sum += c.value
				}
				means[obj] = sum / float64(len(v.claims[i]))
			}
		}(v)
	}
	wg.Wait()
}

// gtmState is the serialized form of the estimator's private state.
type gtmState struct {
	Variances map[string]float64 `json:"variances"`
}

func (g *gtmEstimator) exportState(ids []string) (json.RawMessage, error) {
	if len(g.variances) == 0 {
		return nil, nil
	}
	st := gtmState{Variances: make(map[string]float64, len(g.variances))}
	for u, v := range g.variances {
		if u < len(ids) && ids[u] == "" {
			continue // free slot of an evicted user; their variance rides the spill record
		}
		st.Variances[ids[u]] = v
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("stream: export gtm state: %w", err)
	}
	return data, nil
}

// gtmUserState is one spilled user's private state: their variance.
type gtmUserState struct {
	Variance float64 `json:"variance"`
}

func (g *gtmEstimator) exportUser(idx int) (json.RawMessage, error) {
	if idx >= len(g.variances) || g.variances[idx] == g.initVariance {
		return nil, nil // never estimated (or still at the prior): nothing to spill
	}
	data, err := json.Marshal(gtmUserState{Variance: g.variances[idx]})
	if err != nil {
		return nil, fmt.Errorf("stream: export gtm user state: %w", err)
	}
	return data, nil
}

func (g *gtmEstimator) seedUser(idx int, data json.RawMessage) error {
	for len(g.variances) <= idx {
		g.variances = append(g.variances, g.initVariance)
	}
	g.variances[idx] = g.initVariance
	if len(data) == 0 || string(data) == "null" {
		return nil
	}
	var st gtmUserState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: decode gtm user state: %v", ErrBadState, err)
	}
	if !finite(st.Variance) || st.Variance <= 0 {
		return fmt.Errorf("%w: spilled gtm variance = %v", ErrBadState, st.Variance)
	}
	g.variances[idx] = st.Variance
	return nil
}

func (g *gtmEstimator) restoreState(data json.RawMessage, byID map[string]int) error {
	if len(data) == 0 || string(data) == "null" {
		return nil // a fresh (or legacy CRH-era) state: variances start at initVariance
	}
	var st gtmState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: decode gtm estimator state: %v", ErrBadState, err)
	}
	variances := make([]float64, len(byID))
	for i := range variances {
		variances[i] = g.initVariance
	}
	for id, v := range st.Variances {
		u, ok := byID[id]
		if !ok {
			return fmt.Errorf("%w: gtm variance for unknown user %q", ErrBadState, id)
		}
		if !finite(v) || v <= 0 {
			return fmt.Errorf("%w: gtm variance for user %q = %v", ErrBadState, id, v)
		}
		variances[u] = v
	}
	g.variances = variances
	return nil
}
