package stream

import (
	"math"
	"sync"

	"pptd/internal/truth"
)

// Floors shared with the batch estimator (truth.CRH); keeping them
// identical is what makes the closed-window equivalence property hold.
const (
	distFloor   = 1e-12
	stdFloor    = 1e-9
	weightFloor = 1e-12
)

// estimateLocked runs the per-window estimation: the CRH update
// equations (truths as weighted means, weights as negative log distance
// ratios), evaluated over the live sufficient statistics with the
// per-object work parallelized across shards. Weights warm-start from
// the previous window unless carryover is disabled. Callers must hold
// e.mu exclusively with the shards paused.
func (e *Engine) estimateLocked() (*WindowResult, error) {
	numUsers := e.users.count()
	if numUsers == 0 {
		return nil, ErrEmptyWindow
	}

	views := make([]*shardView, len(e.shards))
	e.eachShardParallelIndexed(func(i int, s *shard) { views[i] = s.view() })

	truths := make([]float64, e.cfg.NumObjects)
	covered := make([]bool, e.cfg.NumObjects)
	anyCovered := false
	for n := range truths {
		truths[n] = math.NaN()
	}
	for _, v := range views {
		for _, obj := range v.objects {
			covered[obj] = true
			anyCovered = true
		}
	}
	if !anyCovered {
		return nil, ErrEmptyWindow
	}

	weights := e.users.carryWeights(e.cfg.DisableCarryover)

	// Per-shard scratch for the distance reduction: each shard accumulates
	// its objects' contribution to every user's distance, then the shards
	// are reduced in index order so the result is deterministic.
	partial := make([][]float64, len(e.shards))
	counts := make([][]int, len(e.shards))
	for i := range partial {
		partial[i] = make([]float64, numUsers)
		counts[i] = make([]int, numUsers)
	}
	dists := make([]float64, numUsers)
	claimCount := make([]int, numUsers)
	prev := make([]float64, e.cfg.NumObjects)

	e.weightedTruths(views, weights, truths)
	res := &WindowResult{Truths: truths, Covered: covered}
	for iter := 1; iter <= e.cfg.MaxIterations; iter++ {
		res.Iterations = iter
		e.updateWeights(views, truths, weights, dists, claimCount, partial, counts)
		copy(prev, truths)
		e.weightedTruths(views, weights, truths)
		if maxAbsDiffCovered(prev, truths, covered) < e.cfg.Tolerance {
			res.Converged = true
			break
		}
	}

	res.Weights = make(map[string]float64)
	ids := e.users.ids()
	for u, n := range claimCount {
		if n == 0 {
			continue
		}
		res.Weights[ids[u]] = weights[u]
		res.ActiveUsers++
	}
	e.users.updateCarry(weights, claimCount)
	return res, nil
}

// weightedTruths evaluates Eq. (1) per covered object: the weighted mean
// of the effective claims, with non-positive user weights clamped to the
// weight floor exactly as the batch estimator does. Shards work their
// own (disjoint) objects in parallel.
func (e *Engine) weightedTruths(views []*shardView, weights, truths []float64) {
	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *shardView) {
			defer wg.Done()
			for i, obj := range v.objects {
				var num, den float64
				for _, c := range v.claims[i] {
					w := weights[c.user]
					if w < weightFloor {
						w = weightFloor
					}
					num += w * c.value
					den += w
				}
				truths[obj] = num / den
			}
		}(v)
	}
	wg.Wait()
}

// updateWeights evaluates Eq. (3): per-user mean distance between the
// effective claims and the current truths, then w = -log(d/total),
// clamped non-negative. Shards accumulate their objects' distance
// contributions in parallel; the reduction and the weight update run on
// the coordinator in user order, mirroring the batch loop.
func (e *Engine) updateWeights(views []*shardView, truths, weights, dists []float64, claimCount []int, partial [][]float64, counts [][]int) {
	var wg sync.WaitGroup
	for si, v := range views {
		wg.Add(1)
		go func(v *shardView, dSum []float64, dCnt []int) {
			defer wg.Done()
			for u := range dSum {
				dSum[u] = 0
				dCnt[u] = 0
			}
			for i, obj := range v.objects {
				t := truths[obj]
				std := v.stds[i]
				if std < stdFloor {
					std = stdFloor
				}
				for _, c := range v.claims[i] {
					diff := c.value - t
					switch e.cfg.Distance {
					case truth.AbsoluteDistance:
						dSum[c.user] += math.Abs(diff)
					case truth.NormalizedSquaredDistance:
						dSum[c.user] += diff * diff / std
					default: // squared
						dSum[c.user] += diff * diff
					}
					dCnt[c.user]++
				}
			}
		}(v, partial[si], counts[si])
	}
	wg.Wait()

	var total float64
	for u := range dists {
		var d float64
		var n int
		for si := range partial {
			d += partial[si][u]
			n += counts[si][u]
		}
		claimCount[u] = n
		if n == 0 {
			dists[u] = math.NaN()
			continue
		}
		d /= float64(n)
		if d < distFloor {
			d = distFloor
		}
		dists[u] = d
		total += d
	}
	if total <= 0 {
		total = distFloor
	}
	for u := range weights {
		if math.IsNaN(dists[u]) {
			weights[u] = 0
			continue
		}
		w := -math.Log(dists[u] / total)
		if w < 0 {
			w = 0
		}
		weights[u] = w
	}
}

// maxAbsDiffCovered is maxAbsDiff restricted to covered objects.
func maxAbsDiffCovered(a, b []float64, covered []bool) float64 {
	var maxd float64
	for i := range a {
		if !covered[i] {
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// eachShardParallelIndexed is eachShardParallel with the shard index.
func (e *Engine) eachShardParallelIndexed(fn func(int, *shard)) {
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			fn(i, s)
		}(i, s)
	}
	wg.Wait()
}
