package stream

import (
	"encoding/json"
	"math"
	"sync"
	"time"

	"pptd/internal/truth"
)

// Floors shared with the batch estimators (internal/truth); keeping them
// identical is what makes the closed-window equivalence property hold.
const (
	distFloor   = 1e-12
	stdFloor    = 1e-9
	weightFloor = 1e-12
)

// estimateLocked runs the per-window estimation through the configured
// Estimator: it freezes a view of every shard's live statistics, seeds
// the outputs (NaN truths, covered mask, carry weights), delegates the
// iteration loop, and folds the estimator's per-index weights back into
// the ID-keyed result plus the carry registry. Callers must hold e.mu
// exclusively with the shards paused.
func (e *Engine) estimateLocked() (*WindowResult, error) {
	// Per-user slices are indexed by slot, so they span the whole slot
	// space including free holes (nothing references a hole: eviction
	// requires fully decayed statistics, so holes never appear in views).
	numUsers := e.users.slots()
	if numUsers == 0 {
		return nil, ErrEmptyWindow
	}

	views := make([]*shardView, len(e.shards))
	e.eachShardParallelIndexed(func(i int, s *shard) { views[i] = s.view() })

	truths := make([]float64, e.cfg.NumObjects)
	covered := make([]bool, e.cfg.NumObjects)
	anyCovered := false
	for n := range truths {
		truths[n] = math.NaN()
	}
	for _, v := range views {
		for _, obj := range v.objects {
			covered[obj] = true
			anyCovered = true
		}
	}
	if !anyCovered {
		return nil, ErrEmptyWindow
	}

	w := &windowData{
		views:      views,
		numUsers:   numUsers,
		truths:     truths,
		covered:    covered,
		weights:    e.users.carryWeights(e.cfg.DisableCarryover),
		claimCount: make([]int, numUsers),
	}
	start := time.Now()
	iters, converged := e.est.estimate(e, w)
	e.metrics.estimated(iters, time.Since(start))

	res := &WindowResult{
		Estimator:  e.cfg.Estimator,
		Truths:     truths,
		Covered:    covered,
		Iterations: iters,
		Converged:  converged,
	}
	res.Weights = make(map[string]float64)
	ids := e.users.ids()
	for u, n := range w.claimCount {
		if n == 0 {
			continue
		}
		res.Weights[ids[u]] = w.weights[u]
		res.ActiveUsers++
	}
	e.users.updateCarry(w.weights, w.claimCount)
	return res, nil
}

// crhEstimator is the CRH update equations (truth.CRH) run incrementally:
// truths as weighted means (Eq. 1), weights as negative log distance
// ratios over the per-user mean distance (Eq. 3), warm-started from the
// carry weights. It keeps no private state — the carry weights in the
// user registry (persisted per user in UserSnapshot.Carry) are its whole
// cross-window memory.
type crhEstimator struct{}

func (crhEstimator) Name() string { return EstimatorCRH }

func (c crhEstimator) estimate(e *Engine, w *windowData) (int, bool) {
	// Per-shard scratch for the distance reduction: each shard accumulates
	// its objects' contribution to every user's distance, then the shards
	// are reduced in index order so the result is deterministic.
	partial := userScratch(w.views, w.numUsers)
	counts := make([][]int, len(w.views))
	for i := range counts {
		counts[i] = make([]int, w.numUsers)
	}
	dists := make([]float64, w.numUsers)
	prev := make([]float64, e.cfg.NumObjects)

	foldWeightedTruths(w.views, w.weights, w.truths)
	iterations := 0
	for iter := 1; iter <= e.cfg.MaxIterations; iter++ {
		iterations = iter
		c.updateWeights(e, w, dists, partial, counts)
		copy(prev, w.truths)
		foldWeightedTruths(w.views, w.weights, w.truths)
		if maxAbsDiffCovered(prev, w.truths, w.covered) < e.cfg.Tolerance {
			return iterations, true
		}
	}
	return iterations, false
}

func (crhEstimator) exportState([]string) (json.RawMessage, error) { return nil, nil }

func (crhEstimator) restoreState(data json.RawMessage, _ map[string]int) error {
	return restoreNoState(EstimatorCRH, data)
}

// CRH keeps no per-user state beyond the registry's carry weight, which
// rides the spill record itself.
func (crhEstimator) exportUser(int) (json.RawMessage, error) { return nil, nil }

func (crhEstimator) seedUser(_ int, data json.RawMessage) error {
	return restoreNoState(EstimatorCRH, data)
}

// updateWeights evaluates Eq. (3): per-user mean distance between the
// effective claims and the current truths, then w = -log(d/total),
// clamped non-negative. Shards accumulate their objects' distance
// contributions in parallel; the reduction and the weight update run on
// the coordinator in user order, mirroring the batch loop.
func (crhEstimator) updateWeights(e *Engine, w *windowData, dists []float64, partial [][]float64, counts [][]int) {
	var wg sync.WaitGroup
	for si, v := range w.views {
		wg.Add(1)
		go func(v *shardView, dSum []float64, dCnt []int) {
			defer wg.Done()
			for u := range dSum {
				dSum[u] = 0
				dCnt[u] = 0
			}
			for i, obj := range v.objects {
				t := w.truths[obj]
				std := v.stds[i]
				if std < stdFloor {
					std = stdFloor
				}
				for _, c := range v.claims[i] {
					diff := c.value - t
					switch e.cfg.Distance {
					case truth.AbsoluteDistance:
						dSum[c.user] += math.Abs(diff)
					case truth.NormalizedSquaredDistance:
						dSum[c.user] += diff * diff / std
					default: // squared
						dSum[c.user] += diff * diff
					}
					dCnt[c.user]++
				}
			}
		}(v, partial[si], counts[si])
	}
	wg.Wait()

	var total float64
	for u := range dists {
		var d float64
		var n int
		for si := range partial {
			d += partial[si][u]
			n += counts[si][u]
		}
		w.claimCount[u] = n
		if n == 0 {
			dists[u] = math.NaN()
			continue
		}
		d /= float64(n)
		if d < distFloor {
			d = distFloor
		}
		dists[u] = d
		total += d
	}
	if total <= 0 {
		total = distFloor
	}
	for u := range w.weights {
		if math.IsNaN(dists[u]) {
			w.weights[u] = 0
			continue
		}
		wt := -math.Log(dists[u] / total)
		if wt < 0 {
			wt = 0
		}
		w.weights[u] = wt
	}
}

// eachShardParallelIndexed is eachShardParallel with the shard index.
func (e *Engine) eachShardParallelIndexed(fn func(int, *shard)) {
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			fn(i, s)
		}(i, s)
	}
	wg.Wait()
}
