package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadState reports an EngineState that cannot be restored: it is
// internally inconsistent, references unknown users or out-of-range
// objects, or the target engine already holds state.
var ErrBadState = errors.New("stream: invalid engine state")

// ErrEstimatorMismatch reports a Restore of an EngineState written by a
// different estimator than the engine is configured to run. Estimator
// state is not interchangeable (carry weights are CRH log-ratios, GTM
// variances are precisions, ...), so restoring across estimators would
// silently misfold the statistics; the engine refuses instead. Recover
// with the estimator that wrote the snapshot, or discard it.
var ErrEstimatorMismatch = errors.New("stream: snapshot estimator mismatch")

// ErrLedger reports a failed durable append to the configured privacy
// ledger. The submission that triggered it was NOT accepted and the
// in-memory charge was rolled back: the engine never acknowledges a
// release whose ledger record is not on disk.
var ErrLedger = errors.New("stream: privacy ledger append failed")

// ChargeRecord is one privacy-ledger entry: user was charged Epsilon for
// participating in the (0-based) open window Window. The journal of
// these records is what makes cumulative budgets survive a crash between
// snapshots. With Config.ClaimWAL enabled the record also carries the
// submission's perturbed claims, so one durable append covers both the
// charge and the statistics it paid for — recovery then replays the
// whole submission (ReplayJournal) instead of just its debit.
type ChargeRecord struct {
	User    string  `json:"user"`
	Window  int     `json:"window"`
	Epsilon float64 `json:"epsilon"`
	Claims  []Claim `json:"claims,omitempty"`
}

// Ledger is the durable privacy ledger the engine appends to when
// configured (Config.Ledger). AppendCharge is called once per accepted
// (user, window) charge and must not return until the record is durable:
// Ingest only acknowledges a submission after the append succeeds, and
// rolls the in-memory charge back if it fails. Implementations must be
// safe for concurrent use; internal/streamstore provides the standard
// fsync'd file journal.
type Ledger interface {
	AppendCharge(rec ChargeRecord) error
}

// UserSpill is one evicted user's durable state: everything the engine
// needs to re-admit them as if they had never left — the carry weight
// warm-starting their next window, the cumulative privacy spending that
// keeps an exhausted user exhausted, and the estimator's private
// per-user state (e.g. a GTM variance). Spill records are written by
// eviction (Config.MaxResidentUsers / ResidentBytes) before the
// in-memory state is dropped and read back by admission; the newest
// record per user wins.
type UserSpill struct {
	ID string `json:"id"`
	// Carry is the weight carried into the next window's estimation.
	Carry float64 `json:"carry"`
	// CumulativeEpsilon is the total epsilon charged so far.
	CumulativeEpsilon float64 `json:"cumulativeEpsilon"`
	// LastWindow is the 0-based index of the last window the user was
	// charged for (-1 if never charged).
	LastWindow int `json:"lastWindow"`
	// Windows is the number of windows the user was charged for.
	Windows int `json:"windows"`
	// Estimator names the estimator that wrote EstimatorState ("" on
	// records predating the field = CRH); admission under a different
	// estimator fails with ErrEstimatorMismatch.
	Estimator string `json:"estimator,omitempty"`
	// EstimatorState is the estimator's private per-user state, opaque
	// to the engine; nil when the estimator keeps none.
	EstimatorState json.RawMessage `json:"estimatorState,omitempty"`
}

// validateSpill rejects a spill record the engine must not re-admit.
func validateSpill(sp *UserSpill) error {
	switch {
	case sp == nil:
		return fmt.Errorf("%w: nil spill record", ErrBadState)
	case sp.ID == "":
		return fmt.Errorf("%w: spill record with empty id", ErrBadState)
	case !finite(sp.Carry) || sp.Carry < 0:
		return fmt.Errorf("%w: spilled user %q carry = %v", ErrBadState, sp.ID, sp.Carry)
	case !finite(sp.CumulativeEpsilon) || sp.CumulativeEpsilon < 0:
		return fmt.Errorf("%w: spilled user %q cumulative epsilon = %v", ErrBadState, sp.ID, sp.CumulativeEpsilon)
	case sp.LastWindow < -1 || sp.Windows < 0:
		return fmt.Errorf("%w: spilled user %q lastWindow=%d windows=%d", ErrBadState, sp.ID, sp.LastWindow, sp.Windows)
	}
	return nil
}

// UserStore is the durable spill store behind Config.UserStore.
// SpillUsers must not return until every record is durable — eviction
// drops the in-memory state right after, and a later snapshot may let
// the journal holding the user's charges be compacted away, leaving the
// spill record the only copy of their budget. LoadUser returns the
// newest record for a user (false when never spilled). Implementations
// must be safe for concurrent use; internal/streamstore provides the
// standard file-backed one next to the charge journal.
type UserStore interface {
	SpillUsers(users []UserSpill) error
	LoadUser(id string) (*UserSpill, bool, error)
}

// UserSnapshot is one user's persisted bookkeeping: the carried weight
// warm-starting the next window and the cumulative privacy spending.
type UserSnapshot struct {
	ID string `json:"id"`
	// Carry is the weight carried into the next window's estimation.
	Carry float64 `json:"carry"`
	// CumulativeEpsilon is the total epsilon charged so far.
	CumulativeEpsilon float64 `json:"cumulativeEpsilon"`
	// LastWindow is the 0-based index of the last window the user was
	// charged for (-1 if never charged).
	LastWindow int `json:"lastWindow"`
	// Windows is the number of windows the user was charged for.
	Windows int `json:"windows"`
}

// StatSnapshot is one persisted (object, user) sufficient statistic:
// the decayed sum of claimed values and the decayed claim mass.
type StatSnapshot struct {
	Object int     `json:"object"`
	User   string  `json:"user"`
	Sum    float64 `json:"sum"`
	Mass   float64 `json:"mass"`
}

// EngineState is a point-in-time export of everything a streaming engine
// needs to resume after a restart: the window counter, claim counters,
// every user's carry weight and budget state, and the live sufficient
// statistics. It is a plain serializable value with deterministic
// ordering (users by registration order, stats by (object, user)).
type EngineState struct {
	// NumObjects records the object space the state was exported from;
	// a restore only requires the target engine to cover every object
	// actually present in Stats, so the space may grow across restarts.
	NumObjects int `json:"numObjects"`
	// Window is the number of closed windows (equivalently the 0-based
	// index of the open window) at export time.
	Window int `json:"window"`
	// WindowClaims counts claims ingested into the open window so far;
	// TotalClaims counts the whole stream.
	WindowClaims int64 `json:"windowClaims"`
	TotalClaims  int64 `json:"totalClaims"`
	// Users holds per-user carry and budget state in registration order.
	Users []UserSnapshot `json:"users"`
	// Stats holds the live sufficient statistics.
	Stats []StatSnapshot `json:"stats"`
	// Estimator names the estimator that produced this state ("crh",
	// "gtm", "catd"); empty on states exported before estimators were
	// pluggable, which were always CRH. Restore refuses a state whose
	// estimator differs from the engine's (ErrEstimatorMismatch).
	Estimator string `json:"estimator,omitempty"`
	// EstimatorState is the estimator's private cross-window state (e.g.
	// GTM's per-user variances), opaque to the engine; nil when the
	// estimator keeps none.
	EstimatorState json.RawMessage `json:"estimatorState,omitempty"`
}

// ReplayCharges folds journaled charge records into the state's per-user
// budgets, creating users the snapshot has never seen. Replay is
// idempotent against the snapshot and against duplicated records: a
// record for a window the user was already charged for (its window is
// <= the user's LastWindow) is skipped, so a journal that overlaps the
// snapshot — or is strictly newer than it — recovers the same budgets.
// It returns the number of records applied.
//
// ReplayCharges is the budgets-only, state-level replay: any claims a
// record carries (Config.ClaimWAL) are ignored, because a plain
// EngineState cannot re-run the window closes their placement may
// require. Engine.ReplayJournal is the full replay.
func (st *EngineState) ReplayCharges(recs []ChargeRecord) int {
	byID := make(map[string]int, len(st.Users))
	for i, u := range st.Users {
		byID[u.ID] = i
	}
	applied := 0
	for _, rec := range recs {
		if rec.User == "" || rec.Window < 0 ||
			rec.Epsilon <= 0 || math.IsNaN(rec.Epsilon) || math.IsInf(rec.Epsilon, 0) {
			continue
		}
		i, ok := byID[rec.User]
		if !ok {
			i = len(st.Users)
			byID[rec.User] = i
			st.Users = append(st.Users, UserSnapshot{
				ID:         rec.User,
				Carry:      1, // the uniform batch initialization
				LastWindow: -1,
			})
		}
		u := &st.Users[i]
		if rec.Window <= u.LastWindow {
			continue // already accounted by the snapshot or an earlier record
		}
		u.CumulativeEpsilon += rec.Epsilon
		u.LastWindow = rec.Window
		u.Windows++
		applied++
	}
	return applied
}

// ExportState captures a consistent point-in-time state of the engine:
// it quiesces ingestion (taking the window lock exclusively and pausing
// the shards) and copies the window counter, claim counters, user
// registry, and every live sufficient statistic. The returned state is
// independent of the engine and safe to serialize.
func (e *Engine) ExportState() (*EngineState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	release := e.pauseShards()
	defer close(release)
	return e.exportStateLocked()
}

// exportStateLocked builds the state export. Callers must hold e.mu
// exclusively with the shards paused (ExportState and the cluster-close
// path CloseWindowExport both funnel through here).
func (e *Engine) exportStateLocked() (*EngineState, error) {
	st := &EngineState{
		NumObjects:   e.cfg.NumObjects,
		Window:       e.window,
		WindowClaims: e.windowClaims.Load(),
		TotalClaims:  e.totalClaims.Load(),
		Users:        e.users.export(),
		Estimator:    e.cfg.Estimator,
	}
	ids := e.users.ids()
	estState, err := e.est.exportState(ids)
	if err != nil {
		return nil, err
	}
	st.EstimatorState = estState
	for _, s := range e.shards {
		for obj, users := range s.stats {
			for user, stat := range users {
				st.Stats = append(st.Stats, StatSnapshot{
					Object: obj,
					User:   ids[user],
					Sum:    stat.sum,
					Mass:   stat.mass,
				})
			}
		}
	}
	sort.Slice(st.Stats, func(i, j int) bool {
		if st.Stats[i].Object != st.Stats[j].Object {
			return st.Stats[i].Object < st.Stats[j].Object
		}
		return st.Stats[i].User < st.Stats[j].User
	})
	return st, nil
}

// Restore loads an exported state into a freshly constructed engine
// (before any ingestion): the user registry, budget spending, carry
// weights, window counter, and sufficient statistics all resume exactly
// where the export left off, so the next closed window matches what the
// uninterrupted engine would have produced over the same claims. The
// shard count may differ from the exporting engine's — statistics are
// re-partitioned — and the open window resumes at the exported counter,
// advanced past any journal-replayed charge so duplicate-submission
// checks keep holding after recovery.
//
// The last closed window's published result is not part of the state:
// Snapshot returns nil after a restore until the next window closes,
// unless the caller seeds a persisted result with RestoreLastResult.
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return fmt.Errorf("%w: nil state", ErrBadState)
	}
	if err := validateState(st, e.cfg.NumObjects); err != nil {
		return err
	}
	// A state is only meaningful to the estimator that wrote it: carry
	// weights and estimator state encode algorithm-specific quantities.
	// Legacy states (exported before estimators were pluggable) were
	// always CRH.
	written := st.Estimator
	if written == "" {
		written = EstimatorCRH
	}
	if written != e.cfg.Estimator {
		return fmt.Errorf("%w: state written by %q, engine configured for %q — restore with the matching estimator or discard the snapshot",
			ErrEstimatorMismatch, written, e.cfg.Estimator)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if e.window != 0 || e.totalClaims.Load() != 0 || e.users.count() != 0 {
		return fmt.Errorf("%w: engine already holds state", ErrBadState)
	}
	byID := make(map[string]int, len(st.Users))
	for i, u := range st.Users {
		byID[u.ID] = i
	}
	// Estimator state is validated (and applied) before the registry and
	// statistics mutate, so a corrupt payload rejects cleanly.
	if err := e.est.restoreState(st.EstimatorState, byID); err != nil {
		return err
	}
	if err := e.users.restore(st.Users); err != nil {
		return err
	}

	release := e.pauseShards()
	defer close(release)
	for _, sn := range st.Stats {
		idx := byID[sn.User] // validated above
		s := e.shards[sn.Object%len(e.shards)]
		users := s.stats[sn.Object]
		if users == nil {
			users = make(map[int]*stat)
			s.stats[sn.Object] = users
		}
		users[idx] = &stat{sum: sn.Sum, mass: sn.Mass}
	}

	// Resume at the exported open window, or past it if journal replay
	// recorded charges for later windows than the snapshot knew about
	// (the charge proves the release happened; re-admitting its user
	// into an earlier window would break the duplicate guard).
	e.window = st.Window
	for _, u := range st.Users {
		if u.LastWindow > e.window {
			e.window = u.LastWindow
		}
	}
	e.windowClaims.Store(st.WindowClaims)
	e.totalClaims.Store(st.TotalClaims)
	return nil
}

// ReplayJournal folds journaled submissions into a restored (or fresh)
// engine during recovery. Charges debit budgets idempotently — a record
// for a window the user was already charged for (covered by the snapshot
// or an earlier record) is skipped — and, for records carrying claims
// (Config.ClaimWAL), the claims are folded back into the sufficient
// statistics. When the journal names a window past the engine's open
// one, every intermediate window close is re-run (estimation plus decay,
// results discarded), so carry weights and decayed statistics advance
// exactly as they did before the crash and the recovered engine matches
// an uninterrupted one over the same claims.
//
// Records must be in journal (append) order; window indices never move
// backwards across it because appends are acknowledged before a close
// can begin. Replay never touches the configured Ledger — the records
// being replayed are already durable. It returns the number of records
// applied. A record whose claims no longer fit the engine (out-of-range
// object, non-finite value) fails with ErrBadState.
//
// Within one replayed window the claim folds run shard-parallel: the
// records' claims are partitioned by owning shard (preserving journal
// order inside each shard) and applied concurrently, one goroutine per
// shard, before the window's close re-runs. Each (object, user)
// statistic lives on exactly one shard and per-shard order is the
// journal order, so the folded statistics are bitwise identical to the
// sequential replay — only the wall-clock of recovering a long journal
// (a coarse SnapshotEvery) changes. Window closes stay sequential
// barriers: decay must see the whole window folded.
func (e *Engine) ReplayJournal(recs []ChargeRecord) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrEngineClosed
	}
	release := e.pauseShards()
	defer close(release)

	// Per-shard batches accumulated for the window being replayed,
	// flushed shard-parallel at every window boundary.
	type replayBatch struct {
		user   int
		claims []Claim
	}
	pending := make([][]replayBatch, len(e.shards))
	flush := func() {
		if !replayWindowsParallel {
			return
		}
		e.eachShardParallelIndexed(func(i int, s *shard) {
			for _, b := range pending[i] {
				s.apply(b.user, b.claims)
			}
			pending[i] = pending[i][:0]
		})
	}

	applied := 0
	perShard := make([][]Claim, len(e.shards))
	for i, rec := range recs {
		if rec.User == "" || rec.Window < 0 ||
			rec.Epsilon <= 0 || math.IsNaN(rec.Epsilon) || math.IsInf(rec.Epsilon, 0) {
			continue
		}
		for _, c := range rec.Claims {
			if c.Object < 0 || c.Object >= e.cfg.NumObjects {
				flush()
				return applied, fmt.Errorf("%w: journal record %d: object %d of %d",
					ErrBadState, i, c.Object, e.cfg.NumObjects)
			}
			if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
				flush()
				return applied, fmt.Errorf("%w: journal record %d: non-finite value for object %d",
					ErrBadState, i, c.Object)
			}
		}
		// Admission during replay consults the spill store like live
		// ingestion does: a user evicted before the crash whose charges
		// were compacted away behind a snapshot exists only as a spill
		// record, and recreating them bare would reset their budget.
		st, _, err := e.admit(rec.User)
		if err != nil {
			flush()
			return applied, err
		}
		if !e.users.replayCharge(st, rec.Window, rec.Epsilon) {
			continue // already accounted by the snapshot or an earlier record
		}
		for rec.Window > e.window {
			flush() // the close's estimation and decay need the full window
			e.replayCloseLocked()
		}
		if len(rec.Claims) > 0 {
			// Partition by owning shard as Ingest does; the shards are
			// paused, so applying directly is safe.
			for i := range perShard {
				perShard[i] = perShard[i][:0]
			}
			for _, c := range rec.Claims {
				idx := c.Object % len(e.shards)
				perShard[idx] = append(perShard[idx], c)
			}
			for i, part := range perShard {
				if len(part) == 0 {
					continue
				}
				if replayWindowsParallel {
					pending[i] = append(pending[i], replayBatch{user: st.idx, claims: append([]Claim(nil), part...)})
				} else {
					e.shards[i].apply(st.idx, part)
				}
			}
			e.windowClaims.Add(int64(len(rec.Claims)))
			e.totalClaims.Add(int64(len(rec.Claims)))
		}
		applied++
	}
	flush()
	return applied, nil
}

// replayWindowsParallel gates the shard-parallel window replay inside
// ReplayJournal. On by default; the sequential path is kept only as the
// baseline of BenchmarkReplayJournal (before/after recovery time) and as
// a bisection aid, not as a supported mode.
var replayWindowsParallel = true

// ReplayClosesTo re-runs window closes until the engine has target
// closed windows, exactly as replay does between journal records. It is
// the recovery step for closes that no journal record postdates: with a
// snapshot cadence coarser than every close, the only durable trace of
// the last pre-crash close can be the published result itself, and
// without this fast-forward the recovered engine would re-open an
// already-closed window — rejecting returning users as duplicates and
// regressing the public window numbering. A target at or below the
// current counter is a no-op.
func (e *Engine) ReplayClosesTo(target int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if target <= e.window {
		return nil
	}
	release := e.pauseShards()
	defer close(release)
	for e.window < target {
		e.replayCloseLocked()
	}
	return nil
}

// replayCloseLocked re-runs one window close during journal replay: the
// estimation (whose result was already published before the crash) and
// the decay are recomputed so carry weights and statistics advance
// exactly as they did live; the result itself is discarded. A close the
// journal implies but whose claims were never journaled (ClaimWAL off,
// or an empty engine) still advances the window counter. Callers must
// hold e.mu exclusively with the shards paused.
func (e *Engine) replayCloseLocked() {
	// The only estimation error is ErrEmptyWindow (no live statistics) —
	// the journal still proves the window advanced, so the counter does.
	_, _ = e.estimateLocked()
	if e.cfg.Decay < 1 {
		e.eachShardParallel(func(s *shard) { s.decay(e.cfg.Decay) })
	}
	e.window++
	e.windowClaims.Store(0)
	// Replayed closes evict exactly as live closes do, so recovery of a
	// long journal stays within the residency caps too; mid-replay
	// re-spills rewrite records identical to the pre-crash ones.
	e.evictIdleLocked()
}

// validateState checks an EngineState before restoring into an engine
// with numObjects objects.
func validateState(st *EngineState, numObjects int) error {
	if st.Window < 0 || st.WindowClaims < 0 || st.TotalClaims < 0 {
		return fmt.Errorf("%w: negative counters (window=%d windowClaims=%d totalClaims=%d)",
			ErrBadState, st.Window, st.WindowClaims, st.TotalClaims)
	}
	seen := make(map[string]struct{}, len(st.Users))
	for i, u := range st.Users {
		switch {
		case u.ID == "":
			return fmt.Errorf("%w: user %d has empty id", ErrBadState, i)
		case !finite(u.Carry) || u.Carry < 0:
			return fmt.Errorf("%w: user %q carry = %v", ErrBadState, u.ID, u.Carry)
		case !finite(u.CumulativeEpsilon) || u.CumulativeEpsilon < 0:
			return fmt.Errorf("%w: user %q cumulative epsilon = %v", ErrBadState, u.ID, u.CumulativeEpsilon)
		case u.LastWindow < -1 || u.Windows < 0:
			return fmt.Errorf("%w: user %q lastWindow=%d windows=%d", ErrBadState, u.ID, u.LastWindow, u.Windows)
		}
		if _, dup := seen[u.ID]; dup {
			return fmt.Errorf("%w: duplicate user %q", ErrBadState, u.ID)
		}
		seen[u.ID] = struct{}{}
	}
	for _, sn := range st.Stats {
		switch {
		case sn.Object < 0 || sn.Object >= numObjects:
			return fmt.Errorf("%w: stat object %d of %d", ErrBadState, sn.Object, numObjects)
		case !finite(sn.Sum) || !finite(sn.Mass) || sn.Mass <= 0:
			return fmt.Errorf("%w: stat (%d, %q) sum=%v mass=%v", ErrBadState, sn.Object, sn.User, sn.Sum, sn.Mass)
		}
		if _, ok := seen[sn.User]; !ok {
			return fmt.Errorf("%w: stat for unknown user %q", ErrBadState, sn.User)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
