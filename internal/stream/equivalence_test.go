package stream

import (
	"fmt"
	"math"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/truth"
)

// equivTolerance bounds the disagreement allowed between the incremental
// estimator and batch CRH: both run the same equations, differing only
// in floating-point summation order.
const equivTolerance = 1e-9

// randomDataset builds a sparse random dataset in which every object is
// observed by at least one user and every (user, object) pair appears at
// most once — the regime in which the streaming statistics coincide with
// the batch observation matrix.
func randomDataset(t *testing.T, rng *randx.RNG, numUsers, numObjects int) *truth.Dataset {
	t.Helper()
	b := truth.NewBuilder(numUsers, numObjects)
	for s := 0; s < numUsers; s++ {
		sigma := 0.2 + rng.Float64()
		for n := 0; n < numObjects; n++ {
			// ~70% coverage, but always claim the object that shares the
			// user's index modulo so every object keeps at least one claim.
			if rng.Float64() > 0.7 && n != s%numObjects {
				continue
			}
			b.Add(s, n, 5*float64(n%7)+sigma*rng.Norm())
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func userID(s int) string { return fmt.Sprintf("user-%03d", s) }

// ingestDataset streams every claim of the dataset into the engine, one
// batch per user, in user order (matching the registry's index order to
// the dataset's user indices).
func ingestDataset(t *testing.T, e *Engine, ds *truth.Dataset) {
	t.Helper()
	for s := 0; s < ds.NumUsers(); s++ {
		obs, err := ds.UserObservations(s)
		if err != nil {
			t.Fatal(err)
		}
		claims := make([]Claim, len(obs))
		for i, o := range obs {
			claims[i] = Claim{Object: o.Object, Value: o.Value}
		}
		if _, _, err := e.Ingest(userID(s), claims); err != nil {
			t.Fatalf("ingest user %d: %v", s, err)
		}
	}
}

// requireEquivalent asserts the window result matches the batch result
// to within equivTolerance on every truth and every weight.
func requireEquivalent(t *testing.T, ds *truth.Dataset, res *WindowResult, batch *truth.Result) {
	t.Helper()
	for n, want := range batch.Truths {
		if !res.Covered[n] {
			t.Fatalf("object %d not covered by stream estimate", n)
		}
		if d := math.Abs(res.Truths[n] - want); d > equivTolerance {
			t.Errorf("truth[%d]: stream %v, batch %v (|diff| = %g)", n, res.Truths[n], want, d)
		}
	}
	for s, want := range batch.Weights {
		got, ok := res.Weights[userID(s)]
		if !ok {
			if want != 0 {
				t.Errorf("user %d missing from stream weights (batch %v)", s, want)
			}
			continue
		}
		if d := math.Abs(got - want); d > equivTolerance {
			t.Errorf("weight[%d]: stream %v, batch %v (|diff| = %g)", s, got, want, d)
		}
	}
}

// TestSingleWindowMatchesBatchCRH is the correctness anchor of the
// engine: one closed window with decay disabled reproduces batch CRH.
func TestSingleWindowMatchesBatchCRH(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := randx.New(seed)
			ds := randomDataset(t, rng, 40+int(seed), 15)

			crh, err := truth.NewCRH()
			if err != nil {
				t.Fatal(err)
			}
			batch, err := crh.Run(ds)
			if err != nil {
				t.Fatal(err)
			}

			e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := e.Close(); err != nil {
					t.Error(err)
				}
			}()
			ingestDataset(t, e, ds)
			res, err := e.CloseWindow()
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations != batch.Iterations || res.Converged != batch.Converged {
				t.Errorf("iterations/converged: stream %d/%v, batch %d/%v",
					res.Iterations, res.Converged, batch.Iterations, batch.Converged)
			}
			requireEquivalent(t, ds, res, batch)
		})
	}
}

// TestMultiWindowIncrementalMatchesBatch splits the claims over two
// windows: with decay disabled and carryover off, the second window's
// estimate must equal batch CRH over the union of all claims, because
// the sufficient statistics accumulate the full stream.
func TestMultiWindowIncrementalMatchesBatch(t *testing.T) {
	rng := randx.New(42)
	ds := randomDataset(t, rng, 50, 12)

	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := crh.Run(ds)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: 3, DisableCarryover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()

	// First half: even objects only; second half: the rest.
	for s := 0; s < ds.NumUsers(); s++ {
		obs, err := ds.UserObservations(s)
		if err != nil {
			t.Fatal(err)
		}
		var first []Claim
		for _, o := range obs {
			if o.Object%2 == 0 {
				first = append(first, Claim{Object: o.Object, Value: o.Value})
			}
		}
		if len(first) == 0 {
			continue
		}
		if _, _, err := e.Ingest(userID(s), first); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < ds.NumUsers(); s++ {
		obs, err := ds.UserObservations(s)
		if err != nil {
			t.Fatal(err)
		}
		var second []Claim
		for _, o := range obs {
			if o.Object%2 == 1 {
				second = append(second, Claim{Object: o.Object, Value: o.Value})
			}
		}
		if len(second) == 0 {
			continue
		}
		if _, _, err := e.Ingest(userID(s), second); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 2 {
		t.Fatalf("window = %d, want 2", res.Window)
	}
	requireEquivalent(t, ds, res, batch)
}

// TestShardCountInvariance checks the estimate does not depend on the
// shard layout beyond the equivalence tolerance.
func TestShardCountInvariance(t *testing.T) {
	rng := randx.New(7)
	ds := randomDataset(t, rng, 45, 17)
	var ref *WindowResult
	for _, shards := range []int{1, 2, 5, 16} {
		e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		ingestDataset(t, e, ds)
		res, err := e.CloseWindow()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for n := range ref.Truths {
			if d := math.Abs(res.Truths[n] - ref.Truths[n]); d > equivTolerance {
				t.Errorf("shards=%d truth[%d] differs by %g", shards, n, d)
			}
		}
	}
}

// TestCarryoverWarmStart checks that carrying weights between windows
// still lands on (essentially) the batch fixed point when the same
// claims are re-estimated, and never takes more iterations.
func TestCarryoverWarmStart(t *testing.T) {
	rng := randx.New(11)
	ds := randomDataset(t, rng, 40, 10)
	crh, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := crh.Run(ds)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(Config{NumObjects: ds.NumObjects(), NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()
	ingestDataset(t, e, ds)
	first, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	// Close a second window over the unchanged statistics: the warm start
	// begins at the previous fixed point, so it must converge at least as
	// fast and stay close to the batch solution.
	second, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if second.Iterations > first.Iterations {
		t.Errorf("warm start took %d iterations, cold start %d", second.Iterations, first.Iterations)
	}
	for n, want := range batch.Truths {
		if d := math.Abs(second.Truths[n] - want); d > 1e-4 {
			t.Errorf("warm-start truth[%d] drifted %g from batch", n, d)
		}
	}
}
