package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"pptd/internal/core"
	"pptd/internal/randx"
	"pptd/internal/truth"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                          // no objects
		{NumObjects: -1},            // negative objects
		{NumObjects: 5, Decay: 1.5}, // decay out of range
		{NumObjects: 5, Decay: math.NaN()},
		{NumObjects: 5, Tolerance: -1},
		{NumObjects: 5, MaxIterations: -3},
		{NumObjects: 5, NumShards: -2},
		{NumObjects: 5, Lambda1: 1},                          // accounting without lambda2/delta
		{NumObjects: 5, Lambda1: 1, Lambda2: 2},              // missing delta
		{NumObjects: 5, Lambda1: 1, Lambda2: 2, Delta: 1.5},  // delta out of range
		{NumObjects: 5, EpsilonBudget: 1},                    // budget without accounting
		{NumObjects: 5, Lambda1: -1, Lambda2: 2, Delta: 0.3}, // bad lambda1
		{NumObjects: 5, Lambda1: 1, Lambda2: -2, Delta: 0.3}, // bad lambda2
		{NumObjects: 5, EpsilonBudget: math.Inf(1), Lambda1: 1, Lambda2: 2, Delta: 0.3},
		{NumObjects: 5, Distance: truth.Distance(9)}, // unknown distance
		{NumObjects: 5, Lambda2: math.NaN()},         // bad lambda2 without accounting
		{NumObjects: 5, Lambda2: math.Inf(1)},        // bad lambda2 without accounting
		{NumObjects: 5, Lambda2: -1},                 // bad lambda2 without accounting
		{NumObjects: 5, Lambda1: 1, Delta: 0.3},      // accounting with lambda2 = 0
		{NumObjects: 5, Delta: 0.3},                  // delta without accounting
		{NumObjects: 5, Delta: math.NaN()},           // NaN delta without accounting
		{NumObjects: 5, PerUserReport: true},         // per-user report without accounting
		{NumObjects: 5, Ledger: nopLedger{}},         // ledger without accounting
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		} else if !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error %v does not wrap ErrBadConfig", i, err)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	e, err := New(Config{NumObjects: 3, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()
	for _, tc := range []struct {
		user   string
		claims []Claim
	}{
		{"", []Claim{{Object: 0, Value: 1}}},
		{"u", nil},
		{"u", []Claim{{Object: 3, Value: 1}}},
		{"u", []Claim{{Object: -1, Value: 1}}},
		{"u", []Claim{{Object: 0, Value: math.NaN()}}},
		{"u", []Claim{{Object: 0, Value: math.Inf(-1)}}},
	} {
		if _, _, err := e.Ingest(tc.user, tc.claims); !errors.Is(err, ErrBadClaim) {
			t.Errorf("Ingest(%q, %v) = %v, want ErrBadClaim", tc.user, tc.claims, err)
		}
	}
	if _, err := e.CloseWindow(); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("CloseWindow on empty engine = %v, want ErrEmptyWindow", err)
	}
	if e.Snapshot() != nil {
		t.Error("Snapshot before any window, want nil")
	}
}

func TestEngineClosed(t *testing.T) {
	e, err := New(Config{NumObjects: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("u", []Claim{{Object: 0, Value: 1}}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Ingest after Close = %v", err)
	}
	if _, err := e.CloseWindow(); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("CloseWindow after Close = %v", err)
	}
	if err := e.Close(); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("second Close = %v", err)
	}
}

// TestConcurrentIngest hammers the engine from many goroutines while
// windows close concurrently; run with -race this doubles as the data
// race check the subsystem is gated on.
func TestConcurrentIngest(t *testing.T) {
	const (
		writers          = 8
		batchesPerWriter = 40
		numObjects       = 23
	)
	e, err := New(Config{NumObjects: numObjects, NumShards: 4, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()

	var wg sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randx.New(uint64(w + 1))
			var sent int64
			for b := 0; b < batchesPerWriter; b++ {
				claims := make([]Claim, 1+rng.Intn(numObjects))
				for i := range claims {
					claims[i] = Claim{Object: rng.Intn(numObjects), Value: rng.Norm()}
				}
				if _, _, err := e.Ingest(fmt.Sprintf("w%d-u%d", w, b%5), claims); err != nil {
					t.Error(err)
					return
				}
				sent += int64(len(claims))
			}
			mu.Lock()
			total += sent
			mu.Unlock()
		}(w)
	}
	// Close windows concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if _, err := e.CloseWindow(); err != nil && !errors.Is(err, ErrEmptyWindow) {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalClaims != total {
		t.Errorf("TotalClaims = %d, want %d", res.TotalClaims, total)
	}
	if got := e.Snapshot(); got != res {
		t.Error("Snapshot does not return the latest window result")
	}
	if e.Window() != res.Window {
		t.Errorf("Window() = %d, want %d", e.Window(), res.Window)
	}
}

// TestDecayForgetsOldClaims checks the exponential window decay: a stale
// claim loses influence against fresh ones, and fully idle statistics
// are eventually evicted.
func TestDecayForgetsOldClaims(t *testing.T) {
	e, err := New(Config{NumObjects: 1, NumShards: 1, Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()
	if _, _, err := e.Ingest("u", []Claim{{Object: 0, Value: 10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("u", []Claim{{Object: 0, Value: 0}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	// Decayed mean: (0.5*10 + 0) / (0.5 + 1) = 10/3; an undecayed mean
	// would sit at 5.
	want := 10.0 / 3.0
	if d := math.Abs(res.Truths[0] - want); d > 1e-12 {
		t.Errorf("decayed truth = %v, want %v", res.Truths[0], want)
	}

	// With no further claims the statistic decays to eviction and the
	// stream eventually reports an empty window.
	var evicted bool
	for i := 0; i < 64; i++ {
		if _, err := e.CloseWindow(); errors.Is(err, ErrEmptyWindow) {
			evicted = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !evicted {
		t.Error("idle statistics never evicted under decay")
	}
}

// TestBudgetEnforcement checks per-window epsilon composition against an
// enforced cumulative cap.
func TestBudgetEnforcement(t *testing.T) {
	const (
		lambda1 = 1.0
		lambda2 = 2.0
		delta   = 0.3
	)
	acct, err := core.NewAccountant(lambda1)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewMechanism(lambda2)
	if err != nil {
		t.Fatal(err)
	}
	epsWindow, err := acct.Epsilon(mech, delta)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(Config{
		NumObjects:    2,
		NumShards:     1,
		Lambda1:       lambda1,
		Lambda2:       lambda2,
		Delta:         delta,
		EpsilonBudget: 2.5 * epsWindow, // affords exactly two windows
		PerUserReport: true,            // this test inspects the per-user map
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := e.EpsilonPerWindow(); math.Abs(got-epsWindow) > 1e-12 {
		t.Fatalf("EpsilonPerWindow = %v, want %v", got, epsWindow)
	}

	claims := []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}
	for w := 0; w < 2; w++ {
		_, window, err := e.Ingest("alice", claims)
		if err != nil {
			t.Fatalf("window %d ingest: %v", w, err)
		}
		if window != w+1 {
			t.Fatalf("ingest reported window %d, want %d", window, w+1)
		}
		// A second batch in the same window is a second perturbed release;
		// the accounting unit matches the release unit, so it is rejected
		// instead of being averaged in for free.
		if _, _, err := e.Ingest("alice", claims); !errors.Is(err, ErrDuplicateWindow) {
			t.Fatalf("window %d second ingest = %v, want ErrDuplicateWindow", w, err)
		}
		res, err := e.CloseWindow()
		if err != nil {
			t.Fatal(err)
		}
		if res.Privacy == nil {
			t.Fatal("no privacy report with accounting enabled")
		}
		wantCum := float64(w+1) * epsWindow
		if got := res.Privacy.PerUser["alice"]; math.Abs(got-wantCum) > 1e-9 {
			t.Errorf("window %d: cumulative eps = %v, want %v", w+1, got, wantCum)
		}
		if res.Privacy.MaxCumulative != res.Privacy.PerUser["alice"] {
			t.Errorf("MaxCumulative = %v, want %v", res.Privacy.MaxCumulative, res.Privacy.PerUser["alice"])
		}
		if res.Privacy.MaxWindows != w+1 {
			t.Errorf("MaxWindows = %d, want %d", res.Privacy.MaxWindows, w+1)
		}
		wantDelta := float64(w+1) * delta
		if math.Abs(res.Privacy.CumulativeDelta-wantDelta) > 1e-12 {
			t.Errorf("CumulativeDelta = %v, want %v", res.Privacy.CumulativeDelta, wantDelta)
		}
	}

	// Third window: alice is out of budget, bob is fresh.
	if _, _, err := e.Ingest("alice", claims); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("over-budget ingest = %v, want ErrBudgetExhausted", err)
	}
	if _, _, err := e.Ingest("bob", claims); err != nil {
		t.Errorf("fresh user rejected: %v", err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy.ExhaustedUsers != 1 {
		t.Errorf("ExhaustedUsers = %d, want 1", res.Privacy.ExhaustedUsers)
	}
}

// TestReleaseContract checks that with accounting enabled the engine
// admits exactly one perturbed release per (user, object, window) — the
// unit the per-window epsilon is derived for — while without accounting
// repeat submissions remain a plain aggregation feature.
func TestReleaseContract(t *testing.T) {
	acct, err := New(Config{
		NumObjects: 2,
		NumShards:  1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := acct.Close(); err != nil {
			t.Error(err)
		}
	}()

	// A batch carrying the same object twice is two releases of one
	// reading; rejected up front.
	dup := []Claim{{Object: 0, Value: 1}, {Object: 0, Value: 2}}
	if _, _, err := acct.Ingest("u", dup); !errors.Is(err, ErrBadClaim) {
		t.Errorf("duplicate-object batch = %v, want ErrBadClaim", err)
	}

	claims := []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}
	if _, _, err := acct.Ingest("u", claims); err != nil {
		t.Fatal(err)
	}
	if _, _, err := acct.Ingest("u", claims); !errors.Is(err, ErrDuplicateWindow) {
		t.Errorf("same-window resubmission = %v, want ErrDuplicateWindow", err)
	}
	// Another user in the same window is fine, and the same user is
	// welcome back once the window advances.
	if _, _, err := acct.Ingest("v", claims); err != nil {
		t.Errorf("other user rejected: %v", err)
	}
	if _, err := acct.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := acct.Ingest("u", claims); err != nil {
		t.Errorf("next-window resubmission rejected: %v", err)
	}

	// Without accounting there is no privacy contract to enforce:
	// repeat submissions fold into the decayed mean.
	plain, err := New(Config{NumObjects: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := plain.Close(); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 3; i++ {
		if _, _, err := plain.Ingest("u", dup); err != nil {
			t.Fatalf("unaccounted resubmission %d: %v", i, err)
		}
	}
	res, err := plain.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5; math.Abs(res.Truths[0]-want) > 1e-12 {
		t.Errorf("unaccounted mean = %v, want %v", res.Truths[0], want)
	}
}

// TestUncoveredObjectsAreNaN checks partial coverage: objects nobody
// claimed stay NaN and are marked uncovered.
func TestUncoveredObjectsAreNaN(t *testing.T) {
	e, err := New(Config{NumObjects: 4, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	}()
	if _, _, err := e.Ingest("u", []Claim{{Object: 1, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if n == 1 {
			if !res.Covered[1] || res.Truths[1] != 3 {
				t.Errorf("covered object: covered=%v truth=%v", res.Covered[1], res.Truths[1])
			}
			continue
		}
		if res.Covered[n] || !math.IsNaN(res.Truths[n]) {
			t.Errorf("object %d: covered=%v truth=%v, want uncovered NaN", n, res.Covered[n], res.Truths[n])
		}
	}
}
