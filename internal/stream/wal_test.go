package stream

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
)

func TestConfigRejectsClaimWALWithoutLedger(t *testing.T) {
	if _, err := New(Config{
		NumObjects: 1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
		ClaimWAL:   true,
	}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ClaimWAL without Ledger = %v, want ErrBadConfig", err)
	}
}

// TestClaimWALRecordsCarryClaims checks that the ledger record carries
// the submission's claims exactly when the claim WAL is on: one durable
// append covers both the charge and the statistics it paid for.
func TestClaimWALRecordsCarryClaims(t *testing.T) {
	for _, wal := range []bool{false, true} {
		led := &memLedger{}
		e, err := New(Config{
			NumObjects: 3,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
			Ledger:     led,
			ClaimWAL:   wal,
		})
		if err != nil {
			t.Fatal(err)
		}
		claims := []Claim{{Object: 0, Value: 1.5}, {Object: 2, Value: -3}}
		if _, _, err := e.Ingest("alice", claims); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if len(led.recs) != 1 {
			t.Fatalf("wal=%v: %d records, want 1", wal, len(led.recs))
		}
		rec := led.recs[0]
		if rec.User != "alice" || rec.Window != 0 || rec.Epsilon <= 0 {
			t.Errorf("wal=%v: record = %+v", wal, rec)
		}
		if !wal && rec.Claims != nil {
			t.Errorf("claims journaled without ClaimWAL: %+v", rec.Claims)
		}
		if wal {
			if len(rec.Claims) != len(claims) {
				t.Fatalf("journaled claims = %+v, want %+v", rec.Claims, claims)
			}
			for i, c := range claims {
				if rec.Claims[i] != c {
					t.Errorf("journaled claim %d = %+v, want %+v", i, rec.Claims[i], c)
				}
			}
		}
	}
}

// compareWindowResults asserts two window results agree within tol on
// everything the estimator publishes.
func compareWindowResults(t *testing.T, got, want *WindowResult, tol float64) {
	t.Helper()
	if got.Window != want.Window || got.TotalClaims != want.TotalClaims ||
		got.WindowClaims != want.WindowClaims || got.ActiveUsers != want.ActiveUsers {
		t.Fatalf("result metadata = window %d / %d claims (%d this window, %d users), want %d / %d (%d, %d)",
			got.Window, got.TotalClaims, got.WindowClaims, got.ActiveUsers,
			want.Window, want.TotalClaims, want.WindowClaims, want.ActiveUsers)
	}
	for n := range want.Truths {
		if got.Covered[n] != want.Covered[n] {
			t.Fatalf("object %d covered = %v, want %v", n, got.Covered[n], want.Covered[n])
		}
		if want.Covered[n] && math.Abs(got.Truths[n]-want.Truths[n]) > tol {
			t.Errorf("object %d truth differs by %g", n, math.Abs(got.Truths[n]-want.Truths[n]))
		}
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("weights for %d users, want %d", len(got.Weights), len(want.Weights))
	}
	for id, w := range want.Weights {
		if math.Abs(got.Weights[id]-w) > tol {
			t.Errorf("weight %s differs by %g", id, math.Abs(got.Weights[id]-w))
		}
	}
	if want.Privacy != nil {
		if got.Privacy == nil {
			t.Fatal("privacy report lost")
		}
		if math.Abs(got.Privacy.MaxCumulative-want.Privacy.MaxCumulative) > tol ||
			got.Privacy.MaxWindows != want.Privacy.MaxWindows ||
			got.Privacy.TrackedUsers != want.Privacy.TrackedUsers {
			t.Errorf("privacy = %+v, want %+v", got.Privacy, want.Privacy)
		}
	}
}

// TestReplayJournalReconstructsEngine is the claim WAL's reason to
// exist: an engine rebuilt from nothing but the journaled records —
// including the intermediate window closes the journal implies — must
// produce the same next-window estimate as the uninterrupted engine,
// even though no snapshot was ever written.
func TestReplayJournalReconstructsEngine(t *testing.T) {
	const (
		numObjects = 6
		numUsers   = 9
		numWindows = 3
		tol        = 1e-9
	)
	cfg := Config{
		NumObjects: numObjects,
		NumShards:  3,
		Decay:      0.85,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
	led := &memLedger{}
	walCfg := cfg
	walCfg.Ledger = led
	walCfg.ClaimWAL = true
	live, err := New(walCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(23)
	for w := 0; w < numWindows; w++ {
		ingestWindow(t, live, windowBatches(rng, numUsers, numObjects))
		if w < numWindows-1 {
			// The final window stays open: the "crash" hits mid-window.
			if _, err := live.CloseWindow(); err != nil {
				t.Fatal(err)
			}
		}
	}

	rec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	applied, err := rec.ReplayJournal(led.recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(led.recs) {
		t.Fatalf("applied %d of %d records", applied, len(led.recs))
	}
	if rec.Window() != live.Window() {
		t.Fatalf("replayed window counter = %d, want %d", rec.Window(), live.Window())
	}

	want, err := live.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := rec.CloseWindow()
	if err != nil {
		t.Fatal(err)
	}
	compareWindowResults(t, got, want, tol)
}

// TestReplayJournalIdempotent feeds the same records twice (and once
// more on top of a snapshot that already covers them): budgets, claim
// counters, and statistics must not double-fold.
func TestReplayJournalIdempotent(t *testing.T) {
	recs := []ChargeRecord{
		{User: "alice", Window: 0, Epsilon: 0.5, Claims: []Claim{{Object: 0, Value: 2}}},
		{User: "bob", Window: 0, Epsilon: 0.5, Claims: []Claim{{Object: 1, Value: 4}}},
		{User: "alice", Window: 1, Epsilon: 0.5, Claims: []Claim{{Object: 0, Value: 6}}},
	}
	e, err := New(Config{NumObjects: 2, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	for _, pass := range []int{1, 2} {
		applied, err := e.ReplayJournal(recs)
		if err != nil {
			t.Fatal(err)
		}
		if pass == 1 && applied != len(recs) {
			t.Fatalf("first pass applied %d of %d", applied, len(recs))
		}
		if pass == 2 && applied != 0 {
			t.Fatalf("second pass re-applied %d records", applied)
		}
	}
	if e.Window() != 1 || e.TotalClaims() != 3 {
		t.Fatalf("window %d / %d claims, want 1 / 3", e.Window(), e.TotalClaims())
	}
	st, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Users) != 2 {
		t.Fatalf("users = %+v", st.Users)
	}
	if a := st.Users[0]; math.Abs(a.CumulativeEpsilon-1) > 1e-12 || a.LastWindow != 1 || a.Windows != 2 {
		t.Errorf("alice = %+v, want cum 1 over windows {0,1}", a)
	}

	// A restored snapshot that already covers the records: replay on top
	// must be a no-op too.
	re, err := New(Config{NumObjects: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if err := re.Restore(st); err != nil {
		t.Fatal(err)
	}
	applied, err := re.ReplayJournal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("replay over covering snapshot applied %d records", applied)
	}
	if re.TotalClaims() != 3 {
		t.Errorf("claims double-folded: %d", re.TotalClaims())
	}
}

// TestReplayJournalValidation checks that invalid records are skipped
// (matching ReplayCharges) and that claims that no longer fit the
// engine fail loudly with ErrBadState.
func TestReplayJournalValidation(t *testing.T) {
	e, err := New(Config{NumObjects: 2, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	applied, err := e.ReplayJournal([]ChargeRecord{
		{User: "", Window: 0, Epsilon: 1},           // no user
		{User: "a", Window: -1, Epsilon: 1},         // bad window
		{User: "a", Window: 0, Epsilon: 0},          // no charge
		{User: "a", Window: 0, Epsilon: math.NaN()}, // non-finite
		{User: "ok", Window: 0, Epsilon: 0.5},       // fine
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d records, want 1 (the valid one)", applied)
	}
	if _, err := e.ReplayJournal([]ChargeRecord{
		{User: "b", Window: 1, Epsilon: 0.5, Claims: []Claim{{Object: 7, Value: 1}}},
	}); !errors.Is(err, ErrBadState) {
		t.Fatalf("out-of-range replay claim = %v, want ErrBadState", err)
	}
	if _, err := e.ReplayJournal([]ChargeRecord{
		{User: "c", Window: 1, Epsilon: 0.5, Claims: []Claim{{Object: 0, Value: math.Inf(1)}}},
	}); !errors.Is(err, ErrBadState) {
		t.Fatalf("non-finite replay claim = %v, want ErrBadState", err)
	}
}

// TestRestoreLastResult seeds a persisted result into a fresh engine:
// Snapshot must serve it verbatim, and a nil seed must stay a no-op.
func TestRestoreLastResult(t *testing.T) {
	e, err := New(Config{NumObjects: 1, NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	e.RestoreLastResult(nil)
	if e.Snapshot() != nil {
		t.Fatal("nil seed produced a snapshot")
	}
	res := &WindowResult{Window: 4, Truths: []float64{2.5}, Covered: []bool{true}}
	e.RestoreLastResult(res)
	if got := e.Snapshot(); got != res {
		t.Fatalf("Snapshot = %+v, want the seeded result", got)
	}
}

// TestReplayedUserKeepsReleaseContract: a user whose charge was only in
// the journal must still be refused a duplicate submission into the
// re-opened window after replay.
func TestReplayedUserKeepsReleaseContract(t *testing.T) {
	led := &memLedger{}
	cfg := Config{
		NumObjects: 1,
		NumShards:  1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
		Ledger:     led,
		ClaimWAL:   true,
	}
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := live.Ingest("alice", []Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := New(Config{NumObjects: 1, NumShards: 1, Lambda1: 1, Lambda2: 2, Delta: 0.3, Ledger: &memLedger{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	if _, err := rec.ReplayJournal(led.recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Ingest("alice", []Claim{{Object: 0, Value: 2}}); !errors.Is(err, ErrDuplicateWindow) {
		t.Fatalf("replayed user resubmitting the open window = %v, want ErrDuplicateWindow", err)
	}
}
