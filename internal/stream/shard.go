package stream

import (
	"math"
	"sort"
)

// evictFloor is the decayed-mass threshold below which a sufficient
// statistic is dropped; at decay d it bounds the lifetime of an idle
// (object, user) pair to log(evictFloor)/log(d) windows.
const evictFloor = 1e-9

// stat is the exponentially-decayed sufficient statistic of one
// (object, user) pair: the decayed sum of claimed values and the decayed
// claim mass. The effective claim the estimator sees is sum/mass, the
// decay-weighted mean of everything the user ever claimed on the object.
type stat struct {
	sum  float64
	mass float64
}

// pauseReq asks a shard worker to quiesce: it closes acquired once all
// earlier batches are applied, then blocks until release is closed,
// leaving the coordinator exclusive access to the shard state.
type pauseReq struct {
	acquired chan struct{}
	release  chan struct{}
}

// shardMsg is one hand-off on a shard's ingestion channel: either a batch
// of claims by one user (ctl nil) or a pause request. When buf is set,
// claims is a pooled slice the worker returns to claimBufPool after
// applying it.
type shardMsg struct {
	user   int
	claims []Claim
	buf    *claimBuf
	ctl    *pauseReq
}

// shard owns the sufficient statistics of the objects hashed to it. The
// state is mutated only by the worker goroutine (run) or, while paused,
// by the coordinator.
type shard struct {
	in    chan shardMsg
	stats map[int]map[int]*stat // object -> user index -> stat
}

func newShard(queueDepth int) *shard {
	return &shard{
		in:    make(chan shardMsg, queueDepth),
		stats: make(map[int]map[int]*stat),
	}
}

// run is the shard worker loop; it exits when the channel closes.
func (s *shard) run() {
	for m := range s.in {
		if m.ctl != nil {
			close(m.ctl.acquired)
			<-m.ctl.release
			continue
		}
		s.apply(m.user, m.claims)
		if m.buf != nil {
			m.buf.claims = m.claims[:0]
			claimBufPool.Put(m.buf)
		}
	}
}

func (s *shard) apply(user int, claims []Claim) {
	for _, c := range claims {
		users := s.stats[c.Object]
		if users == nil {
			users = make(map[int]*stat)
			s.stats[c.Object] = users
		}
		st := users[user]
		if st == nil {
			st = &stat{}
			users[user] = st
		}
		st.sum += c.Value
		st.mass++
	}
}

// decay scales every statistic by the retention factor and evicts the
// ones whose mass fell below the floor. Called only while paused.
func (s *shard) decay(factor float64) {
	for obj, users := range s.stats {
		for user, st := range users {
			st.sum *= factor
			st.mass *= factor
			if st.mass < evictFloor {
				delete(users, user)
			}
		}
		if len(users) == 0 {
			delete(s.stats, obj)
		}
	}
}

// uv is one effective claim: the user index and the decay-weighted mean
// value of that user's claims on the object.
type uv struct {
	user  int
	value float64
}

// shardView is the estimator's frozen, sorted view of one shard: covered
// objects in ascending order, each with its effective claims sorted by
// user index, plus the per-object population standard deviation of the
// effective claims (the scale reference of the normalized distance).
type shardView struct {
	objects []int
	claims  [][]uv
	stds    []float64
}

// view materializes the shard's statistics for estimation. Called only
// while paused.
func (s *shard) view() *shardView {
	v := &shardView{
		objects: make([]int, 0, len(s.stats)),
		claims:  make([][]uv, 0, len(s.stats)),
		stds:    make([]float64, 0, len(s.stats)),
	}
	for obj := range s.stats {
		v.objects = append(v.objects, obj)
	}
	sort.Ints(v.objects)
	for _, obj := range v.objects {
		users := s.stats[obj]
		cs := make([]uv, 0, len(users))
		for user, st := range users {
			cs = append(cs, uv{user: user, value: st.sum / st.mass})
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].user < cs[j].user })
		v.claims = append(v.claims, cs)
		v.stds = append(v.stds, popStd(cs))
	}
	return v
}

// popStd is the population standard deviation of the effective claims,
// matching truth.Dataset.ObjectStdDevs (objects with one claim get 0).
func popStd(cs []uv) float64 {
	var sum float64
	for _, c := range cs {
		sum += c.value
	}
	mean := sum / float64(len(cs))
	var ss float64
	for _, c := range cs {
		d := c.value - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(cs)))
}
