package stream

import (
	"errors"
	"strconv"
	"time"

	"pptd/internal/obs"
)

// Bucket bounds for the engine's two histograms: window-close duration
// in seconds (estimation is CPU-bound, 100µs to 10s covers toy and
// production object counts) and per-user cumulative epsilon (doubling
// from a fraction of one window's charge up past any sane budget).
var (
	closeDurationBounds = []float64{
		100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5, 10,
	}
	cumulativeEpsilonBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128}
	// estimateIterationBounds buckets per-window iteration counts up to
	// the default cap (truth.DefaultMaxIterations = 100).
	estimateIterationBounds = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 100}
)

// engineMetrics holds the engine's registry instruments. A nil
// *engineMetrics (no Config.Metrics) is valid and makes every method a
// no-op, so the hot path carries no conditionals beyond one nil check.
type engineMetrics struct {
	claimsIngested   *obs.Counter
	rejected         *obs.CounterVec
	windowsClosed    *obs.Counter
	closeDuration    *obs.HistogramMetric
	cumEps           *obs.HistogramMetric
	estimateIters    *obs.HistogramMetric
	estimateDuration *obs.HistogramMetric
	usersEvicted     *obs.Counter
	usersReadmitted  *obs.Counter
	spillFailures    *obs.Counter
}

func newEngineMetrics(reg *obs.Registry, estimator string) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		estimateIters: reg.Histogram("pptd_stream_estimate_iterations",
			"Iterations per estimation run, labeled by the configured estimator.",
			estimateIterationBounds, "estimator", estimator),
		estimateDuration: reg.Histogram("pptd_stream_estimate_duration_seconds",
			"Wall time per estimation run (the iteration loop only, excluding "+
				"shard drain, decay, and publish), labeled by the configured estimator.",
			closeDurationBounds, "estimator", estimator),
		claimsIngested: reg.Counter("pptd_stream_claims_ingested_total",
			"Claims accepted into the stream (after validation, budget, and ledger)."),
		rejected: reg.CounterVec("pptd_stream_submissions_rejected_total",
			"Submissions rejected before folding into the statistics, by reason.",
			"reason"),
		windowsClosed: reg.Counter("pptd_stream_windows_closed_total",
			"Windows closed (estimates published)."),
		closeDuration: reg.Histogram("pptd_stream_window_close_duration_seconds",
			"Wall time per window close: shard drain, estimation, decay, and publish.",
			closeDurationBounds),
		cumEps: reg.Histogram("pptd_stream_user_cumulative_epsilon",
			"Per-user cumulative epsilon observed at each accepted charge; the "+
				"distribution of budget spending across the stream's submissions.",
			cumulativeEpsilonBounds),
		usersEvicted: reg.Counter("pptd_stream_users_evicted_total",
			"Users evicted from the resident set at window close, their state "+
				"spilled durably to the user store (residency caps)."),
		usersReadmitted: reg.Counter("pptd_stream_users_readmitted_total",
			"Previously evicted users re-admitted from the user store on a new claim."),
		spillFailures: reg.Counter("pptd_stream_user_spill_failures_total",
			"Eviction rounds abandoned because the spill could not be made "+
				"durable; the users stayed resident and the next close retries."),
	}
}

// registerEngineGauges exposes the live queue and population gauges;
// called once from New, after the shards exist.
func registerEngineGauges(reg *obs.Registry, e *Engine) {
	if reg == nil {
		return
	}
	for i := range e.shards {
		s := e.shards[i]
		reg.GaugeFunc("pptd_stream_shard_queue_depth",
			"Claim batches buffered in each shard's ingestion channel (backpressure).",
			func() float64 { return float64(len(s.in)) },
			"shard", strconv.Itoa(i))
	}
	reg.GaugeFunc("pptd_stream_tracked_users",
		"Distinct client IDs the engine accounts for: resident plus "+
			"evicted-to-store (privacy accounting never forgets a charge).",
		func() float64 { return float64(e.users.tracked()) })
	reg.GaugeFunc("pptd_stream_resident_users",
		"Users held resident in memory; bounded by the configured residency "+
			"caps (MaxResidentUsers / ResidentBytes), equal to tracked users "+
			"when unbounded.",
		func() float64 { return float64(e.users.count()) })
	reg.GaugeFunc("pptd_stream_resident_bytes",
		"Estimated in-memory footprint of the resident user set (registry "+
			"bookkeeping plus estimator slots).",
		func() float64 { return float64(e.users.bytes()) })
}

func (m *engineMetrics) ingested(n int) {
	if m != nil {
		m.claimsIngested.Add(int64(n))
	}
}

// reject counts one refused submission under its taxonomy reason,
// derived from the sentinel the caller is about to return.
func (m *engineMetrics) reject(err error) {
	if m == nil {
		return
	}
	reason := "bad_claim"
	switch {
	case errors.Is(err, ErrBudgetExhausted):
		reason = "budget_exhausted"
	case errors.Is(err, ErrDuplicateWindow):
		reason = "duplicate_window"
	case errors.Is(err, ErrLedger):
		reason = "ledger"
	case errors.Is(err, ErrEngineClosed):
		reason = "engine_closed"
	case errors.Is(err, ErrUserStore):
		reason = "user_store"
	}
	m.rejected.With(reason).Inc()
}

// estimated records one estimation run (including the re-runs of journal
// replay, which estimate exactly as live closes did).
func (m *engineMetrics) estimated(iterations int, elapsed time.Duration) {
	if m != nil {
		m.estimateIters.Observe(float64(iterations))
		m.estimateDuration.Observe(elapsed.Seconds())
	}
}

func (m *engineMetrics) windowClosed(elapsed time.Duration) {
	if m != nil {
		m.windowsClosed.Inc()
		m.closeDuration.Observe(elapsed.Seconds())
	}
}

func (m *engineMetrics) observeCumEps(cum float64) {
	if m != nil && cum > 0 {
		m.cumEps.Observe(cum)
	}
}

func (m *engineMetrics) evicted(n int) {
	if m != nil {
		m.usersEvicted.Add(int64(n))
	}
}

func (m *engineMetrics) readmitted(n int) {
	if m != nil {
		m.usersReadmitted.Add(int64(n))
	}
}

func (m *engineMetrics) spillFailed() {
	if m != nil {
		m.spillFailures.Inc()
	}
}
