package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pptd/internal/randx"
)

// memUserStore is an in-memory UserStore: durable enough for engine-level
// property tests (the fake outlives the engine, the way the file-backed
// store outlives the process), with injectable failures.
type memUserStore struct {
	mu     sync.Mutex
	m      map[string]UserSpill
	spills int
	loads  int
	fail   bool
}

func newMemUserStore() *memUserStore {
	return &memUserStore{m: make(map[string]UserSpill)}
}

func (s *memUserStore) SpillUsers(users []UserSpill) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("injected spill failure")
	}
	for _, sp := range users {
		s.m[sp.ID] = sp
		s.spills++
	}
	return nil
}

func (s *memUserStore) LoadUser(id string) (*UserSpill, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return nil, false, errors.New("injected load failure")
	}
	sp, ok := s.m[id]
	if !ok {
		return nil, false, nil
	}
	s.loads++
	cp := sp
	return &cp, true, nil
}

func (s *memUserStore) counts() (spills, loads int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spills, s.loads
}

// churnDecay is small enough that every sufficient statistic dies in a
// single decay pass (mass 1 * churnDecay < the 1e-9 evict floor), so
// after each window close every user is idle and eligible for eviction.
const churnDecay = 1e-10

// epsilonPerWindow constructs a throwaway accounted engine to learn what
// one window costs under the given accounting parameters.
func epsilonPerWindow(t *testing.T, cfg Config) float64 {
	t.Helper()
	cfg.UserStore = nil
	cfg.MaxResidentUsers = 0
	cfg.ResidentBytes = 0
	cfg.EpsilonBudget = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	return e.EpsilonPerWindow()
}

// churnWindows pre-generates the claim batches of a churn run, staggered
// so users go idle on different windows (user u skips windows where
// (u+w)%4 == 0): exhaustion then arrives at different times per user and
// no window ever ends up empty.
func churnWindows(rng *randx.RNG, numWindows, numUsers, numObjects int) []map[string][]Claim {
	windows := make([]map[string][]Claim, numWindows)
	for w := range windows {
		windows[w] = windowBatches(rng, numUsers, numObjects)
		for u := 0; u < numUsers; u++ {
			if (u+w)%4 == 0 {
				delete(windows[w], fmt.Sprintf("user-%02d", u))
			}
		}
	}
	return windows
}

// ingestBoth submits one window's batches to both engines and asserts
// they accept and reject identically: an exhausted user must be refused
// by the bounded engine (where they may be evicted, spilled, and
// re-admitted) exactly when the unbounded engine refuses them.
func ingestBoth(t *testing.T, ref, bounded *Engine, numUsers int, batches map[string][]Claim) {
	t.Helper()
	for u := 0; u < numUsers; u++ {
		id := fmt.Sprintf("user-%02d", u)
		claims, ok := batches[id]
		if !ok {
			continue
		}
		_, _, refErr := ref.Ingest(id, claims)
		_, _, bndErr := bounded.Ingest(id, claims)
		switch {
		case refErr == nil && bndErr == nil:
		case errors.Is(refErr, ErrBudgetExhausted) && errors.Is(bndErr, ErrBudgetExhausted):
		default:
			t.Fatalf("ingest %s diverged: unbounded err=%v, bounded err=%v", id, refErr, bndErr)
		}
	}
}

// TestEvictionChurnEquivalence is the tentpole property: an engine that
// evicts every idle user at every window close (MaxResidentUsers 1, so
// the whole fleet cycles through spill and re-admission each window)
// publishes the same truths, weights, and privacy aggregates as an
// unbounded engine, within 1e-9, across estimators, seeds, and shard
// counts — including users exhausting their budget mid-churn and staying
// rejected from the spill store.
func TestEvictionChurnEquivalence(t *testing.T) {
	const (
		numObjects = 5
		numUsers   = 8
		numWindows = 6
	)
	for _, est := range estimatorsUnderTest(t) {
		for _, seed := range []uint64{1, 7, 13} {
			for _, shards := range []int{1, 3} {
				est, seed, shards := est, seed, shards
				t.Run(fmt.Sprintf("%s/seed-%d/shards-%d", est, seed, shards), func(t *testing.T) {
					cfg := Config{
						NumObjects: numObjects,
						NumShards:  shards,
						Estimator:  est,
						Decay:      churnDecay,
						Lambda1:    1.5,
						Lambda2:    2,
						Delta:      0.3,
					}
					// Budget enough for 4 of the 6 windows, so the last two
					// windows exercise budget_exhausted against spilled state.
					cfg.EpsilonBudget = 4.5 * epsilonPerWindow(t, cfg)

					windows := churnWindows(randx.New(seed), numWindows, numUsers, numObjects)

					ref, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = ref.Close() }()

					store := newMemUserStore()
					bndCfg := cfg
					bndCfg.MaxResidentUsers = 1
					bndCfg.UserStore = store
					bounded, err := New(bndCfg)
					if err != nil {
						t.Fatal(err)
					}
					defer func() { _ = bounded.Close() }()

					for w := 0; w < numWindows; w++ {
						ingestBoth(t, ref, bounded, numUsers, windows[w])
						want, err := ref.CloseWindow()
						if err != nil {
							t.Fatalf("unbounded close %d: %v", w, err)
						}
						got, err := bounded.CloseWindow()
						if err != nil {
							t.Fatalf("bounded close %d: %v", w, err)
						}
						sameWindowResult(t, fmt.Sprintf("window %d", w), want, got)
						if want.Privacy != nil && got.Privacy != nil {
							if got.Privacy.TrackedUsers != want.Privacy.TrackedUsers {
								t.Errorf("window %d: tracked users = %d, want %d",
									w, got.Privacy.TrackedUsers, want.Privacy.TrackedUsers)
							}
							if got.Privacy.ExhaustedUsers != want.Privacy.ExhaustedUsers {
								t.Errorf("window %d: exhausted users = %d, want %d",
									w, got.Privacy.ExhaustedUsers, want.Privacy.ExhaustedUsers)
							}
						}
						if n := bounded.ResidentUsers(); n > 1 {
							t.Errorf("window %d: %d residents after close, cap is 1", w, n)
						}
					}
					if spills, loads := store.counts(); spills == 0 || loads == 0 {
						t.Errorf("churn never hit the spill store: %d spills, %d loads", spills, loads)
					}
					if got, want := bounded.TrackedUsers(), ref.TrackedUsers(); got != want {
						t.Errorf("tracked users = %d, want %d", got, want)
					}
				})
			}
		}
	}
}

// TestEvictionKillAndRecoverMidChurn extends the equivalence property
// across a process death: the bounded engine is exported mid-churn and
// restored into a fresh engine sharing the same (durable) spill store;
// the remaining windows must still match the uninterrupted unbounded
// engine. Evicted users are deliberately absent from the snapshot —
// their only copy lives in the spill store — so this proves snapshot +
// spill together reconstruct the full population.
func TestEvictionKillAndRecoverMidChurn(t *testing.T) {
	const (
		numObjects = 5
		numUsers   = 8
		numWindows = 6
		cutAfter   = 3
	)
	for _, est := range estimatorsUnderTest(t) {
		for _, seed := range []uint64{2, 11} {
			est, seed := est, seed
			t.Run(fmt.Sprintf("%s/seed-%d", est, seed), func(t *testing.T) {
				cfg := Config{
					NumObjects: numObjects,
					NumShards:  2,
					Estimator:  est,
					Decay:      churnDecay,
					Lambda1:    1.5,
					Lambda2:    2,
					Delta:      0.3,
				}
				cfg.EpsilonBudget = 4.5 * epsilonPerWindow(t, cfg)

				windows := churnWindows(randx.New(seed), numWindows, numUsers, numObjects)

				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = ref.Close() }()

				store := newMemUserStore()
				bndCfg := cfg
				bndCfg.MaxResidentUsers = 2
				bndCfg.UserStore = store
				bounded, err := New(bndCfg)
				if err != nil {
					t.Fatal(err)
				}

				closeBoth := func(w int, cut *Engine) {
					t.Helper()
					want, err := ref.CloseWindow()
					if err != nil {
						t.Fatalf("unbounded close %d: %v", w, err)
					}
					got, err := cut.CloseWindow()
					if err != nil {
						t.Fatalf("bounded close %d: %v", w, err)
					}
					sameWindowResult(t, fmt.Sprintf("window %d", w), want, got)
				}
				for w := 0; w < cutAfter; w++ {
					ingestBoth(t, ref, bounded, numUsers, windows[w])
					closeBoth(w, bounded)
				}

				state, err := bounded.ExportState()
				if err != nil {
					t.Fatal(err)
				}
				if len(state.Users) >= numUsers {
					t.Fatalf("snapshot carries %d users; eviction should have spilled most of %d",
						len(state.Users), numUsers)
				}
				if err := bounded.Close(); err != nil {
					t.Fatal(err)
				}

				rec, err := New(bndCfg) // same spill store: it is the durable half
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = rec.Close() }()
				if err := rec.Restore(state); err != nil {
					t.Fatal(err)
				}
				for w := cutAfter; w < numWindows; w++ {
					ingestBoth(t, ref, rec, numUsers, windows[w])
					closeBoth(w, rec)
				}
			})
		}
	}
}

// TestChurnBoundedResidency is the acceptance criterion: a churn
// workload of 100×N distinct users (fresh IDs every window, never
// repeated) against MaxResidentUsers N holds the resident gauge at ≤ N
// after every window close, while the eviction metrics account for the
// entire spilled population.
func TestChurnBoundedResidency(t *testing.T) {
	const (
		capN           = 5
		usersPerWindow = 20
		numWindows     = 25 // 100×N distinct users total
		numObjects     = 3
	)
	store := newMemUserStore()
	e, err := New(Config{
		NumObjects:       numObjects,
		NumShards:        2,
		Decay:            churnDecay,
		MaxResidentUsers: capN,
		UserStore:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	rng := randx.New(42)
	next := 0
	for w := 0; w < numWindows; w++ {
		for u := 0; u < usersPerWindow; u++ {
			id := fmt.Sprintf("churn-%05d", next)
			next++
			claims := []Claim{{Object: next % numObjects, Value: rng.Norm()}}
			if _, _, err := e.Ingest(id, claims); err != nil {
				t.Fatalf("ingest %s: %v", id, err)
			}
		}
		if _, err := e.CloseWindow(); err != nil {
			t.Fatalf("close %d: %v", w, err)
		}
		if n := e.ResidentUsers(); n > capN {
			t.Fatalf("window %d: %d residents, cap %d", w, n, capN)
		}
	}
	if got, want := e.TrackedUsers(), usersPerWindow*numWindows; got != want {
		t.Errorf("tracked users = %d, want %d", got, want)
	}
	spills, _ := store.counts()
	if want := usersPerWindow*numWindows - capN; spills != want {
		t.Errorf("spilled %d users, want %d", spills, want)
	}
}

// TestEvictedExhaustedUserStaysRejected pins the security property the
// ledger-authoritative design exists for: a user who exhausted their
// budget cannot reset it by going idle, being evicted, and returning —
// nor by a process restart, nor both combined.
func TestEvictedExhaustedUserStaysRejected(t *testing.T) {
	cfg := Config{
		NumObjects: 2,
		NumShards:  1,
		Decay:      churnDecay,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
	eps := epsilonPerWindow(t, cfg)
	cfg.EpsilonBudget = 1.5 * eps // exhausted after one window
	store := newMemUserStore()
	cfg.MaxResidentUsers = 1
	cfg.UserStore = store

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	claims := []Claim{{Object: 0, Value: 1}}
	if _, _, err := e.Ingest("victim", claims); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Ingest("filler", claims); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	// Both users are idle now; the cap of 1 evicted at least one. Keep
	// "filler" fresh so "victim" is the LRU victim on the next close too.
	if _, ok := store.m["victim"]; !ok {
		// The deterministic LRU (insertion order ties) must have spilled
		// the victim; if not, the test premise is wrong.
		t.Fatalf("victim not spilled after close; spill store holds %v", len(store.m))
	}

	// Across eviction: re-admission must load the spilled budget and
	// reject the next window.
	if _, _, err := e.Ingest("victim", claims); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-eviction ingest = %v, want ErrBudgetExhausted", err)
	}
	// The rejected re-admission must not leak residency: the exhausted
	// user is dropped back to the spill store, not pinned resident.
	if n := e.ResidentUsers(); n > 2 {
		t.Errorf("%d residents after rejected re-admission", n)
	}

	// Across restart: export, close, restore into a fresh engine sharing
	// the spill store.
	state, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rec.Close() }()
	if err := rec.Restore(state); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rec.Ingest("victim", claims); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart ingest = %v, want ErrBudgetExhausted", err)
	}
}

// TestSpillFailureSkipsEviction pins the spill-before-drop ordering: if
// the store cannot make the spill durable, the users stay resident (over
// cap) rather than losing their budget state, and the next close retries.
func TestSpillFailureSkipsEviction(t *testing.T) {
	store := newMemUserStore()
	e, err := New(Config{
		NumObjects:       2,
		NumShards:        1,
		Decay:            churnDecay,
		MaxResidentUsers: 1,
		UserStore:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	for u := 0; u < 4; u++ {
		if _, _, err := e.Ingest(fmt.Sprintf("user-%d", u), []Claim{{Object: 0, Value: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	store.mu.Lock()
	store.fail = true
	store.mu.Unlock()
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err) // a spill failure must never fail the close
	}
	if n := e.ResidentUsers(); n != 4 {
		t.Fatalf("%d residents after failed spill, want all 4 retained", n)
	}
	store.mu.Lock()
	store.fail = false
	store.mu.Unlock()
	// The retry needs another close; users are already idle.
	if _, _, err := e.Ingest("user-5", []Claim{{Object: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CloseWindow(); err != nil {
		t.Fatal(err)
	}
	if n := e.ResidentUsers(); n > 1 {
		t.Fatalf("%d residents after recovered spill, cap 1", n)
	}
}

// TestResidencyCapConfigValidation: the caps require a UserStore (the
// spilled budget state must be durable), and bad cap values are refused.
func TestResidencyCapConfigValidation(t *testing.T) {
	if _, err := New(Config{NumObjects: 1, MaxResidentUsers: 4}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("MaxResidentUsers without UserStore = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{NumObjects: 1, ResidentBytes: 1 << 20}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ResidentBytes without UserStore = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{NumObjects: 1, MaxResidentUsers: -1, UserStore: newMemUserStore()}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative MaxResidentUsers = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{NumObjects: 1, ResidentBytes: -1, UserStore: newMemUserStore()}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative ResidentBytes = %v, want ErrBadConfig", err)
	}
	// A UserStore without caps is fine: admission still consults it, so
	// an engine recovered behind an existing spill store keeps honoring
	// spilled budgets even before any cap is configured.
	e, err := New(Config{NumObjects: 1, UserStore: newMemUserStore()})
	if err != nil {
		t.Fatalf("UserStore without caps: %v", err)
	}
	_ = e.Close()
}
