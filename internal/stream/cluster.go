package stream

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Cluster support: the engine-side primitives behind internal/cluster's
// sharded-ingest coordinator. A cluster partitions users across worker
// engines (each user's claims, budget, and estimator state live entirely
// on one worker), so per-(object, user) sufficient statistics are
// bitwise identical to a single engine's — what differs is only where
// they sit. Window closes are driven by a coordinator:
//
//  1. every worker runs CloseWindowExport — quiesce, export the raw
//     pre-close statistics, then decay and advance WITHOUT estimating
//     (estimation over a shard of the users would diverge from the
//     single-engine estimate);
//  2. the coordinator merges the disjoint exports (MergeStates), loads
//     the merged state into a fresh engine, and runs the one true
//     CloseWindow there — identical inputs, identical estimate;
//  3. the resulting carry weights and per-user estimator state are read
//     back with ExportCarry and committed to each owning worker with
//     CommitCarry, so the next window warm-starts exactly as a single
//     engine would.
//
// This is what makes the cluster-vs-single-node equivalence property
// (truths within 1e-9 per estimator) hold by construction.

// UserCarry is one user's cross-window estimation state as committed
// back to their owning worker after a coordinated window close: the
// carry weight warm-starting the next window and the estimator's
// private per-user state (e.g. a GTM variance; nil when the estimator
// keeps none).
type UserCarry struct {
	ID    string  `json:"id"`
	Carry float64 `json:"carry"`
	// EstimatorState is the estimator's private per-user state, in the
	// same encoding UserSpill carries (exportUser/seedUser).
	EstimatorState json.RawMessage `json:"estimatorState,omitempty"`
}

// HasLiveStats reports whether any (object, user) sufficient statistic
// is currently live. A coordinator probes this before a cluster-wide
// close: when no worker holds live statistics the cluster window is
// empty, and closing it would diverge from a single engine (whose
// CloseWindow fails with ErrEmptyWindow without advancing the window).
func (e *Engine) HasLiveStats() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	release := e.pauseShards()
	defer close(release)
	for _, s := range e.shards {
		if len(s.stats) > 0 {
			return true
		}
	}
	return false
}

// WindowClaims returns the number of claims ingested into the open
// window so far.
func (e *Engine) WindowClaims() int64 { return e.windowClaims.Load() }

// CloseWindowExport is the worker half of a coordinated window close: it
// quiesces ingestion, exports the pre-close engine state (exactly what
// ExportState would return — raw sufficient statistics, users, window
// counter), then applies the per-window decay and advances the window
// counter WITHOUT estimating. No estimate runs because a worker only
// holds a shard of the user population: estimating over it would update
// carry weights and estimator state differently than the single-engine
// estimate over everyone. The coordinator merges the exports, runs the
// one true estimation, and commits the resulting carries back via
// CommitCarry.
//
// Unlike CloseWindow it never fails with ErrEmptyWindow: a worker with
// no live statistics still decays and advances, because the cluster-wide
// window (which some other worker's claims made non-empty) is closing.
// Callers gate the overall empty case with HasLiveStats first.
func (e *Engine) CloseWindowExport() (*EngineState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	release := e.pauseShards()
	defer close(release)

	st, err := e.exportStateLocked()
	if err != nil {
		return nil, err
	}
	st.WindowClaims = e.windowClaims.Load()
	if e.cfg.Decay < 1 {
		e.eachShardParallel(func(s *shard) { s.decay(e.cfg.Decay) })
	}
	e.window++
	e.windowClaims.Store(0)
	// Eviction is deferred to CommitCarry: the users in this export must
	// stay resident until the merged carry weights come back, or the
	// commit would have nothing to apply them to.
	return st, nil
}

// ExportCarry reads every resident user's carry weight and private
// estimator state — the coordinator calls it on the merge engine right
// after CloseWindow, to collect the post-estimate warm-start state it
// commits back to the owning workers.
func (e *Engine) ExportCarry() ([]UserCarry, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	ids := e.users.ids()
	carries := e.users.carryWeights(false)
	out := make([]UserCarry, 0, len(ids))
	for idx, id := range ids {
		if id == "" {
			continue // free slot of an evicted user
		}
		raw, err := e.est.exportUser(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, UserCarry{ID: id, Carry: carries[idx], EstimatorState: raw})
	}
	return out, nil
}

// CommitCarry applies coordinator-merged carry weights and per-user
// estimator state to this worker's resident users, completing a
// coordinated window close. Users unknown to this worker are skipped
// (the coordinator partitions carries by owning worker, so in a healthy
// protocol round every carry finds its user). After the carries are
// applied the residency caps are enforced, exactly where CloseWindow
// would have evicted — so spill records written here carry the merged,
// not the stale, state.
func (e *Engine) CommitCarry(carries []UserCarry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	for _, c := range carries {
		if c.ID == "" || !finite(c.Carry) || c.Carry < 0 {
			return fmt.Errorf("%w: carry for user %q = %v", ErrBadState, c.ID, c.Carry)
		}
		idx, ok := e.users.setCarry(c.ID, c.Carry)
		if !ok {
			continue
		}
		if err := e.est.seedUser(idx, c.EstimatorState); err != nil {
			return err
		}
	}
	release := e.pauseShards()
	defer close(release)
	e.evictIdleLocked()
	return nil
}

// setCarry stores a committed carry weight for one resident user,
// reporting the user's slot index (false when the user is not resident).
func (r *registry) setCarry(id string, carry float64) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byID[id]
	if !ok {
		return 0, false
	}
	st.carry = carry
	return st.idx, true
}

// MergeStates combines per-worker engine exports (CloseWindowExport)
// into the single state a merge engine estimates over. The parts must
// come from the same coordinated close: same estimator, same window
// counter, same object space, and disjoint user populations (each user
// lives on exactly one worker). Users and statistics concatenate in
// part order; statistics are re-sorted into the canonical (object, user)
// order, and claim counters sum. Estimator-private state merges per
// estimator — GTM's per-user variance maps union (disjoint by the user
// partition); CRH and CATD keep none.
func MergeStates(parts []*EngineState) (*EngineState, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no states to merge", ErrBadState)
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("%w: nil state at part %d", ErrBadState, i)
		}
	}
	est := parts[0].Estimator
	if est == "" {
		est = EstimatorCRH
	}
	merged := &EngineState{
		NumObjects: parts[0].NumObjects,
		Window:     parts[0].Window,
		Estimator:  est,
	}
	seen := make(map[string]struct{})
	for i, p := range parts {
		pEst := p.Estimator
		if pEst == "" {
			pEst = EstimatorCRH
		}
		if pEst != est {
			return nil, fmt.Errorf("%w: part %d written by %q, part 0 by %q", ErrEstimatorMismatch, i, pEst, est)
		}
		if p.Window != merged.Window {
			return nil, fmt.Errorf("%w: part %d at window %d, part 0 at window %d (torn close)",
				ErrBadState, i, p.Window, merged.Window)
		}
		if p.NumObjects != merged.NumObjects {
			return nil, fmt.Errorf("%w: part %d covers %d objects, part 0 covers %d",
				ErrBadState, i, p.NumObjects, merged.NumObjects)
		}
		for _, u := range p.Users {
			if _, dup := seen[u.ID]; dup {
				return nil, fmt.Errorf("%w: user %q present on more than one worker", ErrBadState, u.ID)
			}
			seen[u.ID] = struct{}{}
		}
		merged.Users = append(merged.Users, p.Users...)
		merged.Stats = append(merged.Stats, p.Stats...)
		merged.WindowClaims += p.WindowClaims
		merged.TotalClaims += p.TotalClaims
	}
	sort.Slice(merged.Stats, func(i, j int) bool {
		if merged.Stats[i].Object != merged.Stats[j].Object {
			return merged.Stats[i].Object < merged.Stats[j].Object
		}
		return merged.Stats[i].User < merged.Stats[j].User
	})
	if est == EstimatorGTM {
		raw, err := mergeGTMStates(parts)
		if err != nil {
			return nil, err
		}
		merged.EstimatorState = raw
	}
	return merged, nil
}

// mergeGTMStates unions the per-worker GTM variance maps; the user
// partition makes them disjoint, so union is exact.
func mergeGTMStates(parts []*EngineState) (json.RawMessage, error) {
	vars := make(map[string]float64)
	for i, p := range parts {
		if len(p.EstimatorState) == 0 || string(p.EstimatorState) == "null" {
			continue
		}
		var st gtmState
		if err := json.Unmarshal(p.EstimatorState, &st); err != nil {
			return nil, fmt.Errorf("%w: decode gtm state of part %d: %v", ErrBadState, i, err)
		}
		for id, v := range st.Variances {
			vars[id] = v
		}
	}
	if len(vars) == 0 {
		return nil, nil
	}
	raw, err := json.Marshal(gtmState{Variances: vars})
	if err != nil {
		return nil, fmt.Errorf("stream: merge gtm state: %w", err)
	}
	return raw, nil
}
