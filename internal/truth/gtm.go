package truth

import (
	"fmt"
	"math"
)

// GTM implements the Gaussian Truth Model of Zhao & Han (QDB'12), the
// second truth-discovery method the paper evaluates (Fig. 5). Claims are
// modeled as x_sn ~ N(mu_n, sigma_s^2) with a Gaussian prior on each truth
// mu_n and an inverse-Gamma(alpha, beta) prior on each user variance
// sigma_s^2; inference alternates the posterior-mean truth update with the
// MAP variance update (an EM-style coordinate ascent).
//
// Reported weights are the estimated precisions 1/sigma_s^2, the natural
// "weight" of a user under this model.
type GTM struct {
	cfg iterConfig

	// priorMeanWeight is the pseudo-claim weight of the per-object prior
	// mean (1/sigma0^2 in model terms); 0 disables the truth prior.
	priorMeanWeight float64
	// alpha, beta parameterize the inverse-Gamma prior on user variances.
	alpha float64
	beta  float64
	// initVariance seeds the user variances before the first iteration.
	initVariance float64
}

var _ Method = (*GTM)(nil)

// GTMOption configures NewGTM.
type GTMOption interface {
	applyGTM(*GTM)
}

type gtmOptionFunc func(*GTM)

func (f gtmOptionFunc) applyGTM(g *GTM) { f(g) }

// WithGTMTolerance sets the convergence tolerance on the maximum truth
// change (default DefaultTolerance).
func WithGTMTolerance(tol float64) GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.cfg.tolerance = tol })
}

// WithGTMMaxIterations caps the iteration count (default
// DefaultMaxIterations).
func WithGTMMaxIterations(n int) GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.cfg.maxIterations = n })
}

// WithGTMFailOnNonConvergence makes Run return an error wrapping
// ErrNotConverged when the cap is hit.
func WithGTMFailOnNonConvergence() GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.cfg.failOnNoConv = true })
}

// WithGTMVariancePrior sets the inverse-Gamma(alpha, beta) prior on user
// variances (default alpha=2, beta=1, a weak prior with mean 1).
func WithGTMVariancePrior(alpha, beta float64) GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.alpha, g.beta = alpha, beta })
}

// WithGTMTruthPriorWeight sets the pseudo-claim weight given to the
// per-object claim mean acting as the truth prior (default 0.01; 0
// disables the prior).
func WithGTMTruthPriorWeight(w float64) GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.priorMeanWeight = w })
}

// WithGTMInitialVariance sets the initial per-user variance (default 1).
func WithGTMInitialVariance(v float64) GTMOption {
	return gtmOptionFunc(func(g *GTM) { g.initVariance = v })
}

// NewGTM returns a configured GTM method.
func NewGTM(opts ...GTMOption) (*GTM, error) {
	g := &GTM{
		cfg:             defaultIterConfig(),
		priorMeanWeight: 0.01,
		alpha:           2,
		beta:            1,
		initVariance:    1,
	}
	for _, o := range opts {
		o.applyGTM(g)
	}
	if err := g.cfg.validate(); err != nil {
		return nil, err
	}
	if g.alpha <= 0 || g.beta <= 0 {
		return nil, fmt.Errorf("truth: non-positive inverse-gamma prior (%v, %v)", g.alpha, g.beta)
	}
	if g.priorMeanWeight < 0 || math.IsNaN(g.priorMeanWeight) {
		return nil, fmt.Errorf("truth: negative truth-prior weight %v", g.priorMeanWeight)
	}
	if g.initVariance <= 0 || math.IsNaN(g.initVariance) {
		return nil, fmt.Errorf("truth: non-positive initial variance %v", g.initVariance)
	}
	return g, nil
}

// Name implements Method.
func (g *GTM) Name() string { return "gtm" }

// Run implements Method.
func (g *GTM) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	const varianceFloor = 1e-9

	var (
		numUsers   = ds.NumUsers()
		numObjs    = ds.NumObjects()
		variances  = make([]float64, numUsers)
		truths     = make([]float64, numObjs)
		prev       = make([]float64, numObjs)
		priorMeans = ds.ObjectMeans()
	)
	for s := range variances {
		variances[s] = g.initVariance
	}
	copy(truths, priorMeans)

	res := &Result{Truths: truths}
	for iter := 1; iter <= g.cfg.maxIterations; iter++ {
		res.Iterations = iter

		// E-step: posterior-mean truths given variances.
		for n, claims := range ds.byObject {
			num := g.priorMeanWeight * priorMeans[n]
			den := g.priorMeanWeight
			for _, uv := range claims {
				prec := 1 / variances[uv.user]
				num += prec * uv.value
				den += prec
			}
			prev[n] = truths[n]
			truths[n] = num / den
		}

		// M-step: MAP user variances given truths, under the
		// inverse-Gamma(alpha, beta) prior.
		for s, claims := range ds.byUser {
			if len(claims) == 0 {
				continue
			}
			var ss float64
			for _, ov := range claims {
				d := ov.value - truths[ov.object]
				ss += d * d
			}
			v := (2*g.beta + ss) / (2*(g.alpha+1) + float64(len(claims)))
			if v < varianceFloor {
				v = varianceFloor
			}
			variances[s] = v
		}

		if maxAbsDiff(prev, truths) < g.cfg.tolerance {
			res.Converged = true
			break
		}
	}
	if !res.Converged && g.cfg.failOnNoConv {
		return nil, fmt.Errorf("%w: gtm after %d iterations", ErrNotConverged, res.Iterations)
	}

	weights := make([]float64, numUsers)
	for s, claims := range ds.byUser {
		if len(claims) == 0 {
			continue // weight 0 for silent users
		}
		weights[s] = 1 / variances[s]
	}
	res.Weights = weights
	return res, nil
}
