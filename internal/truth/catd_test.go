package truth

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
)

func TestNewCATDValidation(t *testing.T) {
	for _, conf := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewCATD(WithCATDConfidence(conf)); err == nil {
			t.Errorf("confidence %v accepted", conf)
		}
	}
	if _, err := NewCATD(WithCATDTolerance(-1)); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := NewCATD(WithCATDMaxIterations(-1)); err == nil {
		t.Error("negative iteration cap accepted")
	}
}

func TestCATDName(t *testing.T) {
	c, err := NewCATD()
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "catd" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCATDRecoversTruths(t *testing.T) {
	rng := randx.New(30)
	truths := genTruths(rng, 50)
	stds := []float64{0.05, 0.1, 0.5, 1.0, 1.5, 0.2}
	ds := genDataset(t, rng, truths, stds)
	c, err := NewCATD()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for n, tv := range truths {
		mae += math.Abs(res.Truths[n] - tv)
	}
	if mae /= float64(len(truths)); mae > 0.15 {
		t.Errorf("CATD MAE = %v", mae)
	}
}

func TestCATDLongTailBoost(t *testing.T) {
	// Two users with the same noise level, one observing 4x the objects:
	// the chi-squared quantile rewards the better-covered user with a
	// larger quantile-to-SS ratio. Verify weights are positive and the
	// heavy contributor is not penalized for participating more.
	rng := randx.New(31)
	const numObjects = 80
	b := NewBuilder(3, numObjects)
	truths := genTruths(rng, numObjects)
	for n, tv := range truths {
		b.Add(0, n, tv+0.3*rng.Norm()) // heavy contributor
		if n%4 == 0 {
			b.Add(1, n, tv+0.3*rng.Norm()) // light contributor
		}
		b.Add(2, n, tv+0.3*rng.Norm()) // anchor so objects have >= 2 claims
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCATD()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] <= 0 || res.Weights[1] <= 0 {
		t.Fatalf("weights = %v", res.Weights)
	}
}

func TestCATDFailOnNonConvergence(t *testing.T) {
	rng := randx.New(32)
	truths := genTruths(rng, 10)
	ds := genDataset(t, rng, truths, []float64{0.5, 1.5})
	c, err := NewCATD(
		WithCATDMaxIterations(1),
		WithCATDTolerance(1e-15),
		WithCATDFailOnNonConvergence(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ds); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error = %v, want ErrNotConverged", err)
	}
}

func TestChi2Quantile(t *testing.T) {
	// Reference values (R qchisq): qchisq(0.95, 1)=3.841, (0.95, 5)=11.070,
	// (0.95, 30)=43.773, (0.5, 10)=9.342. Wilson-Hilferty is approximate;
	// allow a few percent.
	tests := []struct {
		p, k, want float64
	}{
		{0.95, 1, 3.841},
		{0.95, 5, 11.070},
		{0.95, 30, 43.773},
		{0.5, 10, 9.342},
	}
	for _, tt := range tests {
		got := Chi2Quantile(tt.p, tt.k)
		if math.Abs(got-tt.want)/tt.want > 0.05 {
			t.Errorf("Chi2Quantile(%v, %v) = %v, want ~%v", tt.p, tt.k, got, tt.want)
		}
	}
}

func TestStdNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.95, 1.644854},
	}
	for _, tt := range tests {
		if got := stdNormalQuantile(tt.p); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("stdNormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}
