// Package truth implements the truth-discovery substrate of pptd: a sparse
// user-by-object observation matrix and the iterative weighted-aggregation
// algorithms the paper builds on (CRH, GTM), plus baselines (mean, median)
// and a CATD-style confidence-weighted extension.
//
// All methods follow the two-principle template of the paper's Section 3.1:
// truths are weight-averaged user claims (Eq. 1), and user weights decrease
// with the distance between a user's claims and the current truths (Eq. 2).
package truth

import (
	"errors"
	"fmt"
	"math"
)

var (
	// ErrNoObservations reports an object with no claims, which no
	// truth-discovery method can aggregate.
	ErrNoObservations = errors.New("truth: object has no observations")
	// ErrBadIndex reports an out-of-range user or object index.
	ErrBadIndex = errors.New("truth: index out of range")
	// ErrDuplicate reports two claims by the same user on the same object.
	ErrDuplicate = errors.New("truth: duplicate observation")
	// ErrBadValue reports a NaN or infinite observation value.
	ErrBadValue = errors.New("truth: non-finite observation value")
)

// Observation is a single claim: the identified user asserts Value for the
// identified object.
type Observation struct {
	User   int
	Object int
	Value  float64
}

// Dataset is an immutable sparse user-by-object matrix of continuous
// claims. Construct one with a Builder or FromDense. Users may observe any
// subset of objects; every object must carry at least one claim.
type Dataset struct {
	numUsers   int
	numObjects int

	// byUser[s] lists (object, value) claims of user s, in insertion order.
	byUser [][]objVal
	// byObject[n] lists (user, value) claims on object n, in insertion order.
	byObject [][]userVal
	count    int
}

type objVal struct {
	object int
	value  float64
}

type userVal struct {
	user  int
	value float64
}

// Builder accumulates observations for a Dataset.
type Builder struct {
	numUsers   int
	numObjects int
	obs        []Observation
	seen       map[[2]int]struct{}
	err        error
}

// NewBuilder returns a Builder for a dataset with the given dimensions.
func NewBuilder(numUsers, numObjects int) *Builder {
	return &Builder{
		numUsers:   numUsers,
		numObjects: numObjects,
		seen:       make(map[[2]int]struct{}),
	}
}

// Add records one claim. Errors (bad index, duplicate, non-finite value)
// are sticky and reported by Build.
func (b *Builder) Add(user, object int, value float64) {
	if b.err != nil {
		return
	}
	switch {
	case user < 0 || user >= b.numUsers:
		b.err = fmt.Errorf("%w: user %d of %d", ErrBadIndex, user, b.numUsers)
	case object < 0 || object >= b.numObjects:
		b.err = fmt.Errorf("%w: object %d of %d", ErrBadIndex, object, b.numObjects)
	case math.IsNaN(value) || math.IsInf(value, 0):
		b.err = fmt.Errorf("%w: user %d object %d value %v", ErrBadValue, user, object, value)
	default:
		key := [2]int{user, object}
		if _, dup := b.seen[key]; dup {
			b.err = fmt.Errorf("%w: user %d object %d", ErrDuplicate, user, object)
			return
		}
		b.seen[key] = struct{}{}
		b.obs = append(b.obs, Observation{User: user, Object: object, Value: value})
	}
}

// Build validates the accumulated observations and returns the Dataset.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.numUsers <= 0 || b.numObjects <= 0 {
		return nil, fmt.Errorf("%w: %d users, %d objects", ErrBadIndex, b.numUsers, b.numObjects)
	}
	ds := &Dataset{
		numUsers:   b.numUsers,
		numObjects: b.numObjects,
		byUser:     make([][]objVal, b.numUsers),
		byObject:   make([][]userVal, b.numObjects),
		count:      len(b.obs),
	}
	for _, o := range b.obs {
		ds.byUser[o.User] = append(ds.byUser[o.User], objVal{object: o.Object, value: o.Value})
		ds.byObject[o.Object] = append(ds.byObject[o.Object], userVal{user: o.User, value: o.Value})
	}
	for n, claims := range ds.byObject {
		if len(claims) == 0 {
			return nil, fmt.Errorf("%w: object %d", ErrNoObservations, n)
		}
	}
	return ds, nil
}

// FromDense builds a Dataset from a dense users-by-objects matrix, treating
// NaN entries as missing observations. All rows must have equal length.
func FromDense(matrix [][]float64) (*Dataset, error) {
	if len(matrix) == 0 || len(matrix[0]) == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrBadIndex)
	}
	numObjects := len(matrix[0])
	b := NewBuilder(len(matrix), numObjects)
	for s, row := range matrix {
		if len(row) != numObjects {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadIndex, s, len(row), numObjects)
		}
		for n, v := range row {
			if math.IsNaN(v) {
				continue
			}
			b.Add(s, n, v)
		}
	}
	return b.Build()
}

// NumUsers returns the number of users S.
func (d *Dataset) NumUsers() int { return d.numUsers }

// NumObjects returns the number of objects N.
func (d *Dataset) NumObjects() int { return d.numObjects }

// NumObservations returns the total claim count.
func (d *Dataset) NumObservations() int { return d.count }

// UserObservations returns a copy of user s's claims.
func (d *Dataset) UserObservations(s int) ([]Observation, error) {
	if s < 0 || s >= d.numUsers {
		return nil, fmt.Errorf("%w: user %d of %d", ErrBadIndex, s, d.numUsers)
	}
	out := make([]Observation, len(d.byUser[s]))
	for i, ov := range d.byUser[s] {
		out[i] = Observation{User: s, Object: ov.object, Value: ov.value}
	}
	return out, nil
}

// ObjectObservations returns a copy of the claims on object n.
func (d *Dataset) ObjectObservations(n int) ([]Observation, error) {
	if n < 0 || n >= d.numObjects {
		return nil, fmt.Errorf("%w: object %d of %d", ErrBadIndex, n, d.numObjects)
	}
	out := make([]Observation, len(d.byObject[n]))
	for i, uv := range d.byObject[n] {
		out[i] = Observation{User: uv.user, Object: n, Value: uv.value}
	}
	return out, nil
}

// Observations returns a copy of every claim in user-major order.
func (d *Dataset) Observations() []Observation {
	out := make([]Observation, 0, d.count)
	for s, claims := range d.byUser {
		for _, ov := range claims {
			out = append(out, Observation{User: s, Object: ov.object, Value: ov.value})
		}
	}
	return out
}

// Dense returns the dataset as a users-by-objects matrix with NaN marking
// missing observations.
func (d *Dataset) Dense() [][]float64 {
	m := make([][]float64, d.numUsers)
	for s := range m {
		row := make([]float64, d.numObjects)
		for n := range row {
			row[n] = math.NaN()
		}
		for _, ov := range d.byUser[s] {
			row[ov.object] = ov.value
		}
		m[s] = row
	}
	return m
}

// Map returns a new Dataset whose every value is f(user, object, value).
// The sparsity pattern is preserved. It is the hook the perturbation
// mechanism uses to inject per-claim noise.
func (d *Dataset) Map(f func(user, object int, value float64) float64) (*Dataset, error) {
	b := NewBuilder(d.numUsers, d.numObjects)
	for s, claims := range d.byUser {
		for _, ov := range claims {
			b.Add(s, ov.object, f(s, ov.object, ov.value))
		}
	}
	return b.Build()
}

// ObjectMeans returns the plain per-object mean of claims (the uniform-
// weight baseline aggregate).
func (d *Dataset) ObjectMeans() []float64 {
	out := make([]float64, d.numObjects)
	for n, claims := range d.byObject {
		var sum float64
		for _, uv := range claims {
			sum += uv.value
		}
		out[n] = sum / float64(len(claims))
	}
	return out
}

// ObjectStdDevs returns the per-object population standard deviation of
// claims. Objects with a single claim get 0.
func (d *Dataset) ObjectStdDevs() []float64 {
	out := make([]float64, d.numObjects)
	for n, claims := range d.byObject {
		var sum float64
		for _, uv := range claims {
			sum += uv.value
		}
		mean := sum / float64(len(claims))
		var ss float64
		for _, uv := range claims {
			dlt := uv.value - mean
			ss += dlt * dlt
		}
		out[n] = math.Sqrt(ss / float64(len(claims)))
	}
	return out
}
