package truth

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
)

func TestNewGTMValidation(t *testing.T) {
	tests := []struct {
		name string
		opts []GTMOption
	}{
		{name: "zero tolerance", opts: []GTMOption{WithGTMTolerance(0)}},
		{name: "zero iterations", opts: []GTMOption{WithGTMMaxIterations(0)}},
		{name: "bad alpha", opts: []GTMOption{WithGTMVariancePrior(0, 1)}},
		{name: "bad beta", opts: []GTMOption{WithGTMVariancePrior(1, -1)}},
		{name: "negative prior weight", opts: []GTMOption{WithGTMTruthPriorWeight(-0.1)}},
		{name: "bad init variance", opts: []GTMOption{WithGTMInitialVariance(0)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGTM(tt.opts...); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGTMName(t *testing.T) {
	g, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "gtm" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestGTMRecoversVarianceOrdering(t *testing.T) {
	rng := randx.New(20)
	truths := genTruths(rng, 80)
	stds := []float64{0.1, 0.3, 0.7, 1.2, 2.0}
	ds := genDataset(t, rng, truths, stds)
	g, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("GTM did not converge")
	}
	// Precisions must decrease with true noise.
	for s := 1; s < len(stds); s++ {
		if res.Weights[s] >= res.Weights[s-1] {
			t.Errorf("precision not decreasing: w[%d]=%v >= w[%d]=%v", s, res.Weights[s], s-1, res.Weights[s-1])
		}
	}
}

func TestGTMEstimatedVarianceClose(t *testing.T) {
	// With many objects and enough users that no single user dominates
	// the truth estimate, the MAP variance estimate should approach each
	// user's true noise variance. (At very small S the EM fixed point is
	// biased because each user's own noise contaminates the truths —
	// that regime is covered by the ordering test above.)
	rng := randx.New(21)
	truths := genTruths(rng, 400)
	stds := make([]float64, 30)
	for i := range stds {
		stds[i] = 0.5 + float64(i)/float64(len(stds)-1) // 0.5 .. 1.5
	}
	ds := genDataset(t, rng, truths, stds)
	g, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s, sd := range stds {
		estVar := 1 / res.Weights[s]
		trueVar := sd * sd
		if math.Abs(estVar-trueVar) > 0.5*trueVar {
			t.Errorf("user %d variance = %v, want within 50%% of %v", s, estVar, trueVar)
		}
	}
}

func TestGTMFailOnNonConvergence(t *testing.T) {
	rng := randx.New(22)
	truths := genTruths(rng, 10)
	ds := genDataset(t, rng, truths, []float64{0.5, 1.5})
	g, err := NewGTM(
		WithGTMMaxIterations(1),
		WithGTMTolerance(1e-15),
		WithGTMFailOnNonConvergence(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(ds); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error = %v, want ErrNotConverged", err)
	}
}

func TestGTMWithoutTruthPrior(t *testing.T) {
	rng := randx.New(23)
	truths := genTruths(rng, 30)
	ds := genDataset(t, rng, truths, []float64{0.1, 0.2, 0.4})
	g, err := NewGTM(WithGTMTruthPriorWeight(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for n, tv := range truths {
		mae += math.Abs(res.Truths[n] - tv)
	}
	if mae /= float64(len(truths)); mae > 0.2 {
		t.Errorf("MAE without prior = %v", mae)
	}
}

func TestGTMVarianceFloor(t *testing.T) {
	// Perfectly consistent users would drive variance to ~beta/(alpha+1);
	// weights must stay finite.
	ds := mustDataset(t, [][]float64{
		{5, 5, 5},
		{5, 5, 5},
	})
	g, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range res.Weights {
		if math.IsInf(w, 0) || math.IsNaN(w) || w <= 0 {
			t.Errorf("weight %d = %v", s, w)
		}
	}
}
