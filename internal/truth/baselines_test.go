package truth

import (
	"math"
	"testing"
)

func TestMeanBaseline(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{1, 10},
		{3, 20},
	})
	res, err := (Mean{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 2 || res.Truths[1] != 15 {
		t.Errorf("mean truths = %v", res.Truths)
	}
	if res.Weights[0] != 1 || res.Weights[1] != 1 {
		t.Errorf("mean weights = %v", res.Weights)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("mean metadata = %+v", res)
	}
	if (Mean{}).Name() != "mean" {
		t.Error("wrong name")
	}
}

func TestMedianBaselineOdd(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{1},
		{100},
		{3},
	})
	res, err := (Median{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 3 {
		t.Errorf("median = %v, want 3", res.Truths[0])
	}
	if (Median{}).Name() != "median" {
		t.Error("wrong name")
	}
}

func TestMedianBaselineEven(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{1},
		{2},
		{4},
		{8},
	})
	res, err := (Median{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 3 {
		t.Errorf("median = %v, want 3", res.Truths[0])
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{5, 5},
		{5.1, 5.1},
		{4.9, 4.9},
		{1000, -1000},
	})
	meanRes, err := (Mean{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	medRes, err := (Median{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for n := range medRes.Truths {
		medErr := math.Abs(medRes.Truths[n] - 5)
		meanErr := math.Abs(meanRes.Truths[n] - 5)
		if medErr >= meanErr {
			t.Errorf("object %d: median err %v not better than mean err %v", n, medErr, meanErr)
		}
	}
}

func TestBaselinesSparse(t *testing.T) {
	nan := math.NaN()
	ds := mustDataset(t, [][]float64{
		{1, nan},
		{3, 7},
	})
	meanRes, err := (Mean{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if meanRes.Truths[1] != 7 {
		t.Errorf("mean on single-claim object = %v, want 7", meanRes.Truths[1])
	}
	medRes, err := (Median{}).Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if medRes.Truths[0] != 2 || medRes.Truths[1] != 7 {
		t.Errorf("median truths = %v", medRes.Truths)
	}
}
