package truth

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
)

// genDataset builds a dataset of S users observing all N objects, with
// ground truths and per-user Gaussian error of the given std devs.
// It returns the dataset and the ground truths.
func genDataset(t *testing.T, rng *randx.RNG, truthVals []float64, userStds []float64) *Dataset {
	t.Helper()
	b := NewBuilder(len(userStds), len(truthVals))
	for s, sd := range userStds {
		for n, tv := range truthVals {
			b.Add(s, n, tv+sd*rng.Norm())
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// genTruths returns n ground truths uniform in [0, 10).
func genTruths(rng *randx.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 10 * rng.Float64()
	}
	return out
}

func TestLemma44WeightedMeanBound(t *testing.T) {
	// Lemma 4.4: for weights w_s = f(t_s) with f monotonically
	// decreasing, sum(w t)/sum(w) <= mean(t). Exercised with the paper's
	// own f (negative log share) over random positive distances.
	f := func(raw []float64) bool {
		ts := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			ts = append(ts, 0.001+math.Abs(x)) // positive, bounded distances
		}
		if len(ts) < 2 {
			return true
		}
		var total float64
		for _, v := range ts {
			total += v
		}
		var wSum, wtSum, tSum float64
		for _, v := range ts {
			w := -math.Log(v / total)
			if w < 0 {
				w = 0
			}
			wSum += w
			wtSum += w * v
			tSum += v
		}
		if wSum == 0 {
			return true
		}
		weighted := wtSum / wSum
		unweighted := tSum / float64(len(ts))
		return weighted <= unweighted*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceString(t *testing.T) {
	tests := []struct {
		give Distance
		want string
	}{
		{SquaredDistance, "squared"},
		{AbsoluteDistance, "absolute"},
		{NormalizedSquaredDistance, "normalized-squared"},
		{Distance(99), "Distance(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestNormalizeWeights(t *testing.T) {
	ws := []float64{1, 2, 3}
	if !NormalizeWeights(ws) {
		t.Fatal("NormalizeWeights returned false for valid weights")
	}
	var sum float64
	for _, w := range ws {
		sum += w
	}
	if math.Abs(sum-3) > 1e-12 {
		t.Fatalf("normalized sum = %v, want 3", sum)
	}
	if math.Abs(ws[1]/ws[0]-2) > 1e-12 {
		t.Fatal("normalization destroyed ratios")
	}

	zero := []float64{0, 0}
	if NormalizeWeights(zero) {
		t.Error("zero weights should not normalize")
	}
	if NormalizeWeights(nil) {
		t.Error("empty weights should not normalize")
	}
}

func TestWeightedTruthsMatchesManual(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{0, 10},
		{4, 20},
	})
	out := make([]float64, 2)
	weightedTruths(ds, []float64{3, 1}, out)
	if math.Abs(out[0]-1) > 1e-12 {
		t.Errorf("truth 0 = %v, want 1", out[0])
	}
	if math.Abs(out[1]-12.5) > 1e-12 {
		t.Errorf("truth 1 = %v, want 12.5", out[1])
	}
}

func TestWeightedTruthsZeroWeightsFallBack(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{0, 10},
		{4, 20},
	})
	out := make([]float64, 2)
	weightedTruths(ds, []float64{0, 0}, out) // floor keeps it a plain mean
	if math.Abs(out[0]-2) > 1e-9 || math.Abs(out[1]-15) > 1e-9 {
		t.Errorf("zero-weight truths = %v, want [2 15]", out)
	}
}

// runAll runs every method on the dataset and returns results keyed by name.
func runAll(t *testing.T, ds *Dataset) map[string]*Result {
	t.Helper()
	crh, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	catd, err := NewCATD()
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{crh, gtm, catd, Mean{}, Median{}}
	out := make(map[string]*Result, len(methods))
	for _, m := range methods {
		res, err := m.Run(ds)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		out[m.Name()] = res
	}
	return out
}

func TestAllMethodsRecoverCleanTruths(t *testing.T) {
	// With tiny, equal noise every method must land near the truths.
	rng := randx.New(1)
	truths := genTruths(rng, 20)
	stds := make([]float64, 30)
	for i := range stds {
		stds[i] = 0.01
	}
	ds := genDataset(t, rng, truths, stds)
	for name, res := range runAll(t, ds) {
		for n, tv := range truths {
			if math.Abs(res.Truths[n]-tv) > 0.05 {
				t.Errorf("%s: truth %d = %v, want ~%v", name, n, res.Truths[n], tv)
			}
		}
	}
}

func TestWeightedMethodsDownweightNoisyUsers(t *testing.T) {
	// Half the users are precise, half very noisy: CRH, GTM and CATD
	// must assign the precise half higher weights.
	rng := randx.New(2)
	truths := genTruths(rng, 40)
	stds := make([]float64, 40)
	for i := range stds {
		if i < 20 {
			stds[i] = 0.05
		} else {
			stds[i] = 3.0
		}
	}
	ds := genDataset(t, rng, truths, stds)
	results := runAll(t, ds)
	for _, name := range []string{"crh", "gtm", "catd"} {
		res := results[name]
		var precise, noisy float64
		for s := 0; s < 20; s++ {
			precise += res.Weights[s]
		}
		for s := 20; s < 40; s++ {
			noisy += res.Weights[s]
		}
		if precise <= noisy {
			t.Errorf("%s: precise users total weight %v <= noisy %v", name, precise, noisy)
		}
	}
}

func TestWeightedBeatsMeanUnderHeterogeneousNoise(t *testing.T) {
	// The paper's core premise: weighted aggregation beats plain
	// averaging when user quality varies. Compare MAE to ground truth.
	rng := randx.New(3)
	truths := genTruths(rng, 50)
	stds := make([]float64, 60)
	for i := range stds {
		if i%3 == 0 {
			stds[i] = 0.05
		} else {
			stds[i] = 2.0
		}
	}
	ds := genDataset(t, rng, truths, stds)
	results := runAll(t, ds)
	mae := func(res *Result) float64 {
		var sum float64
		for n, tv := range truths {
			sum += math.Abs(res.Truths[n] - tv)
		}
		return sum / float64(len(truths))
	}
	meanMAE := mae(results["mean"])
	for _, name := range []string{"crh", "gtm", "catd"} {
		if got := mae(results[name]); got >= meanMAE {
			t.Errorf("%s MAE %v not better than mean MAE %v", name, got, meanMAE)
		}
	}
}

func TestMethodsHandleSparseData(t *testing.T) {
	// Users observe random ~60% subsets of objects; everything must
	// still run and produce finite truths for every object.
	rng := randx.New(4)
	truths := genTruths(rng, 30)
	const numUsers = 25
	b := NewBuilder(numUsers, len(truths))
	for s := 0; s < numUsers; s++ {
		sd := 0.1 + rng.Float64()
		covered := false
		for n, tv := range truths {
			if rng.Float64() < 0.6 || (!covered && n == len(truths)-1) {
				b.Add(s, n, tv+sd*rng.Norm())
				covered = true
			}
		}
	}
	ds, err := b.Build()
	if err != nil {
		// Rare: some object may be uncovered under this seed; the seed
		// above is chosen so that this does not happen.
		t.Fatal(err)
	}
	for name, res := range runAll(t, ds) {
		if len(res.Truths) != len(truths) {
			t.Fatalf("%s: %d truths", name, len(res.Truths))
		}
		for n, v := range res.Truths {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite truth %d = %v", name, n, v)
			}
		}
	}
}

func TestSilentUserGetsZeroWeight(t *testing.T) {
	nan := math.NaN()
	ds := mustDataset(t, [][]float64{
		{1, 2},
		{1.1, 2.1},
		{nan, nan},
	})
	for name, res := range runAll(t, ds) {
		if w := res.Weights[2]; w != 0 {
			t.Errorf("%s: silent user weight = %v, want 0", name, w)
		}
	}
}

func TestMethodsRejectNilDataset(t *testing.T) {
	crh, _ := NewCRH()
	gtm, _ := NewGTM()
	catd, _ := NewCATD()
	for _, m := range []Method{crh, gtm, catd, Mean{}, Median{}} {
		if _, err := m.Run(nil); err == nil {
			t.Errorf("%s accepted nil dataset", m.Name())
		}
	}
}

func TestWeightsOrderingMatchesQuality(t *testing.T) {
	// Users sorted by noise level should be sorted (roughly) by weight.
	rng := randx.New(5)
	truths := genTruths(rng, 60)
	stds := []float64{0.05, 0.2, 0.5, 1.0, 2.0}
	ds := genDataset(t, rng, truths, stds)
	results := runAll(t, ds)
	for _, name := range []string{"crh", "gtm", "catd"} {
		ws := results[name].Weights
		if !sort.SliceIsSorted(ws, func(i, j int) bool { return ws[i] > ws[j] }) {
			t.Errorf("%s: weights %v not decreasing with noise", name, ws)
		}
	}
}
