package truth

import (
	"errors"
	"math"
	"testing"

	"pptd/internal/randx"
)

func TestNewCRHValidation(t *testing.T) {
	if _, err := NewCRH(WithCRHTolerance(0)); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := NewCRH(WithCRHMaxIterations(0)); err == nil {
		t.Error("zero iteration cap accepted")
	}
	if _, err := NewCRH(WithCRHDistance(Distance(42))); err == nil {
		t.Error("unknown distance accepted")
	}
}

func TestCRHName(t *testing.T) {
	c, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "crh" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCRHConvergesAndReportsIterations(t *testing.T) {
	rng := randx.New(10)
	truths := genTruths(rng, 30)
	stds := make([]float64, 50)
	for i := range stds {
		stds[i] = 0.1 + rng.Float64()
	}
	ds := genDataset(t, rng, truths, stds)
	c, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("CRH did not converge on benign data")
	}
	if res.Iterations <= 0 || res.Iterations > DefaultMaxIterations {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestCRHAllDistances(t *testing.T) {
	rng := randx.New(11)
	truths := genTruths(rng, 25)
	stds := []float64{0.05, 0.1, 0.5, 1.0, 2.5, 0.2, 0.3}
	ds := genDataset(t, rng, truths, stds)
	for _, dist := range []Distance{SquaredDistance, AbsoluteDistance, NormalizedSquaredDistance} {
		t.Run(dist.String(), func(t *testing.T) {
			c, err := NewCRH(WithCRHDistance(dist))
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(ds)
			if err != nil {
				t.Fatal(err)
			}
			var mae float64
			for n, tv := range truths {
				mae += math.Abs(res.Truths[n] - tv)
			}
			mae /= float64(len(truths))
			if mae > 0.25 {
				t.Errorf("MAE with %v distance = %v", dist, mae)
			}
			// Best user should out-weigh worst user.
			if res.Weights[0] <= res.Weights[4] {
				t.Errorf("weights not quality-ordered: best %v, worst %v", res.Weights[0], res.Weights[4])
			}
		})
	}
}

func TestCRHFailOnNonConvergence(t *testing.T) {
	rng := randx.New(12)
	truths := genTruths(rng, 10)
	stds := []float64{0.5, 1, 2}
	ds := genDataset(t, rng, truths, stds)
	c, err := NewCRH(
		WithCRHMaxIterations(1),
		WithCRHTolerance(1e-15),
		WithCRHFailOnNonConvergence(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ds); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("error = %v, want ErrNotConverged", err)
	}
}

func TestCRHWeightsNonNegative(t *testing.T) {
	rng := randx.New(13)
	truths := genTruths(rng, 15)
	stds := []float64{0.01, 5.0} // extreme imbalance stresses the clamp
	ds := genDataset(t, rng, truths, stds)
	c, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for s, w := range res.Weights {
		if w < 0 || math.IsNaN(w) {
			t.Errorf("weight %d = %v", s, w)
		}
	}
}

func TestCRHPerfectAgreement(t *testing.T) {
	// All users report identical values: distances hit the floor, the
	// algorithm must still terminate with the exact truths.
	ds := mustDataset(t, [][]float64{
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 3},
	})
	c, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for n, want := range []float64{1, 2, 3} {
		if res.Truths[n] != want {
			t.Errorf("truth %d = %v, want %v", n, res.Truths[n], want)
		}
	}
}

func TestCRHDeterministic(t *testing.T) {
	rng := randx.New(14)
	truths := genTruths(rng, 20)
	stds := []float64{0.1, 0.4, 0.9, 1.5}
	ds := genDataset(t, rng, truths, stds)
	c, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	for n := range r1.Truths {
		if r1.Truths[n] != r2.Truths[n] {
			t.Fatalf("non-deterministic truth %d", n)
		}
	}
	if r1.Iterations != r2.Iterations {
		t.Fatal("non-deterministic iteration count")
	}
}
