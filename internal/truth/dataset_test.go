package truth

import (
	"errors"
	"math"
	"testing"
)

func mustDataset(t *testing.T, matrix [][]float64) *Dataset {
	t.Helper()
	ds, err := FromDense(matrix)
	if err != nil {
		t.Fatalf("FromDense: %v", err)
	}
	return ds
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1.0)
	b.Add(0, 1, 2.0)
	b.Add(1, 0, 3.0)
	b.Add(1, 1, 4.0)
	b.Add(1, 2, 5.0)
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 2 || ds.NumObjects() != 3 || ds.NumObservations() != 5 {
		t.Fatalf("dims = (%d, %d, %d)", ds.NumUsers(), ds.NumObjects(), ds.NumObservations())
	}
	obs, err := ds.UserObservations(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 || obs[0].Value != 1 || obs[1].Object != 1 {
		t.Fatalf("user 0 observations = %+v", obs)
	}
	byObj, err := ds.ObjectObservations(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(byObj) != 1 || byObj[0].User != 1 || byObj[0].Value != 5 {
		t.Fatalf("object 2 observations = %+v", byObj)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func(*Builder)
		wantErr error
	}{
		{
			name:    "bad user",
			build:   func(b *Builder) { b.Add(5, 0, 1) },
			wantErr: ErrBadIndex,
		},
		{
			name:    "negative object",
			build:   func(b *Builder) { b.Add(0, -1, 1) },
			wantErr: ErrBadIndex,
		},
		{
			name:    "nan value",
			build:   func(b *Builder) { b.Add(0, 0, math.NaN()) },
			wantErr: ErrBadValue,
		},
		{
			name:    "inf value",
			build:   func(b *Builder) { b.Add(0, 0, math.Inf(1)) },
			wantErr: ErrBadValue,
		},
		{
			name: "duplicate",
			build: func(b *Builder) {
				b.Add(0, 0, 1)
				b.Add(0, 0, 2)
			},
			wantErr: ErrDuplicate,
		},
		{
			name: "uncovered object",
			build: func(b *Builder) {
				b.Add(0, 0, 1)
			},
			wantErr: ErrNoObservations,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(2, 2)
			tt.build(b)
			if _, err := b.Build(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Build error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(7, 0, 1) // bad
	b.Add(0, 0, 1) // would be fine, but ignored after the sticky error
	if _, err := b.Build(); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	nan := math.NaN()
	matrix := [][]float64{
		{1, 2, nan},
		{nan, 3, 4},
	}
	ds := mustDataset(t, matrix)
	if ds.NumObservations() != 4 {
		t.Fatalf("observations = %d, want 4", ds.NumObservations())
	}
	dense := ds.Dense()
	for s := range matrix {
		for n := range matrix[s] {
			a, b := matrix[s][n], dense[s][n]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("dense[%d][%d] = %v, want %v", s, n, b, a)
			}
		}
	}
}

func TestFromDenseErrors(t *testing.T) {
	if _, err := FromDense(nil); err == nil {
		t.Error("empty matrix should error")
	}
	if _, err := FromDense([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should error")
	}
	nan := math.NaN()
	if _, err := FromDense([][]float64{{1, nan}, {2, nan}}); !errors.Is(err, ErrNoObservations) {
		t.Error("all-missing column should report ErrNoObservations")
	}
}

func TestIndexErrors(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}})
	if _, err := ds.UserObservations(-1); !errors.Is(err, ErrBadIndex) {
		t.Error("negative user index accepted")
	}
	if _, err := ds.UserObservations(1); !errors.Is(err, ErrBadIndex) {
		t.Error("overflow user index accepted")
	}
	if _, err := ds.ObjectObservations(2); !errors.Is(err, ErrBadIndex) {
		t.Error("overflow object index accepted")
	}
}

func TestObservationsOrder(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}, {3, 4}})
	all := ds.Observations()
	if len(all) != 4 {
		t.Fatalf("got %d observations", len(all))
	}
	want := []Observation{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}}
	for i, o := range all {
		if o != want[i] {
			t.Fatalf("observation %d = %+v, want %+v", i, o, want[i])
		}
	}
}

func TestMapPreservesSparsity(t *testing.T) {
	nan := math.NaN()
	ds := mustDataset(t, [][]float64{
		{1, nan, 3},
		{4, 5, nan},
		{nan, 6, 7},
	})
	shifted, err := ds.Map(func(_, _ int, v float64) float64 { return v + 10 })
	if err != nil {
		t.Fatal(err)
	}
	if shifted.NumObservations() != ds.NumObservations() {
		t.Fatalf("observation count changed: %d -> %d", ds.NumObservations(), shifted.NumObservations())
	}
	orig := ds.Dense()
	got := shifted.Dense()
	for s := range orig {
		for n := range orig[s] {
			switch {
			case math.IsNaN(orig[s][n]):
				if !math.IsNaN(got[s][n]) {
					t.Fatalf("missing entry (%d,%d) became %v", s, n, got[s][n])
				}
			case got[s][n] != orig[s][n]+10:
				t.Fatalf("entry (%d,%d) = %v, want %v", s, n, got[s][n], orig[s][n]+10)
			}
		}
	}
}

func TestMapRejectsNonFinite(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}})
	if _, err := ds.Map(func(_, _ int, _ float64) float64 { return math.NaN() }); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Map to NaN error = %v, want ErrBadValue", err)
	}
}

func TestObjectMeansAndStdDevs(t *testing.T) {
	ds := mustDataset(t, [][]float64{
		{1, 10},
		{3, 10},
	})
	means := ds.ObjectMeans()
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("means = %v", means)
	}
	stds := ds.ObjectStdDevs()
	if stds[0] != 1 || stds[1] != 0 {
		t.Fatalf("stds = %v", stds)
	}
}

func TestBuildRejectsDegenerateDims(t *testing.T) {
	if _, err := NewBuilder(0, 1).Build(); !errors.Is(err, ErrBadIndex) {
		t.Error("zero users accepted")
	}
	if _, err := NewBuilder(1, 0).Build(); !errors.Is(err, ErrBadIndex) {
		t.Error("zero objects accepted")
	}
}
