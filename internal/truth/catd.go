package truth

import (
	"fmt"
	"math"
)

// CATD implements a confidence-aware truth-discovery method in the style
// of Li et al. (VLDB'15): user weights are the upper bound of the
// chi-squared confidence interval on the user's error precision,
//
//	w_s = Chi2Quantile(confidence, k_s) / sum_n (x_sn - x*_n)^2
//
// where k_s is the number of claims by user s. Compared with CRH this
// boosts users with many observations (their precision estimate is more
// trustworthy), which matters on long-tail crowd sensing data. It is an
// extension beyond the paper's two evaluated methods, included to support
// the claim that the mechanism works with any weighted-aggregation method.
type CATD struct {
	cfg        iterConfig
	confidence float64
}

var _ Method = (*CATD)(nil)

// CATDOption configures NewCATD.
type CATDOption interface {
	applyCATD(*CATD)
}

type catdOptionFunc func(*CATD)

func (f catdOptionFunc) applyCATD(c *CATD) { f(c) }

// WithCATDConfidence sets the chi-squared confidence level in (0, 1)
// (default 0.95).
func WithCATDConfidence(conf float64) CATDOption {
	return catdOptionFunc(func(c *CATD) { c.confidence = conf })
}

// WithCATDTolerance sets the convergence tolerance (default
// DefaultTolerance).
func WithCATDTolerance(tol float64) CATDOption {
	return catdOptionFunc(func(c *CATD) { c.cfg.tolerance = tol })
}

// WithCATDMaxIterations caps the iteration count (default
// DefaultMaxIterations).
func WithCATDMaxIterations(n int) CATDOption {
	return catdOptionFunc(func(c *CATD) { c.cfg.maxIterations = n })
}

// WithCATDFailOnNonConvergence makes Run return an error wrapping
// ErrNotConverged when the cap is hit.
func WithCATDFailOnNonConvergence() CATDOption {
	return catdOptionFunc(func(c *CATD) { c.cfg.failOnNoConv = true })
}

// NewCATD returns a configured CATD method.
func NewCATD(opts ...CATDOption) (*CATD, error) {
	c := &CATD{
		cfg:        defaultIterConfig(),
		confidence: 0.95,
	}
	for _, o := range opts {
		o.applyCATD(c)
	}
	if err := c.cfg.validate(); err != nil {
		return nil, err
	}
	if c.confidence <= 0 || c.confidence >= 1 || math.IsNaN(c.confidence) {
		return nil, fmt.Errorf("truth: confidence %v outside (0, 1)", c.confidence)
	}
	return c, nil
}

// Name implements Method.
func (c *CATD) Name() string { return "catd" }

// Run implements Method.
func (c *CATD) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	const distFloor = 1e-12

	var (
		numUsers = ds.NumUsers()
		numObjs  = ds.NumObjects()
		weights  = make([]float64, numUsers)
		truths   = make([]float64, numObjs)
		prev     = make([]float64, numObjs)
		quantile = make([]float64, numUsers)
	)
	for s := range weights {
		weights[s] = 1
	}
	for s, claims := range ds.byUser {
		if len(claims) > 0 {
			quantile[s] = Chi2Quantile(c.confidence, float64(len(claims)))
		}
	}

	weightedTruths(ds, weights, truths)
	res := &Result{Truths: truths, Weights: weights}
	for iter := 1; iter <= c.cfg.maxIterations; iter++ {
		res.Iterations = iter
		for s, claims := range ds.byUser {
			if len(claims) == 0 {
				weights[s] = 0
				continue
			}
			var ss float64
			for _, ov := range claims {
				d := ov.value - truths[ov.object]
				ss += d * d
			}
			if ss < distFloor {
				ss = distFloor
			}
			weights[s] = quantile[s] / ss
		}
		// Weights are scale-free ratios; normalize to mean 1 so the floor
		// in weightedTruths stays negligible and reports are comparable.
		NormalizeWeights(weights)
		copy(prev, truths)
		weightedTruths(ds, weights, truths)
		if maxAbsDiff(prev, truths) < c.cfg.tolerance {
			res.Converged = true
			break
		}
	}
	if !res.Converged && c.cfg.failOnNoConv {
		return nil, fmt.Errorf("%w: catd after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// Chi2Quantile approximates the chi-squared quantile with k degrees of
// freedom via the Wilson–Hilferty cube transformation, which is accurate
// to a few percent for k >= 1 — ample for weight ratios. It is exported
// so the streaming CATD estimator (internal/stream) computes bit-identical
// weights to this batch method.
func Chi2Quantile(p, k float64) float64 {
	z := stdNormalQuantile(p)
	a := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * a * a * a
}

// stdNormalQuantile inverts the standard normal CDF by bisection on
// math.Erf — slow but dependency-free, and called once per user.
func stdNormalQuantile(p float64) float64 {
	lo, hi := -10.0, 10.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*(1+math.Erf(mid/math.Sqrt2)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
