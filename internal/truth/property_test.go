package truth

import (
	"math"
	"testing"
	"testing/quick"

	"pptd/internal/randx"
)

// quickDataset derives a small random dense dataset from a seed.
func quickDataset(seed uint64) (*Dataset, error) {
	rng := randx.New(seed)
	users := 2 + rng.Intn(10)
	objects := 1 + rng.Intn(10)
	b := NewBuilder(users, objects)
	for s := 0; s < users; s++ {
		for n := 0; n < objects; n++ {
			b.Add(s, n, 20*rng.Float64()-10)
		}
	}
	return b.Build()
}

func TestPropertyTruthsWithinClaimRange(t *testing.T) {
	// Every method's truths are convex combinations (or order statistics)
	// of the claims, so they must lie inside each object's claim range.
	crh, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	catd, err := NewCATD()
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{crh, gtm, catd, Mean{}, Median{}}

	f := func(seed uint64) bool {
		ds, err := quickDataset(seed)
		if err != nil {
			return false
		}
		for _, m := range methods {
			res, err := m.Run(ds)
			if err != nil {
				return false
			}
			for n := 0; n < ds.NumObjects(); n++ {
				claims, err := ds.ObjectObservations(n)
				if err != nil {
					return false
				}
				lo, hi := claims[0].Value, claims[0].Value
				for _, c := range claims {
					if c.Value < lo {
						lo = c.Value
					}
					if c.Value > hi {
						hi = c.Value
					}
				}
				const slack = 1e-6
				if res.Truths[n] < lo-slack || res.Truths[n] > hi+slack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWeightsFiniteNonNegative(t *testing.T) {
	crh, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	gtm, err := NewGTM()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		ds, err := quickDataset(seed)
		if err != nil {
			return false
		}
		for _, m := range []Method{crh, gtm} {
			res, err := m.Run(ds)
			if err != nil {
				return false
			}
			for _, w := range res.Weights {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTranslationEquivariance(t *testing.T) {
	// Shifting every claim by a constant shifts every truth by the same
	// constant (CRH with squared distance is translation-equivariant).
	crh, err := NewCRH(WithCRHDistance(SquaredDistance))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, rawShift float64) bool {
		shift := math.Mod(rawShift, 1000)
		if math.IsNaN(shift) {
			return true
		}
		ds, err := quickDataset(seed)
		if err != nil {
			return false
		}
		shifted, err := ds.Map(func(_, _ int, v float64) float64 { return v + shift })
		if err != nil {
			return false
		}
		a, err := crh.Run(ds)
		if err != nil {
			return false
		}
		b, err := crh.Run(shifted)
		if err != nil {
			return false
		}
		for n := range a.Truths {
			if math.Abs(b.Truths[n]-(a.Truths[n]+shift)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUserOrderInvariance(t *testing.T) {
	// Relabeling users must permute weights identically and leave truths
	// unchanged: the methods are symmetric in users.
	crh, err := NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		ds, err := quickDataset(seed)
		if err != nil {
			return false
		}
		rng := randx.New(seed ^ 0xabcdef)
		perm := rng.Perm(ds.NumUsers())
		b := NewBuilder(ds.NumUsers(), ds.NumObjects())
		for _, o := range ds.Observations() {
			b.Add(perm[o.User], o.Object, o.Value)
		}
		permuted, err := b.Build()
		if err != nil {
			return false
		}
		r1, err := crh.Run(ds)
		if err != nil {
			return false
		}
		r2, err := crh.Run(permuted)
		if err != nil {
			return false
		}
		for n := range r1.Truths {
			if math.Abs(r1.Truths[n]-r2.Truths[n]) > 1e-9 {
				return false
			}
		}
		for s := range r1.Weights {
			if math.Abs(r1.Weights[s]-r2.Weights[perm[s]]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMapPreservesCounts(t *testing.T) {
	f := func(seed uint64) bool {
		ds, err := quickDataset(seed)
		if err != nil {
			return false
		}
		mapped, err := ds.Map(func(_, _ int, v float64) float64 { return v * 2 })
		if err != nil {
			return false
		}
		return mapped.NumObservations() == ds.NumObservations() &&
			mapped.NumUsers() == ds.NumUsers() &&
			mapped.NumObjects() == ds.NumObjects()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
