package truth

import (
	"fmt"
	"sort"
)

// Mean is the uniform-weight averaging baseline the paper compares against:
// every user gets weight 1 and truths are plain per-object means.
type Mean struct{}

var _ Method = Mean{}

// Name implements Method.
func (Mean) Name() string { return "mean" }

// Run implements Method.
func (Mean) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	weights := make([]float64, ds.NumUsers())
	for s, claims := range ds.byUser {
		if len(claims) > 0 {
			weights[s] = 1
		}
	}
	return &Result{
		Truths:     ds.ObjectMeans(),
		Weights:    weights,
		Iterations: 1,
		Converged:  true,
	}, nil
}

// Median is the per-object median baseline — robust to outliers but still
// weight-free, so it cannot exploit differing user quality.
type Median struct{}

var _ Method = Median{}

// Name implements Method.
func (Median) Name() string { return "median" }

// Run implements Method.
func (Median) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	truths := make([]float64, ds.NumObjects())
	buf := make([]float64, 0, ds.NumUsers())
	for n, claims := range ds.byObject {
		buf = buf[:0]
		for _, uv := range claims {
			buf = append(buf, uv.value)
		}
		sort.Float64s(buf)
		mid := len(buf) / 2
		if len(buf)%2 == 1 {
			truths[n] = buf[mid]
		} else {
			truths[n] = (buf[mid-1] + buf[mid]) / 2
		}
	}
	weights := make([]float64, ds.NumUsers())
	for s, claims := range ds.byUser {
		if len(claims) > 0 {
			weights[s] = 1
		}
	}
	return &Result{
		Truths:     truths,
		Weights:    weights,
		Iterations: 1,
		Converged:  true,
	}, nil
}
