package truth

import (
	"errors"
	"fmt"
	"math"
)

// Default iteration controls shared by the iterative methods.
const (
	// DefaultTolerance is the convergence threshold on the maximum
	// per-object truth change between consecutive iterations.
	DefaultTolerance = 1e-6
	// DefaultMaxIterations caps the iteration count when the tolerance is
	// never reached.
	DefaultMaxIterations = 100
)

// ErrNotConverged is wrapped into errors returned by methods configured to
// fail when the iteration cap is hit (the default is to return the last
// iterate instead).
var ErrNotConverged = errors.New("truth: did not converge")

// Result is the output of one truth-discovery run.
type Result struct {
	// Truths holds the aggregated value per object (x*_n).
	Truths []float64
	// Weights holds the estimated per-user weight (w_s). For users with no
	// observations the weight is 0. Baseline methods report uniform or
	// zero weights as documented on the method.
	Weights []float64
	// Iterations is the number of truth/weight update rounds executed.
	Iterations int
	// Converged reports whether the tolerance was met before the cap.
	Converged bool
}

// Method is a truth-discovery algorithm: it maps a Dataset to aggregated
// truths and user weights.
type Method interface {
	// Name identifies the method in reports and benchmarks.
	Name() string
	// Run executes the method on the dataset.
	Run(ds *Dataset) (*Result, error)
}

// Distance selects the claim-to-truth distance d(.,.) used in the weight
// update (Eq. 2 of the paper).
type Distance int

// Supported distances.
const (
	// SquaredDistance is (x - t)^2, the CRH default for continuous data.
	SquaredDistance Distance = iota + 1
	// AbsoluteDistance is |x - t|.
	AbsoluteDistance
	// NormalizedSquaredDistance is (x - t)^2 / std_n, CRH's scale-free
	// variant; std_n is the per-object claim standard deviation.
	NormalizedSquaredDistance
)

// String returns the distance name.
func (d Distance) String() string {
	switch d {
	case SquaredDistance:
		return "squared"
	case AbsoluteDistance:
		return "absolute"
	case NormalizedSquaredDistance:
		return "normalized-squared"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

func (d Distance) valid() bool {
	switch d {
	case SquaredDistance, AbsoluteDistance, NormalizedSquaredDistance:
		return true
	default:
		return false
	}
}

// iterConfig carries the iteration controls common to CRH, GTM and CATD.
type iterConfig struct {
	tolerance     float64
	maxIterations int
	failOnNoConv  bool
}

func defaultIterConfig() iterConfig {
	return iterConfig{
		tolerance:     DefaultTolerance,
		maxIterations: DefaultMaxIterations,
	}
}

func (c iterConfig) validate() error {
	if c.tolerance <= 0 || math.IsNaN(c.tolerance) {
		return fmt.Errorf("truth: non-positive tolerance %v", c.tolerance)
	}
	if c.maxIterations <= 0 {
		return fmt.Errorf("truth: non-positive iteration cap %d", c.maxIterations)
	}
	return nil
}

// maxAbsDiff returns the largest absolute element-wise difference between
// equal-length slices.
func maxAbsDiff(a, b []float64) float64 {
	var maxd float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// NormalizeWeights rescales ws to mean 1, preserving ratios, so weights of
// different methods/runs are comparable in reports. Zero or negative total
// weight leaves ws unchanged and returns false.
func NormalizeWeights(ws []float64) bool {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	if sum <= 0 || len(ws) == 0 {
		return false
	}
	scale := float64(len(ws)) / sum
	for i := range ws {
		ws[i] *= scale
	}
	return true
}

// WeightsAgainst evaluates the CRH weight formula (Eq. 3) for each user
// against a fixed reference truth vector instead of the iteratively
// estimated one. With the ground truth as reference this yields the "true
// weights" of the paper's Fig. 7. Distances are averaged per user over
// their observed objects; users with no observations get weight 0.
func WeightsAgainst(ds *Dataset, reference []float64, distance Distance) ([]float64, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	if len(reference) != ds.NumObjects() {
		return nil, fmt.Errorf("%w: %d reference truths for %d objects",
			ErrBadIndex, len(reference), ds.NumObjects())
	}
	if !distance.valid() {
		return nil, fmt.Errorf("truth: unknown distance %v", distance)
	}
	const (
		distFloor = 1e-12
		stdFloor  = 1e-9
	)
	stds := ds.ObjectStdDevs()
	dists := make([]float64, ds.NumUsers())
	var total float64
	for s, claims := range ds.byUser {
		if len(claims) == 0 {
			dists[s] = math.NaN()
			continue
		}
		var d float64
		for _, ov := range claims {
			diff := ov.value - reference[ov.object]
			switch distance {
			case AbsoluteDistance:
				d += math.Abs(diff)
			case NormalizedSquaredDistance:
				std := stds[ov.object]
				if std < stdFloor {
					std = stdFloor
				}
				d += diff * diff / std
			default: // SquaredDistance
				d += diff * diff
			}
		}
		d /= float64(len(claims))
		if d < distFloor {
			d = distFloor
		}
		dists[s] = d
		total += d
	}
	if total <= 0 {
		total = distFloor
	}
	weights := make([]float64, len(dists))
	for s, d := range dists {
		if math.IsNaN(d) {
			continue
		}
		w := -math.Log(d / total)
		if w < 0 {
			w = 0
		}
		weights[s] = w
	}
	return weights, nil
}

// weightedTruths computes Eq. 1: per-object weighted means of claims using
// the given user weights. Users with non-positive weight are clamped to
// weightFloor so every recorded claim retains an infinitesimal vote and
// the denominator stays positive.
func weightedTruths(ds *Dataset, weights []float64, out []float64) {
	const weightFloor = 1e-12
	for n, claims := range ds.byObject {
		var num, den float64
		for _, uv := range claims {
			w := weights[uv.user]
			if w < weightFloor {
				w = weightFloor
			}
			num += w * uv.value
			den += w
		}
		out[n] = num / den
	}
}
