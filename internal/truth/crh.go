package truth

import (
	"fmt"
	"math"
)

// CRH implements the Conflict Resolution on Heterogeneous data framework of
// Li et al. (SIGMOD'14) for continuous claims — the truth-discovery method
// the paper instantiates in Eq. (3):
//
//	w_s = -log( d_s / sum_{s'} d_{s'} ),  d_s = sum_n d(x_sn, x*_n)
//
// alternated with the weighted aggregation of Eq. (1) until the truths
// stabilize. A per-user distance is averaged over the user's observed
// objects so sparsely participating users are not over-penalized.
type CRH struct {
	cfg      iterConfig
	distance Distance
}

var _ Method = (*CRH)(nil)

// CRHOption configures NewCRH.
type CRHOption interface {
	applyCRH(*CRH)
}

type crhOptionFunc func(*CRH)

func (f crhOptionFunc) applyCRH(c *CRH) { f(c) }

// WithCRHDistance selects the claim-to-truth distance (default
// NormalizedSquaredDistance, CRH's scale-free choice).
func WithCRHDistance(d Distance) CRHOption {
	return crhOptionFunc(func(c *CRH) { c.distance = d })
}

// WithCRHTolerance sets the convergence tolerance on the maximum truth
// change (default DefaultTolerance).
func WithCRHTolerance(tol float64) CRHOption {
	return crhOptionFunc(func(c *CRH) { c.cfg.tolerance = tol })
}

// WithCRHMaxIterations caps the iteration count (default
// DefaultMaxIterations).
func WithCRHMaxIterations(n int) CRHOption {
	return crhOptionFunc(func(c *CRH) { c.cfg.maxIterations = n })
}

// WithCRHFailOnNonConvergence makes Run return an error wrapping
// ErrNotConverged when the cap is hit; by default the last iterate is
// returned with Converged=false.
func WithCRHFailOnNonConvergence() CRHOption {
	return crhOptionFunc(func(c *CRH) { c.cfg.failOnNoConv = true })
}

// NewCRH returns a configured CRH method.
func NewCRH(opts ...CRHOption) (*CRH, error) {
	c := &CRH{
		cfg:      defaultIterConfig(),
		distance: NormalizedSquaredDistance,
	}
	for _, o := range opts {
		o.applyCRH(c)
	}
	if err := c.cfg.validate(); err != nil {
		return nil, err
	}
	if !c.distance.valid() {
		return nil, fmt.Errorf("truth: unknown distance %v", c.distance)
	}
	return c, nil
}

// Name implements Method.
func (c *CRH) Name() string { return "crh" }

// Run implements Method following Algorithm 1 of the paper: initialize
// uniform weights, then alternate aggregation (Eq. 1) and weight
// estimation (Eq. 3) until the truths move less than the tolerance.
func (c *CRH) Run(ds *Dataset) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadIndex)
	}
	var (
		numUsers = ds.NumUsers()
		numObjs  = ds.NumObjects()
		weights  = make([]float64, numUsers)
		truths   = make([]float64, numObjs)
		prev     = make([]float64, numObjs)
	)
	for s := range weights {
		weights[s] = 1
	}
	// Scale reference for the normalized distance; recomputed once, from
	// the claims themselves (the truths move within the claim range).
	stds := ds.ObjectStdDevs()

	weightedTruths(ds, weights, truths)
	res := &Result{Truths: truths, Weights: weights}
	for iter := 1; iter <= c.cfg.maxIterations; iter++ {
		res.Iterations = iter
		c.updateWeights(ds, truths, stds, weights)
		copy(prev, truths)
		weightedTruths(ds, weights, truths)
		if maxAbsDiff(prev, truths) < c.cfg.tolerance {
			res.Converged = true
			break
		}
	}
	if !res.Converged && c.cfg.failOnNoConv {
		return nil, fmt.Errorf("%w: crh after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// updateWeights computes Eq. (3) with per-user mean distances.
func (c *CRH) updateWeights(ds *Dataset, truths, stds, weights []float64) {
	const (
		// distFloor keeps log arguments finite for users that agree
		// perfectly with the truths.
		distFloor = 1e-12
		// stdFloor avoids division by zero for constant objects.
		stdFloor = 1e-9
	)
	dists := make([]float64, len(weights))
	var total float64
	for s, claims := range ds.byUser {
		if len(claims) == 0 {
			dists[s] = math.NaN()
			continue
		}
		var d float64
		for _, ov := range claims {
			diff := ov.value - truths[ov.object]
			switch c.distance {
			case AbsoluteDistance:
				d += math.Abs(diff)
			case NormalizedSquaredDistance:
				std := stds[ov.object]
				if std < stdFloor {
					std = stdFloor
				}
				d += diff * diff / std
			default: // SquaredDistance
				d += diff * diff
			}
		}
		d /= float64(len(claims))
		if d < distFloor {
			d = distFloor
		}
		dists[s] = d
		total += d
	}
	if total <= 0 {
		total = distFloor
	}
	for s := range weights {
		if math.IsNaN(dists[s]) {
			weights[s] = 0 // user contributed nothing
			continue
		}
		w := -math.Log(dists[s] / total)
		if w < 0 {
			// A single user dominating the total distance can push the
			// ratio above 1; clamp so weights stay non-negative.
			w = 0
		}
		weights[s] = w
	}
}
