package crowd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
	"pptd/internal/truth"
)

var (
	// ErrBadConfig reports an invalid server configuration.
	ErrBadConfig = errors.New("crowd: invalid server config")
	// ErrDuplicateClient reports a second submission from the same ID.
	ErrDuplicateClient = errors.New("crowd: duplicate client submission")
	// ErrCampaignClosed reports a submission after aggregation.
	ErrCampaignClosed = errors.New("crowd: campaign already aggregated")
	// ErrNotReady reports a result request before aggregation.
	ErrNotReady = errors.New("crowd: result not ready")
	// ErrBadSubmission reports a malformed submission.
	ErrBadSubmission = errors.New("crowd: bad submission")
)

// ServerConfig parameterizes a campaign server.
type ServerConfig struct {
	// Name labels the campaign.
	Name string
	// NumObjects is the number of micro-tasks.
	NumObjects int
	// Lambda2 is the noise-variance rate released to users.
	Lambda2 float64
	// ExpectedUsers triggers aggregation when reached. Zero means
	// aggregation only happens on explicit POST /v1/aggregate.
	ExpectedUsers int
	// Method is the truth-discovery algorithm run at aggregation time.
	Method truth.Method
	// Persistence, when set, makes the campaign durable: every accepted
	// submission is fsync'd to the store's batch WAL before its receipt
	// is returned, the aggregated result is persisted before it is first
	// published, and NewServer recovers both — so a restarted server
	// still enforces one-submission-per-client and serves the same
	// result. The caller opens the store and keeps ownership (a node
	// shares one store between the batch and streaming campaigns).
	Persistence *streamstore.Store
	// MaxRequestBytes caps the POST /v1/submissions request body;
	// oversized bodies get the 413 payload_too_large envelope before
	// being buffered. Zero means DefaultMaxRequestBytes; negative is a
	// config error.
	MaxRequestBytes int64
}

func (c ServerConfig) validate() error {
	switch {
	case c.NumObjects <= 0:
		return fmt.Errorf("%w: NumObjects = %d", ErrBadConfig, c.NumObjects)
	case c.Lambda2 <= 0 || math.IsNaN(c.Lambda2) || math.IsInf(c.Lambda2, 0):
		return fmt.Errorf("%w: Lambda2 = %v", ErrBadConfig, c.Lambda2)
	case c.ExpectedUsers < 0:
		return fmt.Errorf("%w: ExpectedUsers = %d", ErrBadConfig, c.ExpectedUsers)
	case c.Method == nil:
		return fmt.Errorf("%w: nil method", ErrBadConfig)
	case c.MaxRequestBytes < 0:
		return fmt.Errorf("%w: MaxRequestBytes = %d", ErrBadConfig, c.MaxRequestBytes)
	}
	return nil
}

// Server is the untrusted aggregation server. It only ever stores
// perturbed claims; the privacy of each user rests on the client-side
// perturbation, not on trusting this process. Safe for concurrent use.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	order  []string           // client IDs in submission order
	claims map[string][]Claim // by client ID
	result *ResultInfo        // nil until aggregated
}

// NewServer returns a campaign server for the given config. With
// Persistence set it first recovers the durable campaign state: every
// WAL'd submission is re-admitted (in acknowledgement order, so the
// duplicate guard and any expected-users trigger see what the pre-crash
// server saw) and a persisted aggregated result closes the campaign
// again. Recovery never re-aggregates — a crash between the last
// submission and the aggregation leaves the campaign open, exactly as
// acknowledged.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		claims: make(map[string][]Claim),
	}
	if cfg.Persistence != nil {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recover replays the batch WAL and reloads the persisted result into a
// fresh server. Called once from NewServer, before any request.
func (s *Server) recover() error {
	subs, err := s.cfg.Persistence.LoadBatchSubmissions()
	if err != nil {
		return fmt.Errorf("crowd: recover batch submissions: %w", err)
	}
	for _, sub := range subs {
		if sub.ClientID == "" {
			continue
		}
		if _, dup := s.claims[sub.ClientID]; dup {
			continue // a crash between WAL append and ack can duplicate
		}
		claims := make([]Claim, len(sub.Claims))
		for i, c := range sub.Claims {
			claims[i] = Claim{Object: c.Object, Value: c.Value}
		}
		s.claims[sub.ClientID] = claims
		s.order = append(s.order, sub.ClientID)
	}
	body, err := s.cfg.Persistence.LoadBatchResult()
	if err != nil {
		return fmt.Errorf("crowd: recover batch result: %w", err)
	}
	if body != nil {
		res := new(ResultInfo)
		if err := json.Unmarshal(body, res); err != nil {
			return fmt.Errorf("crowd: decode recovered batch result: %w", err)
		}
		s.result = res
	}
	return nil
}

// Handler returns the HTTP handler serving the campaign API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Register mounts the campaign routes on a shared mux, so one front door
// (a pptd Node) can serve the batch and streaming APIs together.
// Every route echoes the request-correlation header (see HeaderRequestID).
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathCampaign, echoRequestID(s.handleCampaign))
	mux.HandleFunc(PathSubmissions, echoRequestID(s.handleSubmissions))
	mux.HandleFunc(PathResult, echoRequestID(s.handleResult))
	mux.HandleFunc(PathAggregate, echoRequestID(s.handleAggregate))
}

// Campaign returns a snapshot of the campaign state.
func (s *Server) Campaign() CampaignInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CampaignInfo{
		Name:           s.cfg.Name,
		NumObjects:     s.cfg.NumObjects,
		Lambda2:        s.cfg.Lambda2,
		ExpectedUsers:  s.cfg.ExpectedUsers,
		SubmittedUsers: len(s.order),
		Aggregated:     s.result != nil,
	}
}

// Submit stores one client's perturbed claims and aggregates if the
// expected user count is reached. It validates object indices, duplicate
// objects within the submission, and one-submission-per-client.
func (s *Server) Submit(sub Submission) (SubmissionReceipt, error) {
	if sub.ClientID == "" {
		return SubmissionReceipt{}, fmt.Errorf("%w: empty client id", ErrBadSubmission)
	}
	if len(sub.Claims) == 0 {
		return SubmissionReceipt{}, fmt.Errorf("%w: no claims", ErrBadSubmission)
	}
	seen := make(map[int]struct{}, len(sub.Claims))
	for _, c := range sub.Claims {
		if c.Object < 0 || c.Object >= s.cfg.NumObjects {
			return SubmissionReceipt{}, fmt.Errorf("%w: object %d of %d", ErrBadSubmission, c.Object, s.cfg.NumObjects)
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return SubmissionReceipt{}, fmt.Errorf("%w: non-finite value for object %d", ErrBadSubmission, c.Object)
		}
		if _, dup := seen[c.Object]; dup {
			return SubmissionReceipt{}, fmt.Errorf("%w: duplicate object %d", ErrBadSubmission, c.Object)
		}
		seen[c.Object] = struct{}{}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.result != nil {
		return SubmissionReceipt{}, ErrCampaignClosed
	}
	if _, dup := s.claims[sub.ClientID]; dup {
		return SubmissionReceipt{}, fmt.Errorf("%w: %q", ErrDuplicateClient, sub.ClientID)
	}
	if s.cfg.Persistence != nil {
		// Durable before acknowledged: the WAL append fsyncs under s.mu,
		// so WAL order is acknowledgement order and a crash at any point
		// loses only submissions that were never acked.
		rec := streamstore.BatchSubmission{
			ClientID: sub.ClientID,
			Claims:   make([]stream.Claim, len(sub.Claims)),
		}
		for i, c := range sub.Claims {
			rec.Claims[i] = stream.Claim{Object: c.Object, Value: c.Value}
		}
		if err := s.cfg.Persistence.AppendBatchSubmission(rec); err != nil {
			return SubmissionReceipt{}, fmt.Errorf("crowd: persist submission: %w", err)
		}
	}
	stored := make([]Claim, len(sub.Claims))
	copy(stored, sub.Claims)
	s.claims[sub.ClientID] = stored
	s.order = append(s.order, sub.ClientID)

	receipt := SubmissionReceipt{
		Accepted:       len(stored),
		SubmittedUsers: len(s.order),
	}
	if s.cfg.ExpectedUsers > 0 && len(s.order) >= s.cfg.ExpectedUsers {
		if err := s.aggregateLocked(); err != nil {
			return SubmissionReceipt{}, err
		}
		receipt.Aggregated = true
	}
	return receipt, nil
}

// Aggregate runs truth discovery over everything submitted so far. It is
// idempotent: once aggregated, later calls return the cached result.
func (s *Server) Aggregate() (*ResultInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.result != nil {
		return s.result, nil
	}
	if err := s.aggregateLocked(); err != nil {
		return nil, err
	}
	return s.result, nil
}

// Result returns the aggregated result, or ErrNotReady.
func (s *Server) Result() (*ResultInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.result == nil {
		return nil, ErrNotReady
	}
	return s.result, nil
}

// aggregateLocked builds the dataset and runs the configured method.
// Callers must hold s.mu.
func (s *Server) aggregateLocked() error {
	if len(s.order) == 0 {
		return fmt.Errorf("%w: no submissions", ErrNotReady)
	}
	b := truth.NewBuilder(len(s.order), s.cfg.NumObjects)
	for idx, id := range s.order {
		for _, c := range s.claims[id] {
			b.Add(idx, c.Object, c.Value)
		}
	}
	ds, err := b.Build()
	if err != nil {
		return fmt.Errorf("crowd: build dataset: %w", err)
	}
	res, err := s.cfg.Method.Run(ds)
	if err != nil {
		return fmt.Errorf("crowd: aggregate: %w", err)
	}
	weights := make(map[string]float64, len(s.order))
	for idx, id := range s.order {
		weights[id] = res.Weights[idx]
	}
	result := &ResultInfo{
		Truths:     res.Truths,
		Weights:    weights,
		Method:     s.cfg.Method.Name(),
		Iterations: res.Iterations,
		Converged:  res.Converged,
	}
	if s.cfg.Persistence != nil {
		// Persist before publish: a result any client ever saw must
		// survive a crash. On failure the campaign stays unaggregated —
		// the submissions are all in the WAL, so POST /v1/aggregate
		// simply retries.
		body, err := json.Marshal(result)
		if err != nil {
			return fmt.Errorf("crowd: encode batch result: %w", err)
		}
		if err := s.cfg.Persistence.SaveBatchResult(body); err != nil {
			return fmt.Errorf("crowd: persist batch result: %w", err)
		}
	}
	s.result = result
	return nil
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Campaign())
}

func (s *Server) handleSubmissions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, effectiveMaxRequestBytes(s.cfg.MaxRequestBytes))
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeDecodeError(w, "decode submission", err)
		return
	}
	receipt, err := s.Submit(sub)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, receipt)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	res, err := s.Result()
	if err != nil {
		// ErrNotReady maps to 404 not_ready: a pending result is a missing
		// resource, not a conflict with the request (cf. the stream
		// server's truths endpoint).
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	res, err := s.Aggregate()
	if errors.Is(err, ErrNotReady) {
		// Aggregating an empty campaign stays 409: here the request itself
		// conflicts with campaign state, unlike a pending GET /v1/result.
		writeError(w, http.StatusConflict, CodeEmptyCampaign, err.Error())
		return
	}
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding of our own wire structs cannot fail; ignore the writer
	// error as the response is already committed.
	_ = json.NewEncoder(w).Encode(v)
}
