package crowd

import (
	"net/http"
	"strconv"
	"strings"

	"pptd/internal/obs"
)

// echoRequestID wraps one route handler so its response always carries
// an X-Request-ID header: the client's, when the request supplied a
// valid one, otherwise a freshly generated ID. Registered on every
// route, it makes the echo contract hold even for a bare Server or
// StreamServer handler mounted without the node's obs middleware; under
// the middleware (which installs the header before the mux runs) the
// wrapper sees the header already set and leaves it alone, so the ID
// the middleware logged is the one the client receives.
//
// The wrapper also records the envelope version negotiation on every
// response (see negotiateEnvelope): the route layer is the one place
// every endpoint funnels through, so the negotiated version is
// answered even on requests that never reach an error path.
func echoRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if w.Header().Get(HeaderRequestID) == "" {
			id := r.Header.Get(HeaderRequestID)
			if !obs.ValidRequestID(id) {
				id = obs.NewRequestID()
			}
			w.Header().Set(HeaderRequestID, id)
		}
		if w.Header().Get(HeaderEnvelopeVersion) == "" {
			v := negotiateEnvelope(r.Header.Get(HeaderAcceptEnvelope))
			w.Header().Set(HeaderEnvelopeVersion, strconv.Itoa(v))
		}
		h(w, r)
	}
}

// negotiateEnvelope selects the error-envelope version for one request
// from the client's HeaderAcceptEnvelope advertisement: the highest
// advertised version this server supports. With no advertisement (or
// nothing intelligible in it) the server's current version is assumed —
// today that is also the only supported one, so negotiation is pure
// bookkeeping, but it is the hook that lets a "v": 2 envelope roll out
// without breaking clients that only speak v1.
func negotiateEnvelope(accept string) int {
	if accept == "" {
		return ErrorEnvelopeVersion
	}
	best := 0
	for _, part := range strings.Split(accept, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			continue
		}
		if v <= ErrorEnvelopeVersion && v > best {
			best = v
		}
	}
	if best == 0 {
		return ErrorEnvelopeVersion
	}
	return best
}
