package crowd

import (
	"net/http"

	"pptd/internal/obs"
)

// echoRequestID wraps one route handler so its response always carries
// an X-Request-ID header: the client's, when the request supplied a
// valid one, otherwise a freshly generated ID. Registered on every
// route, it makes the echo contract hold even for a bare Server or
// StreamServer handler mounted without the node's obs middleware; under
// the middleware (which installs the header before the mux runs) the
// wrapper sees the header already set and leaves it alone, so the ID
// the middleware logged is the one the client receives.
func echoRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if w.Header().Get(HeaderRequestID) == "" {
			id := r.Header.Get(HeaderRequestID)
			if !obs.ValidRequestID(id) {
				id = obs.NewRequestID()
			}
			w.Header().Set(HeaderRequestID, id)
		}
		h(w, r)
	}
}
