package crowd

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stats"
	"pptd/internal/synthetic"
	"pptd/internal/truth"
)

func testMethod(t *testing.T) truth.Method {
	t.Helper()
	m, err := truth.NewCRH()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

func TestNewServerValidation(t *testing.T) {
	method := testMethod(t)
	tests := []struct {
		name string
		cfg  ServerConfig
	}{
		{name: "zero objects", cfg: ServerConfig{NumObjects: 0, Lambda2: 1, Method: method}},
		{name: "bad lambda2", cfg: ServerConfig{NumObjects: 1, Lambda2: 0, Method: method}},
		{name: "nan lambda2", cfg: ServerConfig{NumObjects: 1, Lambda2: math.NaN(), Method: method}},
		{name: "negative users", cfg: ServerConfig{NumObjects: 1, Lambda2: 1, ExpectedUsers: -1, Method: method}},
		{name: "nil method", cfg: ServerConfig{NumObjects: 1, Lambda2: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewServer(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCampaignEndpoint(t *testing.T) {
	_, client := newTestServer(t, ServerConfig{
		Name:          "hallways",
		NumObjects:    7,
		Lambda2:       1.5,
		ExpectedUsers: 3,
		Method:        testMethod(t),
	})
	info, err := client.Campaign(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "hallways" || info.NumObjects != 7 || info.Lambda2 != 1.5 || info.ExpectedUsers != 3 {
		t.Fatalf("campaign info = %+v", info)
	}
	if info.SubmittedUsers != 0 || info.Aggregated {
		t.Fatalf("fresh campaign info = %+v", info)
	}
}

func TestSubmissionValidation(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{NumObjects: 2, Lambda2: 1, Method: testMethod(t)})
	tests := []struct {
		name    string
		sub     Submission
		wantErr error
	}{
		{name: "empty id", sub: Submission{Claims: []Claim{{0, 1}}}, wantErr: ErrBadSubmission},
		{name: "no claims", sub: Submission{ClientID: "u"}, wantErr: ErrBadSubmission},
		{name: "bad object", sub: Submission{ClientID: "u", Claims: []Claim{{5, 1}}}, wantErr: ErrBadSubmission},
		{name: "nan value", sub: Submission{ClientID: "u", Claims: []Claim{{0, math.NaN()}}}, wantErr: ErrBadSubmission},
		{
			name:    "duplicate object",
			sub:     Submission{ClientID: "u", Claims: []Claim{{0, 1}, {0, 2}}},
			wantErr: ErrBadSubmission,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := srv.Submit(tt.sub); !errors.Is(err, tt.wantErr) {
				t.Errorf("Submit error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDuplicateClientRejected(t *testing.T) {
	srv, _ := newTestServer(t, ServerConfig{NumObjects: 1, Lambda2: 1, Method: testMethod(t)})
	sub := Submission{ClientID: "phone-1", Claims: []Claim{{0, 1}}}
	if _, err := srv.Submit(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(sub); !errors.Is(err, ErrDuplicateClient) {
		t.Fatalf("second submission error = %v", err)
	}
}

func TestResultBeforeAggregation(t *testing.T) {
	_, client := newTestServer(t, ServerConfig{NumObjects: 1, Lambda2: 1, Method: testMethod(t)})
	_, err := client.Result(context.Background())
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != 404 {
		t.Fatalf("result before aggregation: %v", err)
	}
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("result before aggregation: %v does not wrap ErrNotReady", err)
	}
}

func TestAutoAggregationAtExpectedUsers(t *testing.T) {
	srv, client := newTestServer(t, ServerConfig{
		NumObjects:    2,
		Lambda2:       1,
		ExpectedUsers: 2,
		Method:        testMethod(t),
	})
	ctx := context.Background()
	r1, err := client.Submit(ctx, Submission{ClientID: "a", Claims: []Claim{{0, 1}, {1, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Aggregated {
		t.Fatal("aggregated after first of two users")
	}
	r2, err := client.Submit(ctx, Submission{ClientID: "b", Claims: []Claim{{0, 3}, {1, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Aggregated {
		t.Fatal("did not aggregate at expected user count")
	}
	res, err := client.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truths) != 2 || res.Method != "crh" {
		t.Fatalf("result = %+v", res)
	}
	if res.Truths[0] < 1 || res.Truths[0] > 3 || res.Truths[1] < 5 || res.Truths[1] > 7 {
		t.Fatalf("truths out of claim range: %v", res.Truths)
	}
	if len(res.Weights) != 2 {
		t.Fatalf("weights = %v", res.Weights)
	}
	// Campaign now closed.
	if _, err := srv.Submit(Submission{ClientID: "c", Claims: []Claim{{0, 1}, {1, 1}}}); !errors.Is(err, ErrCampaignClosed) {
		t.Fatalf("late submission error = %v", err)
	}
}

func TestExplicitAggregate(t *testing.T) {
	_, client := newTestServer(t, ServerConfig{NumObjects: 1, Lambda2: 1, Method: testMethod(t)})
	ctx := context.Background()
	if _, err := client.Aggregate(ctx); err == nil {
		t.Fatal("aggregate with zero submissions should fail")
	}
	if _, err := client.Submit(ctx, Submission{ClientID: "a", Claims: []Claim{{0, 2}}}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Aggregate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 2 {
		t.Fatalf("truth = %v, want 2", res.Truths[0])
	}
	// Idempotent.
	res2, err := client.Aggregate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Truths[0] != res.Truths[0] {
		t.Fatal("aggregate not idempotent")
	}
}

func TestUserParticipatePerturbsLocally(t *testing.T) {
	_, client := newTestServer(t, ServerConfig{
		NumObjects: 3,
		Lambda2:    1000000, // tiny noise, so values stay near originals
		Method:     testMethod(t),
	})
	readings := []Claim{{0, 1}, {1, 2}, {2, 3}}
	u, err := NewUser("phone-7", readings, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Participate(context.Background(), client); err != nil {
		t.Fatal(err)
	}
	// Readings slice must be untouched (perturbation happens on a copy).
	for i, want := range []float64{1, 2, 3} {
		if readings[i].Value != want {
			t.Fatal("Participate mutated the caller's readings")
		}
	}
}

func TestNewUserValidation(t *testing.T) {
	rng := randx.New(1)
	if _, err := NewUser("", []Claim{{0, 1}}, rng); !errors.Is(err, ErrBadClient) {
		t.Error("empty id accepted")
	}
	if _, err := NewUser("u", nil, rng); !errors.Is(err, ErrBadClient) {
		t.Error("no readings accepted")
	}
	if _, err := NewUser("u", []Claim{{0, 1}}, nil); !errors.Is(err, ErrBadClient) {
		t.Error("nil rng accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(""); !errors.Is(err, ErrBadClient) {
		t.Error("empty URL accepted")
	}
	if _, err := NewClient("http://x", WithHTTPClient(nil)); !errors.Is(err, ErrBadClient) {
		t.Error("nil http client accepted")
	}
}

func TestEndToEndCampaignConcurrentUsers(t *testing.T) {
	// Full Algorithm 2 over HTTP: generate a synthetic crowd, run every
	// user as a goroutine, and check the aggregate tracks the ground
	// truth despite the injected noise.
	cfg := synthetic.Default()
	cfg.NumUsers = 40
	cfg.NumObjects = 12
	cfg.Lambda1 = 4
	inst, err := synthetic.Generate(cfg, randx.New(77))
	if err != nil {
		t.Fatal(err)
	}

	_, client := newTestServer(t, ServerConfig{
		Name:          "e2e",
		NumObjects:    cfg.NumObjects,
		Lambda2:       2,
		ExpectedUsers: cfg.NumUsers,
		Method:        testMethod(t),
	})

	seedRng := randx.New(78)
	users := make([]*User, cfg.NumUsers)
	for s := 0; s < cfg.NumUsers; s++ {
		obs, err := inst.Dataset.UserObservations(s)
		if err != nil {
			t.Fatal(err)
		}
		claims := make([]Claim, len(obs))
		for i, o := range obs {
			claims[i] = Claim{Object: o.Object, Value: o.Value}
		}
		u, err := NewUser(userID(s), claims, seedRng.Split())
		if err != nil {
			t.Fatal(err)
		}
		users[s] = u
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, len(users))
	for i, u := range users {
		wg.Add(1)
		go func(i int, u *User) {
			defer wg.Done()
			_, errs[i] = u.Participate(ctx, client)
		}(i, u)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
	}

	res, err := client.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mae, err := stats.MAE(res.Truths, inst.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.5 {
		t.Fatalf("end-to-end MAE vs ground truth = %v", mae)
	}
	if len(res.Weights) != cfg.NumUsers {
		t.Fatalf("got %d weights", len(res.Weights))
	}
}

func TestHTTPErrorFormatting(t *testing.T) {
	e := &HTTPError{StatusCode: 409}
	if e.Error() == "" {
		t.Error("empty error string")
	}
	e2 := &HTTPError{StatusCode: 400, Message: "nope"}
	if e2.Error() == e.Error() {
		t.Error("message not included")
	}
}

func userID(s int) string {
	return "user-" + string(rune('a'+s%26)) + "-" + string(rune('0'+s/26))
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	srv, err := NewServer(ServerConfig{NumObjects: 1, Lambda2: 1, Method: testMethod(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	tests := []struct {
		method string
		path   string
	}{
		{http.MethodPost, PathCampaign},
		{http.MethodGet, PathSubmissions},
		{http.MethodPost, PathResult},
		{http.MethodGet, PathAggregate},
	}
	for _, tt := range tests {
		req, err := http.NewRequest(tt.method, ts.URL+tt.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tt.method, tt.path, resp.StatusCode)
		}
	}
}

func TestHTTPMalformedSubmissionBody(t *testing.T) {
	srv, err := NewServer(ServerConfig{NumObjects: 1, Lambda2: 1, Method: testMethod(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+PathSubmissions, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" {
		t.Error("error body empty")
	}
}

func TestHTTPLateSubmissionGone(t *testing.T) {
	srv, err := NewServer(ServerConfig{NumObjects: 1, Lambda2: 1, ExpectedUsers: 1, Method: testMethod(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.Submit(ctx, Submission{ClientID: "a", Claims: []Claim{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, Submission{ClientID: "b", Claims: []Claim{{0, 2}}})
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusGone {
		t.Fatalf("late submission error = %v, want 410", err)
	}
}
