package crowd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"

	"pptd/internal/stream"
)

// Binary claim framing: the compact wire format negotiated on
// POST /v1/stream/claims via Content-Type: application/x-pptd-claims.
// JSON stays the default; the binary frame exists for the ingest hot
// path, where JSON decoding dominates the cost of accepting a claim
// batch. The layout (docs/WIRE.md) mirrors the durable journal's
// discipline — a length prefix up front and a CRC32 over the payload —
// so a torn or corrupted frame is always rejected as a unit, never
// half-ingested:
//
//	offset 0  4 bytes  magic "PTDC"
//	offset 4  1 byte   version (1)
//	offset 5  4 bytes  payload length, little-endian uint32
//	offset 9  4 bytes  CRC32-IEEE of the payload, little-endian uint32
//	offset 13          payload
//
// payload = uvarint(len clientID) ‖ clientID bytes
//	‖ uvarint(claim count)
//	‖ per claim: uvarint(object) ‖ 8 bytes little-endian IEEE-754 value
//
// Objects are encoded as uvarint(uint64(int64(object))): every int
// round-trips, and an out-of-range (negative) object decodes back to
// itself so the engine rejects it with the same ErrBadClaim a JSON
// submission would get — framing validates transport integrity only,
// never business rules.

// ContentTypeClaims is the Content-Type selecting the binary claim
// frame on POST /v1/stream/claims. Any other value (or none) means
// JSON.
const ContentTypeClaims = "application/x-pptd-claims"

// DefaultMaxRequestBytes caps the request body of every POST route
// (stream claims, batch submissions, cluster close/commit) when no
// explicit cap is configured. Oversized bodies are refused with the 413
// payload_too_large envelope before they are buffered.
const DefaultMaxRequestBytes int64 = 16 << 20

// ErrBadFrame reports a malformed binary claim frame: bad magic,
// unknown version, a truncated body, a CRC mismatch, or payload bytes
// that do not parse as the documented field layout.
var ErrBadFrame = errors.New("crowd: malformed claim frame")

const (
	claimFrameMagic     = "PTDC"
	claimFrameVersion   = 1
	claimFrameHeaderLen = 13
	// maxClaimFramePayload bounds the decoder's own allocation: a hostile
	// length prefix cannot make it reserve more than this, independent of
	// the (usually tighter) per-route body cap.
	maxClaimFramePayload = 64 << 20
	// claimFrameMinClaim is the smallest wire size of one claim (1-byte
	// uvarint object + 8-byte value); it bounds a hostile claim count.
	claimFrameMinClaim = 9
)

// ClaimFrame is one decoded binary submission. ClientID aliases the
// frame's internal read buffer and Claims reuses its previous capacity,
// so a frame obtained from GetClaimFrame and decoded in a loop reaches
// a steady state with no per-claim heap allocations. Neither field is
// valid after the frame is returned with PutClaimFrame.
type ClaimFrame struct {
	// ClientID is the submitting client's ID (a view into the frame's
	// buffer — copy it to retain it past the next decode).
	ClientID []byte
	// Claims holds the decoded batch, typed for direct engine ingest.
	Claims []stream.Claim

	buf []byte // reusable header+payload read buffer; ClientID aliases it
}

var claimFramePool = sync.Pool{New: func() any { return new(ClaimFrame) }}

// GetClaimFrame returns a reusable frame from the package pool. Pair it
// with PutClaimFrame once the decoded batch has been handed off.
func GetClaimFrame() *ClaimFrame { return claimFramePool.Get().(*ClaimFrame) }

// PutClaimFrame returns a frame (and its internal buffers) to the pool.
// The caller must be done with ClientID and Claims: both alias memory
// the next GetClaimFrame/DecodeClaimFrame pair will overwrite.
func PutClaimFrame(f *ClaimFrame) {
	f.ClientID = nil
	f.Claims = f.Claims[:0]
	claimFramePool.Put(f)
}

// DecodeClaimFrame reads one binary claim frame from r into f, reusing
// f's buffers. A clean EOF before the first header byte is returned as
// io.EOF; anything else that fails the layout, the length bound, or the
// CRC wraps ErrBadFrame. Read failures stay in the chain, so a body cap
// hit surfaces its *http.MaxBytesError through errors.As.
func DecodeClaimFrame(r io.Reader, f *ClaimFrame) error {
	if cap(f.buf) < claimFrameHeaderLen {
		f.buf = make([]byte, claimFrameHeaderLen, 1024)
	}
	hdr := f.buf[:claimFrameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: short header: %w", ErrBadFrame, err)
	}
	length, err := parseClaimFrameHeader(hdr)
	if err != nil {
		return err
	}
	// The payload lands in the same reused buffer the header occupies, so
	// lift the CRC out of hdr before it is overwritten.
	want := binary.LittleEndian.Uint32(hdr[9:13])
	if cap(f.buf) < int(length) {
		f.buf = make([]byte, length)
	}
	payload := f.buf[:length]
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("%w: short payload (%d bytes expected): %w", ErrBadFrame, length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrBadFrame, got, want)
	}
	return f.parsePayload(payload)
}

// DecodeClaimFrameBytes decodes one frame from the front of data,
// returning the number of bytes consumed. Trailing bytes after a valid
// frame are left untouched — garbage appended to a frame never costs
// the frame itself.
func DecodeClaimFrameBytes(data []byte, f *ClaimFrame) (int, error) {
	if len(data) < claimFrameHeaderLen {
		return 0, fmt.Errorf("%w: short header: %d of %d bytes", ErrBadFrame, len(data), claimFrameHeaderLen)
	}
	length, err := parseClaimFrameHeader(data[:claimFrameHeaderLen])
	if err != nil {
		return 0, err
	}
	end := claimFrameHeaderLen + int(length)
	if len(data) < end {
		return 0, fmt.Errorf("%w: short payload: %d of %d bytes", ErrBadFrame, len(data)-claimFrameHeaderLen, length)
	}
	payload := data[claimFrameHeaderLen:end]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[9:13]); got != want {
		return 0, fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrBadFrame, got, want)
	}
	if err := f.parsePayload(payload); err != nil {
		return 0, err
	}
	return end, nil
}

// parseClaimFrameHeader validates magic, version, and the length bound,
// returning the payload length.
func parseClaimFrameHeader(hdr []byte) (uint32, error) {
	if string(hdr[:4]) != claimFrameMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadFrame, hdr[:4])
	}
	if hdr[4] != claimFrameVersion {
		return 0, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadFrame, hdr[4], claimFrameVersion)
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	if length > maxClaimFramePayload {
		return 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, length, maxClaimFramePayload)
	}
	return length, nil
}

// parsePayload unpacks the CRC-verified payload into f. ClientID
// aliases the payload bytes (which live in f.buf for the streaming
// decoder); Claims reuses prior capacity.
func (f *ClaimFrame) parsePayload(p []byte) error {
	idLen, n := binary.Uvarint(p)
	if n <= 0 || idLen > uint64(len(p)-n) {
		return fmt.Errorf("%w: bad client ID length", ErrBadFrame)
	}
	f.ClientID = p[n : n+int(idLen)]
	p = p[n+int(idLen):]

	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(len(p)-n)/claimFrameMinClaim {
		return fmt.Errorf("%w: bad claim count", ErrBadFrame)
	}
	p = p[n:]
	if cap(f.Claims) < int(count) {
		f.Claims = make([]stream.Claim, count)
	}
	f.Claims = f.Claims[:count]
	for i := range f.Claims {
		obj, n := binary.Uvarint(p)
		if n <= 0 || len(p)-n < 8 {
			return fmt.Errorf("%w: truncated claim %d of %d", ErrBadFrame, i, count)
		}
		f.Claims[i] = stream.Claim{
			Object: int(int64(obj)),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(p[n : n+8])),
		}
		p = p[n+8:]
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes after %d claims", ErrBadFrame, len(p), count)
	}
	return nil
}

// AppendClaimFrame appends one encoded claim frame for the submission
// to dst and returns the extended slice. It is the encoder behind the
// client's binary wire format (see Client and WithClaimWire).
func AppendClaimFrame(dst []byte, clientID string, claims []Claim) []byte {
	start := len(dst)
	dst = append(dst, claimFrameMagic...)
	dst = append(dst, claimFrameVersion)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC backfilled below

	payloadStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(clientID)))
	dst = append(dst, clientID...)
	dst = binary.AppendUvarint(dst, uint64(len(claims)))
	for _, c := range claims {
		dst = binary.AppendUvarint(dst, uint64(int64(c.Object)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Value))
	}
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start+5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+9:], crc32.ChecksumIEEE(payload))
	return dst
}

// isClaimFrameContentType reports whether a request's Content-Type
// selects the binary claim frame (exact match, media parameters
// allowed).
func isClaimFrameContentType(ct string) bool {
	return ct == ContentTypeClaims || strings.HasPrefix(ct, ContentTypeClaims+";")
}

// IsClaimFrameRequest reports whether a request negotiated the binary
// claim frame via its Content-Type — exported for the cluster
// coordinator's front door, which accepts both wire formats like a
// single node.
func IsClaimFrameRequest(r *http.Request) bool {
	return isClaimFrameContentType(r.Header.Get("Content-Type"))
}

// effectiveMaxRequestBytes resolves a configured body cap: zero means
// the package default.
func effectiveMaxRequestBytes(v int64) int64 {
	if v > 0 {
		return v
	}
	return DefaultMaxRequestBytes
}
