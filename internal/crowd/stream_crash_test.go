package crowd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
	"pptd/internal/streamstore/storefs"
)

// The StreamServer crash-point sweep: the streamstore package already
// enumerates every filesystem operation of an ingest → close → snapshot
// cycle (see its TestCrashPointSweep); this sweep runs the same contract
// one layer up, through the server's HTTP window-close path — the
// sequence POST /v1/stream/window takes under windowMu (engine close,
// SaveResult, MaybeSnapshotEngine) plus the final graceful-shutdown
// snapshot in Close. Crashing at every numbered operation (and at every
// torn write) must leave a directory a fresh NewStreamServer recovers
// from with no acknowledged charge lost and estimates equivalent to an
// uninterrupted server. The sweep honors PPTD_STREAM_ESTIMATOR, so the
// CI matrix drives it once per estimator — GTM's private variance state
// rides the same snapshots and must survive the same crash points.

type serverSweepStep struct {
	kind   string // "ingest" or "close"
	user   string
	claims []Claim
}

func serverSweepConfig() stream.Config {
	cfg := stream.Config{
		NumObjects: 3,
		NumShards:  1, // deterministic fold order, so oracles match bit-for-bit
		Decay:      0.9,
		Lambda1:    1.5,
		Lambda2:    2,
		Delta:      0.3,
	}
	if est := os.Getenv("PPTD_STREAM_ESTIMATOR"); est != "" {
		cfg.Estimator = est
	}
	return cfg
}

func serverSweepOptions() streamstore.Options {
	return streamstore.Options{
		MaxBatch:      1,   // serial appends: one logical step per flush
		SegmentBytes:  384, // a few records per segment: rolls mid-cycle
		SnapshotEvery: 2,   // snapshots + compaction at closes 2 and 4
		ResultHistory: 3,
	}
}

func serverSweepSteps() []serverSweepStep {
	var steps []serverSweepStep
	for w := 0; w < 4; w++ {
		for u := 0; u < 3; u++ {
			steps = append(steps, serverSweepStep{
				kind: "ingest",
				user: fmt.Sprintf("user-%d", u),
				claims: []Claim{
					{Object: u % 3, Value: float64(w) + 0.5*float64(u)},
					{Object: (u + 1) % 3, Value: 2*float64(w) - float64(u) + 0.25},
				},
			})
		}
		steps = append(steps, serverSweepStep{kind: "close"})
	}
	return steps
}

// runServerSweepCycle executes the workload against a durable
// StreamServer on fsys, through the HTTP handlers (POST
// /v1/stream/claims and /v1/stream/window), ending with the
// graceful-shutdown snapshot of Close. It returns how many logical
// steps completed (answered 2xx) and the per-user epsilon acknowledged
// as durable.
func runServerSweepCycle(fsys storefs.FS, dir string) (completed int, acked map[string]float64, err error) {
	acked = make(map[string]float64)
	opts := serverSweepOptions()
	opts.FS = fsys
	store, err := streamstore.OpenWith(dir, opts)
	if err != nil {
		return 0, acked, err
	}
	defer func() { _ = store.Close() }()
	cfg := serverSweepConfig()
	cfg.ClaimWAL = true
	srv, err := NewStreamServer(StreamServerConfig{
		Name:        "crash-sweep",
		Engine:      cfg,
		Persistence: store,
	})
	if err != nil {
		return 0, acked, err
	}
	defer func() { _ = srv.Close() }()
	handler := srv.Handler()
	eps := srv.Engine().EpsilonPerWindow()

	for i, step := range serverSweepSteps() {
		var req *http.Request
		switch step.kind {
		case "ingest":
			body, err := json.Marshal(Submission{ClientID: step.user, Claims: step.claims})
			if err != nil {
				return i, acked, err
			}
			req = httptest.NewRequest(http.MethodPost, PathStreamClaims, bytes.NewReader(body))
		case "close":
			req = httptest.NewRequest(http.MethodPost, PathStreamWindow, nil)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return i, acked, fmt.Errorf("step %d (%s): status %d: %s", i, step.kind, rec.Code, rec.Body.String())
		}
		if step.kind == "ingest" {
			acked[step.user] += eps
		}
		completed = i + 1
	}
	// Graceful shutdown: Close writes the final snapshot under windowMu.
	if err := srv.Close(); err != nil {
		return completed, acked, err
	}
	return completed, acked, nil
}

// serverOracleProbe replays the first n logical steps on a fresh
// in-memory server, then probes it (one new user claiming every object,
// one close).
func serverOracleProbe(t *testing.T, n int) *stream.WindowResult {
	t.Helper()
	e, err := stream.New(serverSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	for _, step := range serverSweepSteps()[:n] {
		switch step.kind {
		case "ingest":
			claims := make([]stream.Claim, len(step.claims))
			for i, c := range step.claims {
				claims[i] = stream.Claim{Object: c.Object, Value: c.Value}
			}
			if _, _, err := e.Ingest(step.user, claims); err != nil {
				t.Fatalf("oracle(%d) ingest: %v", n, err)
			}
		case "close":
			if _, err := e.CloseWindow(); err != nil {
				t.Fatalf("oracle(%d) close: %v", n, err)
			}
		}
	}
	return serverProbeEngine(t, e)
}

func serverProbeEngine(t *testing.T, e *stream.Engine) *stream.WindowResult {
	t.Helper()
	if _, _, err := e.Ingest("probe-user", []stream.Claim{
		{Object: 0, Value: 1.5}, {Object: 1, Value: -2.25}, {Object: 2, Value: 0.75},
	}); err != nil {
		t.Fatalf("probe ingest: %v", err)
	}
	res, err := e.CloseWindow()
	if err != nil {
		t.Fatalf("probe close: %v", err)
	}
	return res
}

func serverResultsEquivalent(a, b *stream.WindowResult, tol float64) bool {
	if a.Window != b.Window || a.TotalClaims != b.TotalClaims || len(a.Truths) != len(b.Truths) {
		return false
	}
	for i := range a.Truths {
		if a.Covered[i] != b.Covered[i] {
			return false
		}
		if a.Covered[i] && math.Abs(a.Truths[i]-b.Truths[i]) > tol {
			return false
		}
	}
	if len(a.Weights) != len(b.Weights) {
		return false
	}
	for id, w := range a.Weights {
		if math.Abs(b.Weights[id]-w) > tol {
			return false
		}
	}
	return true
}

func serverDumpOpLog(t *testing.T, fy *storefs.Faulty, label string) {
	t.Helper()
	dir := os.Getenv("CRASH_ARTIFACT_DIR")
	if dir == "" {
		t.Logf("op log (%s):\n%s", label, fy.OpLogString())
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("server-crash-%s.oplog", label))
	if err := os.WriteFile(path, []byte(fy.OpLogString()), 0o644); err != nil {
		t.Logf("write op log: %v", err)
		return
	}
	t.Logf("op log written to %s", path)
}

// TestStreamServerCrashPointSweep enumerates every filesystem operation
// the durable server's workload performs, crashes at each in turn (and
// again with writes torn in half), and asserts that a fresh
// NewStreamServer on the same directory (1) recovers, (2) lost no
// acknowledged charge, and (3) estimates equivalently — within 1e-9 —
// to an uninterrupted server that processed either the completed
// prefix, or that prefix plus the step in flight.
func TestStreamServerCrashPointSweep(t *testing.T) {
	const tol = 1e-9
	steps := serverSweepSteps()

	pilot := storefs.NewFaulty(storefs.OS{})
	if _, _, err := runServerSweepCycle(pilot, t.TempDir()); err != nil {
		t.Fatalf("pilot cycle: %v", err)
	}
	pilotOps := pilot.Ops()
	if len(pilotOps) < 40 {
		t.Fatalf("pilot enumerated only %d ops — the cycle is not exercising the store", len(pilotOps))
	}

	oracles := make([]*stream.WindowResult, len(steps)+1)
	for n := 0; n <= len(steps); n++ {
		oracles[n] = serverOracleProbe(t, n)
	}

	type crashCase struct {
		op   int
		tear int
	}
	var cases []crashCase
	for _, op := range pilotOps {
		cases = append(cases, crashCase{op: op.N})
		if op.Kind == storefs.OpWrite && op.Len > 1 {
			cases = append(cases, crashCase{op: op.N, tear: op.Len / 2})
		}
	}

	for _, tc := range cases {
		tc := tc
		label := fmt.Sprintf("op%03d", tc.op)
		if tc.tear > 0 {
			label += fmt.Sprintf("-torn%d", tc.tear)
		}
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			fy := storefs.NewFaulty(storefs.OS{})
			fy.CrashAt(tc.op, tc.tear)
			completed, acked, err := runServerSweepCycle(fy, dir)
			if err == nil {
				// The crash landed in Close's tail, after the last workload
				// step already completed.
				if !fy.Crashed() {
					t.Fatalf("crash at op %d never fired", tc.op)
				}
				completed = len(steps)
			}

			// Recover on the real filesystem, exactly as a restarted
			// process would: open the store, then NewStreamServer (which
			// runs snapshot + journal-replay recovery itself).
			store, err := streamstore.OpenWith(dir, serverSweepOptions())
			if err != nil {
				serverDumpOpLog(t, fy, label)
				t.Fatalf("recovery open: %v", err)
			}
			defer func() { _ = store.Close() }()
			cfg := serverSweepConfig()
			cfg.ClaimWAL = true
			srv, err := NewStreamServer(StreamServerConfig{
				Name:        "crash-sweep",
				Engine:      cfg,
				Persistence: store,
			})
			if err != nil {
				serverDumpOpLog(t, fy, label)
				t.Fatalf("recover after crash at op %d: %v", tc.op, err)
			}
			defer func() { _ = srv.Close() }()

			// Invariant 2: every acknowledged charge survived.
			st, err := srv.Engine().ExportState()
			if err != nil {
				t.Fatal(err)
			}
			recovered := make(map[string]float64, len(st.Users))
			for _, u := range st.Users {
				recovered[u.ID] = u.CumulativeEpsilon
			}
			for user, want := range acked {
				if recovered[user] < want-tol {
					serverDumpOpLog(t, fy, label)
					t.Errorf("user %s recovered epsilon %v < acknowledged %v: acknowledged charge lost",
						user, recovered[user], want)
				}
			}

			// Invariant 3: probe equivalence to an uninterrupted server.
			got := serverProbeEngine(t, srv.Engine())
			withL, withL1 := oracles[completed], oracles[completed]
			if completed < len(steps) {
				withL1 = oracles[completed+1]
			}
			if !serverResultsEquivalent(got, withL, tol) && !serverResultsEquivalent(got, withL1, tol) {
				serverDumpOpLog(t, fy, label)
				t.Errorf("crash at op %d (step %d): recovered probe matches neither oracle(%d) nor oracle(%d)\n got: window %d claims %d truths %v",
					tc.op, completed, completed, completed+1, got.Window, got.TotalClaims, got.Truths)
			}
		})
	}
}
