package crowd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// Worker-side cluster RPCs. A multi-node deployment (internal/cluster)
// shards users across N workers by consistent hashing; each worker runs
// an ordinary durable StreamServer for ingest, but window closes are
// driven by the coordinator through the two RPCs here:
//
//  1. POST /v1/cluster/close  — quiesce the open window and export its
//     raw, pre-close sufficient statistics WITHOUT estimating (decay
//     and the window advance still happen locally). The coordinator
//     merges the disjoint per-worker exports and runs the one true
//     estimation over the union, so an N-worker cluster publishes
//     exactly the estimate a single node would have.
//  2. POST /v1/cluster/commit — write the merged per-user carry
//     weights and estimator state back onto the worker that owns each
//     user, then run the deferred idle-user eviction so spill records
//     carry the merged post-estimate state.
//
// Both RPCs are idempotent so the coordinator can retry a partially
// failed cluster close: close caches its export per window (a retry
// returns the identical state instead of closing a second window), and
// commit re-applies the same values. Each RPC snapshots the engine when
// the worker is durable — a worker must never replay its journal across
// a cluster close boundary, because local replay would re-estimate with
// only this shard's users and diverge from the merged truth.
//
// On a durable worker the export cache is persisted too
// (streamstore.ClusterCloseState, written BEFORE the post-close
// snapshot and restored on boot), so the idempotence holds across a
// crash at any point of the round: a worker killed between its close
// and the coordinator's commit comes back still able to serve the
// retried close for the window its engine already advanced past. The
// commit flips the record's Committed flag only after the merged
// carries are snapshotted; a coordinator booting against workers whose
// records say "closed but not committed" re-drives the merge/commit
// from these cached exports before serving (see
// cluster.Coordinator and ClusterStatus).

// ClusterCloseRequest asks a worker to close one window and export its
// sufficient statistics.
type ClusterCloseRequest struct {
	// Window is the 1-based index of the window being closed; the worker
	// refuses when its engine is not exactly there (a torn cluster or a
	// stale coordinator).
	Window int `json:"window"`
	// Force closes the window even when the worker holds no live
	// statistics. The coordinator's first round probes with Force false
	// so an all-empty cluster can refuse the close like a single node
	// would (ErrEmptyWindow, nothing advanced); the second round forces
	// the empty minority once any worker reported data.
	Force bool `json:"force"`
}

// ClusterCloseReply is the worker's answer to ClusterCloseRequest.
type ClusterCloseReply struct {
	// Empty reports a non-forced close against a worker with no live
	// statistics: the window was NOT closed and State is nil.
	Empty bool `json:"empty,omitempty"`
	// State is the worker's exported pre-close engine state (its Window
	// field is the closed-window count before this close, i.e.
	// request.Window-1).
	State *stream.EngineState `json:"state,omitempty"`
}

// ClusterCommitRequest writes the merged post-estimate carry weights
// back onto the worker owning each user.
type ClusterCommitRequest struct {
	// Window is the 1-based window the carries resulted from; the worker
	// must already have closed it (engine at Window closed windows).
	Window int `json:"window"`
	// Carries holds the merged carry weight and estimator state for each
	// user this worker owns.
	Carries []stream.UserCarry `json:"carries"`
}

// ClusterCommitReply acknowledges a ClusterCommitRequest.
type ClusterCommitReply struct {
	// Window echoes the committed window.
	Window int `json:"window"`
}

// ClusterStatusReply reports the worker's position in the cluster close
// protocol — what a booting coordinator needs to tell a fully committed
// cluster from one whose last close round was interrupted mid-commit.
type ClusterStatusReply struct {
	// Window is the worker's closed-window count.
	Window int `json:"window"`
	// PendingWindow is the window of the worker's cached close export
	// (0 when the worker never served a coordinated close). The cache —
	// durable on a persistent worker — survives until the next close
	// overwrites it, so a re-driven merge can always re-read it.
	PendingWindow int `json:"pendingWindow,omitempty"`
	// CommittedWindow is the last window whose merged carries this
	// worker applied and made durable. CommittedWindow < PendingWindow
	// means the close round for PendingWindow never finished: the
	// coordinator must re-drive its merge/commit before serving.
	CommittedWindow int `json:"committedWindow,omitempty"`
}

// ClusterClose serves one coordinator-driven window close: it verifies
// the worker is at the expected window, quiesces ingest, and exports
// the open window's raw sufficient statistics without estimating. The
// call is idempotent per window — a retried close returns the cached
// export of the first. A non-forced close of a worker with no live
// statistics replies Empty without closing anything.
func (s *StreamServer) ClusterClose(req ClusterCloseRequest) (ClusterCloseReply, error) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	// The cache check comes before everything else: after a partial
	// cluster close this worker's engine already advanced, and only the
	// cached export lets the coordinator's retry converge.
	if s.clusterExport != nil && s.clusterExportWindow == req.Window {
		// A crash (or a failed durable step) between the export and the
		// post-close snapshot can leave the recovered engine un-advanced,
		// or the export not yet on disk. Repair both before answering, so
		// the commit that follows finds a consistent worker — and serve
		// the ORIGINAL export, which the coordinator may already have
		// merged, not a re-export.
		if s.engine.Window()+1 == req.Window {
			if _, err := s.engine.CloseWindowExport(); err != nil {
				return ClusterCloseReply{}, err
			}
		}
		if err := s.persistClusterCloseLocked(); err != nil {
			return ClusterCloseReply{}, err
		}
		return ClusterCloseReply{State: s.clusterExport}, nil
	}
	if got := s.engine.Window() + 1; got != req.Window {
		return ClusterCloseReply{}, fmt.Errorf("%w: cluster close of window %d but worker's open window is %d",
			ErrBadSubmission, req.Window, got)
	}
	if !req.Force && !s.engine.HasLiveStats() {
		return ClusterCloseReply{Empty: true}, nil
	}
	st, err := s.engine.CloseWindowExport()
	if err != nil {
		return ClusterCloseReply{}, err
	}
	// Cache before any durable step: even if persistence fails, a
	// retried close must return this exact export rather than erroring
	// on the already-advanced window — the retry re-runs the durable
	// steps through the cache path above.
	s.clusterExport, s.clusterExportWindow = st, req.Window
	s.clusterExportDurable = false
	return ClusterCloseReply{State: st}, s.persistClusterCloseLocked()
}

// persistClusterCloseLocked makes the cached export durable — the
// export record first, so a crash right after it can still serve the
// retried close, then the advanced engine snapshot (a worker must never
// replay its journal across a close boundary). Idempotent and cheap to
// retry: the export writes once per window, the snapshot re-writes on
// retries only to cover a possibly re-advanced engine. Callers must
// hold windowMu.
func (s *StreamServer) persistClusterCloseLocked() error {
	if s.store == nil {
		return nil
	}
	if !s.clusterExportDurable {
		if err := s.store.SaveClusterClose(&streamstore.ClusterCloseState{
			Window:    s.clusterExportWindow,
			Committed: s.clusterCommitted >= s.clusterExportWindow,
			State:     s.clusterExport,
		}); err != nil {
			return fmt.Errorf("crowd: persist cluster close export: %w", err)
		}
		s.clusterExportDurable = true
	}
	if err := s.store.SnapshotEngine(s.engine); err != nil {
		return fmt.Errorf("crowd: snapshot after cluster close: %w", err)
	}
	return nil
}

// ClusterCommit applies the coordinator's merged carry weights and
// estimator state for the users this worker owns, then runs the
// idle-user eviction the cluster close deferred. Idempotent: retrying
// re-applies the same values. On a durable worker the merged state is
// snapshotted BEFORE the close record is marked committed — a crash in
// between makes a booting coordinator re-drive the commit, which
// re-applies the same carries; the reverse order would let a
// committed-looking worker recover pre-commit carries and silently
// diverge.
func (s *StreamServer) ClusterCommit(req ClusterCommitRequest) (ClusterCommitReply, error) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	if got := s.engine.Window(); got != req.Window {
		return ClusterCommitReply{}, fmt.Errorf("%w: cluster commit of window %d but worker has closed %d windows",
			ErrBadSubmission, req.Window, got)
	}
	if err := s.engine.CommitCarry(req.Carries); err != nil {
		return ClusterCommitReply{}, err
	}
	if s.store != nil {
		if err := s.store.SnapshotEngine(s.engine); err != nil {
			return ClusterCommitReply{}, fmt.Errorf("crowd: snapshot after cluster commit: %w", err)
		}
		if s.clusterExport != nil && s.clusterExportWindow == req.Window {
			if err := s.store.SaveClusterClose(&streamstore.ClusterCloseState{
				Window:    req.Window,
				Committed: true,
				State:     s.clusterExport,
			}); err != nil {
				return ClusterCommitReply{}, fmt.Errorf("crowd: mark cluster close committed: %w", err)
			}
			s.clusterExportDurable = true
		}
	}
	if req.Window > s.clusterCommitted {
		s.clusterCommitted = req.Window
	}
	return ClusterCommitReply{Window: req.Window}, nil
}

// ClusterStatus reports the worker's close-protocol position: closed
// windows, the window of its (durably) cached export, and the last
// committed window. A booting coordinator compares the latter two to
// detect an interrupted close round it must re-drive.
func (s *StreamServer) ClusterStatus() ClusterStatusReply {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	reply := ClusterStatusReply{Window: s.engine.Window(), CommittedWindow: s.clusterCommitted}
	if s.clusterExport != nil {
		reply.PendingWindow = s.clusterExportWindow
	}
	return reply
}

// RegisterCluster mounts the worker-side cluster RPC routes next to the
// streaming API. Only cluster workers mount these; a standalone node
// never does, so its window closes stay purely local.
func (s *StreamServer) RegisterCluster(mux *http.ServeMux) {
	mux.HandleFunc(PathClusterClose, echoRequestID(s.handleClusterClose))
	mux.HandleFunc(PathClusterCommit, echoRequestID(s.handleClusterCommit))
	mux.HandleFunc(PathClusterStatus, echoRequestID(s.handleClusterStatus))
}

func (s *StreamServer) handleClusterClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes)
	var req ClusterCloseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, "decode cluster close", err)
		return
	}
	reply, err := s.ClusterClose(req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *StreamServer) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes)
	var req ClusterCommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, "decode cluster commit", err)
		return
	}
	reply, err := s.ClusterCommit(req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *StreamServer) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.ClusterStatus())
}

// ClusterClose invokes the worker-side close RPC (coordinator use).
func (c *Client) ClusterClose(ctx context.Context, req ClusterCloseRequest) (ClusterCloseReply, error) {
	var reply ClusterCloseReply
	err := c.do(ctx, http.MethodPost, PathClusterClose, req, &reply)
	return reply, err
}

// ClusterCommit invokes the worker-side commit RPC (coordinator use).
func (c *Client) ClusterCommit(ctx context.Context, req ClusterCommitRequest) (ClusterCommitReply, error) {
	var reply ClusterCommitReply
	err := c.do(ctx, http.MethodPost, PathClusterCommit, req, &reply)
	return reply, err
}

// ClusterStatus reads the worker's close-protocol position (coordinator
// use, at boot).
func (c *Client) ClusterStatus(ctx context.Context) (ClusterStatusReply, error) {
	var reply ClusterStatusReply
	err := c.do(ctx, http.MethodGet, PathClusterStatus, nil, &reply)
	return reply, err
}

// WindowInfo converts one engine window result to its wire form —
// exported for the cluster coordinator, which estimates on a merged
// engine and serves the result through the same JSON shape as a
// standalone stream server.
func WindowInfo(res *stream.WindowResult) StreamWindowInfo { return windowInfo(res) }

// WriteJSON writes one JSON response — exported for the cluster
// coordinator's HTTP front end, which speaks the exact wire contract of
// a standalone node.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteWireError answers one failed request with the versioned error
// envelope. An *HTTPError in err's chain — a worker's own envelope,
// decoded by the coordinator's Client while proxying — is re-emitted
// with the worker's status, code, and retry hint, so a budget-exhausted
// user sees the same 429 through the coordinator as against the worker
// directly. Anything else goes through the regular error taxonomy.
func WriteWireError(w http.ResponseWriter, err error) {
	var httpErr *HTTPError
	if errors.As(err, &httpErr) && httpErr.Code != "" {
		writeEnvelope(w, httpErr.StatusCode, httpErr.Code, httpErr.Message, httpErr.RetryAfterWindows)
		return
	}
	writeAPIError(w, err)
}

// WriteError emits the envelope for handler-level failures that carry
// no taxonomy error — exported alongside WriteWireError for the cluster
// coordinator's method and decode checks.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeError(w, status, code, msg)
}

// WriteDecodeError answers a failed request-body decode with the same
// contract every crowd POST handler uses — 413 payload_too_large for a
// body-cap hit, 400 otherwise. Exported for the cluster coordinator's
// front door.
func WriteDecodeError(w http.ResponseWriter, what string, err error) {
	writeDecodeError(w, what, err)
}

// EchoRequestID wraps one route handler with the request-correlation
// and envelope-negotiation contract every crowd route carries —
// exported so the cluster coordinator's routes behave identically.
func EchoRequestID(h http.HandlerFunc) http.HandlerFunc { return echoRequestID(h) }
