package crowd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pptd/internal/stream"
)

// Worker-side cluster RPCs. A multi-node deployment (internal/cluster)
// shards users across N workers by consistent hashing; each worker runs
// an ordinary durable StreamServer for ingest, but window closes are
// driven by the coordinator through the two RPCs here:
//
//  1. POST /v1/cluster/close  — quiesce the open window and export its
//     raw, pre-close sufficient statistics WITHOUT estimating (decay
//     and the window advance still happen locally). The coordinator
//     merges the disjoint per-worker exports and runs the one true
//     estimation over the union, so an N-worker cluster publishes
//     exactly the estimate a single node would have.
//  2. POST /v1/cluster/commit — write the merged per-user carry
//     weights and estimator state back onto the worker that owns each
//     user, then run the deferred idle-user eviction so spill records
//     carry the merged post-estimate state.
//
// Both RPCs are idempotent so the coordinator can retry a partially
// failed cluster close: close caches its export per window (a retry
// returns the identical state instead of closing a second window), and
// commit re-applies the same values. Each RPC snapshots the engine when
// the worker is durable — a worker must never replay its journal across
// a cluster close boundary, because local replay would re-estimate with
// only this shard's users and diverge from the merged truth.

// ClusterCloseRequest asks a worker to close one window and export its
// sufficient statistics.
type ClusterCloseRequest struct {
	// Window is the 1-based index of the window being closed; the worker
	// refuses when its engine is not exactly there (a torn cluster or a
	// stale coordinator).
	Window int `json:"window"`
	// Force closes the window even when the worker holds no live
	// statistics. The coordinator's first round probes with Force false
	// so an all-empty cluster can refuse the close like a single node
	// would (ErrEmptyWindow, nothing advanced); the second round forces
	// the empty minority once any worker reported data.
	Force bool `json:"force"`
}

// ClusterCloseReply is the worker's answer to ClusterCloseRequest.
type ClusterCloseReply struct {
	// Empty reports a non-forced close against a worker with no live
	// statistics: the window was NOT closed and State is nil.
	Empty bool `json:"empty,omitempty"`
	// State is the worker's exported pre-close engine state (its Window
	// field is the closed-window count before this close, i.e.
	// request.Window-1).
	State *stream.EngineState `json:"state,omitempty"`
}

// ClusterCommitRequest writes the merged post-estimate carry weights
// back onto the worker owning each user.
type ClusterCommitRequest struct {
	// Window is the 1-based window the carries resulted from; the worker
	// must already have closed it (engine at Window closed windows).
	Window int `json:"window"`
	// Carries holds the merged carry weight and estimator state for each
	// user this worker owns.
	Carries []stream.UserCarry `json:"carries"`
}

// ClusterCommitReply acknowledges a ClusterCommitRequest.
type ClusterCommitReply struct {
	// Window echoes the committed window.
	Window int `json:"window"`
}

// ClusterClose serves one coordinator-driven window close: it verifies
// the worker is at the expected window, quiesces ingest, and exports
// the open window's raw sufficient statistics without estimating. The
// call is idempotent per window — a retried close returns the cached
// export of the first. A non-forced close of a worker with no live
// statistics replies Empty without closing anything.
func (s *StreamServer) ClusterClose(req ClusterCloseRequest) (ClusterCloseReply, error) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	// The cache check comes before everything else: after a partial
	// cluster close this worker's engine already advanced, and only the
	// cached export lets the coordinator's retry converge.
	if s.clusterExport != nil && s.clusterExportWindow == req.Window {
		return ClusterCloseReply{State: s.clusterExport}, nil
	}
	if got := s.engine.Window() + 1; got != req.Window {
		return ClusterCloseReply{}, fmt.Errorf("%w: cluster close of window %d but worker's open window is %d",
			ErrBadSubmission, req.Window, got)
	}
	if !req.Force && !s.engine.HasLiveStats() {
		return ClusterCloseReply{Empty: true}, nil
	}
	st, err := s.engine.CloseWindowExport()
	if err != nil {
		return ClusterCloseReply{}, err
	}
	// Cache before snapshotting: even if the snapshot fails, a retried
	// close must return this exact export rather than erroring on the
	// already-advanced window. The commit that follows snapshots again,
	// repairing durability.
	s.clusterExport, s.clusterExportWindow = st, req.Window
	if s.store != nil {
		if err := s.store.SnapshotEngine(s.engine); err != nil {
			return ClusterCloseReply{}, fmt.Errorf("crowd: snapshot after cluster close: %w", err)
		}
	}
	return ClusterCloseReply{State: st}, nil
}

// ClusterCommit applies the coordinator's merged carry weights and
// estimator state for the users this worker owns, then runs the
// idle-user eviction the cluster close deferred. Idempotent: retrying
// re-applies the same values.
func (s *StreamServer) ClusterCommit(req ClusterCommitRequest) (ClusterCommitReply, error) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	if got := s.engine.Window(); got != req.Window {
		return ClusterCommitReply{}, fmt.Errorf("%w: cluster commit of window %d but worker has closed %d windows",
			ErrBadSubmission, req.Window, got)
	}
	if err := s.engine.CommitCarry(req.Carries); err != nil {
		return ClusterCommitReply{}, err
	}
	if s.store != nil {
		if err := s.store.SnapshotEngine(s.engine); err != nil {
			return ClusterCommitReply{}, fmt.Errorf("crowd: snapshot after cluster commit: %w", err)
		}
	}
	return ClusterCommitReply{Window: req.Window}, nil
}

// RegisterCluster mounts the worker-side cluster RPC routes next to the
// streaming API. Only cluster workers mount these; a standalone node
// never does, so its window closes stay purely local.
func (s *StreamServer) RegisterCluster(mux *http.ServeMux) {
	mux.HandleFunc(PathClusterClose, echoRequestID(s.handleClusterClose))
	mux.HandleFunc(PathClusterCommit, echoRequestID(s.handleClusterCommit))
}

func (s *StreamServer) handleClusterClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	var req ClusterCloseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decode cluster close: %v", err))
		return
	}
	reply, err := s.ClusterClose(req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *StreamServer) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	var req ClusterCommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("decode cluster commit: %v", err))
		return
	}
	reply, err := s.ClusterCommit(req)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// ClusterClose invokes the worker-side close RPC (coordinator use).
func (c *Client) ClusterClose(ctx context.Context, req ClusterCloseRequest) (ClusterCloseReply, error) {
	var reply ClusterCloseReply
	err := c.do(ctx, http.MethodPost, PathClusterClose, req, &reply)
	return reply, err
}

// ClusterCommit invokes the worker-side commit RPC (coordinator use).
func (c *Client) ClusterCommit(ctx context.Context, req ClusterCommitRequest) (ClusterCommitReply, error) {
	var reply ClusterCommitReply
	err := c.do(ctx, http.MethodPost, PathClusterCommit, req, &reply)
	return reply, err
}

// WindowInfo converts one engine window result to its wire form —
// exported for the cluster coordinator, which estimates on a merged
// engine and serves the result through the same JSON shape as a
// standalone stream server.
func WindowInfo(res *stream.WindowResult) StreamWindowInfo { return windowInfo(res) }

// WriteJSON writes one JSON response — exported for the cluster
// coordinator's HTTP front end, which speaks the exact wire contract of
// a standalone node.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteWireError answers one failed request with the versioned error
// envelope. An *HTTPError in err's chain — a worker's own envelope,
// decoded by the coordinator's Client while proxying — is re-emitted
// with the worker's status, code, and retry hint, so a budget-exhausted
// user sees the same 429 through the coordinator as against the worker
// directly. Anything else goes through the regular error taxonomy.
func WriteWireError(w http.ResponseWriter, err error) {
	var httpErr *HTTPError
	if errors.As(err, &httpErr) && httpErr.Code != "" {
		writeEnvelope(w, httpErr.StatusCode, httpErr.Code, httpErr.Message, httpErr.RetryAfterWindows)
		return
	}
	writeAPIError(w, err)
}

// WriteError emits the envelope for handler-level failures that carry
// no taxonomy error — exported alongside WriteWireError for the cluster
// coordinator's method and decode checks.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeError(w, status, code, msg)
}

// EchoRequestID wraps one route handler with the request-correlation
// and envelope-negotiation contract every crowd route carries —
// exported so the cluster coordinator's routes behave identically.
func EchoRequestID(h http.HandlerFunc) http.HandlerFunc { return echoRequestID(h) }
