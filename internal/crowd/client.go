package crowd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"pptd/internal/core"
	"pptd/internal/obs"
	"pptd/internal/randx"
)

// ErrBadClient reports an invalid client configuration or argument.
var ErrBadClient = errors.New("crowd: invalid client argument")

// ErrSameWindow reports a ParticipateStream call while the server's open
// window is still the one this user already submitted into. The helper
// refuses before perturbing, so no second noisy release of the window
// ever leaves the device; close the window (or wait for the driver to)
// and call again.
var ErrSameWindow = errors.New("crowd: already submitted in the open window")

// Claim wire formats accepted by WithClaimWire.
const (
	// WireJSON submits stream claims as the default JSON body.
	WireJSON = "json"
	// WireBinary submits stream claims as the compact CRC-checked binary
	// frame (Content-Type application/x-pptd-claims; see docs/WIRE.md),
	// which the server ingests through its pooled zero-allocation path.
	WireBinary = "binary"
)

// Client talks to a campaign server. Safe for concurrent use.
type Client struct {
	baseURL string
	httpc   *http.Client
	// requestID, when non-empty, is sent as the X-Request-ID of every
	// request; otherwise each request gets a fresh random ID.
	requestID string
	// claimWire selects the StreamSubmit encoding: WireJSON (default) or
	// WireBinary.
	claimWire string
}

// ClientOption configures NewClient.
type ClientOption interface {
	applyClient(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) applyClient(c *Client) { f(c) }

// WithHTTPClient substitutes the underlying *http.Client (default:
// 10-second timeout).
func WithHTTPClient(hc *http.Client) ClientOption {
	return clientOptionFunc(func(c *Client) { c.httpc = hc })
}

// WithRequestID pins the X-Request-ID header sent on every request this
// client issues — useful for correlating one logical operation (a CLI
// invocation, a batch driver run) across the server's request logs. By
// default each request carries a fresh random ID. The ID must satisfy
// obs.ValidRequestID (printable ASCII, at most 128 bytes) or NewClient
// fails.
func WithRequestID(id string) ClientOption {
	return clientOptionFunc(func(c *Client) { c.requestID = id })
}

// WithClaimWire selects the wire format StreamSubmit (and so the
// device helper's ParticipateStream) uses for claim batches: WireJSON
// (the default) or WireBinary, the length-prefixed CRC-checked frame
// the server decodes through its pooled hot path. Receipts, errors,
// and every other endpoint stay JSON either way. NewClient fails on
// any other value.
func WithClaimWire(wire string) ClientOption {
	return clientOptionFunc(func(c *Client) { c.claimWire = wire })
}

// NewClient returns a client for the campaign server at baseURL
// (e.g. "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("%w: empty base URL", ErrBadClient)
	}
	c := &Client{
		baseURL: baseURL,
		httpc:   &http.Client{Timeout: 10 * time.Second},
	}
	for _, o := range opts {
		o.applyClient(c)
	}
	if c.httpc == nil {
		return nil, fmt.Errorf("%w: nil http client", ErrBadClient)
	}
	if c.requestID != "" && !obs.ValidRequestID(c.requestID) {
		return nil, fmt.Errorf("%w: invalid request ID %q", ErrBadClient, c.requestID)
	}
	switch c.claimWire {
	case "", WireJSON, WireBinary:
	default:
		return nil, fmt.Errorf("%w: claim wire %q (want %q or %q)", ErrBadClient, c.claimWire, WireJSON, WireBinary)
	}
	return c, nil
}

// Campaign fetches the campaign metadata.
func (c *Client) Campaign(ctx context.Context) (CampaignInfo, error) {
	var info CampaignInfo
	err := c.do(ctx, http.MethodGet, PathCampaign, nil, &info)
	return info, err
}

// Submit posts one perturbed submission.
func (c *Client) Submit(ctx context.Context, sub Submission) (SubmissionReceipt, error) {
	var receipt SubmissionReceipt
	err := c.do(ctx, http.MethodPost, PathSubmissions, sub, &receipt)
	return receipt, err
}

// Result fetches the aggregated result. While aggregation is pending the
// server answers 404 and the returned error matches both
// errors.Is(err, ErrNotReady) and errors.As(err, **HTTPError).
func (c *Client) Result(ctx context.Context) (ResultInfo, error) {
	var res ResultInfo
	err := c.do(ctx, http.MethodGet, PathResult, nil, &res)
	return res, notReadyErr(err)
}

// Aggregate asks the server to aggregate whatever has been submitted.
func (c *Client) Aggregate(ctx context.Context) (ResultInfo, error) {
	var res ResultInfo
	err := c.do(ctx, http.MethodPost, PathAggregate, nil, &res)
	return res, err
}

// StreamCampaign fetches the streaming campaign metadata.
func (c *Client) StreamCampaign(ctx context.Context) (StreamCampaignInfo, error) {
	var info StreamCampaignInfo
	err := c.do(ctx, http.MethodGet, PathStreamCampaign, nil, &info)
	return info, err
}

// StreamSubmit posts one perturbed claim batch into the open window,
// encoded per the client's claim wire format (JSON by default; see
// WithClaimWire).
func (c *Client) StreamSubmit(ctx context.Context, sub Submission) (StreamReceipt, error) {
	var receipt StreamReceipt
	if c.claimWire == WireBinary {
		frame := AppendClaimFrame(nil, sub.ClientID, sub.Claims)
		err := c.doBody(ctx, http.MethodPost, PathStreamClaims, ContentTypeClaims, frame, &receipt)
		return receipt, err
	}
	err := c.do(ctx, http.MethodPost, PathStreamClaims, sub, &receipt)
	return receipt, err
}

// StreamTruths fetches the latest closed window's estimate. Until a
// window closed the server answers 404 and the returned error matches
// both errors.Is(err, ErrNotReady) and errors.As(err, **HTTPError).
func (c *Client) StreamTruths(ctx context.Context) (StreamWindowInfo, error) {
	var info StreamWindowInfo
	err := c.do(ctx, http.MethodGet, PathStreamTruths, nil, &info)
	return info, notReadyErr(err)
}

// StreamTruthsAt fetches the retained estimate of one specific closed
// window (1-based) from the server's bounded result history; window 0
// means the latest, like StreamTruths. A window that never closed or
// was already evicted returns an error matching ErrUnknownWindow
// (ErrNotReady when no window ever closed).
func (c *Client) StreamTruthsAt(ctx context.Context, window int) (StreamWindowInfo, error) {
	if window < 0 {
		return StreamWindowInfo{}, fmt.Errorf("%w: window %d", ErrBadClient, window)
	}
	path := PathStreamTruths
	if window > 0 {
		path += "?window=" + strconv.Itoa(window)
	}
	var info StreamWindowInfo
	err := c.do(ctx, http.MethodGet, path, nil, &info)
	if err == nil && window > 0 && info.Window != window {
		// A history-unaware (pre-?window=) server ignores the query and
		// answers with the latest window; surface that as a typed miss
		// rather than silently handing back the wrong window's truths.
		return StreamWindowInfo{}, fmt.Errorf("%w: server answered window %d for ?window=%d (history-unaware server?)",
			ErrUnknownWindow, info.Window, window)
	}
	return info, notReadyErr(err)
}

// StreamStats fetches the streaming server's observability counters:
// engine totals, result-history bounds, and — on a durable server — the
// store's journal and group-commit histograms.
func (c *Client) StreamStats(ctx context.Context) (StreamStatsInfo, error) {
	var info StreamStatsInfo
	err := c.do(ctx, http.MethodGet, PathStreamStats, nil, &info)
	return info, err
}

// StreamCloseWindow asks the server to close the open window and returns
// its estimate.
func (c *Client) StreamCloseWindow(ctx context.Context) (StreamWindowInfo, error) {
	var info StreamWindowInfo
	err := c.do(ctx, http.MethodPost, PathStreamWindow, nil, &info)
	return info, err
}

// notReadyErr surfaces a pre-envelope server's bare 404 "nothing to
// fetch yet" responses as ErrNotReady so pollers can match
// errors.Is(err, ErrNotReady) instead of inspecting status codes. Such
// a server answers either with an empty body (an *HTTPError with no
// code) or with a non-envelope body like Go's plain-text "404 page not
// found" (an *EnvelopeDecodeError); both map here. Against an
// envelope-speaking server the code mapping in doBody already attached
// the right sentinel and this is a no-op.
func notReadyErr(err error) error {
	if errors.Is(err, ErrNotReady) {
		return err
	}
	var httpErr *HTTPError
	if errors.As(err, &httpErr) && httpErr.StatusCode == http.StatusNotFound && httpErr.Code == "" {
		return fmt.Errorf("%w: %w", ErrNotReady, err)
	}
	var envErr *EnvelopeDecodeError
	if errors.As(err, &envErr) && envErr.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %w", ErrNotReady, err)
	}
	return err
}

// maxErrorBodyBytes bounds how much of a failed response's body the
// client reads while decoding the error envelope — and how much of an
// undecodable body an EnvelopeDecodeError carries as evidence.
const (
	maxErrorBodyBytes    = 64 << 10
	errorBodyPrefixBytes = 256
)

// EnvelopeDecodeError reports a non-2xx response whose non-empty body
// did not decode as the JSON error envelope — a proxy's HTML error
// page, a truncated response, a non-pptd server. It carries the HTTP
// status and the first bytes of the body so the caller can see what
// actually answered, instead of an empty envelope masquerading as a
// well-formed server error.
type EnvelopeDecodeError struct {
	// StatusCode is the response's HTTP status.
	StatusCode int
	// RequestID echoes the response's correlation header, when present.
	RequestID string
	// BodyPrefix holds the first bytes (at most errorBodyPrefixBytes) of
	// the undecodable body.
	BodyPrefix []byte
	// Err is the JSON decode failure.
	Err error
}

func (e *EnvelopeDecodeError) Error() string {
	return fmt.Sprintf("crowd: HTTP %d with undecodable error envelope (%v); body starts %q",
		e.StatusCode, e.Err, e.BodyPrefix)
}

func (e *EnvelopeDecodeError) Unwrap() error { return e.Err }

// do issues one JSON request/response exchange.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	contentType := ""
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("crowd: encode request: %w", err)
		}
		raw, contentType = buf, "application/json"
	}
	return c.doBody(ctx, method, path, contentType, raw, out)
}

// doBody issues one request with a pre-encoded body (JSON from do, or a
// binary claim frame) and decodes the JSON response.
func (c *Client) doBody(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, reader)
	if err != nil {
		return fmt.Errorf("crowd: build request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	id := c.requestID
	if id == "" {
		id = obs.NewRequestID()
	}
	req.Header.Set(HeaderRequestID, id)
	// Advertise the envelope versions this client can decode, so a
	// future server can emit a newer envelope only to clients that
	// understand it (the server echoes its pick in
	// HeaderEnvelopeVersion).
	req.Header.Set(HeaderAcceptEnvelope, strconv.Itoa(ErrorEnvelopeVersion))
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("crowd: %s %s: %w", method, path, err)
	}
	defer func() {
		_ = resp.Body.Close()
	}()

	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBodyBytes))
		var eb ErrorBody
		if len(bytes.TrimSpace(raw)) > 0 {
			if derr := json.Unmarshal(raw, &eb); derr != nil {
				// A non-empty body that is not the envelope: report what
				// answered instead of propagating a fabricated empty
				// envelope (the old behavior swallowed this failure).
				prefix := bytes.TrimSpace(raw)
				if len(prefix) > errorBodyPrefixBytes {
					prefix = prefix[:errorBodyPrefixBytes]
				}
				return &EnvelopeDecodeError{
					StatusCode: resp.StatusCode,
					RequestID:  resp.Header.Get(HeaderRequestID),
					BodyPrefix: append([]byte(nil), prefix...),
					Err:        derr,
				}
			}
		}
		msg := eb.Message
		if msg == "" {
			msg = eb.Error // pre-envelope server: {"error": ...} only
		}
		httpErr := &HTTPError{
			StatusCode:        resp.StatusCode,
			Code:              eb.Code,
			Message:           msg,
			RetryAfterWindows: eb.RetryAfterWindows,
			RequestID:         resp.Header.Get(HeaderRequestID),
		}
		// The envelope code is the stable contract: unwrap it into the
		// matching typed sentinel so callers can errors.Is against
		// package errors while errors.As still reaches the *HTTPError.
		if sentinel, ok := sentinelByCode[eb.Code]; ok {
			return fmt.Errorf("%w: %w", sentinel, httpErr)
		}
		return httpErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("crowd: decode response: %w", err)
	}
	return nil
}

// User models one participant's device: it holds the original readings,
// which never leave the device unperturbed.
type User struct {
	id       string
	readings []Claim
	rng      *randx.RNG

	// perturber is the device's lazily-created streaming perturber; one
	// noise variance per device per campaign, as Algorithm 2 prescribes.
	perturber *core.UserPerturber
	// lastWindow is the 1-based window of the last accepted streaming
	// submission; it backs the one-submission-per-window guard.
	lastWindow int
}

// NewUser returns a user with the given original readings. The RNG is the
// device-local randomness used for variance sampling and noise.
func NewUser(id string, readings []Claim, rng *randx.RNG) (*User, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty user id", ErrBadClient)
	}
	if len(readings) == 0 {
		return nil, fmt.Errorf("%w: user %q has no readings", ErrBadClient, id)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadClient)
	}
	own := make([]Claim, len(readings))
	copy(own, readings)
	return &User{id: id, readings: own, rng: rng}, nil
}

// ID returns the user's client ID.
func (u *User) ID() string { return u.id }

// Participate runs the full client side of Algorithm 2: fetch the
// campaign (obtaining lambda2), sample a private noise variance, perturb
// every reading locally, and submit only the perturbed claims. It returns
// the submission receipt.
func (u *User) Participate(ctx context.Context, c *Client) (SubmissionReceipt, error) {
	if c == nil {
		return SubmissionReceipt{}, fmt.Errorf("%w: nil client", ErrBadClient)
	}
	info, err := c.Campaign(ctx)
	if err != nil {
		return SubmissionReceipt{}, fmt.Errorf("crowd: user %q fetch campaign: %w", u.id, err)
	}
	mech, err := core.NewMechanism(info.Lambda2)
	if err != nil {
		return SubmissionReceipt{}, fmt.Errorf("crowd: user %q: %w", u.id, err)
	}
	perturber := mech.NewUserPerturber(u.rng)
	perturbed := make([]Claim, len(u.readings))
	for i, r := range u.readings {
		perturbed[i] = Claim{Object: r.Object, Value: perturber.Perturb(r.Value)}
	}
	receipt, err := c.Submit(ctx, Submission{ClientID: u.id, Claims: perturbed})
	if err != nil {
		return SubmissionReceipt{}, fmt.Errorf("crowd: user %q submit: %w", u.id, err)
	}
	return receipt, nil
}

// SetReadings replaces the device's readings in place — the streaming
// analogue of taking fresh sensor measurements between submissions. Not
// safe concurrently with ParticipateStream.
func (u *User) SetReadings(readings []Claim) error {
	if len(readings) == 0 {
		return fmt.Errorf("%w: user %q has no readings", ErrBadClient, u.id)
	}
	u.readings = append(u.readings[:0], readings...)
	return nil
}

// ParticipateStream runs one streaming round of the client side: it
// fetches the streaming campaign (on the first call also learning
// lambda2 and sampling the device's private noise variance, kept for
// the lifetime of the campaign), perturbs the current readings, and
// submits them to the open window.
//
// The stream's release contract is one submission per user per window,
// and the helper enforces it on-device: when the server's open window is
// still the one the previous call submitted into, it returns
// ErrSameWindow before perturbing, so a second noisy view of the same
// readings never leaves the device (a server-side rejection would come
// too late for that). Not safe for concurrent use on the same User.
func (u *User) ParticipateStream(ctx context.Context, c *Client) (StreamReceipt, error) {
	if c == nil {
		return StreamReceipt{}, fmt.Errorf("%w: nil client", ErrBadClient)
	}
	info, err := c.StreamCampaign(ctx)
	if err != nil {
		return StreamReceipt{}, fmt.Errorf("crowd: user %q fetch stream campaign: %w", u.id, err)
	}
	if u.lastWindow > 0 && info.Window+1 == u.lastWindow {
		return StreamReceipt{}, fmt.Errorf("%w: user %q in window %d", ErrSameWindow, u.id, u.lastWindow)
	}
	if u.perturber == nil {
		if info.Lambda2 <= 0 {
			// The device never uploads unperturbed readings; a campaign
			// that publishes no perturbation rate cannot be joined.
			return StreamReceipt{}, fmt.Errorf("%w: user %q: streaming campaign %q publishes no lambda2",
				ErrBadClient, u.id, info.Name)
		}
		mech, err := core.NewMechanism(info.Lambda2)
		if err != nil {
			return StreamReceipt{}, fmt.Errorf("crowd: user %q: %w", u.id, err)
		}
		u.perturber = mech.NewUserPerturber(u.rng)
	}
	perturbed := make([]Claim, len(u.readings))
	for i, r := range u.readings {
		perturbed[i] = Claim{Object: r.Object, Value: u.perturber.Perturb(r.Value)}
	}
	receipt, err := c.StreamSubmit(ctx, Submission{ClientID: u.id, Claims: perturbed})
	if err != nil {
		return StreamReceipt{}, fmt.Errorf("crowd: user %q stream submit: %w", u.id, err)
	}
	u.lastWindow = receipt.Window
	return receipt, nil
}
