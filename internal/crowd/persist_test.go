package crowd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// TestBatchCampaignPersistenceRecovery walks a durable batch campaign
// through two restarts: submissions survive the first (with the
// duplicate guard intact), the aggregated result survives the second
// (without re-aggregation, and with the campaign still closed).
func TestBatchCampaignPersistenceRecovery(t *testing.T) {
	dir := t.TempDir()
	method := testMethod(t)
	open := func() *streamstore.Store {
		t.Helper()
		store, err := streamstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return store
	}
	cfg := func(store *streamstore.Store) ServerConfig {
		return ServerConfig{
			Name:        "batch-durable",
			NumObjects:  2,
			Lambda2:     1.5,
			Method:      method,
			Persistence: store,
		}
	}
	ctx := context.Background()

	// Life 1: two clients submit, then the "process" dies gracefully.
	store1 := open()
	srv1, err := NewServer(cfg(store1))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	client1, err := NewClient(ts1.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []Submission{
		{ClientID: "alice", Claims: []Claim{{0, 1.0}, {1, 2.0}}},
		{ClientID: "bob", Claims: []Claim{{0, 1.2}, {1, 1.8}}},
	} {
		if _, err := client1.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 2: both submissions recovered, duplicate still rejected, a
	// new client joins, and the campaign aggregates.
	store2 := open()
	srv2, err := NewServer(cfg(store2))
	if err != nil {
		t.Fatal(err)
	}
	if info := srv2.Campaign(); info.SubmittedUsers != 2 || info.Aggregated {
		t.Fatalf("recovered campaign = %+v, want 2 submitted users, open", info)
	}
	if _, err := srv2.Submit(Submission{ClientID: "alice", Claims: []Claim{{0, 9}}}); !errors.Is(err, ErrDuplicateClient) {
		t.Fatalf("resubmission after restart = %v, want ErrDuplicateClient", err)
	}
	if _, err := srv2.Submit(Submission{ClientID: "carol", Claims: []Claim{{0, 0.8}, {1, 2.2}}}); err != nil {
		t.Fatal(err)
	}
	res2, err := srv2.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Weights) != 3 {
		t.Fatalf("aggregated weights = %+v, want all three clients", res2.Weights)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}

	// Life 3: the persisted result is served without re-aggregation and
	// the campaign stays closed.
	store3 := open()
	t.Cleanup(func() { _ = store3.Close() })
	srv3, err := NewServer(cfg(store3))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := srv3.Result()
	if err != nil {
		t.Fatalf("result after restart = %v, want the persisted aggregation", err)
	}
	if res3.Method != res2.Method || len(res3.Truths) != len(res2.Truths) {
		t.Fatalf("recovered result = %+v, want %+v", res3, res2)
	}
	for i := range res2.Truths {
		if res3.Truths[i] != res2.Truths[i] {
			t.Fatalf("recovered truth[%d] = %v, want %v", i, res3.Truths[i], res2.Truths[i])
		}
	}
	for id, w := range res2.Weights {
		if res3.Weights[id] != w {
			t.Fatalf("recovered weight[%s] = %v, want %v", id, res3.Weights[id], w)
		}
	}
	if _, err := srv3.Submit(Submission{ClientID: "dave", Claims: []Claim{{0, 1}}}); !errors.Is(err, ErrCampaignClosed) {
		t.Fatalf("submission after recovered result = %v, want ErrCampaignClosed", err)
	}
}

// TestBatchPersistFailureRejectsSubmission: when the WAL append fails,
// the submission is not acknowledged and the in-memory state does not
// advance — durable-before-acknowledged, never the reverse.
func TestBatchPersistFailureRejectsSubmission(t *testing.T) {
	store, err := streamstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		NumObjects:  1,
		Lambda2:     1,
		Method:      testMethod(t),
		Persistence: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil { // every append now fails
		t.Fatal(err)
	}
	if _, err := srv.Submit(Submission{ClientID: "u", Claims: []Claim{{0, 1}}}); err == nil {
		t.Fatal("submission acknowledged without durability")
	}
	if info := srv.Campaign(); info.SubmittedUsers != 0 {
		t.Fatalf("failed submission still counted: %+v", info)
	}
}

// TestStreamStatsResetKeepsResidentGauge is the regression test for
// GET /v1/stream/stats?reset=1 zeroing the residency gauges: residency
// is live engine state, not a windowed counter, so a stats poller that
// resets its window must keep seeing the true resident population —
// while the store's spill *counters* do window and its spilled-users
// *gauge* does not.
func TestStreamStatsResetKeepsResidentGauge(t *testing.T) {
	store, err := streamstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store.Close() })
	srv, err := NewStreamServer(StreamServerConfig{
		Name: "stream-resident",
		Engine: stream.Config{
			NumObjects: 2,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
			// One decay pass kills every sufficient statistic, so all
			// users are evictable at the first close.
			Decay:            1e-10,
			MaxResidentUsers: 1,
		},
		Persistence: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	})
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	statsAt := func(reset bool) StreamStatsInfo {
		t.Helper()
		path := ts.URL + PathStreamStats
		if reset {
			path += "?reset=1"
		}
		resp, err := http.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var info StreamStatsInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if info.Store == nil {
			t.Fatal("durable stream server reported no store stats")
		}
		return info
	}

	for _, id := range []string{"u-0", "u-1", "u-2"} {
		if _, err := client.StreamSubmit(ctx, Submission{ClientID: id, Claims: []Claim{{0, 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if info := statsAt(false); info.ResidentUsers != 3 || info.MaxResidentUsers != 1 {
		t.Fatalf("pre-close stats = %d resident / cap %d, want 3 / 1", info.ResidentUsers, info.MaxResidentUsers)
	}

	// The close evicts down to the cap: two users spill.
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	before := statsAt(false)
	if before.ResidentUsers != 1 {
		t.Fatalf("post-close resident users = %d, want 1 (cap)", before.ResidentUsers)
	}
	if before.Store.UserSpills != 2 || before.Store.SpilledUsers != 2 {
		t.Fatalf("post-close spill stats = %d spills / %d spilled, want 2 / 2", before.Store.UserSpills, before.Store.SpilledUsers)
	}

	// The reset read still reports the live gauges...
	during := statsAt(true)
	if during.ResidentUsers != 1 || during.MaxResidentUsers != 1 {
		t.Fatalf("reset read = %d resident / cap %d, want 1 / 1: ?reset=1 zeroed a gauge", during.ResidentUsers, during.MaxResidentUsers)
	}
	// ...and afterwards the spill counter is windowed while both gauges
	// keep describing the present.
	after := statsAt(false)
	if after.ResidentUsers != 1 || after.MaxResidentUsers != 1 {
		t.Fatalf("post-reset read = %d resident / cap %d, want 1 / 1: ?reset=1 zeroed a gauge", after.ResidentUsers, after.MaxResidentUsers)
	}
	if after.Store.UserSpills != 0 {
		t.Fatalf("post-reset UserSpills = %d, want 0 (windowed counter)", after.Store.UserSpills)
	}
	if after.Store.SpilledUsers != 2 {
		t.Fatalf("post-reset SpilledUsers = %d, want 2 (gauge survives reset)", after.Store.SpilledUsers)
	}

	// An evicted user is transparently re-admitted on its next claim.
	if _, err := client.StreamSubmit(ctx, Submission{ClientID: "u-0", Claims: []Claim{{1, 2}}}); err != nil {
		t.Fatalf("evicted user not re-admitted: %v", err)
	}
	readmit := statsAt(false)
	if readmit.ResidentUsers != 2 {
		t.Fatalf("resident users after readmission = %d, want 2", readmit.ResidentUsers)
	}
	if readmit.Store.UserLoads < 1 {
		t.Fatalf("UserLoads after readmission = %d, want >= 1", readmit.Store.UserLoads)
	}
}
