package crowd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pptd/internal/stream"
)

// StreamServerConfig parameterizes a streaming campaign server.
type StreamServerConfig struct {
	// Name labels the streaming campaign.
	Name string
	// Engine configures the underlying truth-discovery stream engine
	// (objects, shards, decay, privacy accounting, ...).
	Engine stream.Config
}

// StreamServer is the streaming counterpart of Server: instead of one
// aggregation over a frozen campaign, it ingests perturbed claim batches
// continuously into a sharded stream engine and serves the latest
// per-window estimate as a live snapshot. Like Server it only ever sees
// perturbed data. Safe for concurrent use.
type StreamServer struct {
	name   string
	engine *stream.Engine
}

// NewStreamServer starts a streaming campaign server. Close it to stop
// the engine's shard workers.
func NewStreamServer(cfg StreamServerConfig) (*StreamServer, error) {
	eng, err := stream.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("crowd: stream server: %w", err)
	}
	return &StreamServer{name: cfg.Name, engine: eng}, nil
}

// Engine exposes the underlying stream engine (for embedding servers
// that drive window closes themselves).
func (s *StreamServer) Engine() *stream.Engine { return s.engine }

// Close stops the engine's shard workers.
func (s *StreamServer) Close() error { return s.engine.Close() }

// Handler returns the HTTP handler serving the streaming campaign API.
func (s *StreamServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathStreamCampaign, s.handleCampaign)
	mux.HandleFunc(PathStreamClaims, s.handleClaims)
	mux.HandleFunc(PathStreamTruths, s.handleTruths)
	mux.HandleFunc(PathStreamWindow, s.handleWindow)
	return mux
}

// Campaign returns the streaming campaign metadata.
func (s *StreamServer) Campaign() StreamCampaignInfo {
	return StreamCampaignInfo{
		Name:             s.name,
		NumObjects:       s.engine.NumObjects(),
		Lambda2:          s.engine.Lambda2(),
		Shards:           s.engine.NumShards(),
		Window:           s.engine.Window(),
		TotalClaims:      s.engine.TotalClaims(),
		EpsilonPerWindow: s.engine.EpsilonPerWindow(),
		Delta:            s.engine.Delta(),
		EpsilonBudget:    s.engine.EpsilonBudget(),
	}
}

// Submit ingests one perturbed claim batch into the current window.
func (s *StreamServer) Submit(sub Submission) (StreamReceipt, error) {
	claims := make([]stream.Claim, len(sub.Claims))
	for i, c := range sub.Claims {
		claims[i] = stream.Claim{Object: c.Object, Value: c.Value}
	}
	accepted, window, err := s.engine.Ingest(sub.ClientID, claims)
	if err != nil {
		return StreamReceipt{}, err
	}
	return StreamReceipt{
		Accepted:    accepted,
		Window:      window,
		TotalClaims: s.engine.TotalClaims(),
	}, nil
}

// CloseWindow closes the current window and returns its estimate.
func (s *StreamServer) CloseWindow() (StreamWindowInfo, error) {
	res, err := s.engine.CloseWindow()
	if err != nil {
		return StreamWindowInfo{}, err
	}
	return windowInfo(res), nil
}

// Truths returns the latest closed window's estimate, or ErrNotReady if
// no window has closed yet.
func (s *StreamServer) Truths() (StreamWindowInfo, error) {
	res := s.engine.Snapshot()
	if res == nil {
		return StreamWindowInfo{}, ErrNotReady
	}
	return windowInfo(res), nil
}

// windowInfo converts an engine result to its wire form; uncovered
// truths (NaN, which JSON cannot carry) are zeroed and flagged by the
// Covered mask instead.
func windowInfo(res *stream.WindowResult) StreamWindowInfo {
	truths := make([]float64, len(res.Truths))
	for i, v := range res.Truths {
		if res.Covered[i] {
			truths[i] = v
		}
	}
	return StreamWindowInfo{
		Window:       res.Window,
		Truths:       truths,
		Covered:      res.Covered,
		Weights:      res.Weights,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		ActiveUsers:  res.ActiveUsers,
		WindowClaims: res.WindowClaims,
		TotalClaims:  res.TotalClaims,
		Privacy:      res.Privacy,
	}
}

func (s *StreamServer) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Campaign())
}

func (s *StreamServer) handleClaims(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode submission: %v", err))
		return
	}
	receipt, err := s.Submit(sub)
	switch {
	case errors.Is(err, stream.ErrBadClaim):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, stream.ErrDuplicateWindow):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, stream.ErrBudgetExhausted):
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, stream.ErrEngineClosed):
		writeError(w, http.StatusGone, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, receipt)
	}
}

func (s *StreamServer) handleTruths(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	info, err := s.Truths()
	if errors.Is(err, ErrNotReady) {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *StreamServer) handleWindow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	info, err := s.CloseWindow()
	switch {
	case errors.Is(err, stream.ErrEmptyWindow):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, stream.ErrEngineClosed):
		writeError(w, http.StatusGone, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, info)
	}
}
