package crowd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

// StreamServerConfig parameterizes a streaming campaign server.
type StreamServerConfig struct {
	// Name labels the streaming campaign.
	Name string
	// Engine configures the underlying truth-discovery stream engine
	// (objects, shards, decay, privacy accounting, ...).
	Engine stream.Config
	// Persistence, when set, makes the server durable: the engine is
	// recovered on startup (latest snapshot, idempotent journal replay —
	// including claims when Engine.ClaimWAL journaled them — and the
	// last published window result, so /v1/stream/truths answers
	// immediately), every privacy charge is journaled through the store
	// before the submission is acknowledged (unless Engine.Ledger was
	// set explicitly; concurrent submissions share group-commit fsyncs),
	// each window close persists its result and snapshots the engine per
	// the store's cadence (streamstore.Options.SnapshotEvery /
	// SnapshotBytes), and a full snapshot is forced on graceful Close.
	// The caller opens the store and keeps ownership: Close the server
	// first, then the store.
	Persistence *streamstore.Store
	// WindowInterval, when positive, closes windows automatically on a
	// ticker so a deployment does not depend on an external
	// POST /v1/stream/window driver. Ticks on an empty window are
	// skipped. Auto closes serialize with manual closes and with
	// persistence snapshots.
	WindowInterval time.Duration
	// MaxRequestBytes caps the request body of every POST route this
	// server mounts — stream claims and the cluster close/commit RPCs.
	// Oversized bodies get the 413 payload_too_large envelope before
	// being buffered. Zero means DefaultMaxRequestBytes; negative is a
	// config error.
	MaxRequestBytes int64
}

// StreamServer is the streaming counterpart of Server: instead of one
// aggregation over a frozen campaign, it ingests perturbed claim batches
// continuously into a sharded stream engine and serves the latest
// per-window estimate as a live snapshot. Like Server it only ever sees
// perturbed data. Safe for concurrent use.
type StreamServer struct {
	name     string
	engine   *stream.Engine
	store    *streamstore.Store
	maxBytes int64 // request-body cap on every POST route

	// windowMu serializes window closes — manual, ticker-driven, and the
	// persistence snapshot that follows each — so a snapshot always
	// captures the state its window close produced.
	windowMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// clusterExport caches the last ClusterClose export (keyed by the
	// 1-based window it closed) under windowMu, making the close RPC
	// idempotent: a coordinator retrying after a partial cluster close
	// gets the identical state back instead of closing a second window.
	// On a durable server the cache is persisted (and restored on boot)
	// so the idempotence survives a worker crash mid-round;
	// clusterExportDurable tracks whether the current cache entry made
	// it to disk, and clusterCommitted is the last window whose merged
	// carries were applied (see ClusterCommit / ClusterStatus).
	clusterExport        *stream.EngineState
	clusterExportWindow  int
	clusterExportDurable bool
	clusterCommitted     int

	tickMu  sync.Mutex
	tickErr error
}

// NewStreamServer starts a streaming campaign server. With persistence
// configured it first recovers the engine (snapshot, journal replay,
// last published result), so returning users keep their cumulative
// privacy spending, the estimator resumes from its persisted sufficient
// statistics — including journal-replayed claims when the claim WAL is
// enabled — and the previous estimate is served right away. Close it to
// stop the window ticker and the engine's shard workers.
func NewStreamServer(cfg StreamServerConfig) (*StreamServer, error) {
	if cfg.WindowInterval < 0 {
		return nil, fmt.Errorf("%w: WindowInterval = %v", ErrBadConfig, cfg.WindowInterval)
	}
	if cfg.MaxRequestBytes < 0 {
		return nil, fmt.Errorf("%w: MaxRequestBytes = %d", ErrBadConfig, cfg.MaxRequestBytes)
	}
	if cfg.Persistence != nil && cfg.Engine.Ledger == nil && cfg.Engine.Lambda1 > 0 {
		cfg.Engine.Ledger = cfg.Persistence
	}
	if cfg.Persistence != nil && cfg.Engine.UserStore == nil {
		// The store doubles as the engine's user spill store, so
		// residency caps (MaxResidentUsers / ResidentBytes) work out of
		// the box on a durable server — and journal replay can re-admit
		// users whose only remaining trace is a spill record.
		cfg.Engine.UserStore = cfg.Persistence
	}
	eng, err := stream.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("crowd: stream server: %w", err)
	}
	if cfg.Persistence != nil {
		if _, err := cfg.Persistence.Recover(eng); err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("crowd: stream server: recover state: %w", err)
		}
	}
	s := &StreamServer{
		name:     cfg.Name,
		engine:   eng,
		store:    cfg.Persistence,
		maxBytes: effectiveMaxRequestBytes(cfg.MaxRequestBytes),
	}
	if cfg.Persistence != nil {
		// Restore the cluster close-export cache, so a worker killed
		// mid-round (closed, not yet committed) can still serve the
		// coordinator's retried close for the window its recovered
		// engine may already have advanced past.
		cs, err := cfg.Persistence.LoadClusterClose()
		if err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("crowd: stream server: recover cluster close state: %w", err)
		}
		if cs != nil {
			s.clusterExport, s.clusterExportWindow, s.clusterExportDurable = cs.State, cs.Window, true
			if cs.Committed {
				s.clusterCommitted = cs.Window
			}
		}
	}
	if cfg.WindowInterval > 0 {
		s.stop = make(chan struct{})
		s.wg.Add(1)
		go s.autoCloseLoop(cfg.WindowInterval)
	}
	return s, nil
}

// autoCloseLoop closes windows on the configured interval until Close.
func (s *StreamServer) autoCloseLoop(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			// An empty window just means no traffic this tick, and a
			// closed engine means shutdown is racing the ticker; neither
			// stops the loop. Anything else — above all a failed
			// persistence snapshot — must not vanish silently: it is
			// retained for TickError and returned from Close.
			_, err := s.CloseWindow()
			if errors.Is(err, stream.ErrEmptyWindow) || errors.Is(err, stream.ErrEngineClosed) {
				continue
			}
			s.tickMu.Lock()
			s.tickErr = err // nil on success: a good tick clears the fault
			s.tickMu.Unlock()
		}
	}
}

// TickError returns the most recent unexpected error from a
// ticker-driven window close (nil when the last effective tick
// succeeded). With persistence configured this is how a deployment
// notices that snapshots have started failing — e.g. a full disk —
// before a crash makes the stale snapshot matter.
func (s *StreamServer) TickError() error {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	return s.tickErr
}

// Engine exposes the underlying stream engine (for embedding servers
// that drive window closes themselves).
func (s *StreamServer) Engine() *stream.Engine { return s.engine }

// Close stops the window ticker, persists a final snapshot when a store
// is configured (so a graceful shutdown loses not even the open window's
// statistics), and stops the engine's shard workers. It does not close
// the store itself — the caller that opened it does.
func (s *StreamServer) Close() error {
	if s.stop != nil {
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
	}
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	var snapErr error
	if s.store != nil {
		if err := s.store.SnapshotEngine(s.engine); err != nil && !errors.Is(err, stream.ErrEngineClosed) {
			snapErr = fmt.Errorf("crowd: final stream snapshot: %w", err)
		}
	}
	if err := s.engine.Close(); err != nil {
		return err
	}
	return errors.Join(snapErr, s.TickError())
}

// Handler returns the HTTP handler serving the streaming campaign API.
func (s *StreamServer) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Register mounts the streaming routes on a shared mux, so one front
// door (a pptd Node) can serve the batch and streaming APIs together.
// Every route echoes the request-correlation header (see HeaderRequestID).
func (s *StreamServer) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathStreamCampaign, echoRequestID(s.handleCampaign))
	mux.HandleFunc(PathStreamClaims, echoRequestID(s.handleClaims))
	mux.HandleFunc(PathStreamTruths, echoRequestID(s.handleTruths))
	mux.HandleFunc(PathStreamWindow, echoRequestID(s.handleWindow))
	mux.HandleFunc(PathStreamStats, echoRequestID(s.handleStats))
}

// Campaign returns the streaming campaign metadata.
func (s *StreamServer) Campaign() StreamCampaignInfo {
	return StreamCampaignInfo{
		Name:             s.name,
		NumObjects:       s.engine.NumObjects(),
		Lambda2:          s.engine.Lambda2(),
		Estimator:        s.engine.Estimator(),
		Shards:           s.engine.NumShards(),
		Window:           s.engine.Window(),
		TotalClaims:      s.engine.TotalClaims(),
		EpsilonPerWindow: s.engine.EpsilonPerWindow(),
		Delta:            s.engine.Delta(),
		EpsilonBudget:    s.engine.EpsilonBudget(),
	}
}

// Submit ingests one perturbed claim batch into the current window.
func (s *StreamServer) Submit(sub Submission) (StreamReceipt, error) {
	claims := make([]stream.Claim, len(sub.Claims))
	for i, c := range sub.Claims {
		claims[i] = stream.Claim{Object: c.Object, Value: c.Value}
	}
	accepted, window, err := s.engine.Ingest(sub.ClientID, claims)
	if err != nil {
		return StreamReceipt{}, err
	}
	return StreamReceipt{
		Accepted:    accepted,
		Window:      window,
		TotalClaims: s.engine.TotalClaims(),
	}, nil
}

// CloseWindow closes the current window and returns its estimate. With
// persistence configured, the published result is persisted (so a
// restart can serve it immediately) and the engine is snapshotted per
// the store's cadence before the result is returned; a persistence
// failure is reported as an error even though the window already closed
// (the estimate stays available via Truths, and the journal still
// covers every charge — and claim, with the claim WAL — until the next
// snapshot succeeds).
func (s *StreamServer) CloseWindow() (StreamWindowInfo, error) {
	s.windowMu.Lock()
	defer s.windowMu.Unlock()
	res, err := s.engine.CloseWindow()
	if err != nil {
		return StreamWindowInfo{}, err
	}
	if s.store != nil {
		if err := s.store.SaveResult(res); err != nil {
			return StreamWindowInfo{}, fmt.Errorf("crowd: persist stream result: %w", err)
		}
		// SnapshotEngine captures the journal offset before exporting, so
		// a submission acknowledged while the snapshot is being written
		// keeps its journal record through the compaction.
		if _, err := s.store.MaybeSnapshotEngine(s.engine); err != nil {
			return StreamWindowInfo{}, fmt.Errorf("crowd: write stream snapshot: %w", err)
		}
	}
	return windowInfo(res), nil
}

// Truths returns the latest closed window's estimate, or ErrNotReady if
// no window has closed yet.
func (s *StreamServer) Truths() (StreamWindowInfo, error) {
	res := s.engine.Snapshot()
	if res == nil {
		return StreamWindowInfo{}, ErrNotReady
	}
	return windowInfo(res), nil
}

// TruthsAt returns the retained estimate of one specific closed window
// (1-based), serving late readers from the engine's bounded result
// history. Window 0 means the latest. A window that never closed or was
// evicted from the ring fails with ErrUnknownWindow (ErrNotReady when
// nothing has ever closed, matching Truths).
func (s *StreamServer) TruthsAt(window int) (StreamWindowInfo, error) {
	if window == 0 {
		return s.Truths()
	}
	res, ok := s.engine.ResultAt(window)
	if !ok {
		if s.engine.Snapshot() == nil {
			return StreamWindowInfo{}, ErrNotReady
		}
		return StreamWindowInfo{}, fmt.Errorf("%w: window %d (retaining up to %d recent windows)",
			ErrUnknownWindow, window, s.engine.HistoryWindows())
	}
	return windowInfo(res), nil
}

// Stats returns the server's observability counters: the engine's
// headline numbers, the result-history bounds behind ?window= reads,
// and — on a durable server — the store's journal and group-commit
// histograms.
func (s *StreamServer) Stats() StreamStatsInfo { return s.stats(false) }

// stats backs Stats and GET /v1/stream/stats. With reset true the
// store's windowed counters and histograms restart from this read
// (matching streamstore.Store.Stats semantics: gauges and the
// flush-latency Max high-water mark survive, and the /metrics series
// backed by the same fields stay monotone — only this JSON view is
// windowed).
func (s *StreamServer) stats(reset bool) StreamStatsInfo {
	info := StreamStatsInfo{
		Name:           s.name,
		Estimator:      s.engine.Estimator(),
		Window:         s.engine.Window(),
		TotalClaims:    s.engine.TotalClaims(),
		HistoryWindows: s.engine.HistoryWindows(),
		// Residency is read live from the engine on every stats call:
		// these are gauges, so ?reset=1 must not (and cannot) zero them.
		ResidentUsers:    s.engine.ResidentUsers(),
		MaxResidentUsers: s.engine.MaxResidentUsers(),
		Durable:          s.store != nil,
	}
	if hist := s.engine.History(); len(hist) > 0 {
		info.HistoryOldest = hist[0].Window
	}
	if s.store != nil {
		st := s.store.Stats(reset)
		info.Store = &st
	}
	return info
}

// windowInfo converts an engine result to its wire form; uncovered
// truths (NaN, which JSON cannot carry) are zeroed and flagged by the
// Covered mask instead.
func windowInfo(res *stream.WindowResult) StreamWindowInfo {
	truths := make([]float64, len(res.Truths))
	for i, v := range res.Truths {
		if res.Covered[i] {
			truths[i] = v
		}
	}
	return StreamWindowInfo{
		Window:       res.Window,
		Truths:       truths,
		Covered:      res.Covered,
		Weights:      res.Weights,
		Estimator:    res.Estimator,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		ActiveUsers:  res.ActiveUsers,
		WindowClaims: res.WindowClaims,
		TotalClaims:  res.TotalClaims,
		Privacy:      res.Privacy,
	}
}

func (s *StreamServer) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Campaign())
}

func (s *StreamServer) handleClaims(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes)
	if isClaimFrameContentType(r.Header.Get("Content-Type")) {
		s.handleClaimsBinary(w, r)
		return
	}
	var sub Submission
	if err := json.NewDecoder(r.Body).Decode(&sub); err != nil {
		writeDecodeError(w, "decode submission", err)
		return
	}
	receipt, err := s.Submit(sub)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, receipt)
}

// handleClaimsBinary is the pooled hot path behind the binary claim
// frame (Content-Type application/x-pptd-claims): the frame decodes
// into pooled buffers, the engine ingests straight from them (the
// client ID only materializes as a string the first time a user is
// seen), and the buffers go back to the pool — zero per-claim heap
// allocations in steady state.
func (s *StreamServer) handleClaimsBinary(w http.ResponseWriter, r *http.Request) {
	f := GetClaimFrame()
	defer PutClaimFrame(f)
	if err := DecodeClaimFrame(r.Body, f); err != nil {
		writeDecodeError(w, "decode claim frame", err)
		return
	}
	accepted, window, err := s.engine.IngestBytes(f.ClientID, f.Claims)
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StreamReceipt{
		Accepted:    accepted,
		Window:      window,
		TotalClaims: s.engine.TotalClaims(),
	})
}

func (s *StreamServer) handleTruths(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	window := 0
	if raw := r.URL.Query().Get("window"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad window parameter %q: want a non-negative integer", raw))
			return
		}
		window = n
	}
	info, err := s.TruthsAt(window)
	if err != nil {
		// not_ready / unknown_window map to 404: a missing estimate is a
		// missing resource, while 409 stays reserved for real conflicts
		// (duplicate submission in a window, closing an empty window).
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *StreamServer) handleWindow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	info, err := s.CloseWindow()
	if err != nil {
		writeAPIError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *StreamServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	reset := false
	if raw := r.URL.Query().Get("reset"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("bad reset parameter %q: want a boolean", raw))
			return
		}
		reset = v
	}
	writeJSON(w, http.StatusOK, s.stats(reset))
}
