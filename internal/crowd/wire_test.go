package crowd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pptd/internal/stream"
)

// goldenFrames are the pinned wire encodings: any byte-level drift in
// the encoder is a protocol break, caught by comparing against
// testdata/frame_*.bin.
var goldenFrames = []struct {
	name     string
	clientID string
	claims   []Claim
}{
	{"frame_basic.bin", "device-001", []Claim{{Object: 0, Value: 1.5}, {Object: 3, Value: -2.25}, {Object: 7, Value: 0}}},
	{"frame_empty_batch.bin", "u", nil},
	{"frame_wide_varints.bin", "device-é", []Claim{{Object: 1 << 20, Value: math.Pi}, {Object: 300, Value: -math.MaxFloat64}}},
}

func TestClaimFrameGolden(t *testing.T) {
	for _, g := range goldenFrames {
		path := filepath.Join("testdata", g.name)
		got := AppendClaimFrame(nil, g.clientID, g.claims)
		if *updateEnvelopeGolden { // the package-wide -update flag (see envelope_test.go)
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", g.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoder drifted from the pinned wire bytes (protocol break?)\n got %x\nwant %x", g.name, got, want)
		}
		// The pinned bytes must also decode back to the source submission.
		f := GetClaimFrame()
		n, err := DecodeClaimFrameBytes(want, f)
		if err != nil {
			t.Fatalf("%s: decode golden: %v", g.name, err)
		}
		if n != len(want) {
			t.Errorf("%s: consumed %d of %d bytes", g.name, n, len(want))
		}
		assertFrameEquals(t, g.name, f, g.clientID, g.claims)
		PutClaimFrame(f)
	}
}

func assertFrameEquals(t *testing.T, label string, f *ClaimFrame, clientID string, claims []Claim) {
	t.Helper()
	if string(f.ClientID) != clientID {
		t.Errorf("%s: clientID = %q, want %q", label, f.ClientID, clientID)
	}
	if len(f.Claims) != len(claims) {
		t.Fatalf("%s: %d claims, want %d", label, len(f.Claims), len(claims))
	}
	for i, c := range claims {
		got := f.Claims[i]
		if got.Object != c.Object || math.Float64bits(got.Value) != math.Float64bits(c.Value) {
			t.Errorf("%s: claim %d = %+v, want %+v", label, i, got, c)
		}
	}
}

// TestClaimFrameRoundTrip covers encode→decode through both decoders,
// including values framing must pass through untouched: negative
// objects (the engine's job to reject), negative zero, huge magnitudes.
func TestClaimFrameRoundTrip(t *testing.T) {
	cases := []struct {
		clientID string
		claims   []Claim
	}{
		{"", nil},
		{"alice", []Claim{{Object: 0, Value: 42}}},
		{"负载", []Claim{{Object: -1, Value: 1}, {Object: math.MaxInt32, Value: math.SmallestNonzeroFloat64}}},
		{"z", []Claim{{Object: 5, Value: math.Copysign(0, -1)}, {Object: 5, Value: math.NaN()}}},
	}
	for _, tc := range cases {
		data := AppendClaimFrame(nil, tc.clientID, tc.claims)

		f := GetClaimFrame()
		if err := DecodeClaimFrame(bytes.NewReader(data), f); err != nil {
			t.Fatalf("%q: streaming decode: %v", tc.clientID, err)
		}
		assertFrameEquals(t, "stream:"+tc.clientID, f, tc.clientID, tc.claims)
		PutClaimFrame(f)

		f2 := GetClaimFrame()
		n, err := DecodeClaimFrameBytes(data, f2)
		if err != nil {
			t.Fatalf("%q: bytes decode: %v", tc.clientID, err)
		}
		if n != len(data) {
			t.Errorf("%q: consumed %d of %d bytes", tc.clientID, n, len(data))
		}
		assertFrameEquals(t, "bytes:"+tc.clientID, f2, tc.clientID, tc.claims)
		PutClaimFrame(f2)
	}
}

// TestDecodeClaimFrameRejects corrupts a valid frame one way at a time;
// every corruption must fail with ErrBadFrame from both decoders, and a
// clean empty stream must read as io.EOF.
func TestDecodeClaimFrameRejects(t *testing.T) {
	valid := AppendClaimFrame(nil, "device", []Claim{{Object: 1, Value: 2.5}, {Object: 2, Value: -1}})

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte{}, valid...)
		mutate(c)
		return c
	}
	refixCRC := func(c []byte) { // recompute the CRC so only the layout is wrong
		binary.LittleEndian.PutUint32(c[9:13], crc32.ChecksumIEEE(c[claimFrameHeaderLen:]))
	}
	cases := map[string][]byte{
		"bad magic":        corrupt(func(c []byte) { c[0] = 'X' }),
		"bad version":      corrupt(func(c []byte) { c[4] = 9 }),
		"crc mismatch":     corrupt(func(c []byte) { c[len(c)-1] ^= 0xFF }),
		"truncated header": valid[:claimFrameHeaderLen-1],
		"truncated body":   valid[:len(valid)-3],
		"hostile length": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[5:9], maxClaimFramePayload+1)
		}),
		"hostile claim count": corrupt(func(c []byte) {
			// claim count sits right after the 6-byte uvarint'd client ID
			c[claimFrameHeaderLen+7] = 0xFF
			refixCRC(c)
		}),
		"trailing payload bytes": func() []byte {
			c := append(append([]byte{}, valid...), 0xAB)
			binary.LittleEndian.PutUint32(c[5:9], uint32(len(c)-claimFrameHeaderLen))
			refixCRC(c)
			return c
		}(),
	}
	for name, data := range cases {
		f := GetClaimFrame()
		if err := DecodeClaimFrame(bytes.NewReader(data), f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: streaming decode err = %v, want ErrBadFrame", name, err)
		}
		if _, err := DecodeClaimFrameBytes(data, f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: bytes decode err = %v, want ErrBadFrame", name, err)
		}
		PutClaimFrame(f)
	}

	f := GetClaimFrame()
	defer PutClaimFrame(f)
	if err := DecodeClaimFrame(bytes.NewReader(nil), f); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestDecodeClaimFrameBytesTrailingGarbage pins the longest-valid-prefix
// contract the journal decoder also honors: junk after a valid frame
// never costs the frame.
func TestDecodeClaimFrameBytesTrailingGarbage(t *testing.T) {
	frame := AppendClaimFrame(nil, "dev", []Claim{{Object: 4, Value: 8}})
	data := append(append([]byte{}, frame...), "\xff\xfe garbage tail"...)
	f := GetClaimFrame()
	defer PutClaimFrame(f)
	n, err := DecodeClaimFrameBytes(data, f)
	if err != nil {
		t.Fatalf("garbage tail cost a valid frame: %v", err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d bytes, want %d", n, len(frame))
	}
	assertFrameEquals(t, "garbage-tail", f, "dev", []Claim{{Object: 4, Value: 8}})
}

// FuzzDecodeClaimFrame mirrors FuzzDecodeRecord for the request wire:
// the decoder must never panic on arbitrary bytes, both decoders must
// agree on validity, and appending garbage to a valid frame must never
// change what the prefix decodes to.
func FuzzDecodeClaimFrame(f *testing.F) {
	for _, g := range goldenFrames {
		if seed, err := os.ReadFile(filepath.Join("testdata", g.name)); err == nil {
			f.Add(seed)
			f.Add(seed[:len(seed)-2])                     // torn payload
			f.Add(append([]byte{}, seed[4:]...))          // missing magic
			f.Add(append(append([]byte{}, seed...), 0x7)) // trailing junk
		}
	}
	f.Add([]byte("PTDC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := GetClaimFrame()
		defer PutClaimFrame(fr)
		n, err := DecodeClaimFrameBytes(data, fr)

		fs := GetClaimFrame()
		defer PutClaimFrame(fs)
		errStream := DecodeClaimFrame(bytes.NewReader(data), fs)
		if (err == nil) != (errStream == nil) {
			t.Fatalf("decoders disagree: bytes err = %v, stream err = %v", err, errStream)
		}
		if err != nil {
			return
		}
		if n < claimFrameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if string(fr.ClientID) != string(fs.ClientID) || len(fr.Claims) != len(fs.Claims) {
			t.Fatalf("decoders disagree on content: %q/%d vs %q/%d",
				fr.ClientID, len(fr.Claims), fs.ClientID, len(fs.Claims))
		}
		// A garbage tail never costs the valid prefix, and never changes
		// what it decodes to.
		id := string(fr.ClientID)
		claims := append([]stream.Claim{}, fr.Claims...)
		torn := append(append([]byte{}, data[:n]...), "\xff\x00 torn-write-junk"...)
		n2, err2 := DecodeClaimFrameBytes(torn, fr)
		if err2 != nil || n2 != n {
			t.Fatalf("garbage tail changed the prefix: n %d->%d, err %v", n, n2, err2)
		}
		if string(fr.ClientID) != id || len(fr.Claims) != len(claims) {
			t.Fatalf("garbage tail changed decoded content")
		}
		for i := range claims {
			if claims[i].Object != fr.Claims[i].Object ||
				math.Float64bits(claims[i].Value) != math.Float64bits(fr.Claims[i].Value) {
				t.Fatalf("claim %d drifted under garbage tail", i)
			}
		}
	})
}

// TestBinaryIngestZeroAlloc is the hot-path contract the pooled decode
// exists for: in steady state, decoding a frame and ingesting its
// claims performs zero heap allocations per operation — the frame, the
// scratch partitions, and the per-shard claim slices all come from
// pools, and the user ID is only materialized on first admission.
func TestBinaryIngestZeroAlloc(t *testing.T) {
	engine, err := stream.New(stream.Config{NumObjects: 16, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = engine.Close() }()

	claims := make([]Claim, 16)
	for i := range claims {
		claims[i] = Claim{Object: i, Value: float64(i) + 0.5}
	}
	frame := AppendClaimFrame(nil, "device-000", claims)

	fr := GetClaimFrame()
	defer PutClaimFrame(fr)
	op := func() {
		if _, err := DecodeClaimFrameBytes(frame, fr); err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.IngestBytes(fr.ClientID, fr.Claims); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every pool (frame buffers, ingest scratch, per-shard claim
	// slices) and intern the user before measuring.
	for i := 0; i < 100; i++ {
		op()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("pooled binary ingest allocates %d times per op, want 0\n%s %s",
			allocs, res.String(), res.MemString())
	}
}
