package crowd

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pptd/internal/stream"
)

var updateEnvelopeGolden = flag.Bool("update", false, "rewrite testdata/envelope_negotiation.golden")

// TestEnvelopeNegotiationGolden pins the Accept-header negotiation: for
// each client advertisement, the X-PPTD-Envelope-Version the server
// answers — on a success response and on an error envelope alike. The
// table is rendered to a golden file so any change to the negotiation
// (a new envelope version, a changed default) shows up as a reviewed
// diff, not a silent protocol shift.
func TestEnvelopeNegotiationGolden(t *testing.T) {
	srv, err := NewStreamServer(StreamServerConfig{
		Name:   "negotiate",
		Engine: stream.Config{NumObjects: 2},
	})
	if err != nil {
		t.Fatalf("stream server: %v", err)
	}
	defer func() {
		_ = srv.Close()
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		label  string
		accept string // HeaderAcceptEnvelope value; "-" means header absent
	}{
		{"absent", "-"},
		{"current", "1"},
		{"future-only", "2"},
		{"mixed-list", "2, 1"},
		{"spaced-list", " 1 , 3 "},
		{"zero", "0"},
		{"negative", "-1"},
		{"garbage", "latest"},
		{"garbage-then-valid", "latest, 1"},
		{"empty-value", ""},
	}

	var b strings.Builder
	b.WriteString("# Envelope version negotiation: X-PPTD-Accept-Envelope -> X-PPTD-Envelope-Version.\n")
	b.WriteString("# \"-\" means the request carried no Accept header.\n")
	b.WriteString("# Regenerate: go test ./internal/crowd -run TestEnvelopeNegotiationGolden -update\n")
	for _, tc := range cases {
		for _, route := range []struct {
			name, path string
			wantStatus int
		}{
			// A success path and an error path: the negotiated version
			// must be answered on both.
			{"ok", PathStreamCampaign, http.StatusOK},
			{"error", PathStreamTruths + "?window=999", http.StatusNotFound},
		} {
			req, err := http.NewRequest(http.MethodGet, ts.URL+route.path, nil)
			if err != nil {
				t.Fatalf("build request: %v", err)
			}
			if tc.accept != "-" {
				req.Header.Set(HeaderAcceptEnvelope, tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s: %v", tc.label, err)
			}
			_ = resp.Body.Close()
			if resp.StatusCode != route.wantStatus {
				t.Fatalf("%s %s: status %d, want %d", tc.label, route.path, resp.StatusCode, route.wantStatus)
			}
			got := resp.Header.Get(HeaderEnvelopeVersion)
			if got == "" {
				t.Fatalf("%s %s: no %s header on response", tc.label, route.path, HeaderEnvelopeVersion)
			}
			fmt.Fprintf(&b, "accept=%-12q route=%-5s -> version=%s\n", tc.accept, route.name, got)
		}
	}

	goldenPath := filepath.Join("testdata", "envelope_negotiation.golden")
	if *updateEnvelopeGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if b.String() != string(want) {
		t.Fatalf("negotiation drifted from golden.\n--- golden ---\n%s--- now ---\n%s"+
			"Regenerate with -update if the change is intentional.", want, b.String())
	}
}

// TestEnvelopeDecodeError pins what the client reports when a non-2xx
// response carries a body that is not the versioned error envelope — a
// proxy error page, a truncated response, an unrelated server. The old
// behavior silently discarded the decode failure and reported a bare
// status; now the typed error carries the status and the first bytes of
// the body, so a misrouted client can actually be diagnosed.
func TestEnvelopeDecodeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "<html><body>upstream connect error</body></html>", strings.Repeat("x", 1024))
	}))
	defer ts.Close()

	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.StreamSubmit(context.Background(), Submission{
		ClientID: "dev", Claims: []Claim{{Object: 0, Value: 1}},
	})
	var decErr *EnvelopeDecodeError
	if !errors.As(err, &decErr) {
		t.Fatalf("err = %v (%T), want *EnvelopeDecodeError", err, err)
	}
	if decErr.StatusCode != http.StatusBadGateway {
		t.Errorf("StatusCode = %d, want 502", decErr.StatusCode)
	}
	if !strings.HasPrefix(string(decErr.BodyPrefix), "<html><body>upstream connect error") {
		t.Errorf("BodyPrefix = %q, want the response's first bytes", decErr.BodyPrefix)
	}
	if len(decErr.BodyPrefix) > errorBodyPrefixBytes {
		t.Errorf("BodyPrefix is %d bytes, cap is %d", len(decErr.BodyPrefix), errorBodyPrefixBytes)
	}
	if decErr.Err == nil {
		t.Error("Err (the decode failure) is nil")
	}
	if msg := decErr.Error(); !strings.Contains(msg, "502") || !strings.Contains(msg, "upstream connect error") {
		t.Errorf("Error() = %q: want the status and body prefix in the message", msg)
	}

	// An empty error body keeps the legacy bare-status path: HTTPError
	// with no code, not an envelope-decode failure.
	tsEmpty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer tsEmpty.Close()
	clientEmpty, err := NewClient(tsEmpty.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = clientEmpty.StreamSubmit(context.Background(), Submission{
		ClientID: "dev", Claims: []Claim{{Object: 0, Value: 1}},
	})
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.Code != "" {
		t.Fatalf("empty-body error = %v, want bare *HTTPError with empty code", err)
	}
}
