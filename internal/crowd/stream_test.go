package crowd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pptd/internal/randx"
	"pptd/internal/stream"
	"pptd/internal/streamstore"
)

func newStreamFixture(t *testing.T, cfg StreamServerConfig) (*StreamServer, *Client) {
	t.Helper()
	srv, err := NewStreamServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	})
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

// TestStreamEndToEnd drives the full streaming flow over a real HTTP
// boundary: concurrent devices perturb locally and submit over several
// windows, the driver closes windows, and the live snapshot tracks the
// ground truth.
func TestStreamEndToEnd(t *testing.T) {
	const (
		numObjects = 8
		numUsers   = 30
		numWindows = 3
		lambda1    = 1.5
		lambda2    = 2.0
	)
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-e2e",
		Engine: stream.Config{
			NumObjects: numObjects,
			NumShards:  3,
			Lambda1:    lambda1,
			Lambda2:    lambda2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()

	info, err := client.StreamCampaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumObjects != numObjects || info.Lambda2 != lambda2 || info.Shards != 3 {
		t.Fatalf("campaign info = %+v", info)
	}
	if info.EpsilonPerWindow <= 0 {
		t.Fatalf("EpsilonPerWindow = %v, want > 0", info.EpsilonPerWindow)
	}

	// Snapshot is 404 (ErrNotReady) until the first window closes: "no
	// estimate yet" is a missing resource, not a conflict.
	if _, err := client.StreamTruths(ctx); err == nil {
		t.Fatal("StreamTruths before first window succeeded")
	} else {
		var httpErr *HTTPError
		if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusNotFound {
			t.Fatalf("StreamTruths before first window: %v", err)
		}
		if !errors.Is(err, ErrNotReady) {
			t.Fatalf("StreamTruths before first window: %v does not wrap ErrNotReady", err)
		}
	}

	rng := randx.New(5)
	groundTruth := make([]float64, numObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}
	users := make([]*User, numUsers)
	for i := range users {
		userRng := rng.Split()
		sigma := math.Sqrt(userRng.Exp() / lambda1)
		readings := make([]Claim, numObjects)
		for n, tv := range groundTruth {
			readings[n] = Claim{Object: n, Value: tv + sigma*userRng.Norm()}
		}
		u, err := NewUser(fmt.Sprintf("device-%02d", i), readings, userRng)
		if err != nil {
			t.Fatal(err)
		}
		users[i] = u
	}

	for w := 1; w <= numWindows; w++ {
		var wg sync.WaitGroup
		errs := make([]error, numUsers)
		for i, u := range users {
			wg.Add(1)
			go func(i int, u *User) {
				defer wg.Done()
				_, errs[i] = u.ParticipateStream(ctx, client)
			}(i, u)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("window %d device %d: %v", w, i, err)
			}
		}
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Window != w {
			t.Fatalf("window = %d, want %d", res.Window, w)
		}
		if res.ActiveUsers != numUsers {
			t.Errorf("window %d: ActiveUsers = %d, want %d", w, res.ActiveUsers, numUsers)
		}
		if res.Privacy == nil {
			t.Fatalf("window %d: no privacy report", w)
		}
		wantCum := float64(w) * info.EpsilonPerWindow
		if got := res.Privacy.MaxCumulative; math.Abs(got-wantCum) > 1e-9 {
			t.Errorf("window %d: MaxCumulative = %v, want %v", w, got, wantCum)
		}
		wantDelta := float64(w) * info.Delta
		if got := res.Privacy.CumulativeDelta; math.Abs(got-wantDelta) > 1e-12 {
			t.Errorf("window %d: CumulativeDelta = %v, want %v", w, got, wantDelta)
		}

		snap, err := client.StreamTruths(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Window != w {
			t.Errorf("snapshot window = %d, want %d", snap.Window, w)
		}
		var mae float64
		for n, tv := range groundTruth {
			if !snap.Covered[n] {
				t.Fatalf("object %d uncovered", n)
			}
			mae += math.Abs(snap.Truths[n] - tv)
		}
		mae /= numObjects
		if mae > 1.5 {
			t.Errorf("window %d: MAE %v vs ground truth too large", w, mae)
		}
	}
}

// TestStreamBudgetOverHTTP checks that an exhausted client is refused
// with 429 while fresh clients keep streaming.
func TestStreamBudgetOverHTTP(t *testing.T) {
	srv, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-budget",
		Engine: stream.Config{
			NumObjects: 2,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	// Budget for exactly one window.
	eps := srv.Engine().EpsilonPerWindow()
	srv2, client2 := newStreamFixture(t, StreamServerConfig{
		Name: "stream-budget-capped",
		Engine: stream.Config{
			NumObjects:    2,
			NumShards:     1,
			Lambda1:       1,
			Lambda2:       2,
			Delta:         0.3,
			EpsilonBudget: eps,
		},
	})
	_ = srv2
	ctx := context.Background()
	sub := Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}}

	// Uncapped server: two windows fine.
	for w := 0; w < 2; w++ {
		if _, err := client.StreamSubmit(ctx, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := client.StreamCloseWindow(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Capped server: first window fine, second refused with 429.
	if _, err := client2.StreamSubmit(ctx, sub); err != nil {
		t.Fatal(err)
	}
	if _, err := client2.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := client2.StreamSubmit(ctx, sub)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %v, want 429", err)
	}
}

// TestStreamDuplicateWindowOverHTTP checks the release contract on the
// wire: with accounting enabled a second submission into the same open
// window is refused with 409, and the user is admitted again once the
// window advances.
func TestStreamDuplicateWindowOverHTTP(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-dup",
		Engine: stream.Config{
			NumObjects: 2,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()
	sub := Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}}

	if _, err := client.StreamSubmit(ctx, sub); err != nil {
		t.Fatal(err)
	}
	_, err := client.StreamSubmit(ctx, sub)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusConflict {
		t.Fatalf("same-window resubmit = %v, want 409", err)
	}
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.StreamSubmit(ctx, sub); err != nil {
		t.Fatalf("next-window resubmit: %v", err)
	}

	// A batch carrying the same object twice is likewise refused (400).
	dup := Submission{ClientID: "d", Claims: []Claim{{Object: 0, Value: 1}, {Object: 0, Value: 2}}}
	_, err = client.StreamSubmit(ctx, dup)
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate-object submit = %v, want 400", err)
	}
}

// TestParticipateStreamSameWindowGuard checks the device-side half of
// the contract: the helper refuses to generate a second noisy release
// while the open window is the one it already submitted into.
func TestParticipateStreamSameWindowGuard(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-guard",
		Engine: stream.Config{
			NumObjects: 1,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()
	u, err := NewUser("dev", []Claim{{Object: 0, Value: 1}}, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.ParticipateStream(ctx, client); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ParticipateStream(ctx, client); !errors.Is(err, ErrSameWindow) {
		t.Fatalf("same-window participate = %v, want ErrSameWindow", err)
	}
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	receipt, err := u.ParticipateStream(ctx, client)
	if err != nil {
		t.Fatalf("next-window participate: %v", err)
	}
	if receipt.Window != 2 {
		t.Errorf("receipt window = %d, want 2", receipt.Window)
	}
}

// TestParticipateStreamNeedsLambda2 checks the device helper refuses a
// streaming campaign that publishes no perturbation rate instead of
// ever uploading raw readings.
func TestParticipateStreamNeedsLambda2(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name:   "no-lambda2",
		Engine: stream.Config{NumObjects: 2, NumShards: 1},
	})
	u, err := NewUser("dev", []Claim{{Object: 0, Value: 1}}, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = u.ParticipateStream(context.Background(), client)
	if !errors.Is(err, ErrBadClient) {
		t.Fatalf("ParticipateStream without lambda2 = %v, want ErrBadClient", err)
	}
}

// TestStreamBadRequests checks the wire-level error mapping.
func TestStreamBadRequests(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name:   "stream-bad",
		Engine: stream.Config{NumObjects: 2, NumShards: 1},
	})
	ctx := context.Background()
	for _, sub := range []Submission{
		{ClientID: "", Claims: []Claim{{Object: 0, Value: 1}}},
		{ClientID: "c"},
		{ClientID: "c", Claims: []Claim{{Object: 7, Value: 1}}},
	} {
		_, err := client.StreamSubmit(ctx, sub)
		var httpErr *HTTPError
		if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusBadRequest {
			t.Errorf("StreamSubmit(%+v) = %v, want 400", sub, err)
		}
	}
	// Closing an empty window is a 409.
	_, err := client.StreamCloseWindow(ctx)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusConflict {
		t.Errorf("empty CloseWindow = %v, want 409", err)
	}
}

// TestStreamServerRecovery restarts a persistent streaming server and
// checks the durable guarantees across the full HTTP path: the window
// counter resumes, a budget-exhausted client stays 429, the last
// published truths are served immediately from the persisted result,
// and fresh clients keep streaming.
func TestStreamServerRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := func(store *streamstore.Store) StreamServerConfig {
		return StreamServerConfig{
			Name: "stream-recover",
			Engine: stream.Config{
				NumObjects: 2,
				NumShards:  2,
				Lambda1:    1,
				Lambda2:    2,
				Delta:      0.3,
				// NewStreamServer wires the store in as the Ledger before
				// the engine validates, so the claim WAL needs no explicit
				// Ledger here.
				ClaimWAL: true,
			},
			Persistence: store,
		}
	}
	store, err := streamstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(store)
	probeCfg := c.Engine
	probeCfg.ClaimWAL = false // the throwaway epsilon probe has no ledger
	probe, err := stream.New(probeCfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe.EpsilonPerWindow()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	c.Engine.EpsilonBudget = 1.5 * eps // affords exactly one window

	srv1, err := NewStreamServer(c)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	client1, err := NewClient(ts1.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sub := Submission{ClientID: "cap", Claims: []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}}
	if _, err := client1.StreamSubmit(ctx, sub); err != nil {
		t.Fatal(err)
	}
	if _, err := client1.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	// The first "process" dies (gracefully here; the crash path is
	// exercised in internal/streamstore's recovery tests).
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := streamstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = store2.Close() })
	c2 := cfg(store2)
	c2.Engine.EpsilonBudget = 1.5 * eps
	srv2, err := NewStreamServer(c2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		if err := srv2.Close(); err != nil {
			t.Error(err)
		}
	})
	client2, err := NewClient(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}

	info, err := client2.StreamCampaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Window != 1 || info.TotalClaims != 2 {
		t.Errorf("recovered campaign = window %d / %d claims, want 1 / 2", info.Window, info.TotalClaims)
	}
	// The last published estimate is persisted at every close: the
	// recovered server serves window 1's truths immediately instead of
	// 404 until the next close.
	prev, err := client2.StreamTruths(ctx)
	if err != nil {
		t.Fatalf("truths right after recovery = %v, want the persisted window-1 result", err)
	}
	if prev.Window != 1 || len(prev.Truths) != 2 || prev.Truths[0] != 1 || prev.Truths[1] != 2 {
		t.Errorf("recovered truths = %+v, want window 1 with cap's claims", prev)
	}
	// The exhausted client is still refused across the restart.
	_, err = client2.StreamSubmit(ctx, sub)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted client after restart = %v, want 429", err)
	}
	// A fresh client keeps the stream going, and the close re-publishes
	// truths from the recovered statistics (cap's window-1 claims are
	// still in the estimate).
	fresh := Submission{ClientID: "fresh", Claims: []Claim{{Object: 0, Value: 3}}}
	if _, err := client2.StreamSubmit(ctx, fresh); err != nil {
		t.Fatal(err)
	}
	res, err := client2.StreamCloseWindow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Window != 2 {
		t.Errorf("window after recovery close = %d, want 2", res.Window)
	}
	if !res.Covered[1] {
		t.Error("object 1 lost across restart: only cap ever claimed it")
	}
	if res.Privacy == nil || res.Privacy.TrackedUsers != 2 {
		t.Errorf("privacy after recovery = %+v, want 2 tracked users", res.Privacy)
	}
}

// TestStreamAutoWindowClose checks the ticker-driven window close: with
// WindowInterval set, truths appear without any POST /v1/stream/window.
func TestStreamAutoWindowClose(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-ticker",
		Engine: stream.Config{
			NumObjects: 1,
			NumShards:  1,
		},
		WindowInterval: 10 * time.Millisecond,
	})
	ctx := context.Background()
	if _, err := client.StreamSubmit(ctx, Submission{
		ClientID: "c", Claims: []Claim{{Object: 0, Value: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := client.StreamTruths(ctx)
		if err == nil {
			if info.Window < 1 || info.Truths[0] != 4 {
				t.Fatalf("auto-closed snapshot = %+v", info)
			}
			return
		}
		if !errors.Is(err, ErrNotReady) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no window auto-closed within the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamPerUserReportOptInOverHTTP checks the wire default: privacy
// reports carry aggregates only, and the per-user map appears only when
// the engine opted in.
func TestStreamPerUserReportOptInOverHTTP(t *testing.T) {
	base := stream.Config{
		NumObjects: 1,
		NumShards:  1,
		Lambda1:    1,
		Lambda2:    2,
		Delta:      0.3,
	}
	_, summary := newStreamFixture(t, StreamServerConfig{Name: "summary", Engine: base})
	optCfg := base
	optCfg.PerUserReport = true
	_, optIn := newStreamFixture(t, StreamServerConfig{Name: "opt-in", Engine: optCfg})

	ctx := context.Background()
	sub := Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}}}
	for _, client := range []*Client{summary, optIn} {
		if _, err := client.StreamSubmit(ctx, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := client.StreamCloseWindow(ctx); err != nil {
			t.Fatal(err)
		}
	}

	res, err := summary.StreamTruths(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy == nil {
		t.Fatal("summary report missing")
	}
	if res.Privacy.PerUser != nil {
		t.Errorf("default wire report leaked the per-user roster: %v", res.Privacy.PerUser)
	}
	if res.Privacy.TrackedUsers != 1 || res.Privacy.MaxCumulative <= 0 {
		t.Errorf("summary aggregates = %+v", res.Privacy)
	}

	res, err = optIn.StreamTruths(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy == nil || len(res.Privacy.PerUser) != 1 || res.Privacy.PerUser["c"] <= 0 {
		t.Errorf("opt-in wire report = %+v, want c's epsilon", res.Privacy)
	}
}

// TestStreamServerConfigValidation checks server-level config errors.
func TestStreamServerConfigValidation(t *testing.T) {
	if _, err := NewStreamServer(StreamServerConfig{
		Engine:         stream.Config{NumObjects: 1},
		WindowInterval: -time.Second,
	}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative WindowInterval = %v, want ErrBadConfig", err)
	}
}

// TestTickErrorSurfacesSnapshotFailure checks that a ticker-driven
// window close whose persistence snapshot fails does not vanish: the
// fault is retained for TickError and returned from Close.
func TestTickErrorSurfacesSnapshotFailure(t *testing.T) {
	dir := t.TempDir()
	store, err := streamstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewStreamServer(StreamServerConfig{
		Name:           "stream-tick-err",
		Engine:         stream.Config{NumObjects: 1, NumShards: 1},
		Persistence:    store,
		WindowInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}}}); err != nil {
		t.Fatal(err)
	}
	// The store dies under the server (stand-in for a full disk): every
	// subsequent auto close must fail its snapshot.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.TickError() == nil {
		if time.Now().After(deadline) {
			t.Fatal("snapshot failure never surfaced via TickError")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(srv.TickError(), streamstore.ErrClosed) {
		t.Errorf("TickError = %v, want wrapped streamstore.ErrClosed", srv.TickError())
	}
	if err := srv.Close(); !errors.Is(err, streamstore.ErrClosed) {
		t.Errorf("Close = %v, want the retained snapshot failure", err)
	}
}
