package crowd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pptd/internal/randx"
	"pptd/internal/stream"
)

func newStreamFixture(t *testing.T, cfg StreamServerConfig) (*StreamServer, *Client) {
	t.Helper()
	srv, err := NewStreamServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
	})
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

// TestStreamEndToEnd drives the full streaming flow over a real HTTP
// boundary: concurrent devices perturb locally and submit over several
// windows, the driver closes windows, and the live snapshot tracks the
// ground truth.
func TestStreamEndToEnd(t *testing.T) {
	const (
		numObjects = 8
		numUsers   = 30
		numWindows = 3
		lambda1    = 1.5
		lambda2    = 2.0
	)
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-e2e",
		Engine: stream.Config{
			NumObjects: numObjects,
			NumShards:  3,
			Lambda1:    lambda1,
			Lambda2:    lambda2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()

	info, err := client.StreamCampaign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumObjects != numObjects || info.Lambda2 != lambda2 || info.Shards != 3 {
		t.Fatalf("campaign info = %+v", info)
	}
	if info.EpsilonPerWindow <= 0 {
		t.Fatalf("EpsilonPerWindow = %v, want > 0", info.EpsilonPerWindow)
	}

	// Snapshot is 409 until the first window closes.
	if _, err := client.StreamTruths(ctx); err == nil {
		t.Fatal("StreamTruths before first window succeeded")
	} else {
		var httpErr *HTTPError
		if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusConflict {
			t.Fatalf("StreamTruths before first window: %v", err)
		}
	}

	rng := randx.New(5)
	groundTruth := make([]float64, numObjects)
	for n := range groundTruth {
		groundTruth[n] = 10 * rng.Float64()
	}
	users := make([]*User, numUsers)
	for i := range users {
		userRng := rng.Split()
		sigma := math.Sqrt(userRng.Exp() / lambda1)
		readings := make([]Claim, numObjects)
		for n, tv := range groundTruth {
			readings[n] = Claim{Object: n, Value: tv + sigma*userRng.Norm()}
		}
		u, err := NewUser(fmt.Sprintf("device-%02d", i), readings, userRng)
		if err != nil {
			t.Fatal(err)
		}
		users[i] = u
	}

	for w := 1; w <= numWindows; w++ {
		var wg sync.WaitGroup
		errs := make([]error, numUsers)
		for i, u := range users {
			wg.Add(1)
			go func(i int, u *User) {
				defer wg.Done()
				_, errs[i] = u.ParticipateStream(ctx, client)
			}(i, u)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("window %d device %d: %v", w, i, err)
			}
		}
		res, err := client.StreamCloseWindow(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Window != w {
			t.Fatalf("window = %d, want %d", res.Window, w)
		}
		if res.ActiveUsers != numUsers {
			t.Errorf("window %d: ActiveUsers = %d, want %d", w, res.ActiveUsers, numUsers)
		}
		if res.Privacy == nil {
			t.Fatalf("window %d: no privacy report", w)
		}
		wantCum := float64(w) * info.EpsilonPerWindow
		if got := res.Privacy.MaxCumulative; math.Abs(got-wantCum) > 1e-9 {
			t.Errorf("window %d: MaxCumulative = %v, want %v", w, got, wantCum)
		}
		wantDelta := float64(w) * info.Delta
		if got := res.Privacy.CumulativeDelta; math.Abs(got-wantDelta) > 1e-12 {
			t.Errorf("window %d: CumulativeDelta = %v, want %v", w, got, wantDelta)
		}

		snap, err := client.StreamTruths(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Window != w {
			t.Errorf("snapshot window = %d, want %d", snap.Window, w)
		}
		var mae float64
		for n, tv := range groundTruth {
			if !snap.Covered[n] {
				t.Fatalf("object %d uncovered", n)
			}
			mae += math.Abs(snap.Truths[n] - tv)
		}
		mae /= numObjects
		if mae > 1.5 {
			t.Errorf("window %d: MAE %v vs ground truth too large", w, mae)
		}
	}
}

// TestStreamBudgetOverHTTP checks that an exhausted client is refused
// with 429 while fresh clients keep streaming.
func TestStreamBudgetOverHTTP(t *testing.T) {
	srv, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-budget",
		Engine: stream.Config{
			NumObjects: 2,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	// Budget for exactly one window.
	eps := srv.Engine().EpsilonPerWindow()
	srv2, client2 := newStreamFixture(t, StreamServerConfig{
		Name: "stream-budget-capped",
		Engine: stream.Config{
			NumObjects:    2,
			NumShards:     1,
			Lambda1:       1,
			Lambda2:       2,
			Delta:         0.3,
			EpsilonBudget: eps,
		},
	})
	_ = srv2
	ctx := context.Background()
	sub := Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}}

	// Uncapped server: two windows fine.
	for w := 0; w < 2; w++ {
		if _, err := client.StreamSubmit(ctx, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := client.StreamCloseWindow(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Capped server: first window fine, second refused with 429.
	if _, err := client2.StreamSubmit(ctx, sub); err != nil {
		t.Fatal(err)
	}
	if _, err := client2.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := client2.StreamSubmit(ctx, sub)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit = %v, want 429", err)
	}
}

// TestStreamDuplicateWindowOverHTTP checks the release contract on the
// wire: with accounting enabled a second submission into the same open
// window is refused with 409, and the user is admitted again once the
// window advances.
func TestStreamDuplicateWindowOverHTTP(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-dup",
		Engine: stream.Config{
			NumObjects: 2,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()
	sub := Submission{ClientID: "c", Claims: []Claim{{Object: 0, Value: 1}, {Object: 1, Value: 2}}}

	if _, err := client.StreamSubmit(ctx, sub); err != nil {
		t.Fatal(err)
	}
	_, err := client.StreamSubmit(ctx, sub)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusConflict {
		t.Fatalf("same-window resubmit = %v, want 409", err)
	}
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.StreamSubmit(ctx, sub); err != nil {
		t.Fatalf("next-window resubmit: %v", err)
	}

	// A batch carrying the same object twice is likewise refused (400).
	dup := Submission{ClientID: "d", Claims: []Claim{{Object: 0, Value: 1}, {Object: 0, Value: 2}}}
	_, err = client.StreamSubmit(ctx, dup)
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate-object submit = %v, want 400", err)
	}
}

// TestParticipateStreamSameWindowGuard checks the device-side half of
// the contract: the helper refuses to generate a second noisy release
// while the open window is the one it already submitted into.
func TestParticipateStreamSameWindowGuard(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name: "stream-guard",
		Engine: stream.Config{
			NumObjects: 1,
			NumShards:  1,
			Lambda1:    1,
			Lambda2:    2,
			Delta:      0.3,
		},
	})
	ctx := context.Background()
	u, err := NewUser("dev", []Claim{{Object: 0, Value: 1}}, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.ParticipateStream(ctx, client); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ParticipateStream(ctx, client); !errors.Is(err, ErrSameWindow) {
		t.Fatalf("same-window participate = %v, want ErrSameWindow", err)
	}
	if _, err := client.StreamCloseWindow(ctx); err != nil {
		t.Fatal(err)
	}
	receipt, err := u.ParticipateStream(ctx, client)
	if err != nil {
		t.Fatalf("next-window participate: %v", err)
	}
	if receipt.Window != 2 {
		t.Errorf("receipt window = %d, want 2", receipt.Window)
	}
}

// TestParticipateStreamNeedsLambda2 checks the device helper refuses a
// streaming campaign that publishes no perturbation rate instead of
// ever uploading raw readings.
func TestParticipateStreamNeedsLambda2(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name:   "no-lambda2",
		Engine: stream.Config{NumObjects: 2, NumShards: 1},
	})
	u, err := NewUser("dev", []Claim{{Object: 0, Value: 1}}, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = u.ParticipateStream(context.Background(), client)
	if !errors.Is(err, ErrBadClient) {
		t.Fatalf("ParticipateStream without lambda2 = %v, want ErrBadClient", err)
	}
}

// TestStreamBadRequests checks the wire-level error mapping.
func TestStreamBadRequests(t *testing.T) {
	_, client := newStreamFixture(t, StreamServerConfig{
		Name:   "stream-bad",
		Engine: stream.Config{NumObjects: 2, NumShards: 1},
	})
	ctx := context.Background()
	for _, sub := range []Submission{
		{ClientID: "", Claims: []Claim{{Object: 0, Value: 1}}},
		{ClientID: "c"},
		{ClientID: "c", Claims: []Claim{{Object: 7, Value: 1}}},
	} {
		_, err := client.StreamSubmit(ctx, sub)
		var httpErr *HTTPError
		if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusBadRequest {
			t.Errorf("StreamSubmit(%+v) = %v, want 400", sub, err)
		}
	}
	// Closing an empty window is a 409.
	_, err := client.StreamCloseWindow(ctx)
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) || httpErr.StatusCode != http.StatusConflict {
		t.Errorf("empty CloseWindow = %v, want 409", err)
	}
}
