// Package crowd implements the crowd sensing system of the paper's
// Section 2 as a real client/server application: an untrusted aggregation
// server that publishes micro-tasks and the perturbation hyper-parameter
// lambda2, and user clients that perturb their readings locally (the only
// place original data ever exists) before submitting them over HTTP/JSON.
// This realizes Algorithm 2 end to end:
//
//  1. the server publishes the campaign (micro-tasks + lambda2),
//  2. each user samples delta_s^2 ~ Exp(lambda2) on-device,
//  3. each user perturbs readings with N(0, delta_s^2) noise,
//  4. users submit only perturbed claims,
//  5. the server runs weighted truth discovery once enough users reported.
package crowd

import "fmt"

// Wire paths served by the campaign server.
const (
	// PathCampaign serves campaign metadata (GET).
	PathCampaign = "/v1/campaign"
	// PathSubmissions accepts perturbed claim batches (POST).
	PathSubmissions = "/v1/submissions"
	// PathResult serves the aggregated result (GET), 409 until ready.
	PathResult = "/v1/result"
	// PathAggregate forces aggregation of whatever was submitted (POST).
	PathAggregate = "/v1/aggregate"
)

// CampaignInfo is the public description of a sensing campaign.
type CampaignInfo struct {
	// Name labels the campaign.
	Name string `json:"name"`
	// NumObjects is the number of micro-tasks (objects) to report on.
	NumObjects int `json:"numObjects"`
	// Lambda2 is the server-released rate for the noise-variance
	// distribution each user samples from.
	Lambda2 float64 `json:"lambda2"`
	// ExpectedUsers is the submission count that triggers aggregation.
	ExpectedUsers int `json:"expectedUsers"`
	// SubmittedUsers is how many users have submitted so far.
	SubmittedUsers int `json:"submittedUsers"`
	// Aggregated reports whether the result is available.
	Aggregated bool `json:"aggregated"`
}

// Claim is a single (object, value) report inside a submission. Values
// must already be perturbed by the client.
type Claim struct {
	Object int     `json:"object"`
	Value  float64 `json:"value"`
}

// Submission is the body of POST /v1/submissions.
type Submission struct {
	// ClientID identifies the submitting device; one submission per ID.
	ClientID string `json:"clientId"`
	// Claims holds the perturbed readings.
	Claims []Claim `json:"claims"`
}

// SubmissionReceipt is the response to a successful submission.
type SubmissionReceipt struct {
	// Accepted echoes the number of stored claims.
	Accepted int `json:"accepted"`
	// SubmittedUsers is the submission count after this one.
	SubmittedUsers int `json:"submittedUsers"`
	// Aggregated reports whether this submission triggered aggregation.
	Aggregated bool `json:"aggregated"`
}

// ResultInfo is the response of GET /v1/result once aggregation ran.
type ResultInfo struct {
	// Truths holds the aggregated value per object.
	Truths []float64 `json:"truths"`
	// Weights holds the estimated weight per submitting user, keyed by
	// client ID. Weights reveal only aggregate reliability on perturbed
	// data, never original readings.
	Weights map[string]float64 `json:"weights"`
	// Method names the truth-discovery algorithm used.
	Method string `json:"method"`
	// Iterations and Converged mirror the truth.Result metadata.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
}

// ErrorBody is the JSON error envelope for non-2xx responses.
type ErrorBody struct {
	Error string `json:"error"`
}

// HTTPError reports a non-2xx response from the campaign server.
type HTTPError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server-provided error string, if any.
	Message string
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("crowd: server returned status %d", e.StatusCode)
	}
	return fmt.Sprintf("crowd: server returned status %d: %s", e.StatusCode, e.Message)
}
